#!/usr/bin/env python3
"""Quickstart: trace a benchmark, reduce it, and check what survived.

This walks the full pipeline of the paper on one workload:

1. build the ``late_sender`` benchmark (odd ranks wait for even ranks);
2. simulate it and segment the per-rank traces;
3. reduce each rank's trace with the average-wavelet similarity metric
   (the paper's overall winner) at its default threshold;
4. reconstruct an approximate full trace and report the paper's four
   evaluation criteria;
5. show the KOJAK-style diagnosis of the full and the reconstructed trace.

Run with:  python examples/quickstart.py
"""

from repro.analysis import analyze, severity_chart
from repro.analysis.patterns import EXECUTION_TIME, LATE_SENDER
from repro.benchmarks_ats import late_sender
from repro.core import create_metric, reconstruct, reduce_trace
from repro.evaluation import (
    approximation_distance,
    degree_of_matching,
    percent_file_size,
    retains_trends,
)


def main() -> None:
    # 1. a workload with a known performance problem: even ranks send late,
    #    odd ranks wait ~500 µs in MPI_Recv in every one of 40 iterations.
    workload = late_sender(nprocs=8, iterations=40, severity=500.0, seed=42)
    print(f"workload: {workload.name} ({workload.nprocs} ranks)")
    print(f"expected diagnosis: {workload.expected_metric} at {workload.expected_location}\n")

    # 2. simulate and segment
    full_trace = workload.run_segmented()
    print(f"full trace: {full_trace.num_events} events in {full_trace.num_segments} segments")

    # 3. reduce with avgWave at the paper's default threshold (0.2)
    metric = create_metric("avgWave")
    reduced = reduce_trace(full_trace, metric)
    print(f"reduced with {metric.describe()}: {reduced.n_stored} stored segments "
          f"for {reduced.n_segments} executions")

    # 4. evaluation criteria
    rebuilt = reconstruct(reduced)
    print(f"\n  percentage of full trace file size : {percent_file_size(full_trace, reduced):6.2f} %")
    print(f"  degree of matching                 : {degree_of_matching(reduced):6.3f}")
    print(f"  approximation distance (90th pct)  : {approximation_distance(full_trace, rebuilt):6.1f} us")
    comparison = retains_trends(full_trace, rebuilt)
    print(f"  retains performance trends          : {'yes' if comparison.retained else 'NO'}")
    for violation in comparison.violations:
        print(f"    violation: {violation}")

    # 5. the diagnosis, before and after reduction
    entries = [(LATE_SENDER, "MPI_Recv"), (EXECUTION_TIME, "do_work")]
    print("\n" + severity_chart(analyze(full_trace), entries, title="full trace diagnosis"))
    print("\n" + severity_chart(analyze(rebuilt), entries, title="reconstructed trace diagnosis"))


if __name__ == "__main__":
    main()
