#!/usr/bin/env python3
"""Why traces at all?  Profiles cannot tell a late sender from a late receiver.

The paper's opening argument is that profiling, although much cheaper, is too
coarse for certain diagnoses: a profile of a program that spends a lot of time
in receive operations cannot say *why* — the sender may be late, the receiver
may be late (synchronous sends), or the network may be congested.  This
example builds two benchmarks with *different* root causes but near-identical
profiles and shows that only the trace-based wait-state analysis separates
them — which is exactly why the reduced trace must retain those wait states.

The example's own phases (simulate / profile / analyze) are timed with
``repro.obs`` spans rather than hand-rolled ``time.perf_counter`` pairs, and a
per-phase summary is printed at the end — the same telemetry the engine emits
under ``repro-trace pipeline --telemetry``.

Run with:  python examples/profile_vs_trace.py
"""

from repro import obs
from repro.analysis import analyze, severity_chart
from repro.analysis.patterns import LATE_RECEIVER, LATE_SENDER
from repro.analysis.profile import flat_profile
from repro.benchmarks_ats import late_receiver, late_sender


def main() -> None:
    with obs.recording("profile_vs_trace") as recorder:
        sender_late = late_sender(nprocs=8, iterations=30, severity=500.0, seed=17)
        receiver_late = late_receiver(nprocs=8, iterations=30, severity=500.0, seed=17)

        with obs.span("example.simulate", workloads=2):
            traces = {w.name: w.run_segmented() for w in (sender_late, receiver_late)}

        print("1) What a profiler sees\n")
        for name, trace in traces.items():
            with obs.span("example.profile", workload=name):
                profile = flat_profile(trace)
            print(profile.as_table())
            print(f"   time in MPI: {100 * profile.mpi_fraction():.1f} % of total\n")
        print(
            "Both programs spend a similar share of their time in MPI point-to-point calls;\n"
            "the profile offers no way to tell which side is at fault.\n"
        )

        print("2) What the trace-based wait-state analysis sees\n")
        entries = [(LATE_SENDER, "MPI_Recv"), (LATE_RECEIVER, "MPI_Ssend")]
        for name, trace in traces.items():
            with obs.span("example.analyze", workload=name):
                chart = severity_chart(
                    analyze(trace), entries, title=f"{name}: wait-state diagnosis"
                )
            print(chart)
            print()
        print(
            "The trace pins the blame: the late_sender run shows Late Sender waits at the\n"
            "receivers, the late_receiver run shows Late Receiver waits at the (synchronous)\n"
            "senders — the distinction the paper's reduced traces must preserve."
        )

    print("\n3) Where this example's own time went (repro.obs spans)\n")
    print(obs.run_report(obs.chrome_trace_payload(recorder)))


if __name__ == "__main__":
    main()
