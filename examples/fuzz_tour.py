#!/usr/bin/env python3
"""Tour of the deterministic scenario fuzzer (``repro.fuzz``).

The fuzzer hunts for divergences between the reduction pathways that must
stay byte-identical: serial vs batch vs pruned matching, inline vs sharded
pipelines, batch vs incremental sessions (including a checkpoint/restore
mid-stream), binary and text round trips, and the malformed-rank fallback.
Every case is derived from a seed, so a campaign is a pure function of
``(seed, n_cases, families)`` — the same invocation always builds the same
traces, draws the same configs, and reaches the same verdicts.

The tour:

1. runs one case from every workload family and renders the oracle matrix,
2. zooms into the ``threshold_edge`` family, whose probes land exactly one
   ulp on either side of the similarity boundary ``distance == limit``,
3. persists a case to a corpus directory, reloads it, and replays its
   oracles from the stored records alone — the regression-corpus workflow,
4. demonstrates the shrinker on a case that genuinely fails (an off-grid
   timestamp is lossy under the 2-decimal text format).

Run with:  python examples/fuzz_tour.py
"""

import math
import tempfile
from pathlib import Path

from repro.fuzz import (
    CaseDB,
    CorpusCase,
    FAMILY_NAMES,
    make_failure_check,
    plan_cases,
    run_case,
    shrink_records,
)
from repro.fuzz.generators import CaseConfig, edge_boundary_ends, generate_case
from repro.fuzz.oracles import ORACLE_NAMES, run_oracles
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import iter_segments
from repro.util.tables import format_table

SEED = 5


def one_round_matrix():
    """Run one case per family and render the family x oracle matrix."""
    cases = plan_cases(SEED, len(FAMILY_NAMES))
    results = [run_case(case) for case in cases]

    headers = ["family", "config"] + list(ORACLE_NAMES)
    rows = []
    for result in results:
        cell = {o.name: o.status for o in result.outcomes}
        rows.append(
            [result.case.spec.family, result.case.config.describe()]
            + [{"pass": "ok", "fail": "FAIL", None: "-"}.get(cell.get(name), "-") for name in ORACLE_NAMES]
        )
    print(format_table(headers, rows, title=f"one case per family, seed {SEED}"))
    failed = [r for r in results if not r.ok]
    print(f"{len(results)} cases, {len(failed)} failed\n")
    return results


def threshold_edge_zoom():
    """Show how close the adversarial probes sit to the match boundary."""
    script_case = next(
        c for c in plan_cases(SEED, len(FAMILY_NAMES)) if c.spec.family == "threshold_edge"
    )
    trace = generate_case(script_case.spec)
    config = script_case.config
    base = next(iter_segments(trace.ranks[0].records))
    end_match, end_miss = edge_boundary_ends(base, config.method, config.threshold)
    gap = end_miss - end_match
    print(f"threshold_edge zoom ({config.describe()}):")
    print(f"  last matching segment end : {end_match!r}")
    print(f"  first missing segment end : {end_miss!r}")
    print(f"  gap: {gap:.3e} = {'1 ulp' if math.nextafter(end_match, math.inf) == end_miss else 'wider'}")
    print()


def corpus_workflow(workdir: Path):
    """Persist a case, reload it, and replay it from records alone."""
    case = plan_cases(SEED, 1)[0]
    trace = generate_case(case.spec)
    corpus = CorpusCase(
        id=case.id,
        family=case.spec.family,
        seed=case.spec.seed,
        params=dict(case.spec.params),
        config=case.config,
        oracles=list(case.oracles),
        records=[list(r.records) for r in trace.ranks],
        note="fuzz_tour demonstration case",
    )
    db = CaseDB(workdir / "corpus")
    path = db.save(corpus)
    loaded = db.load(case.id)
    outcomes = run_oracles(
        loaded.trace(), loaded.config, workdir, loaded.oracles, seed=loaded.seed
    )
    verdict = "all green" if not any(o.failed for o in outcomes) else "REGRESSED"
    print(f"corpus workflow: saved {path.name} ({corpus.n_records} records), "
          f"replayed {len(outcomes)} oracles -> {verdict}\n")


def shrink_demo():
    """Minimize a genuinely failing case: off-grid time vs the text format."""
    records = []
    t = 0.0
    for i in range(4):
        records.append(TraceRecord(RecordKind.SEGMENT_BEGIN, 0, t, f"main.{i + 1}"))
        records.append(TraceRecord(RecordKind.ENTER, 0, t + 1.0, "compute"))
        records.append(TraceRecord(RecordKind.EXIT, 0, t + 2.0, "compute"))
        records.append(TraceRecord(RecordKind.SEGMENT_END, 0, t + 3.0, "main." f"{i + 1}"))
        t += 4.0
    # One timestamp off the representable grid: "%.2f" loses it, so the
    # text round-trip oracle genuinely fails on these records.
    bad = records[5]
    records[5] = TraceRecord(bad.kind, bad.rank, bad.timestamp + 0.003, bad.name)

    check = make_failure_check(CaseConfig("relDiff", 0.5), ["text_roundtrip"])
    result = shrink_records([records], check, budget=150)
    print("shrink demo (lossy text round trip):")
    print(f"  {result.records_before} records -> {result.records_after} "
          f"({result.reduction:.0%} smaller, {result.checks} oracle checks)")
    print(f"  still fails after shrinking: {check(result.records)}")


def main():
    one_round_matrix()
    threshold_edge_zoom()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-tour-") as tmp:
        corpus_workflow(Path(tmp))
    shrink_demo()


if __name__ == "__main__":
    main()
