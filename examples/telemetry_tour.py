#!/usr/bin/env python3
"""Tour of ``repro.obs``: record a run, export a timeline, read the report.

The engine layers (ingest, per-rank reduction, the sweep grid, the merge
stage) are instrumented with ``repro.obs`` spans and metrics.  Recording is
off by default and costs nothing; installing a recorder turns every
instrumented stage into a span on a shared wall-clock timeline.  This tour:

1. records a multi-configuration sweep of the ``late_sender`` workload;
2. records a 4-worker parallel pipeline reduction of the same trace from a
   columnar ``.rpb`` file, showing per-worker tracks;
3. exports both runs as Chrome ``trace_event`` JSON — drag the files onto
   https://ui.perfetto.dev/ (or ``chrome://tracing``) for the timeline view;
4. prints the flat run reports that ``repro-trace report FILE`` renders.

The same recording is available from the CLI without any Python:

    repro-trace pipeline late_sender --telemetry out.json
    repro-trace sweep late_sender --telemetry sweep.json
    repro-trace report out.json

Run with:  python examples/telemetry_tour.py
"""

import tempfile
from pathlib import Path

from repro import obs
from repro.benchmarks_ats import late_sender
from repro.core.metrics import create_metric
from repro.pipeline.engine import PipelineConfig, ReductionPipeline, sweep_pipeline
from repro.sweep.plan import SweepPlan
from repro.trace.io import write_trace


def main() -> None:
    workload = late_sender(nprocs=4, iterations=40, seed=11)
    trace = workload.run()
    segmented = trace.segmented()
    workdir = Path(tempfile.mkdtemp(prefix="telemetry_tour_"))

    # -- 1. record a sweep: one shared-ingest pass over a method x threshold grid
    plan = SweepPlan.from_grid(["euclidean", "manhattan"], [0.2, 0.5, 1.0])
    with obs.recording("sweep") as recorder:
        result = sweep_pipeline(segmented, plan, name=workload.name)
    sweep_path = workdir / "sweep_telemetry.json"
    obs.write_chrome_trace(
        recorder,
        sweep_path,
        metadata={"command": "sweep", "configs": plan.n_configs},
    )
    print(
        f"sweep of {plan.n_configs} configs recorded -> {sweep_path} "
        f"(vector sharing factor {result.stats.sharing_factor:.1f}x)\n"
    )
    print(obs.render_report(sweep_path, top=5))

    # -- 2. record a parallel pipeline run: .rpb shards give one track per worker
    rpb_path = workdir / f"{workload.name}.rpb"
    write_trace(trace, rpb_path)
    pipeline = ReductionPipeline(
        create_metric("avgWave", None),
        PipelineConfig(executor="process", workers=4),
    )
    with obs.recording("pipeline") as recorder:
        run = pipeline.reduce(rpb_path)
    pipeline_path = workdir / "pipeline_telemetry.json"
    payload = obs.write_chrome_trace(
        recorder,
        pipeline_path,
        metadata={
            "command": "pipeline",
            "executor": run.stats.executor,
            "dispatch": run.stats.dispatch,
            "workers": run.stats.workers,
        },
    )
    tracks = {
        (e["pid"], e["tid"]) for e in payload["traceEvents"] if e.get("ph") == "X"
    }
    print(
        f"\n\nparallel run recorded -> {pipeline_path} "
        f"({len(tracks)} tracks, {100 * obs.span_coverage(payload):.0f}% of wall "
        "time covered by spans)\n"
    )
    print(obs.render_report(pipeline_path, top=5))
    print(
        "\nOpen either JSON file in Perfetto (https://ui.perfetto.dev/) to see "
        "the dispatch /\ndecode / reduce / merge spans laid out per worker "
        "process on one timeline."
    )


if __name__ == "__main__":
    main()
