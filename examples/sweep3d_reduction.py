#!/usr/bin/env python3
"""Sweep3D: reducing a real application's wavefront traces.

Sweep3D is the paper's full application: a pipelined wavefront sweep whose
per-rank traces contain many distinct segment structures (different neighbours,
different message sizes per octant), which limits how much any similarity
method can merge.  This example reproduces the paper's comparative study on a
scaled-down Sweep3D run and prints the same per-method criteria as Figures 5
and 6.

Run with:  python examples/sweep3d_reduction.py
"""

from repro.analysis import analyze
from repro.analysis.patterns import LATE_SENDER
from repro.core import METRIC_NAMES, create_metric
from repro.evaluation import evaluate_method
from repro.evaluation.runner import PreparedWorkload
from repro.sweep3d import sweep3d_8p
from repro.util.tables import format_table


def main() -> None:
    workload = sweep3d_8p(scale=0.5, timesteps=4, seed=3)
    print(f"workload: {workload.name} — {workload.description}")

    prepared = PreparedWorkload.from_workload(workload)
    trace = prepared.segmented
    print(f"full trace: {trace.num_events} events, {trace.num_segments} segments, "
          f"{prepared.full_bytes / 1024:.0f} KiB serialized\n")

    # The wavefront pipeline shows up as Late Sender waits in pmpi_recv.
    report = analyze(trace)
    waits = report.per_rank(LATE_SENDER, "pmpi_recv")
    print("per-rank pmpi_recv waiting time (us):",
          " ".join(f"{w:8.0f}" for w in waits), "\n")

    rows = []
    for name in METRIC_NAMES:
        result = evaluate_method(prepared, create_metric(name), keep_comparison=False)
        rows.append(
            [
                name,
                "-" if result.threshold is None else f"{result.threshold:g}",
                result.pct_file_size,
                result.degree_of_matching,
                result.approx_distance_us,
                result.trends_retained,
            ]
        )
    print(
        format_table(
            ["method", "threshold", "% file size", "matching", "approx dist (us)", "trends"],
            rows,
            float_fmt=".3g",
            title="sweep3d_8p: comparative study at the paper's default thresholds",
        )
    )


if __name__ == "__main__":
    main()
