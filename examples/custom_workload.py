#!/usr/bin/env python3
"""Bring your own program: tracing and reducing a custom SPMD code.

The library is not limited to the paper's benchmarks: any SPMD program written
against the builder API can be simulated, traced, reduced, and analyzed.  This
example models a small producer/consumer pipeline with a halo exchange and a
periodic checkpoint, then shows which similarity method keeps its (mildly
irregular) checkpoint behaviour visible.

Run with:  python examples/custom_workload.py
"""

from repro.analysis import analyze
from repro.analysis.patterns import WAIT_AT_BARRIER
from repro.benchmarks_ats.base import Workload, jittered
from repro.core import create_metric, reconstruct, reduce_trace
from repro.evaluation import approximation_distance, percent_file_size
from repro.simulator import SimulatorConfig, build_program
from repro.util.rng import rng_for
from repro.util.tables import format_table

NPROCS = 8
ITERATIONS = 50
CHECKPOINT_EVERY = 10


def body(b, rank):
    """One rank of the custom application."""
    rng = rng_for(2024, "custom", rank)
    left = (rank - 1) % NPROCS
    right = (rank + 1) % NPROCS
    with b.segment("init"):
        b.mpi_init()
        b.compute("setup", jittered(rng, 200.0, 0.05))
    for i in b.loop("solve.1", ITERATIONS):
        b.compute("stencil", jittered(rng, 800.0 + 30.0 * (rank % 3), 0.03))
        # ring halo exchange: shift right, then shift left
        b.sendrecv(right, source=left, tag=1)
        b.sendrecv(left, source=right, tag=2)
        if (i + 1) % CHECKPOINT_EVERY == 0:
            # every 10th iteration writes a checkpoint: extra work + barrier
            b.compute("checkpoint_write", jittered(rng, 1500.0, 0.10))
            b.barrier()
    with b.segment("final"):
        b.mpi_finalize()


def main() -> None:
    workload = Workload(
        name="halo_checkpoint",
        program=build_program("halo_checkpoint", NPROCS, body),
        config=SimulatorConfig(seed=2024),
        description="ring halo exchange with a checkpoint barrier every 10 iterations",
        expected_metric=WAIT_AT_BARRIER,
        expected_location="MPI_Barrier",
    )
    full_trace = workload.run_segmented()
    print(f"{workload.name}: {full_trace.num_events} events on {workload.nprocs} ranks\n")

    rows = []
    for name in ("relDiff", "absDiff", "avgWave", "iter_k", "iter_avg"):
        metric = create_metric(name)
        reduced = reduce_trace(full_trace, metric)
        rebuilt = reconstruct(reduced)
        report = analyze(rebuilt)
        rows.append(
            [
                metric.describe(),
                percent_file_size(full_trace, reduced),
                approximation_distance(full_trace, rebuilt),
                report.total(WAIT_AT_BARRIER, "MPI_Barrier"),
            ]
        )
    full_report = analyze(full_trace)
    print(f"checkpoint-barrier waiting in the full trace: "
          f"{full_report.total(WAIT_AT_BARRIER, 'MPI_Barrier'):.0f} us\n")
    print(
        format_table(
            ["method", "% file size", "approx dist (us)", "barrier wait in reduced (us)"],
            rows,
            float_fmt=".4g",
            title="custom workload: what each method keeps of the checkpoint behaviour",
        )
    )


if __name__ == "__main__":
    main()
