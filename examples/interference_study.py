#!/usr/bin/env python3
"""Interference study: can a reduced trace still show system noise?

The paper's irregular benchmarks run perfectly balanced work that is disturbed
only by ASCI-Q-style operating-system interference.  A trace reduction method
is only useful here if the occasional disturbed iterations survive the
reduction — if they are merged into the undisturbed ones, the analyst loses
the very phenomenon the trace was collected to show.

This example compares every similarity method on the ``NtoN_1024`` benchmark
and reports, next to the paper's criteria, how much of the interference signal
(the spread of iteration durations) survives reconstruction.

Run with:  python examples/interference_study.py
"""

import numpy as np

from repro.benchmarks_ats import interference
from repro.core import METRIC_NAMES, create_metric, reconstruct, reduce_trace
from repro.evaluation import approximation_distance, percent_file_size, retains_trends
from repro.util.tables import format_table


def iteration_spread(trace, rank=0, context="main.1"):
    """Standard deviation of the main-loop iteration durations on one rank."""
    durations = [s.duration for s in trace.rank(rank).segments if s.context == context]
    return float(np.std(durations))


def main() -> None:
    workload = interference("NtoN", 1024, nprocs=16, iterations=80, seed=7)
    print(f"workload: {workload.name} — {workload.description}\n")

    full_trace = workload.run_segmented()
    full_spread = iteration_spread(full_trace)
    print(f"full trace iteration-duration spread on rank 0: {full_spread:.1f} us\n")

    rows = []
    for name in METRIC_NAMES:
        metric = create_metric(name)
        reduced = reduce_trace(full_trace, metric)
        rebuilt = reconstruct(reduced)
        rows.append(
            [
                metric.describe(),
                percent_file_size(full_trace, reduced),
                approximation_distance(full_trace, rebuilt),
                retains_trends(full_trace, rebuilt).retained,
                100.0 * iteration_spread(rebuilt) / full_spread if full_spread else 0.0,
            ]
        )

    print(
        format_table(
            ["method", "% file size", "approx dist (us)", "trends", "% of noise spread kept"],
            rows,
            float_fmt=".3g",
            title="interference retention per similarity method",
        )
    )
    print(
        "\nReading the last column: 100 % means the reconstructed trace shows the same\n"
        "iteration-to-iteration variability as the original; values near 0 % mean the\n"
        "reduction averaged or merged the disturbed iterations away."
    )


if __name__ == "__main__":
    main()
