#!/usr/bin/env python3
"""Threshold tuning: the file-size / error / diagnosis trade-off.

The paper's threshold study (Section 5.1, appendix Figures 9–19) sweeps every
method's threshold and picks the value with the best trade-off between file
size, approximation distance, and retention of performance trends.  This
example reproduces that sweep for one method on one benchmark through the
shared-ingest sweep engine (`repro.sweep`): the workload's segments are
streamed once for the whole grid and the method's feature vectors are
computed once per segment per feature family, not once per threshold.

Run with:  python examples/threshold_tuning.py [method] [workload]
e.g.       python examples/threshold_tuning.py absDiff dyn_load_balance
"""

import sys

from repro.core.metrics import THRESHOLD_STUDY
from repro.experiments.config import get_scale, prepared_workload
from repro.pipeline.engine import sweep_pipeline
from repro.sweep import SweepPlan
from repro.util.tables import format_table


def main() -> None:
    method = sys.argv[1] if len(sys.argv) > 1 else "absDiff"
    workload_name = sys.argv[2] if len(sys.argv) > 2 else "dyn_load_balance"
    if method not in THRESHOLD_STUDY:
        raise SystemExit(f"unknown method {method!r}; choose one of {sorted(THRESHOLD_STUDY)}")

    scale = get_scale("default")
    # Memoized per (workload, scale): a second study on the same workload
    # reuses the simulated, segmented, analyzed trace instead of re-ingesting.
    prepared = prepared_workload(workload_name, scale)
    print(f"threshold study: {method} on {workload_name} (scale profile: {scale.name})\n")

    plan = SweepPlan.from_grid([method])
    sweep = sweep_pipeline(prepared.segmented, plan, name=prepared.name)

    rows = []
    for result in sweep.evaluation_results(prepared):
        rows.append(
            [
                "-" if result.threshold is None else f"{result.threshold:g}",
                result.pct_file_size,
                result.degree_of_matching,
                result.approx_distance_us,
                result.trends_retained,
            ]
        )
    print(
        format_table(
            ["threshold", "% file size", "matching", "approx dist (us)", "trends retained"],
            rows,
            float_fmt=".3g",
            title=f"{method} on {workload_name}",
        )
    )

    stats = sweep.stats
    print("\nper-family sharing (one shared segment pass for the whole grid):")
    for family in plan.families:
        print(f"  {family.describe()}")
    print(
        format_table(
            ["property", "value"],
            stats.rows(),
            title="shared-ingest stats",
        )
    )
    print(
        "\nThe paper picks the threshold where file size has come down but the\n"
        "approximation distance has not yet jumped and the diagnosis still holds."
    )


if __name__ == "__main__":
    main()
