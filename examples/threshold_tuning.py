#!/usr/bin/env python3
"""Threshold tuning: the file-size / error / diagnosis trade-off.

The paper's threshold study (Section 5.1, appendix Figures 9–19) sweeps every
method's threshold and picks the value with the best trade-off between file
size, approximation distance, and retention of performance trends.  This
example reproduces that sweep for one method on one benchmark and prints the
series behind the corresponding appendix figure.

Run with:  python examples/threshold_tuning.py [method] [workload]
e.g.       python examples/threshold_tuning.py absDiff dyn_load_balance
"""

import sys

from repro.core.metrics import THRESHOLD_STUDY, create_metric
from repro.evaluation import evaluate_method
from repro.evaluation.runner import PreparedWorkload
from repro.experiments.config import build_workload, get_scale
from repro.util.tables import format_table


def main() -> None:
    method = sys.argv[1] if len(sys.argv) > 1 else "absDiff"
    workload_name = sys.argv[2] if len(sys.argv) > 2 else "dyn_load_balance"
    if method not in THRESHOLD_STUDY:
        raise SystemExit(f"unknown method {method!r}; choose one of {sorted(THRESHOLD_STUDY)}")

    scale = get_scale("default")
    prepared = PreparedWorkload.from_workload(build_workload(workload_name, scale))
    print(f"threshold study: {method} on {workload_name} (scale profile: {scale.name})\n")

    rows = []
    for threshold in THRESHOLD_STUDY[method]:
        result = evaluate_method(prepared, create_metric(method, threshold), keep_comparison=False)
        rows.append(
            [
                f"{threshold:g}",
                result.pct_file_size,
                result.degree_of_matching,
                result.approx_distance_us,
                result.trends_retained,
            ]
        )
    print(
        format_table(
            ["threshold", "% file size", "matching", "approx dist (us)", "trends retained"],
            rows,
            float_fmt=".3g",
            title=f"{method} on {workload_name}",
        )
    )
    print(
        "\nThe paper picks the threshold where file size has come down but the\n"
        "approximation distance has not yet jumped and the diagnosis still holds."
    )


if __name__ == "__main__":
    main()
