"""Property-based tests for the reducer / reconstruction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics.distance import AbsDiff, RelDiff
from repro.core.metrics.iteration import IterAvg, IterK
from repro.core.reconstruct import reconstruct_rank
from repro.core.reducer import TraceReducer
from repro.evaluation.approximation import timestamp_errors
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

from tests.properties.strategies import iteration_segments


def _as_trace(segments, name="t"):
    return SegmentedTrace(name=name, ranks=[SegmentedRankTrace(rank=0, segments=segments)])


metrics = st.one_of(
    st.builds(AbsDiff, st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
    st.builds(RelDiff, st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    st.builds(IterK, st.integers(min_value=1, max_value=20)),
    st.builds(IterAvg),
)


class TestReducerInvariants:
    @given(iteration_segments(), metrics)
    @settings(max_examples=60, deadline=None)
    def test_accounting_identities(self, segments, metric):
        reduced = TraceReducer(metric).reduce_segments(segments)
        assert reduced.n_segments == len(segments)
        assert len(reduced.execs) == len(segments)
        assert len(reduced.exec_matched) == len(segments)
        assert len(reduced.stored) + reduced.n_matches == len(segments)
        assert reduced.n_matches <= reduced.n_possible_matches <= max(0, len(segments) - 1)
        assert 0 <= reduced.n_matches

    @given(iteration_segments(), metrics)
    @settings(max_examples=60, deadline=None)
    def test_exec_ids_reference_stored_segments(self, segments, metric):
        reduced = TraceReducer(metric).reduce_segments(segments)
        stored_ids = {s.segment_id for s in reduced.stored}
        assert all(sid in stored_ids for sid, _ in reduced.execs)

    @given(iteration_segments())
    @settings(max_examples=40, deadline=None)
    def test_absdiff_threshold_monotone_in_stored_count(self, segments):
        strict = TraceReducer(AbsDiff(1.0)).reduce_segments(segments)
        loose = TraceReducer(AbsDiff(1e6)).reduce_segments(segments)
        assert len(loose.stored) <= len(strict.stored)

    @given(iteration_segments(), st.integers(min_value=1, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_iter_k_stores_at_most_k_per_pattern(self, segments, k):
        reduced = TraceReducer(IterK(k)).reduce_segments(segments)
        assert len(reduced.stored) == min(k, len(segments))

    @given(iteration_segments())
    @settings(max_examples=40, deadline=None)
    def test_iter_avg_stores_exactly_one_per_pattern(self, segments):
        reduced = TraceReducer(IterAvg()).reduce_segments(segments)
        assert len(reduced.stored) == 1
        assert reduced.n_matches == reduced.n_possible_matches == len(segments) - 1

    @given(iteration_segments())
    @settings(max_examples=40, deadline=None)
    def test_iter_avg_representative_is_mean(self, segments):
        reduced = TraceReducer(IterAvg()).reduce_segments(segments)
        expected = np.mean(
            [np.asarray(s.relative_to_start().timestamps()) for s in segments], axis=0
        )
        np.testing.assert_allclose(reduced.stored[0].timestamps(), expected, rtol=1e-9, atol=1e-6)


class TestReconstructionInvariants:
    @given(iteration_segments(), metrics)
    @settings(max_examples=60, deadline=None)
    def test_structure_preserved(self, segments, metric):
        reduced = TraceReducer(metric).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        assert len(rebuilt.segments) == len(segments)
        for original, rebuilt_seg in zip(segments, rebuilt.segments):
            assert rebuilt_seg.context == original.context
            assert rebuilt_seg.start == pytest.approx(original.start)
            assert [e.name for e in rebuilt_seg.events] == [e.name for e in original.events]

    @given(iteration_segments(), metrics)
    @settings(max_examples=60, deadline=None)
    def test_timestamps_comparable_and_finite(self, segments, metric):
        reduced = TraceReducer(metric).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        errors = timestamp_errors(_as_trace(segments), _as_trace(rebuilt.segments))
        assert errors.size == _as_trace(segments).timestamps().size
        assert np.all(np.isfinite(errors))

    @given(iteration_segments(), st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_absdiff_bounds_reconstruction_error(self, segments, threshold):
        reduced = TraceReducer(AbsDiff(threshold)).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        errors = timestamp_errors(_as_trace(segments), _as_trace(rebuilt.segments))
        assert errors.max(initial=0.0) <= threshold + 1e-6

    @given(iteration_segments())
    @settings(max_examples=40, deadline=None)
    def test_zero_threshold_reconstruction_error_is_negligible(self, segments):
        reduced = TraceReducer(AbsDiff(0.0)).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        errors = timestamp_errors(_as_trace(segments), _as_trace(rebuilt.segments))
        assert errors.max(initial=0.0) <= 1e-9
