"""Property-based tests for the similarity metrics' mathematical invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics.distance import relative_differences
from repro.core.metrics.minkowski import minkowski_distance
from repro.core.metrics.vectors import next_power_of_two
from repro.core.metrics.wavelet import average_transform, haar_transform

from tests.properties.strategies import pow2_vectors

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


def vectors(min_size=1, max_size=16):
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.lists(finite_floats, min_size=n, max_size=n),
            st.lists(finite_floats, min_size=n, max_size=n),
        )
    )


class TestRelativeDifferenceProperties:
    @given(vectors())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        a, b = (np.asarray(v) for v in pair)
        np.testing.assert_allclose(relative_differences(a, b), relative_differences(b, a))

    @given(st.lists(positive_floats, min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_identity_is_zero(self, values):
        a = np.asarray(values)
        np.testing.assert_allclose(relative_differences(a, a), np.zeros_like(a))

    @given(vectors())
    @settings(max_examples=60, deadline=None)
    def test_non_negative_and_bounded_for_same_sign(self, pair):
        a, b = (np.abs(np.asarray(v)) for v in pair)
        rel = relative_differences(a, b)
        assert np.all(rel >= 0.0)
        assert np.all(rel <= 1.0 + 1e-12)

    @given(st.lists(positive_floats, min_size=1, max_size=16), positive_floats)
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, values, scale):
        a = np.asarray(values)
        b = a * 1.1 + 0.01
        np.testing.assert_allclose(
            relative_differences(a, b), relative_differences(a * scale, b * scale), rtol=1e-9
        )


class TestMinkowskiProperties:
    @given(vectors())
    @settings(max_examples=60, deadline=None)
    def test_order_relationship(self, pair):
        a, b = pair
        manhattan = minkowski_distance(a, b, 1)
        euclidean = minkowski_distance(a, b, 2)
        chebyshev = minkowski_distance(a, b, math.inf)
        assert manhattan + 1e-9 >= euclidean >= chebyshev - 1e-9

    @given(vectors(), st.sampled_from([1, 2, math.inf]))
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_identity(self, pair, order):
        a, b = pair
        assert minkowski_distance(a, b, order) == pytest.approx(
            minkowski_distance(b, a, order)
        )
        assert minkowski_distance(a, a, order) == pytest.approx(0.0, abs=1e-12)

    @given(
        st.integers(min_value=1, max_value=10).flatmap(
            lambda n: st.tuples(
                *(st.lists(finite_floats, min_size=n, max_size=n) for _ in range(3))
            )
        ),
        st.sampled_from([1, 2, math.inf]),
    )
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, triple, order):
        a, b, c = triple
        ab = minkowski_distance(a, b, order)
        bc = minkowski_distance(b, c, order)
        ac = minkowski_distance(a, c, order)
        assert ac <= ab + bc + 1e-6


class TestWaveletProperties:
    @given(pow2_vectors)
    @settings(max_examples=60, deadline=None)
    def test_haar_preserves_energy(self, values):
        arr = np.asarray(values, dtype=float)
        transformed = haar_transform(arr)
        assert np.sum(transformed**2) == pytest.approx(np.sum(arr**2), rel=1e-6, abs=1e-6)

    @given(pow2_vectors, pow2_vectors)
    @settings(max_examples=60, deadline=None)
    def test_haar_preserves_distance(self, a, b):
        if len(a) != len(b):
            return
        av, bv = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        original = np.linalg.norm(av - bv)
        transformed = np.linalg.norm(haar_transform(av) - haar_transform(bv))
        assert transformed == pytest.approx(original, rel=1e-6, abs=1e-6)

    @given(pow2_vectors)
    @settings(max_examples=60, deadline=None)
    def test_average_transform_dc_is_mean(self, values):
        arr = np.asarray(values, dtype=float)
        assert average_transform(arr)[0] == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)

    @given(pow2_vectors)
    @settings(max_examples=60, deadline=None)
    def test_transforms_are_linear_in_input(self, values):
        arr = np.asarray(values, dtype=float)
        np.testing.assert_allclose(
            average_transform(2.0 * arr), 2.0 * average_transform(arr), rtol=1e-9, atol=1e-6
        )

    @given(pow2_vectors)
    @settings(max_examples=60, deadline=None)
    def test_length_preserved(self, values):
        arr = np.asarray(values, dtype=float)
        assert average_transform(arr).size == arr.size
        assert haar_transform(arr).size == arr.size


class TestNextPowerOfTwoProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_is_power_of_two_and_bounds(self, n):
        p = next_power_of_two(n)
        assert p >= max(1, n)
        assert p & (p - 1) == 0
        if n > 1:
            assert p < 2 * n
