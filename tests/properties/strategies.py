"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.trace.segments import Segment

from tests.conftest import make_segment

#: Durations in µs, kept well-conditioned (no NaN/inf, bounded magnitude).
durations = st.floats(min_value=0.5, max_value=50_000.0, allow_nan=False, allow_infinity=False)

#: Power-of-two sized float vectors for wavelet transforms.
pow2_vectors = st.integers(min_value=0, max_value=5).flatmap(
    lambda k: st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32),
        min_size=2**k,
        max_size=2**k,
    )
)


@st.composite
def iteration_segments(draw, min_segments=1, max_segments=12, n_events=2):
    """Structurally identical segments with varying measurements.

    Models repeated executions of one loop body: every segment has the same
    context and the same event names, but event durations differ.
    """
    count = draw(st.integers(min_value=min_segments, max_value=max_segments))
    segments: list[Segment] = []
    clock = 0.0
    for index in range(count):
        start = clock
        t = 0.0
        events = []
        for e in range(n_events):
            gap = draw(durations)
            length = draw(durations)
            events.append((f"f{e}", t + gap, t + gap + length))
            t += gap + length
        end = t + draw(durations)
        segments.append(
            make_segment("main.1", events, start=0.0, end=end, index=index).shifted(start)
        )
        clock += end + draw(durations)
    return segments
