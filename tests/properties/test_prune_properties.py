"""Property-based soundness of the norm-bound pruning prefilter.

The prefilter is only allowed to discard rows that *provably* cannot match:
for every metric with pruning hooks, any row the exact kernel would accept
must survive ``prune_mask`` — at any threshold, for any probe, for any
bucket.  A violation here means the pruned reducer could store a segment the
paper's algorithm would have matched, silently changing the output.

The iteration metrics carry no pruning hooks at all, so the property holds
for them trivially; a test pins that down so a future hook can't appear
without a soundness test.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import create_metric
from repro.core.metrics.base import DistanceMetric

from tests.properties.strategies import iteration_segments

#: Metrics with the full pruning surface (row_summary + prune_stats).
PRUNABLE = ["relDiff", "absDiff", "manhattan", "euclidean", "chebyshev", "avgWave", "haarWave"]

#: Thresholds spanning never-match to always-match regimes; the soundness
#: property must hold at every one of them.
thresholds = st.floats(min_value=1e-6, max_value=1e5, allow_nan=False, allow_infinity=False)


@st.composite
def probe_and_bucket(draw):
    """A normalised probe plus structurally identical stored segments."""
    segments = [s.relative_to_start() for s in draw(iteration_segments(min_segments=2))]
    return segments[0], segments[1:]


def _bucket_columns(metric, stored):
    """The cached columns a CandidateList would hold for this bucket."""
    matrix = np.stack([metric.build_vector(segment) for segment in stored])
    summaries = np.asarray([metric.row_summary(row) for row in matrix])
    scales = (
        np.asarray([metric.row_scale(row) for row in matrix])
        if metric.row_scale is not None
        else None
    )
    return matrix, summaries, scales


@pytest.mark.parametrize("metric_name", PRUNABLE)
class TestPruneSoundness:
    @given(data=probe_and_bucket(), threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_pruned_row_is_never_a_match(self, metric_name, data, threshold):
        probe, stored = data
        metric = create_metric(metric_name, threshold)
        vector = metric.build_vector(probe)
        matrix, summaries, scales = _bucket_columns(metric, stored)
        keep = metric.prune_mask(vector, summaries, scales)
        stat, base = metric.match_stats(vector, matrix, scales)
        matches = stat <= (threshold if base is None else threshold * base)
        # Necessary condition: every exact match must survive the prefilter.
        assert not np.any(matches & ~keep), (
            f"{metric_name}({threshold:g}) pruned a row the exact kernel matches"
        )

    @given(data=probe_and_bucket(), threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_match_pruned_equals_match_batch(self, metric_name, data, threshold):
        # First-match preservation: discarding provable non-matches must not
        # change which row is found first.
        probe, stored = data
        metric = create_metric(metric_name, threshold)
        vector = metric.build_vector(probe)
        matrix, summaries, scales = _bucket_columns(metric, stored)
        assert metric.match_pruned(vector, matrix, scales, summaries) == metric.match_batch(
            vector, matrix, scales
        )

    @given(data=probe_and_bucket())
    @settings(max_examples=25, deadline=None)
    def test_exact_duplicate_always_survives(self, metric_name, data):
        # The tightest corner of the soundness slack: a row equal to the
        # probe has distance zero and must survive even at threshold ~0.
        probe, stored = data
        metric = create_metric(metric_name, 1e-6)
        vector = metric.build_vector(probe)
        matrix, _, _ = _bucket_columns(metric, stored)
        matrix = np.vstack([matrix, vector])
        summaries = np.asarray([metric.row_summary(row) for row in matrix])
        scales = (
            np.asarray([metric.row_scale(row) for row in matrix])
            if metric.row_scale is not None
            else None
        )
        assert bool(metric.prune_mask(vector, summaries, scales)[-1])


@pytest.mark.parametrize("metric_name", ["relDiff", "absDiff"])
class TestMatchOne:
    @given(data=probe_and_bucket(), threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_depth_one_kernel_matches_dense_decision(self, metric_name, data, threshold):
        # The depth-one scalar fast path must reproduce the dense kernel's
        # (and therefore the scan's) decision exactly.
        probe, stored = data
        metric = create_metric(metric_name, threshold)
        vector = metric.build_vector(probe)
        for segment in stored:
            row = metric.build_vector(segment)
            stat, base = metric.match_stats(vector, row[np.newaxis, :])
            dense = bool(stat[0] <= (threshold if base is None else threshold * base[0]))
            assert metric.match_one(vector, row) == dense


class TestHookSurface:
    def test_prunable_metrics_declare_all_hooks(self):
        for name in PRUNABLE:
            metric = create_metric(name)
            assert isinstance(metric, DistanceMetric)
            assert metric.row_summary is not None
            assert metric.prune_stats is not None

    def test_iteration_metrics_have_no_prune_hooks(self):
        # iter_k / iter_avg never route through the pruning machinery; the
        # soundness property holds for them vacuously.
        for name in ("iter_k", "iter_avg"):
            metric = create_metric(name)
            assert not isinstance(metric, DistanceMetric)
            assert getattr(metric, "prune_stats", None) is None
            assert getattr(metric, "row_summary", None) is None
