"""Sweep-vs-serial equivalence: every metric, every source, every dispatch.

The acceptance bar for the sweep engine: for each config of a grid, the
reduced trace must serialize **byte-identical** to running that config alone
through the serial :class:`~repro.core.reducer.TraceReducer` oracle —
whether the grid is swept over an in-memory trace, an indexed ``.rpb`` file
streamed inline, or ``.rpb`` (rank × family) shard tasks on a pool — and the
evaluation rows must equal the serial path field for field.
"""

import pytest

from repro.core.metrics import METRIC_NAMES, THRESHOLD_STUDY, create_metric
from repro.core.reducer import TraceReducer
from repro.evaluation.runner import PreparedWorkload, evaluate_grid
from repro.pipeline.engine import PipelineConfig, reduce_pipeline, sweep_pipeline
from repro.sweep import SweepEngine, SweepPlan
from repro.trace.io import serialize_reduced_trace, write_trace


#: Every metric with a small threshold grid: two thresholds per threshold
#: method (strict + loose, from the paper's study values) plus iter_avg.
def _full_grid() -> SweepPlan:
    specs = []
    for method in METRIC_NAMES:
        if method == "iter_avg":
            specs.append(method)
        else:
            values = THRESHOLD_STUDY[method]
            specs.append((method, float(values[0])))
            specs.append((method, float(values[-2])))
    return SweepPlan(specs)


@pytest.fixture(scope="module")
def raw_trace():
    from repro.benchmarks_ats import late_sender

    return late_sender(nprocs=4, iterations=6, seed=3).run()


@pytest.fixture(scope="module")
def segmented(raw_trace):
    return raw_trace.segmented()


@pytest.fixture(scope="module")
def rpb_file(raw_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("sweep") / "trace.rpb"
    write_trace(raw_trace, path)
    return path


@pytest.fixture(scope="module")
def plan():
    return _full_grid()


def _oracle_bytes(segmented, config):
    return serialize_reduced_trace(TraceReducer(config.create()).reduce(segmented))


class TestInMemoryEquivalence:
    def test_every_config_byte_identical(self, segmented, plan):
        result = SweepEngine(plan).sweep(segmented)
        assert result.stats.dispatch == "inline"
        assert len(result) == plan.n_configs
        for outcome in result:
            assert serialize_reduced_trace(outcome.reduced) == _oracle_bytes(
                segmented, outcome.config
            ), f"sweep diverged from serial oracle for {outcome.config.describe()}"

    def test_outcomes_in_plan_order(self, segmented, plan):
        result = SweepEngine(plan).sweep(segmented)
        assert [o.config.key for o in result] == plan.config_keys()

    def test_segments_streamed_once(self, segmented, plan):
        result = SweepEngine(plan).sweep(segmented)
        n_segments = sum(len(r.segments) for r in segmented.ranks)
        assert result.stats.n_segments == n_segments
        # Every config still accounts for the full stream in its own output.
        for outcome in result:
            assert outcome.reduced.n_segments == n_segments

    def test_vector_sharing_happened(self, segmented, plan):
        result = SweepEngine(plan).sweep(segmented)
        assert result.stats.vector_builds_saved > 0
        assert result.stats.sharing_factor > 1.0

    def test_instrumented_sweep_identical(self, segmented, plan):
        plain = SweepEngine(plan).sweep(segmented)
        timed = SweepEngine(plan, instrument=True).sweep(segmented)
        for a, b in zip(plain, timed):
            assert serialize_reduced_trace(a.reduced) == serialize_reduced_trace(b.reduced)
            assert b.match is not None and b.match.calls > 0


class TestFileSourceEquivalence:
    def test_rpb_inline_byte_identical(self, raw_trace, rpb_file, plan):
        segmented = raw_trace.segmented()
        result = sweep_pipeline(rpb_file, plan, PipelineConfig(executor="serial"))
        assert result.stats.dispatch == "inline"
        for outcome in result:
            assert serialize_reduced_trace(outcome.reduced) == _oracle_bytes(
                segmented, outcome.config
            )

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_rpb_sharded_byte_identical(self, raw_trace, rpb_file, plan, executor):
        segmented = raw_trace.segmented()
        result = sweep_pipeline(
            rpb_file, plan, PipelineConfig(executor=executor, workers=2)
        )
        assert result.stats.dispatch == "shard"
        for outcome in result:
            assert serialize_reduced_trace(outcome.reduced) == _oracle_bytes(
                segmented, outcome.config
            )

    def test_sharded_stats_count_segments_once_per_rank(self, rpb_file, segmented, plan):
        result = sweep_pipeline(
            rpb_file, plan, PipelineConfig(executor="thread", workers=2)
        )
        assert result.stats.n_segments == sum(len(r.segments) for r in segmented.ranks)
        assert result.stats.n_ranks == len(segmented.ranks)


class TestBoundedStoreEquivalence:
    def test_matches_bounded_pipeline_per_config(self, segmented):
        """With a store bound, the oracle is the (equally bounded) pipeline."""
        plan = SweepPlan.from_grid(["euclidean", "iter_k"], thresholds_per_method={
            "euclidean": (0.1, 0.4), "iter_k": (2,),
        })
        capacity = 3
        result = SweepEngine(plan, store_capacity=capacity).sweep(segmented)
        for outcome in result:
            reference = reduce_pipeline(
                segmented,
                outcome.config.create(),
                PipelineConfig(executor="serial", store_capacity=capacity),
            ).reduced
            assert serialize_reduced_trace(outcome.reduced) == serialize_reduced_trace(
                reference
            )


class TestEvaluationRows:
    @pytest.fixture(scope="class")
    def prepared(self, segmented):
        return PreparedWorkload.from_segmented("late_sender", segmented)

    def test_grid_rows_equal_serial_rows(self, prepared, plan):
        sweep_rows = evaluate_grid(prepared, plan, backend="sweep")
        serial_rows = evaluate_grid(prepared, plan, backend="serial")
        assert len(sweep_rows) == len(serial_rows) == plan.n_configs
        for got, want in zip(sweep_rows, serial_rows):
            assert got.method == want.method
            assert got.threshold == want.threshold
            assert got.pct_file_size == want.pct_file_size
            assert got.degree_of_matching == want.degree_of_matching
            assert got.approx_distance_us == want.approx_distance_us
            assert got.trends_retained == want.trends_retained
            assert got.reduced_bytes == want.reduced_bytes
            assert got.n_segments == want.n_segments
            assert got.n_stored == want.n_stored

    def test_grid_rows_from_rpb_shards_equal_serial_rows(
        self, prepared, rpb_file, plan
    ):
        sweep_rows = evaluate_grid(
            prepared,
            plan,
            backend="sweep",
            pipeline_source=rpb_file,
            pipeline_config=PipelineConfig(executor="process", workers=2),
        )
        serial_rows = evaluate_grid(prepared, plan, backend="serial")
        for got, want in zip(sweep_rows, serial_rows):
            assert got.pct_file_size == want.pct_file_size
            assert got.approx_distance_us == want.approx_distance_us

    def test_unknown_backend_rejected(self, prepared, plan):
        with pytest.raises(ValueError, match="backend"):
            evaluate_grid(prepared, plan, backend="quantum")

    def test_pipeline_source_requires_sweep_backend(self, prepared, rpb_file, plan):
        with pytest.raises(ValueError, match="pipeline_source"):
            evaluate_grid(prepared, plan, backend="serial", pipeline_source=rpb_file)


class TestStudyBackends:
    """The experiment drivers produce identical studies through either backend."""

    def test_threshold_study_backends_agree(self):
        from repro.experiments.thresholds import threshold_study

        kwargs = dict(
            workloads=("late_sender",), thresholds=(10.0, 1e4), scale="smoke"
        )
        swept = threshold_study("absDiff", **kwargs)
        serial = threshold_study("absDiff", backend="serial", **kwargs)
        for got, want in zip(swept["late_sender"], serial["late_sender"]):
            assert got.threshold == want.threshold
            assert got.pct_file_size == want.pct_file_size
            assert got.approx_distance_us == want.approx_distance_us

    def test_threshold_study_keeps_duplicate_thresholds(self):
        """Repeated thresholds still yield one row per requested value."""
        from repro.experiments.thresholds import threshold_study

        study = threshold_study(
            "absDiff",
            workloads=("late_sender",),
            thresholds=(10.0, 10.0, 1e3),
            scale="smoke",
        )
        rows = study["late_sender"]
        assert [r.threshold for r in rows] == [10.0, 10.0, 1e3]
        assert rows[0].pct_file_size == rows[1].pct_file_size

    def test_comparative_study_keeps_duplicate_methods(self):
        from repro.experiments.comparative import comparative_study

        results = comparative_study(
            ("late_sender",), ("relDiff", "relDiff", "iter_avg"), scale="smoke"
        )
        assert [r.method for r in results] == ["relDiff", "relDiff", "iter_avg"]

    def test_comparative_study_backends_agree(self):
        from repro.experiments.comparative import comparative_study

        methods = ("relDiff", "euclidean", "iter_avg")
        swept = comparative_study(("late_sender",), methods, scale="smoke")
        serial = comparative_study(
            ("late_sender",), methods, scale="smoke", backend="serial"
        )
        assert [r.method for r in swept] == list(methods)
        for got, want in zip(swept, serial):
            assert got.method == want.method
            assert got.pct_file_size == want.pct_file_size
            assert got.degree_of_matching == want.degree_of_matching
            assert got.trends_retained == want.trends_retained


class TestResultAccessors:
    def test_outcome_lookup(self, segmented):
        plan = SweepPlan.from_grid(["euclidean"], [0.1, 0.2])
        result = SweepEngine(plan).sweep(segmented)
        assert result.reduced_for("euclidean", 0.2).threshold == 0.2
        with pytest.raises(KeyError, match="pass a threshold"):
            result.outcome_for("euclidean")
        with pytest.raises(KeyError, match="no sweep outcome"):
            result.outcome_for("manhattan")

    def test_rows_shape(self, segmented):
        plan = SweepPlan.from_grid(["relDiff"], [0.8])
        result = SweepEngine(plan, instrument=True).sweep(segmented)
        (row,) = result.rows()
        assert row["method"] == "relDiff"
        assert row["threshold"] == 0.8
        assert "match_seconds" in row
        assert row["n_stored"] == result.outcomes[0].reduced.n_stored
