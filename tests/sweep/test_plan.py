"""Sweep plans: grid expansion, de-duplication, and family grouping.

The load-bearing property is at the bottom: family grouping may only merge
configs whose metrics derive the *same* feature vector from any segment —
merging two layouts would feed one family's shared vector to a metric that
expects another, silently corrupting every decision downstream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import METRIC_NAMES, THRESHOLD_STUDY, create_metric
from repro.core.metrics.base import DistanceMetric
from repro.core.metrics.wavelet import AvgWave
from repro.sweep.plan import SweepConfig, SweepPlan

from tests.properties.strategies import iteration_segments


class TestSweepConfig:
    def test_key_and_describe(self):
        config = SweepConfig("relDiff", 0.8)
        assert config.key == ("relDiff", 0.8)
        assert config.describe() == "relDiff(0.8)"
        assert config.create().threshold == 0.8

    def test_default_threshold_is_none(self):
        assert SweepConfig("iter_avg").threshold is None

    def test_invalid_method_rejected_at_construction(self):
        with pytest.raises(ValueError):
            SweepConfig("dtw", 0.5)

    def test_iter_avg_threshold_rejected(self):
        with pytest.raises(ValueError):
            SweepConfig("iter_avg", 0.5)


class TestPlanConstruction:
    def test_specs_accept_names_pairs_and_metrics(self):
        plan = SweepPlan(["iter_avg", ("relDiff", 0.8), create_metric("euclidean", 0.2)])
        assert plan.config_keys() == [
            ("iter_avg", None),
            ("relDiff", 0.8),
            ("euclidean", 0.2),
        ]

    def test_duplicates_dropped_order_kept(self):
        plan = SweepPlan([("relDiff", 0.8), ("absDiff", 10.0), ("relDiff", 0.8)])
        assert plan.config_keys() == [("relDiff", 0.8), ("absDiff", 10.0)]

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepPlan([])

    def test_non_registry_metric_instance_rejected(self):
        # The padding ablation is not representable as (method, threshold),
        # so accepting the instance would silently drop pad=False.
        with pytest.raises(ValueError, match="not equivalent"):
            SweepPlan([AvgWave(0.2, pad=False)])

    def test_from_grid_same_thresholds_for_all(self):
        plan = SweepPlan.from_grid(["euclidean", "manhattan"], [0.1, 0.2])
        assert plan.config_keys() == [
            ("euclidean", 0.1),
            ("euclidean", 0.2),
            ("manhattan", 0.1),
            ("manhattan", 0.2),
        ]

    def test_from_grid_defaults_to_paper_study_values(self):
        plan = SweepPlan.from_grid(["relDiff"])
        assert [t for _, t in plan.config_keys()] == list(THRESHOLD_STUDY["relDiff"])

    def test_from_grid_iter_avg_contributes_single_config(self):
        plan = SweepPlan.from_grid(["iter_avg", "relDiff"], [0.8])
        assert plan.config_keys() == [("iter_avg", None), ("relDiff", 0.8)]

    def test_single(self):
        plan = SweepPlan.single("chebyshev", 0.2)
        assert plan.n_configs == 1 and plan.n_families == 1


class TestFamilyGrouping:
    def test_pairwise_methods_share_a_family(self):
        plan = SweepPlan([("relDiff", 0.1), ("absDiff", 10.0), ("relDiff", 0.8)])
        assert plan.n_families == 1
        assert plan.families[0].vectorized

    def test_minkowski_methods_share_a_family(self):
        plan = SweepPlan.from_grid(["manhattan", "euclidean", "chebyshev"], [0.2, 0.4])
        assert plan.n_families == 1
        assert plan.families[0].n_configs == 6

    def test_wavelet_transforms_are_distinct_families(self):
        plan = SweepPlan.from_grid(["avgWave", "haarWave"], [0.2])
        assert plan.n_families == 2

    def test_iteration_methods_are_scan_only_singletons(self):
        plan = SweepPlan.from_grid(["iter_k", "iter_avg"], [1.0, 10.0])
        scan_only = [f for f in plan.families if not f.vectorized]
        assert len(scan_only) == 3  # iter_k(1), iter_k(10), iter_avg
        assert all(f.n_configs == 1 for f in scan_only)

    def test_families_partition_the_configs(self):
        plan = SweepPlan.from_grid(
            list(METRIC_NAMES), [0.2, 0.4], thresholds_per_method={"iter_k": (1, 10)}
        )
        from_families = [c for f in plan.families for c in f.configs]
        assert sorted(c.key for c in from_families) == sorted(plan.config_keys())

    def test_describe_mentions_every_config(self):
        plan = SweepPlan.from_grid(["euclidean"], [0.1, 0.2])
        text = plan.describe()
        assert "euclidean(0.1)" in text and "euclidean(0.2)" in text


# -- the grouping safety property ---------------------------------------------

_threshold_values = st.sampled_from([0.1, 0.2, 0.4, 0.8, 1.0, 10.0, 1000.0])
_grid_methods = st.sampled_from([m for m in METRIC_NAMES if m != "iter_avg"])
_random_configs = st.lists(
    st.tuples(_grid_methods, _threshold_values),
    min_size=2,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(specs=_random_configs, segments=iteration_segments(max_segments=3))
def test_family_grouping_never_merges_different_feature_vectors(specs, segments):
    """Any two configs grouped into one family must build identical vectors.

    This is the invariant the engine's vector sharing rests on: if it holds
    for arbitrary grids and arbitrary segments, a family's single
    ``build_vector`` call is a faithful stand-in for every member config's
    own call.
    """
    # iter_k needs an integral k >= 1; clamp rather than discard the example.
    specs = [(m, max(1.0, t) if m == "iter_k" else t) for m, t in specs]
    plan = SweepPlan(specs)
    relative = segments[0].relative_to_start()
    for family in plan.families:
        if not family.vectorized:
            continue
        metrics = [c.create() for c in family.configs]
        assert all(isinstance(m, DistanceMetric) for m in metrics)
        # The family key is by definition the shared cache key...
        assert {m.vector_key() for m in metrics} == {family.vector_key}
        # ...and the vectors it stands for are numerically identical.
        reference = metrics[0].build_vector(relative)
        for metric in metrics[1:]:
            np.testing.assert_array_equal(metric.build_vector(relative), reference)
