"""Tests for the metric registry and default thresholds."""

import pytest

from repro.core.metrics import (
    DEFAULT_THRESHOLDS,
    METRIC_CLASSES,
    METRIC_NAMES,
    THRESHOLD_STUDY,
    create_metric,
)
from repro.core.metrics.base import SimilarityMetric


class TestRegistry:
    def test_nine_methods(self):
        assert len(METRIC_NAMES) == 9

    def test_paper_names_present(self):
        expected = {
            "relDiff",
            "absDiff",
            "manhattan",
            "euclidean",
            "chebyshev",
            "avgWave",
            "haarWave",
            "iter_k",
            "iter_avg",
        }
        assert set(METRIC_NAMES) == expected

    def test_every_metric_instantiable_with_defaults(self):
        for name in METRIC_NAMES:
            metric = create_metric(name)
            assert isinstance(metric, SimilarityMetric)
            assert metric.name == name

    def test_default_thresholds_match_paper(self):
        assert DEFAULT_THRESHOLDS["relDiff"] == 0.8
        assert DEFAULT_THRESHOLDS["absDiff"] == 1000.0
        assert DEFAULT_THRESHOLDS["manhattan"] == 0.4
        assert DEFAULT_THRESHOLDS["euclidean"] == 0.2
        assert DEFAULT_THRESHOLDS["chebyshev"] == 0.2
        assert DEFAULT_THRESHOLDS["avgWave"] == 0.2
        assert DEFAULT_THRESHOLDS["haarWave"] == 0.2
        assert DEFAULT_THRESHOLDS["iter_k"] == 10
        assert DEFAULT_THRESHOLDS["iter_avg"] is None

    def test_threshold_study_values_match_paper(self):
        assert THRESHOLD_STUDY["relDiff"] == (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
        assert THRESHOLD_STUDY["absDiff"] == (1e1, 1e2, 1e3, 1e4, 1e5, 1e6)
        assert THRESHOLD_STUDY["iter_k"] == (1, 10, 50, 100, 500, 1000)
        assert "iter_avg" not in THRESHOLD_STUDY

    def test_explicit_threshold(self):
        assert create_metric("relDiff", 0.3).threshold == 0.3

    def test_iter_k_threshold_cast_to_int(self):
        metric = create_metric("iter_k", 5.0)
        assert metric.k == 5

    def test_iter_avg_rejects_threshold(self):
        with pytest.raises(ValueError):
            create_metric("iter_avg", 0.5)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown similarity metric"):
            create_metric("dtw")

    def test_classes_and_names_consistent(self):
        assert tuple(METRIC_CLASSES) == METRIC_NAMES
