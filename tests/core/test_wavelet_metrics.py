"""Unit tests for the wavelet-transform metrics."""

import math

import numpy as np
import pytest

from repro.core.metrics.wavelet import AvgWave, HaarWave, average_transform, haar_transform
from repro.core.reduced import StoredSegment

from tests.conftest import make_segment


def _stored(segment, sid=0):
    return StoredSegment(segment_id=sid, segment=segment)


class TestTransforms:
    def test_single_element_unchanged(self):
        np.testing.assert_allclose(average_transform(np.array([5.0])), [5.0])

    def test_length_preserved(self):
        values = np.arange(16, dtype=float)
        assert average_transform(values).size == 16
        assert haar_transform(values).size == 16

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            average_transform(np.arange(6, dtype=float))

    def test_average_transform_known_values(self):
        # (4, 6, 10, 12): trends (5, 11) -> (8); fluctuations level1 (1, 1), level2 (3)
        result = average_transform(np.array([4.0, 6.0, 10.0, 12.0]))
        np.testing.assert_allclose(result, [8.0, 3.0, 1.0, 1.0])

    def test_haar_preserves_energy(self):
        values = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        transformed = haar_transform(values)
        assert np.sum(transformed**2) == pytest.approx(np.sum(values**2))

    def test_haar_preserves_euclidean_distance(self):
        a = np.array([3.0, 1.0, 4.0, 1.0])
        b = np.array([2.0, 7.0, 1.0, 8.0])
        original = np.linalg.norm(a - b)
        transformed = np.linalg.norm(haar_transform(a) - haar_transform(b))
        assert transformed == pytest.approx(original)

    def test_average_transform_shrinks_values(self):
        """The paper: average-transform values are smaller than the original
        values (and smaller than the Haar values)."""
        values = np.array([10.0, 12.0, 30.0, 28.0])
        avg = average_transform(values)
        haar = haar_transform(values)
        assert np.abs(avg).max() < np.abs(values).max()
        assert np.abs(haar).max() > np.abs(avg).max()

    def test_dc_component_is_mean(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert average_transform(values)[0] == pytest.approx(values.mean())

    def test_empty_vector(self):
        assert average_transform(np.array([])).size == 0


class TestWaveletMatching:
    def _segments(self, delta):
        a = make_segment("c", [("f", 1.0, 500.0), ("g", 510.0, 900.0)], end=950.0)
        b = make_segment(
            "c", [("f", 1.0, 500.0 + delta), ("g", 510.0 + delta, 900.0 + delta)], end=950.0 + delta
        )
        return a, b

    @pytest.mark.parametrize("metric_cls", [AvgWave, HaarWave])
    def test_identical_match(self, metric_cls):
        a, _ = self._segments(0.0)
        assert metric_cls(0.0).match(a, [_stored(a)]) is not None

    @pytest.mark.parametrize("metric_cls", [AvgWave, HaarWave])
    def test_large_difference_rejected_at_small_threshold(self, metric_cls):
        a, b = self._segments(400.0)
        assert metric_cls(0.05).match(a, [_stored(b)]) is None

    @pytest.mark.parametrize("metric_cls", [AvgWave, HaarWave])
    def test_monotone_in_threshold(self, metric_cls):
        a, b = self._segments(150.0)
        thresholds = [0.01, 0.1, 0.4, 1.0]
        decisions = [metric_cls(t).match(a, [_stored(b)]) is not None for t in thresholds]
        # once a threshold matches, every larger threshold must match too
        assert decisions == sorted(decisions)

    def test_avgwave_stricter_than_euclidean_reference(self):
        """The paper expects the wavelet comparison to be stricter than plain
        Euclidean because the transformed maximum (the mean, for the average
        transform) is smaller than the raw maximum used by the Minkowski test;
        the Haar maximum sits in between because every level is scaled by √2."""
        a, b = self._segments(100.0)
        avg_max = max(AvgWave(0.2).transformed(s).max() for s in (a, b))
        haar_max = max(HaarWave(0.2).transformed(s).max() for s in (a, b))
        raw_max = max(np.max(np.asarray(a.timestamps())), np.max(np.asarray(b.timestamps())))
        assert avg_max < raw_max
        assert avg_max < haar_max

    def test_padding_ablation_changes_vector_but_not_obvious_matches(self):
        a, b = self._segments(0.5)
        padded = AvgWave(0.2)
        truncated = AvgWave(0.2, pad=False)
        assert padded.transformed(a).size != truncated.transformed(a).size
        assert padded.match(a, [_stored(b)]) is not None
        assert truncated.match(a, [_stored(b)]) is not None

    def test_empty_segment_matches_itself(self):
        seg = make_segment("c", [], end=5.0)
        assert AvgWave(0.2).match(seg, [_stored(seg)]) is not None

    def test_limit_uses_coefficient_magnitude(self):
        """Regression: wavelet fluctuations are signed; the match limit must
        scale with the largest coefficient *magnitude*, not the signed max,
        so transforms whose coefficients are all <= 0 can still match."""

        class NegatedAvgWave(AvgWave):
            def transformed(self, segment):
                return -np.abs(super().transformed(segment)) - 1.0

        a = make_segment("c", [("f", 1.0, 500.0)], end=950.0)
        b = make_segment("c", [("f", 1.0, 500.5)], end=950.5)
        metric = NegatedAvgWave(0.2)
        assert metric.transformed(a).max() < 0.0
        assert metric.match(a, [_stored(b)]) is not None
