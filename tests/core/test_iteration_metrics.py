"""Unit tests for the iteration-based methods (iter_k, iter_avg)."""

import numpy as np
import pytest

from repro.core.metrics.iteration import IterAvg, IterK
from repro.core.reduced import StoredSegment

from tests.conftest import make_segment


def _seg(value, end=None):
    return make_segment("c", [("f", 1.0, value)], end=end if end is not None else value + 1.0)


def _stored(segment, sid=0):
    return StoredSegment(segment_id=sid, segment=segment)


class TestIterK:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            IterK(0)

    def test_no_match_until_k_copies_stored(self):
        metric = IterK(3)
        stored = [_stored(_seg(10.0), 0), _stored(_seg(11.0), 1)]
        assert metric.match(_seg(12.0), stored) is None

    def test_match_once_k_copies_stored(self):
        metric = IterK(2)
        stored = [_stored(_seg(10.0), 0), _stored(_seg(11.0), 1)]
        chosen = metric.match(_seg(12.0), stored)
        assert chosen is stored[-1], "fills in with the last collected copy"

    def test_k_one_matches_immediately(self):
        metric = IterK(1)
        stored = [_stored(_seg(10.0), 0)]
        assert metric.match(_seg(99.0), stored) is not None

    def test_threshold_reports_k(self):
        assert IterK(10).threshold == 10.0

    def test_measurements_ignored(self):
        """iter_k never looks at the measurements, only at the copy count."""
        metric = IterK(1)
        wildly_different = _seg(1e9)
        assert metric.match(wildly_different, [_stored(_seg(1.0))]) is not None


class TestIterAvg:
    def test_always_matches_first_stored(self):
        metric = IterAvg()
        stored = [_stored(_seg(10.0), 0)]
        assert metric.match(_seg(1e6, end=2e6), stored) is stored[0]

    def test_no_stored_no_match(self):
        assert IterAvg().match(_seg(1.0), []) is None

    def test_on_match_updates_running_mean(self):
        stored = _stored(_seg(10.0, end=20.0))
        metric = IterAvg()
        metric.on_match(_seg(20.0, end=40.0), stored)
        # mean of (10, 20) for the event end, (20, 40) for the segment end
        assert stored.segment.events[0].end == pytest.approx(15.0)
        assert stored.segment.end == pytest.approx(30.0)
        assert stored.count == 2

    def test_incremental_mean_matches_batch_mean(self):
        stored = _stored(_seg(10.0, end=20.0))
        metric = IterAvg()
        values = [20.0, 30.0, 60.0]
        for v in values:
            metric.on_match(_seg(v, end=2 * v), stored)
        expected_event_end = np.mean([10.0] + values)
        assert stored.segment.events[0].end == pytest.approx(expected_event_end)
        assert stored.count == 4

    def test_mismatched_structure_rejected(self):
        stored = _stored(_seg(10.0))
        other = make_segment("c", [("f", 1.0, 2.0), ("g", 3.0, 4.0)], end=5.0)
        with pytest.raises(ValueError):
            stored.update_mean(np.asarray(other.timestamps()))

    def test_threshold_is_none(self):
        assert IterAvg().threshold is None
        assert IterAvg().describe() == "iter_avg"
