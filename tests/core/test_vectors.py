"""Tests for the measurement-vector layouts."""

import numpy as np
import pytest

from repro.core.metrics.vectors import (
    minkowski_vector,
    next_power_of_two,
    pairwise_vector,
    wavelet_vector,
)

from tests.conftest import make_segment


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected", [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (8, 8), (9, 16), (1000, 1024)]
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected


class TestPaperLayouts:
    def test_minkowski_vector_matches_paper(self, paper_segments):
        """Section 3.2.1: s2 -> (49, 1, 17, 18, 48), s1 -> (51, 1, 40, 41, 50)."""
        np.testing.assert_allclose(minkowski_vector(paper_segments["s2"]), [49, 1, 17, 18, 48])
        np.testing.assert_allclose(minkowski_vector(paper_segments["s1"]), [51, 1, 40, 41, 50])
        np.testing.assert_allclose(minkowski_vector(paper_segments["s0"]), [50, 1, 20, 21, 49])

    def test_wavelet_vector_matches_paper(self, paper_segments):
        """Figure 3: s0 -> (0, 1, 20, 21, 49, 50, 0, 0) after zero padding."""
        np.testing.assert_allclose(
            wavelet_vector(paper_segments["s0"]), [0, 1, 20, 21, 49, 50, 0, 0]
        )
        np.testing.assert_allclose(
            wavelet_vector(paper_segments["s2"]), [0, 1, 17, 18, 48, 49, 0, 0]
        )

    def test_pairwise_vector(self, paper_segments):
        np.testing.assert_allclose(pairwise_vector(paper_segments["s2"]), [1, 17, 18, 48, 49])


class TestEdgeCases:
    def test_empty_segment_vectors(self):
        seg = make_segment("c", [], start=0.0, end=5.0)
        np.testing.assert_allclose(minkowski_vector(seg), [5.0])
        np.testing.assert_allclose(wavelet_vector(seg), [0.0, 5.0])
        np.testing.assert_allclose(pairwise_vector(seg), [5.0])

    def test_wavelet_padding_to_power_of_two(self):
        seg = make_segment("c", [("a", 1.0, 2.0), ("b", 3.0, 4.0)], end=5.0)
        vec = wavelet_vector(seg)
        assert vec.size == 8  # 6 raw values padded to 8
        assert vec[-2:].tolist() == [0.0, 0.0]

    def test_wavelet_no_padding_option(self):
        seg = make_segment("c", [("a", 1.0, 2.0), ("b", 3.0, 4.0)], end=5.0)
        vec = wavelet_vector(seg, pad=False)
        assert vec.size == 6

    def test_already_power_of_two_not_padded(self):
        seg = make_segment("c", [("a", 1.0, 2.0)], end=3.0)
        vec = wavelet_vector(seg)
        assert vec.size == 4

    def test_absolute_segment_uses_duration(self):
        """Vectors of an unnormalised segment use times relative to its span."""
        rel = make_segment("c", [("a", 1.0, 2.0)], start=0.0, end=3.0)
        assert minkowski_vector(rel)[0] == 3.0


class TestDurationIsUnconditional:
    """Regression: the leading/trailing element is always ``end - start``.

    An earlier revision selected ``end - start`` vs. ``end`` on the
    *truthiness* of ``start``, treating ``start == 0.0`` as a special case;
    the duration must be computed unconditionally for any start offset.
    """

    def test_minkowski_vector_nonzero_start(self):
        seg = make_segment("c", [("a", 6.0, 7.0)], start=5.0, end=9.0)
        np.testing.assert_allclose(minkowski_vector(seg), [4.0, 6.0, 7.0])

    def test_minkowski_vector_negative_start(self):
        seg = make_segment("c", [("a", -1.0, 1.0)], start=-2.0, end=2.0)
        np.testing.assert_allclose(minkowski_vector(seg), [4.0, -1.0, 1.0])

    def test_minkowski_vector_zero_start(self):
        seg = make_segment("c", [("a", 1.0, 2.0)], start=0.0, end=3.0)
        np.testing.assert_allclose(minkowski_vector(seg), [3.0, 1.0, 2.0])

    def test_wavelet_vector_nonzero_start(self):
        seg = make_segment("c", [("a", 6.0, 7.0)], start=5.0, end=9.0)
        np.testing.assert_allclose(wavelet_vector(seg), [0.0, 6.0, 7.0, 4.0])

    def test_wavelet_vector_negative_start(self):
        seg = make_segment("c", [("a", -1.0, 1.0)], start=-2.0, end=2.0)
        np.testing.assert_allclose(wavelet_vector(seg), [0.0, -1.0, 1.0, 4.0])
