"""Tests for reconstruction of approximate full traces."""

import numpy as np
import pytest

from repro.core.metrics import create_metric
from repro.core.metrics.distance import AbsDiff
from repro.core.metrics.iteration import IterAvg, IterK
from repro.core.reconstruct import reconstruct, reconstruct_rank
from repro.core.reducer import TraceReducer, reduce_trace
from repro.evaluation.approximation import timestamp_errors
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

from tests.core.test_reducer import _iteration_segments


def _as_trace(segments, rank=0, name="t"):
    return SegmentedTrace(name=name, ranks=[SegmentedRankTrace(rank=rank, segments=segments)])


class TestStructurePreservation:
    def test_same_segment_and_event_counts(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("avgWave"))
        rebuilt = reconstruct(reduced)
        assert rebuilt.num_segments == small_late_sender_trace.num_segments
        assert rebuilt.num_events == small_late_sender_trace.num_events

    def test_contexts_and_names_preserved(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("euclidean"))
        rebuilt = reconstruct(reduced)
        original_rank = small_late_sender_trace.rank(1)
        rebuilt_rank = rebuilt.rank(1)
        assert [s.context for s in rebuilt_rank.segments] == [
            s.context for s in original_rank.segments
        ]
        assert [e.name for e in rebuilt_rank.events()] == [e.name for e in original_rank.events()]

    def test_mpi_parameters_preserved(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_avg"))
        rebuilt = reconstruct(reduced)
        original = [e.mpi for e in small_late_sender_trace.rank(0).events() if e.mpi]
        rebuilt_mpi = [e.mpi for e in rebuilt.rank(0).events() if e.mpi]
        assert original == rebuilt_mpi

    def test_rank_attribute_rewritten(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_avg"))
        rebuilt = reconstruct(reduced)
        assert all(e.rank == 2 for e in rebuilt.rank(2).events())


class TestAccuracy:
    def test_exact_when_nothing_matched(self):
        """If every segment is stored (no matches), reconstruction is lossless."""
        segments = _iteration_segments([50.0, 500.0, 5000.0])
        reduced = TraceReducer(AbsDiff(0.0)).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        original = _as_trace(segments).rank(0)
        np.testing.assert_allclose(rebuilt.timestamps(), original.timestamps())

    def test_segment_starts_always_exact(self, small_late_sender_trace):
        """Execution start times are recorded exactly in segmentExecs."""
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_avg"))
        rebuilt = reconstruct(reduced)
        for orig_rank, new_rank in zip(small_late_sender_trace.ranks, rebuilt.ranks):
            np.testing.assert_allclose(
                [s.start for s in new_rank.segments], [s.start for s in orig_rank.segments]
            )

    def test_matched_segments_use_representative_measurements(self):
        segments = _iteration_segments([50.0, 58.0])
        reduced = TraceReducer(AbsDiff(10.0)).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        # the second execution re-uses the first segment's measurements
        assert rebuilt.segments[1].events[0].end == pytest.approx(
            rebuilt.segments[1].start + 50.0
        )

    def test_error_bounded_by_threshold_for_absdiff(self):
        """absDiff guarantees every stored-vs-actual timestamp differs by at most
        the threshold, so reconstruction error per timestamp is bounded too."""
        values = [50.0, 54.0, 58.0, 52.0, 56.0]
        threshold = 10.0
        segments = _iteration_segments(values)
        reduced = TraceReducer(AbsDiff(threshold)).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        errors = timestamp_errors(_as_trace(segments), _as_trace(rebuilt.segments))
        assert errors.max() <= threshold + 1e-9


class TestIterKFillPolicies:
    def _reduced(self):
        # k = 2, five executions: the last three are filled in
        segments = _iteration_segments([50.0, 60.0, 70.0, 80.0, 90.0])
        return segments, TraceReducer(IterK(2)).reduce_segments(segments)

    def test_last_fill_uses_last_collected_copy(self):
        segments, reduced = self._reduced()
        rebuilt = reconstruct_rank(reduced, iter_k_fill="last")
        # executions 2..4 replay the second collected copy (value 60)
        assert rebuilt.segments[4].events[0].end == pytest.approx(
            rebuilt.segments[4].start + 60.0
        )

    def test_mean_fill_uses_mean_of_collected_copies(self):
        segments, reduced = self._reduced()
        rebuilt = reconstruct_rank(reduced, iter_k_fill="mean")
        assert rebuilt.segments[4].events[0].end == pytest.approx(
            rebuilt.segments[4].start + 55.0
        )

    def test_collected_copies_always_replayed_exactly(self):
        segments, reduced = self._reduced()
        for policy in ("last", "mean"):
            rebuilt = reconstruct_rank(reduced, iter_k_fill=policy)
            assert rebuilt.segments[0].events[0].end == pytest.approx(
                rebuilt.segments[0].start + 50.0
            )
            assert rebuilt.segments[1].events[0].end == pytest.approx(
                rebuilt.segments[1].start + 60.0
            )

    def test_invalid_policy_rejected(self):
        _, reduced = self._reduced()
        with pytest.raises(ValueError):
            reconstruct_rank(reduced, iter_k_fill="median")


class TestIterAvgReconstruction:
    def test_reconstruction_uses_averaged_measurements(self):
        segments = _iteration_segments([40.0, 60.0])
        reduced = TraceReducer(IterAvg()).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        for segment in rebuilt.segments:
            assert segment.events[0].end == pytest.approx(segment.start + 50.0)


class TestErrors:
    def test_unknown_segment_id_rejected(self):
        segments = _iteration_segments([50.0])
        reduced = TraceReducer(AbsDiff(1.0)).reduce_segments(segments)
        reduced.execs.append((99, 1000.0))
        reduced.exec_matched.append(True)
        with pytest.raises(KeyError):
            reconstruct_rank(reduced)
