"""Unit tests for the columnar per-rank frame (``repro.core.frames``).

The frame is the ingest-to-match hot path's data model: these tests pin its
contract — bitwise-identical normalisation and materialization versus the
per-segment ``relative_to_start()`` path, interned structural keys that group
exactly as ``Segment.structure()`` equality does, and lazy ``Segment``
construction that is counted honestly.
"""

import math
import pickle

import numpy as np
import pytest

from repro.core.frames import InternedKey, RankFrame, pyramid_rows
from repro.core.metrics import create_metric
from repro.core.metrics.wavelet import average_transform, haar_transform
from repro.trace.events import Event, MpiCallInfo
from repro.trace.segments import Segment

DISTANCE_METHODS = [
    "relDiff",
    "absDiff",
    "manhattan",
    "euclidean",
    "chebyshev",
    "avgWave",
    "haarWave",
]


@pytest.fixture(scope="module")
def frames(small_late_sender_trace):
    return [
        (rank_trace.segments, RankFrame.from_segments(rank_trace.rank, rank_trace.segments))
        for rank_trace in small_late_sender_trace.ranks
    ]


def _hex(value: float) -> str:
    return float(value).hex()


class TestMaterialization:
    def test_segments_bitwise_equal_relative_to_start(self, frames):
        for segments, frame in frames:
            assert frame.n_segments == len(segments)
            for i, original in enumerate(segments):
                relative = original.relative_to_start()
                built = frame.segment(i)
                assert built.context == relative.context
                assert built.rank == relative.rank
                assert built.index == relative.index
                assert _hex(built.start) == _hex(relative.start)
                assert _hex(built.end) == _hex(relative.end)
                assert len(built.events) == len(relative.events)
                for be, re_ in zip(built.events, relative.events):
                    assert be.name == re_.name
                    assert _hex(be.start) == _hex(re_.start)
                    assert _hex(be.end) == _hex(re_.end)
                    assert be.mpi == re_.mpi

    def test_materialized_counter(self, small_late_sender_trace):
        rank_trace = small_late_sender_trace.ranks[0]
        frame = RankFrame.from_segments(rank_trace.rank, rank_trace.segments)
        assert frame.materialized == 0
        frame.segment(0)
        assert frame.materialized == 1
        frame.segment(0)  # every call builds a fresh object and is counted
        assert frame.materialized == 2
        list(frame.segments())
        assert frame.materialized == 2 + frame.n_segments

    def test_bulk_passes_do_not_materialize(self, small_late_sender_trace):
        rank_trace = small_late_sender_trace.ranks[0]
        frame = RankFrame.from_segments(rank_trace.rank, rank_trace.segments)
        frame.structural_keys()
        frame.pairwise_vectors()
        frame.minkowski_vectors()
        frame.wavelet_vectors(scale=0.5)
        frame.starts_list()
        assert frame.materialized == 0

    def test_lazy_stream_equals_materialized_list(self):
        """Frames built from a forward-only generator match list-built ones.

        Lazy sources drop each segment as soon as it is consumed, so a new
        ``MpiCallInfo`` can be allocated at a dead one's address; the intern
        memo must not let such id() reuse merge distinct MPI signatures.
        """

        def make_segment(i: int) -> Segment:
            events = [
                Event(
                    name="MPI_Send",
                    start=float(i) + 0.1,
                    end=float(i) + 0.2,
                    rank=0,
                    mpi=MpiCallInfo(op="send", peer=i % 7, tag=i % 5, nbytes=32 * i),
                )
                for _ in range(3)
            ]
            return Segment(
                context="main.1",
                rank=0,
                start=float(i),
                end=float(i) + 1.0,
                events=events,
                index=i,
            )

        def lazy():
            for i in range(64):
                yield make_segment(i)  # no reference kept past the yield

        from_stream = RankFrame.from_segments(0, lazy())
        from_list = RankFrame.from_segments(0, [make_segment(i) for i in range(64)])
        assert from_stream.mpi_table == from_list.mpi_table
        assert from_stream.ev_mpi.tobytes() == from_list.ev_mpi.tobytes()

    def test_mpi_info_preserved(self):
        info = MpiCallInfo(op="send", peer=3, tag=7, nbytes=4096)
        segment = Segment(
            context="main.1",
            rank=0,
            start=10.0,
            end=20.0,
            events=[
                Event(name="work", start=11.0, end=12.0, rank=0),
                Event(name="MPI_Send", start=13.0, end=14.0, rank=0, mpi=info),
            ],
            index=0,
        )
        frame = RankFrame.from_segments(0, [segment])
        built = frame.segment(0)
        assert built.events[0].mpi is None
        assert built.events[1].mpi == info


class TestStructuralKeys:
    def test_keys_are_interned(self, frames):
        for segments, frame in frames:
            keys = frame.structural_keys()
            assert keys is frame.structural_keys()  # memoized
            by_structure: dict = {}
            for original, key in zip(segments, keys):
                assert isinstance(key, InternedKey)
                # identical structure -> the very same wrapper object
                assert by_structure.setdefault(original.structure(), key) is key

    def test_keys_group_exactly_as_structure(self, frames):
        for segments, frame in frames:
            keys = frame.structural_keys()
            structures = [s.structure() for s in segments]
            for i in range(len(segments)):
                for j in range(i + 1, len(segments)):
                    assert (keys[i] is keys[j]) == (structures[i] == structures[j])

    def test_interned_key_semantics(self):
        a = InternedKey(("main.1", ("f", "g")))
        b = InternedKey(("main.1", ("f", "g")))
        c = InternedKey(("main.2", ("f",)))
        assert a == b and hash(a) == hash(b)
        assert a != c
        # deliberately not equal to the raw tuple: stores must be keyed
        # consistently with interned keys only
        assert (a == ("main.1", ("f", "g"))) is False


class TestVectors:
    @pytest.mark.parametrize("method", DISTANCE_METHODS)
    def test_frame_vectors_bitwise_equal_per_segment(self, frames, method):
        metric = create_metric(method)
        for segments, frame in frames:
            rows = metric.frame_vectors(frame)
            assert len(rows) == len(segments)
            for original, row in zip(segments, rows):
                expected = metric.build_vector(original.relative_to_start())
                assert row.dtype == expected.dtype
                assert row.shape == expected.shape
                assert row.tobytes() == expected.tobytes()

    def test_pyramid_rows_matches_scalar_transform(self):
        rng = np.random.default_rng(7)
        for scale, transform in ((0.5, average_transform), (1.0 / math.sqrt(2.0), haar_transform)):
            for width in (2, 4, 8, 16):
                matrix = rng.normal(size=(5, width))
                batched = pyramid_rows(matrix.copy(), scale)
                for row, out in zip(matrix, batched):
                    expected = transform(row.copy())
                    assert out.tobytes() == expected.tobytes()


class TestSerialization:
    def test_pickle_round_trip_drops_caches(self, small_late_sender_trace):
        rank_trace = small_late_sender_trace.ranks[1]
        frame = RankFrame.from_segments(rank_trace.rank, rank_trace.segments)
        frame.structural_keys()
        frame.pairwise_vectors()
        frame.segment(0)
        clone = pickle.loads(pickle.dumps(frame))
        assert clone.rank == frame.rank
        assert clone.n_segments == frame.n_segments
        assert clone.materialized == 0  # derived state is not shipped
        assert clone.starts.tobytes() == frame.starts.tobytes()
        assert clone.ev_starts.tobytes() == frame.ev_starts.tobytes()
        # and the clone rebuilds identical vectors and segments
        for a, b in zip(clone.pairwise_vectors(), frame.pairwise_vectors()):
            assert a.tobytes() == b.tobytes()
        assert clone.segment(3).events[0].name == frame.segment(3).events[0].name

    def test_empty_rank(self):
        frame = RankFrame.from_segments(0, [])
        assert frame.n_segments == 0
        assert frame.structural_keys() == []
        assert frame.pairwise_vectors() == []
        assert list(frame.segments()) == []
