"""Unit tests for relDiff / absDiff beyond the paper's worked example."""

import numpy as np
import pytest

from repro.core.metrics.distance import AbsDiff, RelDiff, relative_differences
from repro.core.reduced import StoredSegment

from tests.conftest import make_segment


def _stored(segment, sid=0):
    return StoredSegment(segment_id=sid, segment=segment)


def _seg(*event_times, end):
    events = [(f"f{i}", s, e) for i, (s, e) in enumerate(event_times)]
    return make_segment("c", events, end=end)


class TestRelativeDifferences:
    def test_identical_is_zero(self):
        np.testing.assert_allclose(relative_differences([1.0, 2.0], [1.0, 2.0]), [0.0, 0.0])

    def test_both_zero_is_zero(self):
        np.testing.assert_allclose(relative_differences([0.0], [0.0]), [0.0])

    def test_one_zero_is_one(self):
        np.testing.assert_allclose(relative_differences([0.0], [5.0]), [1.0])

    def test_symmetric(self):
        a = np.array([1.0, 10.0, 100.0])
        b = np.array([2.0, 9.0, 150.0])
        np.testing.assert_allclose(relative_differences(a, b), relative_differences(b, a))

    def test_scale_invariant(self):
        a = np.array([1.0, 2.0])
        b = np.array([2.0, 3.0])
        np.testing.assert_allclose(
            relative_differences(a, b), relative_differences(a * 1000, b * 1000)
        )

    def test_paper_timestamp_series_bias(self):
        """The paper's remark: events at 1 and 2 differ by 0.5 relative, while
        events at 100 and 125 differ by only 0.2 despite a 25-unit gap."""
        early = relative_differences([1.0], [2.0])[0]
        late = relative_differences([100.0], [125.0])[0]
        assert early == pytest.approx(0.5)
        assert late == pytest.approx(0.2)
        assert early > late


class TestRelDiff:
    def test_exact_match(self):
        seg = _seg((1.0, 5.0), end=6.0)
        assert RelDiff(0.0).match(seg, [_stored(seg)]) is not None

    def test_threshold_zero_rejects_any_difference(self):
        a = _seg((1.0, 5.0), end=6.0)
        b = _seg((1.0, 5.1), end=6.0)
        assert RelDiff(0.0).match(a, [_stored(b)]) is None

    def test_monotone_in_threshold(self):
        a = _seg((1.0, 5.0), end=6.0)
        b = _seg((1.0, 8.0), end=9.0)
        assert RelDiff(0.1).match(a, [_stored(b)]) is None
        assert RelDiff(0.9).match(a, [_stored(b)]) is not None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            RelDiff(-0.1)

    def test_name_and_describe(self):
        metric = RelDiff(0.8)
        assert metric.name == "relDiff"
        assert metric.describe() == "relDiff(0.8)"

    def test_no_candidates_returns_none(self):
        assert RelDiff(1.0).match(_seg((1.0, 2.0), end=3.0), []) is None


class TestAbsDiff:
    def test_threshold_in_microseconds(self):
        a = _seg((1000.0, 2000.0), end=2100.0)
        b = _seg((1000.0, 2900.0), end=3000.0)
        assert AbsDiff(500.0).match(a, [_stored(b)]) is None
        assert AbsDiff(1000.0).match(a, [_stored(b)]) is not None

    def test_no_bias_towards_late_events(self):
        """Unlike relDiff, a 10 µs difference is judged the same at t=10 and t=10000."""
        early_a, early_b = _seg((0.0, 10.0), end=20.0), _seg((0.0, 20.0), end=30.0)
        late_a, late_b = _seg((0.0, 10000.0), end=10010.0), _seg((0.0, 10010.0), end=10020.0)
        for threshold in (5.0, 15.0):
            metric = AbsDiff(threshold)
            assert (metric.match(early_a, [_stored(early_b)]) is None) == (
                metric.match(late_a, [_stored(late_b)]) is None
            )

    def test_on_match_increments_count(self):
        seg = _seg((1.0, 2.0), end=3.0)
        stored = _stored(seg)
        metric = AbsDiff(10.0)
        chosen = metric.match(seg, [stored])
        metric.on_match(seg, chosen)
        assert stored.count == 2
