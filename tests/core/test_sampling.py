"""Tests for the trace-sampling extension (paper future work)."""

import pytest

from repro.core.reconstruct import reconstruct_rank
from repro.core.reducer import TraceReducer, reduce_trace
from repro.core.sampling import PeriodicSampling, RandomSampling

from tests.core.test_reducer import _iteration_segments


class TestPeriodicSampling:
    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSampling(0)

    def test_period_one_keeps_everything(self):
        segments = _iteration_segments([50.0] * 8)
        reduced = TraceReducer(PeriodicSampling(1)).reduce_segments(segments)
        assert len(reduced.stored) == 8
        assert reduced.n_matches == 0

    def test_period_keeps_every_nth(self):
        segments = _iteration_segments([50.0] * 10)
        reduced = TraceReducer(PeriodicSampling(4)).reduce_segments(segments)
        # executions 0, 4, 8 are kept
        assert len(reduced.stored) == 3
        assert reduced.n_matches == 7

    def test_first_execution_always_kept(self):
        segments = _iteration_segments([50.0])
        reduced = TraceReducer(PeriodicSampling(100)).reduce_segments(segments)
        assert len(reduced.stored) == 1

    def test_reconstruction_fills_with_latest_sample(self):
        segments = _iteration_segments([10.0, 20.0, 30.0, 40.0])
        reduced = TraceReducer(PeriodicSampling(2)).reduce_segments(segments)
        rebuilt = reconstruct_rank(reduced)
        # execution 3 (value 40) is filled with the latest kept sample (value 30)
        assert rebuilt.segments[3].events[0].end == pytest.approx(
            rebuilt.segments[3].start + 30.0
        )

    def test_describe(self):
        assert PeriodicSampling(10).describe() == "sample_period(10)"


class TestRandomSampling:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RandomSampling(1.5)

    def test_rate_one_keeps_everything(self):
        segments = _iteration_segments([50.0] * 10)
        reduced = TraceReducer(RandomSampling(1.0, seed=1)).reduce_segments(segments)
        assert len(reduced.stored) == 10

    def test_rate_zero_keeps_only_first(self):
        segments = _iteration_segments([50.0] * 10)
        reduced = TraceReducer(RandomSampling(0.0, seed=1)).reduce_segments(segments)
        assert len(reduced.stored) == 1

    def test_intermediate_rate_keeps_roughly_that_fraction(self):
        segments = _iteration_segments([50.0] * 200)
        reduced = TraceReducer(RandomSampling(0.25, seed=3)).reduce_segments(segments)
        kept = len(reduced.stored)
        assert 20 <= kept <= 80  # 200 × 0.25 = 50 expected, generous bounds

    def test_deterministic_for_seed(self):
        segments = _iteration_segments([50.0] * 30)
        a = TraceReducer(RandomSampling(0.3, seed=9)).reduce_segments(segments)
        b = TraceReducer(RandomSampling(0.3, seed=9)).reduce_segments(segments)
        assert [s.segment_id for s in a.stored] == [s.segment_id for s in b.stored]


class TestSamplingOnWorkloads:
    def test_pipeline_compatible(self, small_dynlb_trace):
        from repro.core.reconstruct import reconstruct
        from repro.evaluation.approximation import approximation_distance

        reduced = reduce_trace(small_dynlb_trace, PeriodicSampling(5))
        rebuilt = reconstruct(reduced)
        assert rebuilt.num_events == small_dynlb_trace.num_events
        assert approximation_distance(small_dynlb_trace, rebuilt) >= 0.0

    def test_coarser_sampling_smaller_files(self, small_dynlb_trace):
        fine = reduce_trace(small_dynlb_trace, PeriodicSampling(2))
        coarse = reduce_trace(small_dynlb_trace, PeriodicSampling(8))
        assert coarse.size_bytes() < fine.size_bytes()
