"""The paper's worked examples (Section 3.2, Figures 2 and 3), end to end.

These tests pin the implementation to the exact numbers printed in the paper,
which is the strongest evidence that the similarity metrics are implemented as
the authors describe them.
"""

import math

import numpy as np
import pytest

from repro.core.metrics.distance import AbsDiff, RelDiff, relative_differences
from repro.core.metrics.minkowski import Chebyshev, Euclidean, Manhattan
from repro.core.metrics.vectors import minkowski_vector, wavelet_vector
from repro.core.metrics.wavelet import AvgWave, HaarWave, average_transform
from repro.core.reduced import StoredSegment


def _stored(segment, segment_id=0):
    return StoredSegment(segment_id=segment_id, segment=segment)


class TestRelDiffExample:
    """Section 3.2.1: with threshold 0.5, s2 does not match s1 but matches s0."""

    def test_s2_vs_s1_rejected(self, paper_segments):
        metric = RelDiff(0.5)
        assert metric.match(paper_segments["s2"], [_stored(paper_segments["s1"])]) is None

    def test_s2_vs_s1_failing_pair_value(self, paper_segments):
        # do_work end: 17 vs 40 -> 0.58
        rel = relative_differences(
            np.asarray(paper_segments["s2"].timestamps()),
            np.asarray(paper_segments["s1"].timestamps()),
        )
        assert rel[1] == pytest.approx(0.575, abs=0.01)

    def test_s2_vs_s0_accepted(self, paper_segments):
        metric = RelDiff(0.5)
        chosen = metric.match(paper_segments["s2"], [_stored(paper_segments["s0"])])
        assert chosen is not None

    def test_s2_vs_s0_max_difference(self, paper_segments):
        # the paper: "no differences are greater than 0.15 (x1=17, x2=20)"
        rel = relative_differences(
            np.asarray(paper_segments["s2"].timestamps()),
            np.asarray(paper_segments["s0"].timestamps()),
        )
        assert rel.max() == pytest.approx(0.15, abs=0.001)

    def test_first_match_wins(self, paper_segments):
        """The algorithm scans storedSegments in order and keeps the first match."""
        metric = RelDiff(0.5)
        stored = [_stored(paper_segments["s0"], 0), _stored(paper_segments["s2"], 1)]
        chosen = metric.match(paper_segments["s2"], stored)
        assert chosen.segment_id == 0


class TestAbsDiffExample:
    """Section 3.2.1: with threshold 20, s2 does not match s1 (23 apart) but matches s0."""

    def test_s2_vs_s1_rejected(self, paper_segments):
        assert AbsDiff(20.0).match(paper_segments["s2"], [_stored(paper_segments["s1"])]) is None

    def test_s2_vs_s0_accepted(self, paper_segments):
        assert AbsDiff(20.0).match(paper_segments["s2"], [_stored(paper_segments["s0"])]) is not None

    def test_boundary_is_inclusive(self, paper_segments):
        # the largest |difference| between s2 and s1 is 23
        assert AbsDiff(23.0).match(paper_segments["s2"], [_stored(paper_segments["s1"])]) is not None
        assert AbsDiff(22.9).match(paper_segments["s2"], [_stored(paper_segments["s1"])]) is None


class TestMinkowskiExample:
    """Section 3.2.1: distances s2-s1 = 50 / 32.6 / 23 and s2-s0 = 8 / 4.5 / 3."""

    def test_distances_s2_s1(self, paper_segments):
        s1, s2 = paper_segments["s1"], paper_segments["s2"]
        assert Manhattan(0.2).distance(s2, s1) == pytest.approx(50.0)
        assert Euclidean(0.2).distance(s2, s1) == pytest.approx(32.65, abs=0.05)
        assert Chebyshev(0.2).distance(s2, s1) == pytest.approx(23.0)

    def test_distances_s2_s0(self, paper_segments):
        s0, s2 = paper_segments["s0"], paper_segments["s2"]
        assert Manhattan(0.2).distance(s2, s0) == pytest.approx(8.0)
        assert Euclidean(0.2).distance(s2, s0) == pytest.approx(4.47, abs=0.03)
        assert Chebyshev(0.2).distance(s2, s0) == pytest.approx(3.0)

    def test_limits(self, paper_segments):
        s0, s1, s2 = (paper_segments[k] for k in ("s0", "s1", "s2"))
        # threshold 0.2 × max measurement 51 = 10.2 for the s2/s1 pair
        assert Manhattan(0.2).limit(s2, s1) == pytest.approx(10.2)
        # threshold 0.2 × max measurement 50 = 10 for the s2/s0 pair
        assert Manhattan(0.2).limit(s2, s0) == pytest.approx(10.0)

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_s2_does_not_match_s1_but_matches_s0(self, metric_cls, paper_segments):
        metric = metric_cls(0.2)
        assert metric.match(paper_segments["s2"], [_stored(paper_segments["s1"])]) is None
        assert metric.match(paper_segments["s2"], [_stored(paper_segments["s0"])]) is not None


class TestWaveletExample:
    """Figure 3: the average transforms of s0 and s2 and their comparison."""

    def test_average_transform_trends(self, paper_segments):
        transformed = average_transform(wavelet_vector(paper_segments["s0"]))
        # final trend 17.625 is the largest coefficient
        assert transformed[0] == pytest.approx(17.625)
        assert transformed.max() == pytest.approx(17.625)

    def test_average_transform_s2_final_trend(self, paper_segments):
        transformed = average_transform(wavelet_vector(paper_segments["s2"]))
        assert transformed[0] == pytest.approx(16.625)

    def test_intermediate_trends_step3(self, paper_segments):
        # Figure 3 notes the step-3 trends for s2 are (9, 24.25)
        vec = wavelet_vector(paper_segments["s2"])
        level1 = (vec[0::2] + vec[1::2]) / 2.0
        level2 = (level1[0::2] + level1[1::2]) / 2.0
        np.testing.assert_allclose(level2, [9.0, 24.25])

    def test_euclidean_distance_of_transforms(self, paper_segments):
        t0 = average_transform(wavelet_vector(paper_segments["s0"]))
        t2 = average_transform(wavelet_vector(paper_segments["s2"]))
        assert float(np.linalg.norm(t0 - t2)) == pytest.approx(1.94, abs=0.05)

    def test_match_limit_and_decision(self, paper_segments):
        # limit = 0.2 × 17.625 ≈ 3.5 > 1.9, so s0 and s2 match
        metric = AvgWave(0.2)
        assert metric.match(paper_segments["s2"], [_stored(paper_segments["s0"])]) is not None

    def test_haar_values_are_sqrt2_times_average(self, paper_segments):
        """The paper: Haar trends are the average-transform trends × √2 per level."""
        vec = wavelet_vector(paper_segments["s0"])
        avg_level1 = (vec[0::2] + vec[1::2]) / 2.0
        haar = HaarWave(0.2).transformed(paper_segments["s0"])
        avg = AvgWave(0.2).transformed(paper_segments["s0"])
        # the finest-level detail coefficients are the last len/2 entries
        np.testing.assert_allclose(haar[-4:], avg[-4:] * math.sqrt(2.0))
