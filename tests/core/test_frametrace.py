"""FrameTrace: the SegmentedTrace read protocol over columnar frames.

Every reader the evaluation criteria use — flat timestamps, absolute event
iteration, duration, the absolute-segment fallback — must reproduce the
segment-backed trace bit for bit, because the criteria compare traces
element-wise and the reducers' outputs are byte-compared across sources.
"""

import numpy as np
import pytest

from repro.benchmarks_ats import dyn_load_balance, late_sender
from repro.core.frames import RankFrame
from repro.core.frametrace import FrameRankTrace, FrameTrace
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.core.reducer import TraceReducer
from repro.trace.io import serialize_reduced_trace, write_trace


@pytest.fixture(scope="module")
def segmented():
    return late_sender(nprocs=4, iterations=6, seed=11).run().segmented()


@pytest.fixture(scope="module")
def frame_trace(segmented):
    return FrameTrace.from_frames(
        segmented.name,
        (
            RankFrame.from_segments(rank.rank, rank.segments)
            for rank in segmented.ranks
        ),
    )


class TestReadProtocol:
    def test_shape_properties(self, segmented, frame_trace):
        assert frame_trace.nprocs == segmented.nprocs
        assert frame_trace.num_segments == segmented.num_segments
        assert frame_trace.num_events == segmented.num_events
        for rank, frame_rank in zip(segmented.ranks, frame_trace.ranks):
            assert frame_rank.rank == rank.rank
            assert len(frame_rank) == len(rank)
            assert frame_rank.num_events == rank.num_events

    def test_timestamps_bit_identical(self, segmented, frame_trace):
        # The approximation-distance criterion compares these element-wise,
        # so the vectorized layout must place every value exactly where the
        # segment walk does.
        for rank, frame_rank in zip(segmented.ranks, frame_trace.ranks):
            a = rank.timestamps()
            b = frame_rank.timestamps()
            assert a.shape == b.shape
            assert np.array_equal(a, b)
        assert np.array_equal(segmented.timestamps(), frame_trace.timestamps())

    def test_events_absolute_and_ordered(self, segmented, frame_trace):
        for rank, frame_rank in zip(segmented.ranks, frame_trace.ranks):
            expected = list(rank.events())
            got = list(frame_rank.events())
            assert got == expected

    def test_duration(self, segmented, frame_trace):
        assert frame_trace.duration() == segmented.duration()

    def test_rank_lookup_bounds(self, frame_trace):
        assert frame_trace.rank(0) is frame_trace.ranks[0]
        with pytest.raises(IndexError):
            frame_trace.rank(frame_trace.nprocs)

    def test_segments_fallback_is_absolute_and_counted(self, segmented, frame_trace):
        frame_rank = FrameRankTrace(
            RankFrame.from_segments(
                segmented.ranks[0].rank, segmented.ranks[0].segments
            )
        )
        before = frame_rank.frame.materialized
        rebuilt = frame_rank.segments
        assert rebuilt == segmented.ranks[0].segments
        assert frame_rank.frame.materialized == before + len(rebuilt)
        # Cached: a second access is free.
        assert frame_rank.segments is rebuilt
        assert frame_rank.frame.materialized == before + len(rebuilt)

    def test_empty_rank(self):
        trace = FrameTrace.from_frames("empty", [RankFrame.from_segments(0, [])])
        assert trace.num_segments == 0
        assert trace.duration() == 0.0
        assert trace.timestamps().size == 0
        assert list(trace.ranks[0].events()) == []


class TestReduction:
    @pytest.mark.parametrize("metric_name", METRIC_NAMES)
    def test_reduce_byte_identical(self, segmented, frame_trace, metric_name):
        reference = TraceReducer(create_metric(metric_name)).reduce(segmented)
        frame_backed = TraceReducer(create_metric(metric_name)).reduce(frame_trace)
        assert serialize_reduced_trace(frame_backed) == serialize_reduced_trace(
            reference
        )

    def test_distance_reduction_stays_lazy(self, segmented):
        trace = FrameTrace.from_frames(
            segmented.name,
            (
                RankFrame.from_segments(rank.rank, rank.segments)
                for rank in segmented.ranks
            ),
        )
        reduced = TraceReducer(create_metric("euclidean")).reduce(trace)
        assert trace.materialized == reduced.n_stored
        assert trace.materialized < trace.num_segments


class TestFromFile:
    @pytest.mark.parametrize("suffix", [".txt", ".rpb"])
    def test_round_trip(self, tmp_path, suffix):
        raw = dyn_load_balance(nprocs=3, iterations=4, seed=7).run()
        path = tmp_path / f"trace{suffix}"
        write_trace(raw, path)
        from repro.trace.io import read_trace

        expected = read_trace(path).segmented()
        trace = FrameTrace.from_file(path)
        assert trace.name == path.stem
        assert trace.nprocs == expected.nprocs
        assert np.array_equal(trace.timestamps(), expected.timestamps())
        for rank, frame_rank in zip(expected.ranks, trace.ranks):
            assert list(frame_rank.events()) == list(rank.events())
