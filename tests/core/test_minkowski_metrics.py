"""Unit tests for the Minkowski distance metrics."""

import math

import numpy as np
import pytest

from repro.core.metrics.minkowski import Chebyshev, Euclidean, Manhattan, minkowski_distance
from repro.core.reduced import StoredSegment

from tests.conftest import make_segment


def _stored(segment, sid=0):
    return StoredSegment(segment_id=sid, segment=segment)


class TestMinkowskiDistance:
    def test_manhattan(self):
        assert minkowski_distance([0, 0], [3, 4], 1) == pytest.approx(7.0)

    def test_euclidean(self):
        assert minkowski_distance([0, 0], [3, 4], 2) == pytest.approx(5.0)

    def test_chebyshev(self):
        assert minkowski_distance([0, 0], [3, 4], math.inf) == pytest.approx(4.0)

    def test_ordering(self):
        a, b = np.array([0.0, 0.0, 0.0]), np.array([1.0, 2.0, 3.0])
        manhattan = minkowski_distance(a, b, 1)
        euclidean = minkowski_distance(a, b, 2)
        chebyshev = minkowski_distance(a, b, math.inf)
        assert manhattan >= euclidean >= chebyshev

    def test_identical_vectors(self):
        assert minkowski_distance([1.0, 2.0], [1.0, 2.0], 2) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            minkowski_distance([1.0], [1.0, 2.0], 2)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            minkowski_distance([1.0], [2.0], 0)

    def test_empty_vectors(self):
        assert minkowski_distance([], [], math.inf) == 0.0


class TestSegmentMatching:
    def _pair(self, scale_difference):
        a = make_segment("c", [("f", 10.0, 100.0)], end=110.0)
        b = make_segment("c", [("f", 10.0, 100.0 + scale_difference)], end=110.0 + scale_difference)
        return a, b

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_identical_segments_match_at_zero_threshold(self, metric_cls):
        a, _ = self._pair(0.0)
        assert metric_cls(0.0).match(a, [_stored(a)]) is not None

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_monotone_in_threshold(self, metric_cls):
        a, b = self._pair(40.0)
        strict = metric_cls(0.05)
        loose = metric_cls(1.0)
        if strict.match(a, [_stored(b)]) is not None:
            pytest.skip("difference too small to discriminate")
        assert loose.match(a, [_stored(b)]) is not None

    def test_manhattan_strictest_for_distributed_differences(self):
        """Many small differences: Manhattan accumulates them, Chebyshev sees only one."""
        a = make_segment("c", [(f"f{i}", 10.0 * i, 10.0 * i + 5.0) for i in range(8)], end=100.0)
        b = make_segment(
            "c", [(f"f{i}", 10.0 * i + 3.0, 10.0 * i + 8.0) for i in range(8)], end=103.0
        )
        threshold = 0.1
        assert Chebyshev(threshold).match(a, [_stored(b)]) is not None
        assert Manhattan(threshold).match(a, [_stored(b)]) is None

    def test_longer_segments_judged_less_critically(self):
        """The paper's observation: because time stamps grow within a segment,
        the max measurement (and hence the allowed distance) grows with segment
        length, so the same absolute error passes in a long segment but fails
        in a short one."""
        short_a = make_segment("c", [("f", 0.0, 10.0)], end=20.0)
        short_b = make_segment("c", [("f", 0.0, 22.0)], end=32.0)
        long_a = make_segment(
            "c", [("f", 0.0, 10.0), ("g", 500.0, 510.0)], end=520.0
        )
        long_b = make_segment(
            "c", [("f", 0.0, 22.0), ("g", 500.0, 510.0)], end=520.0
        )
        metric = Euclidean(0.2)
        assert metric.match(short_a, [_stored(short_b)]) is None
        assert metric.match(long_a, [_stored(long_b)]) is not None

    def test_order_attribute(self):
        assert Manhattan(0.1).order == 1.0
        assert Euclidean(0.1).order == 2.0
        assert math.isinf(Chebyshev(0.1).order)


class TestMatchLimitUsesMagnitude:
    """Regression: the match limit scales with the largest measurement
    *magnitude*, so all-non-positive vectors no longer clamp the limit to 0."""

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_limit_positive_for_negative_measurements(self, metric_cls):
        a = make_segment("c", [("f", -50.0, -10.0)], start=0.0, end=0.0)
        b = make_segment("c", [("f", -50.5, -10.2)], start=0.0, end=0.0)
        metric = metric_cls(0.2)
        assert metric.limit(a, b) == pytest.approx(0.2 * 50.5)
        assert metric.match(a, [_stored(b)]) is not None

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_limit_unchanged_for_positive_measurements(self, metric_cls):
        a = make_segment("c", [("f", 10.0, 100.0)], end=110.0)
        b = make_segment("c", [("f", 10.0, 104.0)], end=110.0)
        assert metric_cls(0.2).limit(a, b) == pytest.approx(0.2 * 110.0)
