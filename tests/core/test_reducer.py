"""Tests for the trace reducer (the paper's Section 3.1 algorithm)."""

import pytest

from repro.core.metrics import create_metric
from repro.core.metrics.distance import AbsDiff, RelDiff
from repro.core.metrics.iteration import IterAvg, IterK
from repro.core.reducer import TraceReducer, reduce_trace
from repro.trace.events import MpiCallInfo
from repro.trace.segments import Segment

from tests.conftest import make_segment


def _iteration_segments(values, context="main.1", start_gap=100.0):
    """Segments mimicking repeated loop iterations with slightly varying times."""
    segments = []
    t = 0.0
    for i, value in enumerate(values):
        seg = make_segment(
            context,
            [("do_work", 1.0, value), ("MPI_Barrier", value + 1.0, value + 10.0)],
            start=0.0,
            end=value + 11.0,
            index=i,
            mpi_for={"MPI_Barrier": MpiCallInfo(op="barrier")},
        ).shifted(t)
        segments.append(seg)
        t += start_gap
    return segments


class TestReducerBasics:
    def test_requires_metric(self):
        with pytest.raises(TypeError):
            TraceReducer("relDiff")

    def test_first_segment_always_stored(self):
        reduced = TraceReducer(RelDiff(1.0)).reduce_segments(_iteration_segments([50.0]))
        assert len(reduced.stored) == 1
        assert reduced.n_segments == 1
        assert reduced.n_matches == 0
        assert reduced.n_possible_matches == 0

    def test_identical_segments_collapse_to_one(self):
        reduced = TraceReducer(RelDiff(0.5)).reduce_segments(_iteration_segments([50.0] * 5))
        assert len(reduced.stored) == 1
        assert reduced.n_matches == 4
        assert reduced.n_possible_matches == 4
        assert len(reduced.execs) == 5

    def test_execs_record_absolute_start_times(self):
        segments = _iteration_segments([50.0] * 3, start_gap=200.0)
        reduced = TraceReducer(RelDiff(0.5)).reduce_segments(segments)
        starts = [start for _, start in reduced.execs]
        assert starts == [0.0, 200.0, 400.0]

    def test_stored_segments_are_normalised(self):
        segments = _iteration_segments([50.0] * 3, start_gap=200.0)
        reduced = TraceReducer(RelDiff(0.5)).reduce_segments(segments)
        stored = reduced.stored[0].segment
        assert stored.start == 0.0
        assert stored.events[0].start == pytest.approx(1.0)

    def test_different_contexts_never_match(self):
        a = _iteration_segments([50.0], context="main.1")
        b = _iteration_segments([50.0], context="main.2")
        reduced = TraceReducer(RelDiff(1.0)).reduce_segments(a + b)
        assert len(reduced.stored) == 2
        assert reduced.n_possible_matches == 0

    def test_different_event_counts_never_match(self):
        a = make_segment("c", [("f", 1.0, 2.0)], end=3.0)
        b = make_segment("c", [("f", 1.0, 2.0), ("g", 2.0, 3.0)], end=4.0)
        reduced = TraceReducer(RelDiff(1.0)).reduce_segments([a, b])
        assert len(reduced.stored) == 2

    def test_different_mpi_parameters_never_match(self):
        a = make_segment("c", [("MPI_Send", 1.0, 2.0)], end=3.0,
                         mpi_for={"MPI_Send": MpiCallInfo(op="send", peer=1)})
        b = make_segment("c", [("MPI_Send", 1.0, 2.0)], end=3.0,
                         mpi_for={"MPI_Send": MpiCallInfo(op="send", peer=2)})
        reduced = TraceReducer(AbsDiff(1e9)).reduce_segments([a, b])
        assert len(reduced.stored) == 2
        assert reduced.n_possible_matches == 0

    def test_dissimilar_measurements_stored_separately(self):
        reduced = TraceReducer(AbsDiff(10.0)).reduce_segments(
            _iteration_segments([50.0, 500.0, 51.0, 501.0])
        )
        assert len(reduced.stored) == 2
        assert reduced.n_matches == 2
        assert reduced.n_possible_matches == 3

    def test_segment_ids_unique_and_sequential(self):
        reduced = TraceReducer(AbsDiff(10.0)).reduce_segments(
            _iteration_segments([50.0, 500.0, 5000.0])
        )
        assert [s.segment_id for s in reduced.stored] == [0, 1, 2]

    def test_exec_matched_flags(self):
        reduced = TraceReducer(AbsDiff(10.0)).reduce_segments(
            _iteration_segments([50.0, 500.0, 51.0])
        )
        assert reduced.exec_matched == [False, False, True]


class TestIterationMethodsInReducer:
    def test_iter_avg_every_possible_match_matches(self):
        reduced = TraceReducer(IterAvg()).reduce_segments(
            _iteration_segments([50.0, 500.0, 5000.0, 70.0])
        )
        assert len(reduced.stored) == 1
        assert reduced.n_matches == reduced.n_possible_matches == 3

    def test_iter_avg_stored_segment_holds_mean(self):
        reduced = TraceReducer(IterAvg()).reduce_segments(_iteration_segments([40.0, 60.0]))
        stored = reduced.stored[0]
        assert stored.segment.events[0].end == pytest.approx(50.0)
        assert stored.count == 2

    def test_iter_k_keeps_k_copies(self):
        reduced = TraceReducer(IterK(3)).reduce_segments(_iteration_segments([50.0] * 10))
        assert len(reduced.stored) == 3
        assert reduced.n_matches == 7

    def test_iter_k_larger_than_executions_keeps_all(self):
        reduced = TraceReducer(IterK(100)).reduce_segments(_iteration_segments([50.0] * 10))
        assert len(reduced.stored) == 10
        assert reduced.n_matches == 0


class TestWholeTraceReduction:
    def test_reduces_every_rank(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("avgWave"))
        assert reduced.nprocs == small_late_sender_trace.nprocs
        assert reduced.n_segments == small_late_sender_trace.num_segments
        assert reduced.method == "avgWave"
        assert reduced.threshold == 0.2

    def test_reduced_size_smaller_than_full(self, small_late_sender_trace):
        from repro.trace.io import segmented_trace_size_bytes

        reduced = reduce_trace(small_late_sender_trace, create_metric("avgWave"))
        assert reduced.size_bytes() < segmented_trace_size_bytes(small_late_sender_trace)

    def test_degree_of_matching_bounds(self, small_late_sender_trace):
        for name in ("relDiff", "iter_k", "iter_avg"):
            reduced = reduce_trace(small_late_sender_trace, create_metric(name))
            assert 0.0 <= reduced.degree_of_matching() <= 1.0

    def test_iter_avg_gives_best_case_size(self, small_late_sender_trace):
        """Section 5.2.1: iter_avg is the best case for the size category."""
        sizes = {}
        for name in ("relDiff", "absDiff", "manhattan", "iter_avg"):
            reduced = reduce_trace(small_late_sender_trace, create_metric(name))
            sizes[name] = reduced.size_bytes()
        assert sizes["iter_avg"] == min(sizes.values())

    def test_metric_state_not_shared_across_reductions(self, small_late_sender_trace):
        metric = create_metric("iter_avg")
        reducer = TraceReducer(metric)
        first = reducer.reduce(small_late_sender_trace)
        second = reducer.reduce(small_late_sender_trace)
        assert first.n_stored == second.n_stored
        assert first.size_bytes() == second.size_bytes()
