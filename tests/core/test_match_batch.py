"""Tests for the batched matching engine: cached vectors, candidate
matrices, the per-family ``match_batch`` kernels, and the metric-kernel
bugfixes (zero-clamped match limits)."""

import numpy as np
import pytest

from repro.core.candidates import CandidateList, MatchCounters, first_match_index
from repro.core.metrics import METRIC_CLASSES, create_metric
from repro.core.metrics.distance import AbsDiff, RelDiff
from repro.core.metrics.minkowski import Chebyshev, Euclidean, Manhattan
from repro.core.metrics.wavelet import AvgWave, HaarWave
from repro.core.reduced import StoredSegment
from repro.core.reducer import TraceReducer

from tests.conftest import make_segment

DISTANCE_METRICS = [RelDiff, AbsDiff, Manhattan, Euclidean, Chebyshev, AvgWave, HaarWave]


def _stored(segment, sid=0):
    return StoredSegment(segment_id=sid, segment=segment)


def _jittered(delta, context="c"):
    return make_segment(
        context,
        [("f", 1.0 + delta, 20.0 + delta), ("g", 25.0, 40.0 + delta)],
        end=50.0 + delta,
    )


class TestFirstMatchIndex:
    def test_empty(self):
        assert first_match_index(np.zeros(0, dtype=bool)) is None

    def test_no_match(self):
        assert first_match_index(np.array([False, False])) is None

    def test_first_of_several(self):
        assert first_match_index(np.array([False, True, True])) == 1


class TestCandidateList:
    def test_sequence_protocol(self):
        bucket = CandidateList()
        assert not bucket
        assert len(bucket) == 0
        entries = [_stored(_jittered(float(i)), sid=i) for i in range(3)]
        for entry in entries:
            bucket.append(entry)
        assert bool(bucket)
        assert list(bucket) == entries
        assert bucket[0] is entries[0]
        assert bucket[-1] is entries[2]

    def test_matrix_rows_follow_insertion_order(self):
        metric = AbsDiff(1.0)
        bucket = CandidateList()
        deltas = [0.0, 3.0, 7.0]
        for i, d in enumerate(deltas):
            bucket.append(_stored(_jittered(d), sid=i))
        matrix = bucket.matrix(metric)
        assert matrix.shape == (3, 5)
        for row, delta in zip(matrix, deltas):
            np.testing.assert_allclose(
                row, [1.0 + delta, 20.0 + delta, 25.0, 40.0 + delta, 50.0 + delta]
            )

    def test_matrix_grows_geometrically_and_incrementally(self):
        metric = AbsDiff(1.0)
        bucket = CandidateList()
        for i in range(CandidateList.MIN_CAPACITY + 3):
            bucket.append(_stored(_jittered(float(i)), sid=i))
            matrix = bucket.matrix(metric)
            assert matrix.shape[0] == i + 1
            # The backing buffer only ever doubles.
            assert bucket._matrix.shape[0] in (4, 8, 16)
            np.testing.assert_allclose(matrix[i][0], 1.0 + i)

    def test_trim_front_compacts_rows(self):
        metric = AbsDiff(1.0)
        bucket = CandidateList()
        for i in range(5):
            bucket.append(_stored(_jittered(float(i)), sid=i))
        bucket.matrix(metric)
        bucket.trim_front(2)
        assert [s.segment_id for s in bucket] == [2, 3, 4]
        matrix = bucket.matrix(metric)
        assert matrix.shape == (3, 5)
        np.testing.assert_allclose(matrix[:, 0], [3.0, 4.0, 5.0])

    def test_trim_front_compacts_row_scales(self):
        metric = Euclidean(0.2)
        bucket = CandidateList()
        for i in range(4):
            bucket.append(_stored(_jittered(float(i)), sid=i))
        _, scales = bucket.matrix_and_scales(metric)
        bucket.trim_front(2)
        _, scales = bucket.matrix_and_scales(metric)
        np.testing.assert_allclose(scales, [52.0, 53.0])

    def test_different_metric_rebuilds_matrix(self):
        bucket = CandidateList()
        bucket.append(_stored(_jittered(0.0)))
        pairwise = bucket.matrix(AbsDiff(1.0))
        minkowski = bucket.matrix(Euclidean(0.2))
        assert pairwise.shape[1] == 5
        assert minkowski.shape[1] == 5
        # Minkowski layout leads with the segment duration.
        assert minkowski[0, 0] == pytest.approx(50.0)
        assert pairwise[0, 0] == pytest.approx(1.0)

    def test_refresh_rebuilds_mutated_row(self):
        metric = AbsDiff(1.0)
        bucket = CandidateList()
        stored = _stored(_jittered(0.0))
        bucket.append(stored)
        before = bucket.matrix(metric).copy()
        stored.update_mean(np.asarray([3.0, 22.0, 27.0, 42.0, 52.0]))
        bucket.refresh(stored)
        after = bucket.matrix(metric)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after[0], stored.timestamps())

    def test_refresh_without_matrix_is_noop(self):
        bucket = CandidateList()
        stored = _stored(_jittered(0.0))
        bucket.append(stored)
        bucket.refresh(stored)  # no matrix built yet; must not raise


class TestStoredSegmentVectorCache:
    def test_cached_vector_memoized(self):
        stored = _stored(_jittered(0.0))
        calls = []

        def build(segment):
            calls.append(segment)
            return np.asarray(segment.timestamps())

        first = stored.cached_vector("k", build)
        second = stored.cached_vector("k", build)
        assert first is second
        assert len(calls) == 1

    def test_update_mean_invalidates_cache(self):
        metric = Euclidean(0.2)
        stored = _stored(_jittered(0.0))
        before = metric.candidate_vector(stored)
        stored.update_mean(np.asarray([3.0, 22.0, 27.0, 42.0, 52.0]))
        after = metric.candidate_vector(stored)
        assert before is not after
        assert not np.allclose(before, after)
        # Duration leads the Minkowski layout: mean of 50 and 52.
        assert after[0] == pytest.approx(51.0)

    def test_pickle_drops_cache(self):
        import pickle

        metric = AvgWave(0.2)
        stored = _stored(_jittered(0.0))
        metric.candidate_vector(stored)
        clone = pickle.loads(pickle.dumps(stored))
        assert clone._vectors is None
        assert clone.segment_id == stored.segment_id
        np.testing.assert_allclose(clone.timestamps(), stored.timestamps())


@pytest.mark.parametrize("metric_cls", DISTANCE_METRICS)
class TestKernelAgainstScan:
    """match_batch must reproduce the legacy scan's first-match decision."""

    def _candidates(self):
        deltas = [300.0, 40.0, 0.7, 0.1, 200.0]
        return [_stored(_jittered(d), sid=i) for i, d in enumerate(deltas)]

    @pytest.mark.parametrize("threshold", [0.0, 0.05, 0.3, 1.0])
    def test_same_choice(self, metric_cls, threshold):
        metric = metric_cls(threshold if metric_cls is not AbsDiff else threshold * 1000)
        candidate = _jittered(0.0)
        entries = self._candidates()
        bucket = CandidateList()
        for entry in entries:
            bucket.append(entry)
        scanned = metric.match(candidate, entries)
        batched = metric.match_candidates(candidate, bucket)
        assert scanned is batched

    def test_no_match_returns_none(self, metric_cls):
        metric = metric_cls(1e-12)
        bucket = CandidateList()
        bucket.append(_stored(_jittered(250.0)))
        assert metric.match_candidates(_jittered(0.0), bucket) is None


class TestZeroClampedLimitsFixed:
    """Signed max(initial=0) clamped match limits to zero for non-positive
    measurement vectors; the limit now scales with the largest magnitude."""

    def _negative_pair(self):
        # Events before the segment start give negative relative timestamps;
        # the duration (leading Minkowski element) stays >= 0.
        a = make_segment("c", [("f", -50.0, -10.0)], start=0.0, end=0.0)
        b = make_segment("c", [("f", -50.5, -10.2)], start=0.0, end=0.0)
        return a, b

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_minkowski_negative_measurements_can_match(self, metric_cls):
        a, b = self._negative_pair()
        metric = metric_cls(0.2)
        assert metric.limit(a, b) > 0.0
        assert metric.match(a, [_stored(b)]) is not None

    @pytest.mark.parametrize("metric_cls", [Manhattan, Euclidean, Chebyshev])
    def test_minkowski_scan_and_batch_agree_on_negatives(self, metric_cls):
        a, b = self._negative_pair()
        metric = metric_cls(0.2)
        stored = _stored(b)
        bucket = CandidateList()
        bucket.append(stored)
        assert metric.match_candidates(a, bucket) is metric.match(a, [stored])

    def test_wavelet_non_positive_coefficients_can_match(self):
        class NegatedAvgWave(AvgWave):
            """Transform stub whose coefficients are all <= 0."""

            def transformed(self, segment):
                return -np.abs(super().transformed(segment)) - 1.0

        a, b = _jittered(0.0), _jittered(0.3)
        metric = NegatedAvgWave(0.2)
        assert metric.transformed(a).max() < 0.0
        assert metric.match(a, [_stored(b)]) is not None
        bucket = CandidateList()
        bucket.append(_stored(b))
        assert metric.match_candidates(a, bucket) is not None

    def test_paper_worked_examples_still_hold(self, paper_segments):
        """The magnitude fix must not change the paper's worked-example results."""
        s0, s1, s2 = (paper_segments[k] for k in ("s0", "s1", "s2"))
        assert Manhattan(0.2).limit(s2, s1) == pytest.approx(10.2)  # 0.2 x 51
        transformed = AvgWave(0.2).transformed(s0)
        assert transformed.max() == pytest.approx(17.625)  # the printed final trend
        # ... and the s0/s2 match decision of Figure 3 is unchanged.
        assert AvgWave(0.2).match(s2, [_stored(s0)]) is not None


class TestMatchCounters:
    def test_merged_with(self):
        a = MatchCounters(calls=2, rows_compared=10, seconds=0.5)
        b = MatchCounters(calls=3, rows_compared=5, seconds=0.25)
        merged = a.merged_with(b)
        assert (merged.calls, merged.rows_compared) == (5, 15)
        assert merged.seconds == pytest.approx(0.75)

    def test_rows_per_call(self):
        assert MatchCounters().rows_per_call == 0.0
        assert MatchCounters(calls=4, rows_compared=10).rows_per_call == 2.5

    def test_reducer_fills_counters(self):
        segments = [_jittered(0.0), _jittered(0.1), _jittered(0.2)]
        counters = MatchCounters()
        TraceReducer(create_metric("relDiff")).reduce_segments(
            segments, match_counters=counters
        )
        assert counters.calls == 2  # first segment has no candidates
        assert counters.rows_compared >= counters.calls
        assert counters.seconds >= 0.0


class TestEveryMetricHasBatchSupport:
    @pytest.mark.parametrize("name", sorted(METRIC_CLASSES))
    def test_match_candidates_works_on_candidate_list(self, name):
        metric = create_metric(name)
        bucket = CandidateList()
        bucket.append(_stored(_jittered(0.0)))
        # Must not raise for any of the 9 metrics, batched bucket or not.
        metric.match_candidates(_jittered(0.05), bucket)
        metric.match_candidates(_jittered(0.05), [bucket[0]])
