"""Tests for the workload registry and scaling profiles."""

import pytest

from repro.benchmarks_ats.base import Workload
from repro.experiments.config import (
    ALL_WORKLOAD_NAMES,
    BENCHMARK_NAMES,
    INTERFERENCE_BENCHMARK_NAMES,
    REGULAR_BENCHMARK_NAMES,
    SCALES,
    SWEEP3D_NAMES,
    build_workload,
    clear_workload_cache,
    get_scale,
    prepared_cache_size,
    prepared_workload,
)


class TestRegistry:
    def test_eighteen_workloads(self):
        """The paper evaluates 16 benchmarks plus the two sweep3d runs."""
        assert len(ALL_WORKLOAD_NAMES) == 18
        assert len(BENCHMARK_NAMES) == 16
        assert len(SWEEP3D_NAMES) == 2

    def test_paper_names_present(self):
        for name in (
            "dyn_load_balance",
            "late_sender",
            "imbalance_at_mpi_barrier",
            "Nto1_32",
            "1to1r_1024",
            "NtoN_1024",
            "sweep3d_8p",
            "sweep3d_32p",
        ):
            assert name in ALL_WORKLOAD_NAMES

    def test_interference_names_cover_patterns_and_scales(self):
        assert len(INTERFERENCE_BENCHMARK_NAMES) == 10
        assert len(REGULAR_BENCHMARK_NAMES) == 5

    def test_every_workload_buildable_at_smoke_scale(self):
        for name in ALL_WORKLOAD_NAMES:
            workload = build_workload(name, "smoke")
            assert isinstance(workload, Workload)
            assert workload.name == name

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("lulesh", "smoke")


class TestScales:
    def test_profiles_exist(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_get_scale_by_name(self):
        assert get_scale("smoke").name == "smoke"

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "default"

    def test_paper_scale_matches_paper_parameters(self):
        paper = get_scale("paper")
        assert paper.benchmark_nprocs == 8
        assert paper.interference_nprocs == 32
        assert paper.benchmark_iterations == 100

    def test_scales_ordered_by_size(self):
        smoke, default, paper = (get_scale(n) for n in ("smoke", "default", "paper"))
        assert smoke.benchmark_iterations < default.benchmark_iterations <= paper.benchmark_iterations


class TestPreparedCache:
    def test_cache_returns_same_object(self):
        clear_workload_cache()
        a = prepared_workload("late_sender", "smoke")
        b = prepared_workload("late_sender", "smoke")
        assert a is b

    def test_cache_distinguishes_scales(self):
        clear_workload_cache()
        a = prepared_workload("late_sender", "smoke")
        clear_workload_cache()
        b = prepared_workload("late_sender", "smoke")
        assert a is not b

    def test_cache_keyed_by_full_scale_identity(self):
        """Two custom profiles sharing a *name* must not alias each other."""
        from dataclasses import replace

        clear_workload_cache()
        small = replace(get_scale("smoke"), name="custom")
        big = replace(small, benchmark_iterations=small.benchmark_iterations * 2)
        a = prepared_workload("late_sender", small)
        b = prepared_workload("late_sender", big)
        assert a is not b
        assert b.segmented.ranks[0].segments != a.segmented.ranks[0].segments
        assert prepared_cache_size() == 2
        assert prepared_workload("late_sender", small) is a

    def test_multi_method_study_prepares_each_workload_once(self):
        """A whole grid re-uses one PreparedWorkload per (workload, scale)."""
        from repro.experiments.thresholds import threshold_study

        clear_workload_cache()
        threshold_study(
            "absDiff", workloads=("late_sender",), thresholds=(10.0, 1e3), scale="smoke"
        )
        assert prepared_cache_size() == 1
        cached = prepared_workload("late_sender", "smoke")
        threshold_study(
            "relDiff", workloads=("late_sender",), thresholds=(0.1, 0.8), scale="smoke"
        )
        assert prepared_cache_size() == 1
        assert prepared_workload("late_sender", "smoke") is cached
