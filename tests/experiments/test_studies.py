"""Tests for the experiment drivers (comparative study, threshold study, trend tables)."""

import pytest

from repro.analysis.patterns import EXECUTION_TIME, WAIT_AT_NXN
from repro.core.metrics import METRIC_NAMES
from repro.experiments.comparative import (
    comparative_study,
    fig5_size_and_matching,
    fig6_approximation_distance,
    fig7_dyn_load_balance_trends,
    trend_chart_for_methods,
)
from repro.experiments.formatting import (
    format_comparative_results,
    format_rows,
    format_trend_table,
)
from repro.experiments.thresholds import threshold_study, threshold_study_rows
from repro.experiments.trend_tables import TREND_TABLE_INDEX, trend_table, trend_table_rows

SMALL_WORKLOADS = ("late_sender", "dyn_load_balance")
FEW_METHODS = ("relDiff", "avgWave", "iter_avg")


class TestComparativeStudy:
    def test_result_grid(self):
        results = comparative_study(SMALL_WORKLOADS, FEW_METHODS, scale="smoke")
        assert len(results) == len(SMALL_WORKLOADS) * len(FEW_METHODS)
        assert {r.workload for r in results} == set(SMALL_WORKLOADS)
        assert {r.method for r in results} == set(FEW_METHODS)

    def test_fig5_rows(self):
        rows = fig5_size_and_matching(SMALL_WORKLOADS, FEW_METHODS, scale="smoke")
        assert all(set(r) == {"workload", "method", "pct_file_size", "degree_of_matching"} for r in rows)

    def test_fig6_rows(self):
        rows = fig6_approximation_distance(("late_sender",), FEW_METHODS, scale="smoke")
        assert all("approx_distance_us" in r for r in rows)

    def test_default_methods_are_all_nine(self):
        rows = fig5_size_and_matching(("late_sender",), scale="smoke")
        assert {r["method"] for r in rows} == set(METRIC_NAMES)

    def test_formatting(self):
        results = comparative_study(("late_sender",), FEW_METHODS, scale="smoke")
        text = format_comparative_results(results, title="fig5")
        assert "fig5" in text and "late_sender" in text


class TestTrendCharts:
    def test_fig7_contains_full_trace_and_methods(self):
        charts = fig7_dyn_load_balance_trends(methods=("iter_avg",), scale="smoke")
        assert set(charts) == {"full trace", "iter_avg"}
        assert "MPI_Alltoall" in charts["full trace"]

    def test_generic_chart_driver(self):
        charts = trend_chart_for_methods(
            "late_sender",
            [("Late Sender", "MPI_Recv"), (EXECUTION_TIME, "do_work")],
            methods=("avgWave",),
            scale="smoke",
        )
        assert "MPI_Recv" in charts["avgWave"]


class TestThresholdStudy:
    def test_shape(self):
        study = threshold_study(
            "absDiff", workloads=("late_sender",), thresholds=(10.0, 1e5), scale="smoke"
        )
        assert set(study) == {"late_sender"}
        assert [r.threshold for r in study["late_sender"]] == [10.0, 1e5]

    def test_looser_threshold_not_larger_file(self):
        study = threshold_study(
            "absDiff", workloads=("dyn_load_balance",), thresholds=(1.0, 1e6), scale="smoke"
        )
        results = study["dyn_load_balance"]
        assert results[1].pct_file_size <= results[0].pct_file_size + 1e-9

    def test_rows_flat_format(self):
        rows = threshold_study_rows(
            "relDiff", workloads=("late_sender",), thresholds=(0.1, 0.8), scale="smoke"
        )
        assert len(rows) == 2
        assert set(rows[0]) == {
            "workload",
            "method",
            "threshold",
            "pct_file_size",
            "approx_distance_us",
            "degree_of_matching",
        }
        assert format_rows(rows)

    def test_iter_avg_rejected(self):
        with pytest.raises(ValueError):
            threshold_study("iter_avg", scale="smoke")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            threshold_study("dtw", scale="smoke")


class TestTrendTables:
    def test_index_covers_all_18_tables(self):
        assert set(TREND_TABLE_INDEX) == set(range(1, 19))
        assert TREND_TABLE_INDEX[1] == "dyn_load_balance"
        assert TREND_TABLE_INDEX[18] == "sweep3d_32p"

    def test_table_shape(self):
        table = trend_table(
            "late_sender",
            methods=("relDiff", "iter_avg"),
            thresholds_per_method={"relDiff": (0.1, 0.8)},
            scale="smoke",
        )
        assert set(table) == {"relDiff", "iter_avg"}
        assert set(table["relDiff"]) == {0.1, 0.8}
        assert set(table["iter_avg"]) == {None}
        assert all(isinstance(v, bool) for cells in table.values() for v in cells.values())

    def test_rows_and_formatting(self):
        rows = trend_table_rows(
            "late_sender",
            methods=("absDiff",),
            thresholds_per_method={"absDiff": (1e3,)},
            scale="smoke",
        )
        assert rows[0]["workload"] == "late_sender"
        table = trend_table(
            "late_sender",
            methods=("absDiff",),
            thresholds_per_method={"absDiff": (1e3,)},
            scale="smoke",
        )
        text = format_trend_table(table, title="Table 6")
        assert "Table 6" in text and "absDiff" in text
