"""Chrome-trace export schema tests against real instrumented pipeline runs."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.metrics import create_metric
from repro.pipeline.engine import PipelineConfig, ReductionPipeline
from repro.trace.io import serialize_reduced_trace


def _recorded_run(segmented, executor: str):
    """Reduce ``segmented`` under a recorder; returns (recorder, result)."""
    pipeline = ReductionPipeline(
        create_metric("relDiff", None), PipelineConfig(executor=executor, workers=2)
    )
    with obs.recording("pipeline") as recorder:
        result = pipeline.reduce(segmented)
    return recorder, result


@pytest.fixture(scope="module")
def process_payload(small_late_sender_trace):
    recorder, result = _recorded_run(small_late_sender_trace, "process")
    return obs.chrome_trace_payload(
        recorder, metadata={"command": "pipeline", "executor": result.stats.executor}
    ), result


def test_chrome_trace_schema(process_payload):
    payload, _ = process_payload
    assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert payload["displayTimeUnit"] == "ms"

    events = payload["traceEvents"]
    metadata_events = [e for e in events if e["ph"] == "M"]
    duration_events = [e for e in events if e["ph"] == "X"]
    assert metadata_events and duration_events
    assert {e["ph"] for e in events} == {"M", "X"}

    for event in metadata_events:
        assert event["name"] == "process_name"
        assert isinstance(event["pid"], int)
        assert isinstance(event["args"]["name"], str)
    # Every pid with spans has a process_name track label.
    assert {e["pid"] for e in duration_events} <= {e["pid"] for e in metadata_events}

    for event in duration_events:
        assert isinstance(event["name"], str) and event["name"]
        assert event["cat"] == "repro"
        assert isinstance(event["ts"], float) and event["ts"] >= 0.0
        assert isinstance(event["dur"], float) and event["dur"] >= 0.0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        for value in event["args"].values():
            assert isinstance(value, (str, int, float, bool, type(None)))

    other = payload["otherData"]
    assert {"t0_epoch_ns", "metadata", "provenance", "metrics", "worker_snapshots"} <= set(other)
    assert other["metadata"]["command"] == "pipeline"
    assert other["provenance"]["python"]
    # The whole payload must be JSON-serialisable as written.
    json.loads(json.dumps(payload))


def test_process_run_has_worker_tracks_and_coverage(process_payload):
    payload, result = process_payload
    duration_events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    tracks = {(e["pid"], e["tid"]) for e in duration_events}
    if result.stats.dispatch == "fork":
        # fork workers are separate processes: at least two distinct pids.
        assert len({pid for pid, _ in tracks}) >= 2
    assert len(tracks) >= 2
    assert {"pipeline.run", "rank.reduce"} <= {e["name"] for e in duration_events}
    assert obs.span_coverage(payload) >= 0.95


def test_worker_metric_merge_matches_across_executors(small_late_sender_trace):
    """Process and thread pools aggregate to identical worker totals."""
    by_executor = {}
    for executor in ("process", "thread"):
        recorder, result = _recorded_run(small_late_sender_trace, executor)
        merged = recorder.worker_metrics()
        assert len(recorder.absorbed) == len(result.reduced.ranks)
        assert merged.scalar("ingest.segments") == result.stats.n_segments
        assert merged.scalar("reduce.stored") == sum(
            len(rank.stored) for rank in result.reduced.ranks
        )
        by_executor[executor] = {
            name: value
            for name, value in merged.values.items()
            if not name.endswith("seconds")  # wall time differs run to run
        }
    assert by_executor["process"] == by_executor["thread"]


def test_run_metrics_recorded_once_in_parent(small_late_sender_trace):
    recorder, result = _recorded_run(small_late_sender_trace, "process")
    run = recorder.registry.snapshot()
    # Run totals come from the stats object exactly once — not once per worker.
    assert run.scalar("pipeline.segments") == result.stats.n_segments
    assert run.scalar("pipeline.matches") == result.stats.n_matches
    assert run.get("pipeline.workers").value == result.stats.workers


def test_telemetry_does_not_change_reduction_output(small_late_sender_trace):
    pipeline = ReductionPipeline(
        create_metric("relDiff", None), PipelineConfig(executor="process", workers=2)
    )
    plain = pipeline.reduce(small_late_sender_trace)
    with obs.recording("pipeline"):
        recorded = pipeline.reduce(small_late_sender_trace)
    assert serialize_reduced_trace(recorded.reduced) == serialize_reduced_trace(plain.reduced)


def test_write_load_report_roundtrip(tmp_path, small_late_sender_trace):
    recorder, _ = _recorded_run(small_late_sender_trace, "process")
    path = tmp_path / "telemetry.json"
    written = obs.write_chrome_trace(recorder, path, metadata={"command": "pipeline"})
    loaded = obs.load_trace(path)
    assert loaded == json.loads(json.dumps(written))

    report = obs.render_report(path, top=5)
    for section in ("telemetry run", "per-stage spans", "per-worker tracks", "metrics"):
        assert section in report
    assert "pipeline.run" in report


def test_span_coverage_on_synthetic_payloads():
    def payload(*intervals):
        return {
            "traceEvents": [
                {"name": "s", "ph": "X", "ts": ts, "dur": dur, "pid": 1, "tid": 1, "args": {}}
                for ts, dur in intervals
            ]
        }

    assert obs.span_coverage({"traceEvents": []}) == 0.0
    assert obs.span_coverage(payload((0.0, 10.0))) == pytest.approx(1.0)
    # Two disjoint halves of a 10 unit extent, 2 units uncovered in the middle.
    assert obs.span_coverage(payload((0.0, 4.0), (6.0, 4.0))) == pytest.approx(0.8)
    # Nested and overlapping spans never double count.
    assert obs.span_coverage(
        payload((0.0, 10.0), (2.0, 3.0), (8.0, 2.0))
    ) == pytest.approx(1.0)
