"""Unit tests for the span recorder: no-op fast path, nesting, scopes."""

from __future__ import annotations

import pickle
import threading

from repro import obs


def test_disabled_span_is_shared_noop_and_allocates_nothing():
    assert not obs.enabled()
    recorder = obs.Recorder()
    first = obs.span("rank.reduce", rank=0)
    second = obs.span("pipeline.merge")
    # The disabled path hands back one shared singleton: no per-call objects.
    assert first is second
    with first:
        pass
    # No recorder saw anything; span ids were never allocated anywhere.
    assert recorder.next_span_id == 1
    assert recorder.spans == []


def test_counter_and_observe_are_noops_when_disabled():
    assert not obs.enabled()
    obs.counter("ingest.segments", 5)
    obs.observe("dispatch.payload_bytes", 100)
    with obs.recording("check") as recorder:
        pass
    assert len(recorder.registry) == 0


def test_recording_captures_spans_and_restores_previous_scope():
    assert obs.current_recorder() is None
    with obs.recording("outer") as outer:
        assert obs.current_recorder() is outer
        with obs.recording("inner") as inner:
            assert obs.current_recorder() is inner
            with obs.span("stage"):
                pass
        assert obs.current_recorder() is outer
        assert inner.spans[0].name == "stage"
        assert outer.spans == []
    assert obs.current_recorder() is None


def test_span_nesting_records_parent_ids():
    with obs.recording() as recorder:
        with obs.span("pipeline.run") as parent:
            with obs.span("rank.reduce", rank=2) as child:
                pass
    by_name = {record.name: record for record in recorder.spans}
    assert by_name["rank.reduce"].parent_id == parent.span_id
    assert by_name["pipeline.run"].parent_id is None
    assert by_name["rank.reduce"].span_id == child.span_id
    assert by_name["rank.reduce"].attrs == {"rank": 2}
    # Children close before parents, so they are recorded first.
    assert [r.name for r in recorder.spans] == ["rank.reduce", "pipeline.run"]


def test_span_durations_and_wall_clock_are_consistent():
    with obs.recording() as recorder:
        with obs.span("outer"):
            with obs.span("inner"):
                pass
    inner, outer = recorder.spans
    assert outer.duration_ns >= inner.duration_ns >= 0
    assert outer.start_ns <= inner.start_ns
    assert inner.end_ns <= outer.end_ns


def test_nesting_is_tracked_per_thread():
    """Each thread's spans parent within that thread, not across threads."""
    barrier = threading.Barrier(2)

    def work(tag: str) -> None:
        with obs.span(f"{tag}.outer"):
            barrier.wait(timeout=5)  # both outer spans open simultaneously
            with obs.span(f"{tag}.inner"):
                pass

    with obs.recording() as recorder:
        threads = [threading.Thread(target=work, args=(tag,)) for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    by_name = {record.name: record for record in recorder.spans}
    assert len(by_name) == 4
    for tag in ("a", "b"):
        inner, outer = by_name[f"{tag}.inner"], by_name[f"{tag}.outer"]
        assert inner.parent_id == outer.span_id
        assert inner.tid == outer.tid
    assert by_name["a.inner"].tid != by_name["b.inner"].tid


def test_local_recording_shadows_the_global_recorder():
    with obs.recording("global") as global_recorder:
        worker = obs.Recorder(label="worker")
        with obs.local_recording(worker):
            assert obs.current_recorder() is worker
            with obs.span("task"):
                pass
            obs.counter("ingest.segments", 7)
        assert obs.current_recorder() is global_recorder
    assert [r.name for r in worker.spans] == ["task"]
    assert worker.registry.counter("ingest.segments").get() == 7
    assert global_recorder.spans == []
    assert len(global_recorder.registry) == 0


def test_absorb_merges_worker_snapshots_deterministically():
    parent = obs.Recorder(label="main")
    parent.absorb(None)  # tasks that did not capture return None
    snapshots = []
    for rank in range(3):
        worker = obs.Recorder(label="worker")
        with obs.local_recording(worker):
            with obs.span("rank.reduce", rank=rank):
                pass
            obs.counter("ingest.segments", 10 * (rank + 1))
        snapshots.append(worker.snapshot())
    for snapshot in snapshots:
        parent.absorb(snapshot)

    assert parent.n_spans == 3
    assert parent.worker_metrics().scalar("ingest.segments") == 60

    # Absorption order does not change the merged metrics.
    shuffled = obs.Recorder(label="main")
    for snapshot in reversed(snapshots):
        shuffled.absorb(snapshot)
    assert shuffled.worker_metrics() == parent.worker_metrics()


def test_recorder_snapshot_round_trips_through_pickle():
    worker = obs.Recorder(label="worker")
    with obs.local_recording(worker):
        with obs.span("shard.decode", rank=1):
            pass
        obs.counter("reduce.stored", 4)
    snapshot = pickle.loads(pickle.dumps(worker.snapshot()))
    assert snapshot.label == "worker"
    assert snapshot.n_spans == 1
    assert snapshot.spans[0].name == "shard.decode"
    assert snapshot.metrics.scalar("reduce.stored") == 4


def test_enable_disable_install_and_remove_the_global_recorder():
    recorder = obs.enable()
    try:
        assert obs.enabled()
        with obs.span("stage"):
            pass
    finally:
        removed = obs.disable()
    assert removed is recorder
    assert not obs.enabled()
    assert [r.name for r in recorder.spans] == ["stage"]
