"""Unit tests for the typed metrics registry and its snapshot/merge protocol."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import MetricsRegistry, MetricsSnapshot, MetricValue, merge_snapshots


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.inc("ingest.segments", 3)
    registry.inc("ingest.segments")
    assert registry.counter("ingest.segments").get() == 4


def test_gauge_holds_last_value():
    registry = MetricsRegistry()
    registry.set_gauge("pipeline.workers", 4)
    registry.set_gauge("pipeline.workers", 2)
    assert registry.gauge("pipeline.workers").get() == 2


def test_histogram_summarises_observations():
    registry = MetricsRegistry()
    for value in (10, 30, 20):
        registry.observe("dispatch.payload_bytes", value)
    histogram = registry.histogram("dispatch.payload_bytes")
    assert histogram.count == 3
    assert histogram.total == 60
    assert histogram.min == 10
    assert histogram.max == 30
    assert histogram.mean == pytest.approx(20.0)


def test_kind_conflict_raises_type_error():
    registry = MetricsRegistry()
    registry.inc("store.lookups")
    with pytest.raises(TypeError, match="counter"):
        registry.gauge("store.lookups")
    with pytest.raises(TypeError):
        registry.histogram("store.lookups")


def test_snapshot_is_name_sorted_and_frozen():
    registry = MetricsRegistry()
    registry.inc("z.last")
    registry.inc("a.first")
    snapshot = registry.snapshot()
    assert list(snapshot.values) == ["a.first", "z.last"]
    with pytest.raises(Exception):
        snapshot.values = {}


def test_merge_is_order_independent():
    a = MetricsRegistry()
    a.inc("match.kernel_rows", 5)
    a.set_gauge("store.size", 7)
    a.observe("dispatch.payload_bytes", 100)

    b = MetricsRegistry()
    b.inc("match.kernel_rows", 2)
    b.set_gauge("store.size", 11)
    b.observe("dispatch.payload_bytes", 40)
    b.inc("store.evictions", 1)

    ab = a.snapshot().merged_with(b.snapshot())
    ba = b.snapshot().merged_with(a.snapshot())
    assert ab == ba
    assert ab.scalar("match.kernel_rows") == 7
    assert ab.get("store.size").value == 11  # gauges merge by max
    payload_bytes = ab.get("dispatch.payload_bytes")
    assert (payload_bytes.count, payload_bytes.total) == (2, 140)
    assert (payload_bytes.min, payload_bytes.max) == (40, 100)


def test_merge_snapshots_folds_many():
    snapshots = []
    for rank in range(4):
        registry = MetricsRegistry()
        registry.inc("ingest.segments", 10 + rank)
        snapshots.append(registry.snapshot())
    merged = merge_snapshots(snapshots)
    assert merged.scalar("ingest.segments") == 10 + 11 + 12 + 13
    # Reversed order gives the identical snapshot.
    assert merge_snapshots(reversed(snapshots)) == merged


def test_merge_kind_mismatch_raises():
    counter = MetricValue(kind="counter", value=1)
    gauge = MetricValue(kind="gauge", value=1)
    with pytest.raises(ValueError, match="kinds"):
        counter.merged_with(gauge)


def test_registry_merge_snapshot_back_in():
    worker = MetricsRegistry()
    worker.inc("reduce.matches", 9)
    worker.observe("dispatch.payload_bytes", 123)

    parent = MetricsRegistry()
    parent.inc("reduce.matches", 1)
    parent.merge_snapshot(worker.snapshot())
    assert parent.counter("reduce.matches").get() == 10
    assert parent.histogram("dispatch.payload_bytes").max == 123


def test_json_roundtrip_preserves_snapshot():
    registry = MetricsRegistry()
    registry.inc("pipeline.segments", 40)
    registry.set_gauge("pipeline.ranks", 4)
    registry.observe("dispatch.payload_bytes", 2048)
    snapshot = registry.snapshot()
    assert MetricsSnapshot.from_json(snapshot.as_json()) == snapshot


def test_snapshot_pickles():
    registry = MetricsRegistry()
    registry.inc("ingest.segments", 5)
    snapshot = registry.snapshot()
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot


def test_scalar_defaults_for_missing_names():
    snapshot = MetricsRegistry().snapshot()
    assert not snapshot
    assert snapshot.scalar("absent") == 0
    assert snapshot.scalar("absent", default=-1) == -1
