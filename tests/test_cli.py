"""Tests for the repro-trace command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "not_a_workload"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "list"])
        assert args.scale == "smoke"


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "late_sender" in out
        assert "avgWave" in out
        assert "smoke" in out

    def test_describe(self, capsys):
        code, out = run_cli(capsys, "--scale", "smoke", "describe", "dyn_load_balance")
        assert code == 0
        assert "MPI_Alltoall" in out
        assert "processes" in out

    def test_evaluate(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "evaluate", "late_sender", "--methods", "avgWave", "iter_avg"
        )
        assert code == 0
        assert "avgWave" in out and "iter_avg" in out
        assert "% file size" in out

    def test_thresholds(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "thresholds", "absDiff", "--workloads", "late_sender"
        )
        assert code == 0
        assert "threshold" in out
        assert out.count("late_sender") >= 6

    def test_trends(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "trends", "late_sender", "--methods", "iter_avg", "relDiff"
        )
        assert code == 0
        assert "relDiff" in out and "iter_avg" in out

    def test_figure_fig7(self, capsys):
        code, out = run_cli(capsys, "--scale", "smoke", "figure", "fig7")
        assert code == 0
        assert "MPI_Alltoall" in out
        assert "full trace" in out

    def test_pipeline(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "pipeline", "late_sender",
            "--executor", "thread", "--workers", "2", "--method", "euclidean",
            "--merge", "--verify",
        )
        assert code == 0
        assert "euclidean" in out
        assert "segments / second" in out
        # Column padding depends on the longest stats label, so normalise it.
        assert "matches serial reducer yes" in " ".join(out.split())
        assert "cross-rank duplicates" in out

    def test_pipeline_output_file(self, capsys, tmp_path):
        target = tmp_path / "reduced.txt"
        code, out = run_cli(
            capsys, "--scale", "smoke", "pipeline", "late_sender",
            "--executor", "serial", "--output", str(target),
        )
        assert code == 0
        assert target.exists()
        assert target.read_text().startswith("SEG ")

    def test_pipeline_save_trace_and_trace_ingest(self, capsys, tmp_path):
        saved = tmp_path / "full.rpb"
        code, out = run_cli(
            capsys, "--scale", "smoke", "pipeline", "late_sender",
            "--executor", "serial", "--save-trace", str(saved),
        )
        assert code == 0
        assert saved.exists()
        assert "rpb format" in out
        code, out = run_cli(
            capsys, "pipeline", "--trace", str(saved),
            "--executor", "process", "--workers", "2", "--verify",
        )
        assert code == 0
        normalized = " ".join(out.split())
        assert "task dispatch shard" in normalized
        assert "matches serial reducer yes" in normalized

    def test_pipeline_trace_and_workload_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["pipeline", "late_sender", "--trace", "x.txt"])
        with pytest.raises(SystemExit):
            main(["pipeline"])

    def test_sweep_table_with_verify(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "sweep", "late_sender",
            "--methods", "euclidean", "manhattan", "--thresholds", "0.2", "0.6",
            "--verify",
        )
        assert code == 0
        normalized = " ".join(out.split())
        assert "sweep grid" in out
        assert "euclidean" in out and "manhattan" in out
        assert "feature families 1" in normalized  # minkowski layout is shared
        assert "matches serial oracle yes" in normalized

    def test_sweep_json_report(self, capsys):
        import json

        code, out = run_cli(
            capsys, "--scale", "smoke", "sweep", "late_sender",
            "--methods", "relDiff", "--thresholds", "0.8", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["configs"][0]["method"] == "relDiff"
        assert payload["stats"]["n_configs"] == 1
        assert payload["stats"]["dispatch"] == "inline"

    def test_sweep_serial_backend(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "sweep", "late_sender",
            "--methods", "iter_avg", "--backend", "serial",
        )
        assert code == 0
        assert "iter_avg" in out
        assert "shared-ingest stats" not in out  # no sweep stats on the oracle path

    def test_sweep_rpb_trace_uses_shard_dispatch(self, capsys, tmp_path):
        saved = tmp_path / "full.rpb"
        code, _ = run_cli(
            capsys, "--scale", "smoke", "pipeline", "late_sender",
            "--executor", "serial", "--save-trace", str(saved),
        )
        assert code == 0
        code, out = run_cli(
            capsys, "sweep", "--trace", str(saved),
            "--methods", "euclidean", "--thresholds", "0.1", "0.4",
            "--executor", "process", "--workers", "2", "--verify",
        )
        assert code == 0
        normalized = " ".join(out.split())
        assert "task dispatch shard" in normalized
        assert "matches serial oracle yes" in normalized

    def test_sweep_verify_with_bounded_store_uses_bounded_oracle(self, capsys):
        # A binding --store-capacity must not read as an oracle mismatch: the
        # serial oracle runs under the same bound as the sweep states.
        code, out = run_cli(
            capsys, "--scale", "smoke", "sweep", "sweep3d_8p",
            "--methods", "relDiff", "--thresholds", "0.8",
            "--store-capacity", "1", "--verify",
        )
        assert code == 0
        assert "matches serial oracle yes" in " ".join(out.split())

    def test_sweep_serial_backend_rejects_verify_and_capacity(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--scale", "smoke", "sweep", "late_sender",
                  "--methods", "relDiff", "--backend", "serial", "--verify"])
        assert excinfo.value.code == 2
        assert "does not apply" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["--scale", "smoke", "sweep", "late_sender",
                  "--methods", "relDiff", "--backend", "serial",
                  "--store-capacity", "5"])
        assert excinfo.value.code == 2
        assert "sweep backend only" in capsys.readouterr().err

    def test_sweep_trace_and_workload_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "late_sender", "--trace", "x.rpb"])
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_sweep_missing_trace_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--trace", "nope.rpb"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_convert_round_trip(self, capsys, tmp_path):
        text = tmp_path / "full.txt"
        code, _ = run_cli(
            capsys, "--scale", "smoke", "pipeline", "late_sender",
            "--executor", "serial", "--save-trace", str(text),
        )
        assert code == 0
        rpb = tmp_path / "full.rpb"
        code, out = run_cli(capsys, "convert", str(text), str(rpb))
        assert code == 0
        assert rpb.exists()
        assert "rpb format" in out
        back = tmp_path / "back.txt"
        code, _ = run_cli(capsys, "convert", str(rpb), str(back))
        assert code == 0
        assert back.read_bytes() == text.read_bytes()

    def test_convert_missing_input_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["convert", "nope.txt", "out.rpb"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_pipeline_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pipeline", "late_sender", "--executor", "gpu"])

    def test_pipeline_invalid_workers_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--scale", "smoke", "pipeline", "late_sender", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_pipeline_verify_mismatch_exits_nonzero(self, capsys, tmp_path):
        # A capacity-1 store evicts representatives that iter_avg would have
        # matched, so the bounded output legitimately diverges from serial.
        target = tmp_path / "diverged.txt"
        code = main(
            ["--scale", "smoke", "pipeline", "sweep3d_8p", "--method", "iter_avg",
             "--executor", "serial", "--store-capacity", "1", "--verify",
             "--output", str(target)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "matches serial reducer NO" in " ".join(captured.out.split())
        assert "does not match" in captured.err
        # The known-divergent reduction must not be written.
        assert not target.exists()
        assert "skipped: verification failed" in captured.out

    def test_pipeline_telemetry_export_and_report(self, capsys, tmp_path):
        saved = tmp_path / "full.rpb"
        code, _ = run_cli(
            capsys, "--scale", "smoke", "pipeline", "late_sender",
            "--executor", "serial", "--save-trace", str(saved),
        )
        assert code == 0
        telemetry = tmp_path / "telemetry.json"
        code, out = run_cli(
            capsys, "pipeline", "--trace", str(saved),
            "--workers", "4", "--telemetry", str(telemetry),
        )
        assert code == 0
        assert "telemetry written to" in out
        assert telemetry.exists()

        import json

        payload = json.loads(telemetry.read_text())
        duration_events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        # The acceptance bar: >= 2 distinct worker tracks and spans covering
        # >= 95% of the run's wall time.
        assert len({(e["pid"], e["tid"]) for e in duration_events}) >= 2
        from repro import obs

        assert obs.span_coverage(payload) >= 0.95
        assert payload["otherData"]["metadata"]["command"] == "pipeline"

        code, out = run_cli(capsys, "report", str(telemetry))
        assert code == 0
        for section in ("telemetry run", "per-stage spans", "per-worker tracks", "metrics"):
            assert section in out
        assert "pipeline.run" in out

    def test_sweep_telemetry_table_and_json(self, capsys, tmp_path):
        telemetry = tmp_path / "sweep_telemetry.json"
        code, out = run_cli(
            capsys, "--scale", "smoke", "sweep", "late_sender",
            "--telemetry", str(telemetry),
        )
        assert code == 0
        assert "telemetry written to" in out
        assert telemetry.exists()

        import json

        json_telemetry = tmp_path / "sweep_telemetry2.json"
        code, out = run_cli(
            capsys, "--scale", "smoke", "sweep", "late_sender", "--json",
            "--telemetry", str(json_telemetry),
        )
        assert code == 0
        payload = json.loads(out)  # --json output must stay valid JSON
        assert str(json_telemetry) in payload["telemetry"]
        names = {
            e["name"]
            for e in json.loads(json_telemetry.read_text())["traceEvents"]
            if e.get("ph") == "X"
        }
        assert {"sweep.run", "sweep.rank"} <= names

    def test_report_missing_file_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "no_such_telemetry.json"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err


class TestServe:
    def test_serve_workload_with_verify_and_cache(self, capsys, tmp_path):
        deltas = tmp_path / "deltas.log"
        code, out = run_cli(
            capsys, "--scale", "smoke", "serve", "late_sender",
            "--sessions", "3", "--store-capacity", "12", "--tenant-budget", "30",
            "--repeat", "2", "--verify", "--deltas", str(deltas),
        )
        assert code == 0
        flat = " ".join(out.split())
        assert "matches serial reducer yes" in flat
        assert "evicted to checkpoint" in out
        assert "2 cache hits" in out
        assert deltas.exists() and deltas.read_text().startswith("DELTA ")

    def test_serve_trace_file(self, capsys, tmp_path):
        from repro.benchmarks_ats import late_sender
        from repro.trace.io import write_trace

        path = tmp_path / "trace.rpb"
        write_trace(late_sender(nprocs=2, iterations=3, seed=1).run(), path)
        code, out = run_cli(
            capsys, "serve", "--trace", str(path), "--method", "euclidean",
            "--verify", "--repeat", "1",
        )
        assert code == 0
        flat = " ".join(out.split())
        assert "matches serial reducer yes" in flat
        assert "1 cache hits" in flat

    def test_serve_telemetry_report_shows_service_counters(self, capsys, tmp_path):
        telemetry = tmp_path / "serve.json"
        code, _ = run_cli(
            capsys, "--scale", "smoke", "serve", "late_sender",
            "--sessions", "2", "--telemetry", str(telemetry),
        )
        assert code == 0
        code, out = run_cli(capsys, "report", str(telemetry))
        assert code == 0
        assert "service.append" in out
        assert "service.sessions_opened" in out
        assert "service.deltas_emitted" in out

    def test_serve_trace_and_workload_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "late_sender", "--trace", "x.txt"])
        with pytest.raises(SystemExit):
            main(["serve"])
        with pytest.raises(SystemExit):
            main(["serve", "--trace", "nope.txt"])

    def test_serve_invalid_counts_are_usage_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--scale", "smoke", "serve", "late_sender", "--sessions", "0"])
        with pytest.raises(SystemExit):
            main(["--scale", "smoke", "serve", "late_sender", "--chunk", "0"])
