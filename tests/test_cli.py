"""Tests for the repro-trace command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "not_a_workload"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "list"])
        assert args.scale == "smoke"


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "late_sender" in out
        assert "avgWave" in out
        assert "smoke" in out

    def test_describe(self, capsys):
        code, out = run_cli(capsys, "--scale", "smoke", "describe", "dyn_load_balance")
        assert code == 0
        assert "MPI_Alltoall" in out
        assert "processes" in out

    def test_evaluate(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "evaluate", "late_sender", "--methods", "avgWave", "iter_avg"
        )
        assert code == 0
        assert "avgWave" in out and "iter_avg" in out
        assert "% file size" in out

    def test_thresholds(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "thresholds", "absDiff", "--workloads", "late_sender"
        )
        assert code == 0
        assert "threshold" in out
        assert out.count("late_sender") >= 6

    def test_trends(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "smoke", "trends", "late_sender", "--methods", "iter_avg", "relDiff"
        )
        assert code == 0
        assert "relDiff" in out and "iter_avg" in out

    def test_figure_fig7(self, capsys):
        code, out = run_cli(capsys, "--scale", "smoke", "figure", "fig7")
        assert code == 0
        assert "MPI_Alltoall" in out
        assert "full trace" in out
