"""Tests for the study runner."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.evaluation.runner import (
    EvaluationResult,
    PreparedWorkload,
    evaluate_method,
    evaluate_workload,
)


@pytest.fixture(scope="module")
def prepared():
    return PreparedWorkload.from_workload(late_sender(nprocs=4, iterations=8, seed=2))


class TestPreparedWorkload:
    def test_artifacts_present(self, prepared):
        assert prepared.name == "late_sender"
        assert prepared.full_bytes > 0
        assert prepared.full_report.nprocs == 4
        assert prepared.segmented.num_segments > 0


class TestEvaluateMethod:
    def test_result_fields(self, prepared):
        result = evaluate_method(prepared, create_metric("avgWave"))
        assert isinstance(result, EvaluationResult)
        assert result.workload == "late_sender"
        assert result.method == "avgWave"
        assert result.threshold == 0.2
        assert 0.0 < result.pct_file_size <= 100.0
        assert 0.0 <= result.degree_of_matching <= 1.0
        assert result.approx_distance_us >= 0.0
        assert result.reduced_bytes < result.full_bytes
        assert result.n_stored <= result.n_segments

    def test_trend_comparison_attached(self, prepared):
        result = evaluate_method(prepared, create_metric("relDiff"))
        assert result.trend_comparison is not None
        assert result.trend_comparison.retained == result.trends_retained

    def test_comparison_can_be_dropped(self, prepared):
        result = evaluate_method(prepared, create_metric("relDiff"), keep_comparison=False)
        assert result.trend_comparison is None

    def test_as_row_length(self, prepared):
        row = evaluate_method(prepared, create_metric("iter_avg")).as_row()
        assert len(row) == 7
        assert row[2] == "-"


class TestEvaluateWorkload:
    def test_all_methods(self):
        workload = late_sender(nprocs=4, iterations=6, seed=2)
        results = evaluate_workload(workload, METRIC_NAMES)
        assert [r.method for r in results] == list(METRIC_NAMES)

    def test_method_spec_forms(self):
        workload = late_sender(nprocs=4, iterations=6, seed=2)
        results = evaluate_workload(
            workload, ["relDiff", ("absDiff", 50.0), create_metric("iter_k", 2)]
        )
        assert results[0].threshold == 0.8
        assert results[1].threshold == 50.0
        assert results[2].threshold == 2

    def test_invalid_spec_rejected(self):
        workload = late_sender(nprocs=4, iterations=4, seed=2)
        with pytest.raises(TypeError):
            evaluate_workload(workload, [42])

    def test_shared_full_trace_across_methods(self):
        workload = late_sender(nprocs=4, iterations=6, seed=2)
        results = evaluate_workload(workload, ["relDiff", "absDiff"])
        assert results[0].full_bytes == results[1].full_bytes
