"""Tests for the four evaluation criteria (file size, matching, error, trends)."""

import numpy as np
import pytest

from repro.core.metrics import create_metric
from repro.core.reconstruct import reconstruct
from repro.core.reducer import reduce_trace
from repro.evaluation.approximation import approximation_distance, timestamp_errors
from repro.evaluation.filesize import full_trace_bytes, percent_file_size
from repro.evaluation.matching import degree_of_matching
from repro.evaluation.trends import retains_trends
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace


class TestPercentFileSize:
    def test_bounded_and_positive(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("avgWave"))
        pct = percent_file_size(small_late_sender_trace, reduced)
        assert 0.0 < pct < 100.0

    def test_no_matches_is_close_to_full_size(self, small_late_sender_trace):
        """With iter_k larger than the iteration count nothing matches; the
        reduced representation carries the same measurements plus headers, so
        its size is comparable to (not dramatically smaller than) the full trace."""
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_k", 10_000))
        pct = percent_file_size(small_late_sender_trace, reduced)
        assert pct > 50.0

    def test_iter_avg_smallest(self, small_late_sender_trace):
        sizes = {
            name: percent_file_size(
                small_late_sender_trace, reduce_trace(small_late_sender_trace, create_metric(name))
            )
            for name in ("relDiff", "iter_k", "iter_avg")
        }
        assert sizes["iter_avg"] <= min(sizes.values()) + 1e-9

    def test_empty_trace(self):
        empty = SegmentedTrace(name="e", ranks=[])
        reduced = reduce_trace(empty, create_metric("avgWave"))
        assert percent_file_size(empty, reduced) == 100.0
        assert full_trace_bytes(empty) == 0


class TestDegreeOfMatching:
    def test_iter_avg_is_one(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_avg"))
        assert degree_of_matching(reduced) == 1.0

    def test_impossible_matching_counts_as_one(self):
        empty = SegmentedTrace(name="e", ranks=[SegmentedRankTrace(rank=0, segments=[])])
        reduced = reduce_trace(empty, create_metric("relDiff"))
        assert degree_of_matching(reduced) == 1.0

    def test_strict_threshold_lowers_matching(self, small_dynlb_trace):
        strict = reduce_trace(small_dynlb_trace, create_metric("absDiff", 1.0))
        loose = reduce_trace(small_dynlb_trace, create_metric("absDiff", 1e6))
        assert degree_of_matching(strict) < degree_of_matching(loose)
        assert degree_of_matching(loose) == 1.0


class TestApproximationDistance:
    def test_zero_for_identical_traces(self, small_late_sender_trace):
        assert approximation_distance(small_late_sender_trace, small_late_sender_trace) == 0.0

    def test_errors_shape(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("avgWave"))
        rebuilt = reconstruct(reduced)
        errors = timestamp_errors(small_late_sender_trace, rebuilt)
        assert errors.size == small_late_sender_trace.timestamps().size
        assert np.all(errors >= 0.0)

    def test_distance_is_90th_percentile(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_avg"))
        rebuilt = reconstruct(reduced)
        errors = timestamp_errors(small_late_sender_trace, rebuilt)
        expected = float(np.percentile(errors, 90))
        assert approximation_distance(small_late_sender_trace, rebuilt) == pytest.approx(expected)

    def test_quantile_parameter(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("iter_avg"))
        rebuilt = reconstruct(reduced)
        p50 = approximation_distance(small_late_sender_trace, rebuilt, quantile=50)
        p99 = approximation_distance(small_late_sender_trace, rebuilt, quantile=99)
        assert p50 <= p99

    def test_rank_count_mismatch_rejected(self, small_late_sender_trace):
        other = SegmentedTrace(name="x", ranks=small_late_sender_trace.ranks[:2])
        with pytest.raises(ValueError):
            approximation_distance(small_late_sender_trace, other)

    def test_structural_mismatch_rejected(self, small_late_sender_trace):
        truncated = SegmentedTrace(
            name="x",
            ranks=[
                SegmentedRankTrace(rank=r.rank, segments=r.segments[:-1])
                for r in small_late_sender_trace.ranks
            ],
        )
        with pytest.raises(ValueError, match="structurally identical"):
            approximation_distance(small_late_sender_trace, truncated)

    def test_looser_threshold_not_more_accurate(self, small_dynlb_trace):
        """Larger thresholds admit more error (weak monotonicity)."""
        def distance(threshold):
            reduced = reduce_trace(small_dynlb_trace, create_metric("absDiff", threshold))
            return approximation_distance(small_dynlb_trace, reconstruct(reduced))

        assert distance(10.0) <= distance(1e5) + 1e-9


class TestRetainsTrends:
    def test_identical_trace_retains(self, small_late_sender_trace):
        result = retains_trends(small_late_sender_trace, small_late_sender_trace)
        assert result.retained

    def test_accepts_precomputed_report(self, small_late_sender_trace):
        from repro.analysis.expert import analyze

        report = analyze(small_late_sender_trace)
        result = retains_trends(
            small_late_sender_trace, small_late_sender_trace, full_report=report
        )
        assert result.retained

    def test_reduction_with_reasonable_threshold_retains(self, small_late_sender_trace):
        reduced = reduce_trace(small_late_sender_trace, create_metric("avgWave"))
        rebuilt = reconstruct(reduced)
        assert retains_trends(small_late_sender_trace, rebuilt).retained
