"""Tests for the discrete-event engine and its MPI blocking semantics."""

import pytest

from repro.simulator.engine import DeadlockError, SimulationEngine, SimulatorConfig, simulate
from repro.simulator.machine import MachineModel
from repro.simulator.noise import NoiseSource, PeriodicNoise
from repro.simulator.program import build_program
from repro.trace.records import RecordKind


def _events_by_rank(trace):
    segmented = trace.segmented()
    return {r.rank: list(r.events()) for r in segmented.ranks}


def _event(events, name, occurrence=0):
    found = [e for e in events if e.name == name]
    return found[occurrence]


def _config(**kwargs):
    kwargs.setdefault("start_skew", 0.0)
    return SimulatorConfig(**kwargs)


def _run(nprocs, body, **config_kwargs):
    program = build_program("test", nprocs, body)
    return simulate(program, _config(**config_kwargs))


class TestBasicExecution:
    def test_compute_duration_recorded(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("work", 123.0)

        events = _events_by_rank(_run(1, body))
        work = _event(events[0], "work")
        assert work.duration == pytest.approx(123.0)

    def test_records_well_formed(self):
        def body(b, rank):
            with b.segment("init"):
                b.mpi_init()
            for _ in b.loop("main.1", 2):
                b.compute("w", 10.0)
                b.barrier()

        trace = _run(2, body)
        for rank_trace in trace.ranks:
            kinds = [r.kind for r in rank_trace.records]
            assert kinds.count(RecordKind.ENTER) == kinds.count(RecordKind.EXIT)
            assert kinds.count(RecordKind.SEGMENT_BEGIN) == kinds.count(RecordKind.SEGMENT_END)
            times = [r.timestamp for r in rank_trace.records]
            assert times == sorted(times), "rank-local clock must be monotonic"

    def test_deterministic_given_seed(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 10.0)
                b.barrier()

        program = build_program("test", 2, body)
        t1 = simulate(program, SimulatorConfig(seed=5))
        t2 = simulate(program, SimulatorConfig(seed=5))
        ts1 = [r.timestamp for rank in t1.ranks for r in rank.records]
        ts2 = [r.timestamp for rank in t2.ranks for r in rank.records]
        assert ts1 == ts2

    def test_start_skew_bounded(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 1.0)

        trace = simulate(build_program("t", 4, body), SimulatorConfig(start_skew=25.0, seed=1))
        starts = [rank.records[0].timestamp for rank in trace.ranks]
        assert all(0.0 <= s <= 25.0 for s in starts)
        assert len(set(starts)) > 1

    def test_empty_program(self):
        trace = _run(2, lambda b, rank: None)
        assert trace.nprocs == 2
        assert trace.num_records == 0


class TestPointToPoint:
    def test_late_sender_makes_receiver_wait(self):
        def body(b, rank):
            with b.segment("s"):
                if rank == 0:
                    b.compute("w", 500.0)
                    b.send(1)
                else:
                    b.compute("w", 100.0)
                    b.recv(0)

        events = _events_by_rank(_run(2, body))
        recv = _event(events[1], "MPI_Recv")
        send = _event(events[0], "MPI_Send")
        # receiver entered at ~100 and cannot leave before the send at ~500
        assert recv.start == pytest.approx(100.0, abs=1.0)
        assert recv.end > send.start
        assert recv.duration > 350.0

    def test_early_sender_receiver_does_not_wait(self):
        def body(b, rank):
            with b.segment("s"):
                if rank == 0:
                    b.compute("w", 10.0)
                    b.send(1)
                else:
                    b.compute("w", 500.0)
                    b.recv(0)

        events = _events_by_rank(_run(2, body))
        recv = _event(events[1], "MPI_Recv")
        assert recv.duration < 50.0

    def test_standard_send_does_not_block(self):
        def body(b, rank):
            with b.segment("s"):
                if rank == 0:
                    b.send(1)
                    b.compute("after_send", 1.0)
                else:
                    b.compute("w", 1000.0)
                    b.recv(0)

        events = _events_by_rank(_run(2, body))
        send = _event(events[0], "MPI_Send")
        assert send.duration < 50.0, "eager send completes locally"

    def test_ssend_blocks_until_receiver_arrives(self):
        def body(b, rank):
            with b.segment("s"):
                if rank == 0:
                    b.compute("w", 100.0)
                    b.ssend(1)
                else:
                    b.compute("w", 600.0)
                    b.recv(0)

        events = _events_by_rank(_run(2, body))
        ssend = _event(events[0], "MPI_Ssend")
        recv = _event(events[1], "MPI_Recv")
        assert ssend.end >= recv.start
        assert ssend.duration > 400.0

    def test_message_order_preserved_per_tag(self):
        def body(b, rank):
            with b.segment("s"):
                if rank == 0:
                    b.compute("w", 10.0)
                    b.send(1, tag=5)
                    b.compute("w", 10.0)
                    b.send(1, tag=5)
                else:
                    b.recv(0, tag=5)
                    b.recv(0, tag=5)

        events = _events_by_rank(_run(2, body))
        recvs = [e for e in events[1] if e.name == "MPI_Recv"]
        assert recvs[0].end <= recvs[1].end

    def test_sendrecv_synchronises_pair(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 100.0 if rank == 0 else 400.0)
                b.sendrecv(1 - rank)

        events = _events_by_rank(_run(2, body))
        a = _event(events[0], "MPI_Sendrecv")
        b_ = _event(events[1], "MPI_Sendrecv")
        # both calls finish shortly after the late rank arrived
        assert a.end == pytest.approx(b_.end, abs=50.0)
        assert a.duration > 250.0  # rank 0 waited for rank 1
        assert b_.duration < 100.0  # rank 1 found its message already waiting

    def test_sendrecv_ring_shift_does_not_deadlock(self):
        """A ring halo exchange (send right, receive from left) must progress —
        the send half is eager, so no cyclic blocking occurs."""
        nprocs = 4

        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 50.0 * (rank + 1))
                b.sendrecv((rank + 1) % nprocs, source=(rank - 1) % nprocs)

        events = _events_by_rank(_run(nprocs, body))
        for rank in range(nprocs):
            assert _event(events[rank], "MPI_Sendrecv").duration >= 0.0

    def test_deadlock_detected(self):
        def body(b, rank):
            with b.segment("s"):
                b.recv(1 - rank)

        with pytest.raises(DeadlockError):
            _run(2, body)


class TestCollectives:
    def test_barrier_everyone_leaves_after_last_arrival(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 100.0 * (rank + 1))
                b.barrier()

        events = _events_by_rank(_run(4, body))
        exits = [ _event(events[r], "MPI_Barrier").end for r in range(4) ]
        enters = [ _event(events[r], "MPI_Barrier").start for r in range(4) ]
        assert max(enters) == pytest.approx(400.0, abs=1.0)
        assert all(e == pytest.approx(exits[0], abs=1e-6) for e in exits)
        assert exits[0] > max(enters)

    def test_bcast_receivers_wait_for_root(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 500.0 if rank == 0 else 50.0)
                b.bcast(0)

        events = _events_by_rank(_run(4, body))
        root = _event(events[0], "MPI_Bcast")
        other = _event(events[2], "MPI_Bcast")
        assert other.duration > 400.0
        assert root.duration < 100.0

    def test_bcast_root_does_not_wait_for_receivers(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 50.0 if rank == 0 else 500.0)
                b.bcast(0)

        events = _events_by_rank(_run(4, body))
        root = _event(events[0], "MPI_Bcast")
        assert root.duration < 100.0

    def test_gather_root_waits_for_last_sender(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 50.0 if rank == 0 else 500.0)
                b.gather(0)

        events = _events_by_rank(_run(4, body))
        root = _event(events[0], "MPI_Gather")
        sender = _event(events[3], "MPI_Gather")
        assert root.duration > 400.0
        assert sender.duration < 100.0

    def test_reduce_non_root_leaves_quickly(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 50.0 if rank == 1 else 300.0)
                b.reduce(1)

        events = _events_by_rank(_run(4, body))
        assert _event(events[1], "MPI_Reduce").duration > 200.0
        assert _event(events[0], "MPI_Reduce").duration < 100.0

    def test_alltoall_waits_for_last(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 100.0 * (rank + 1))
                b.alltoall()

        events = _events_by_rank(_run(3, body))
        fastest = _event(events[0], "MPI_Alltoall")
        slowest = _event(events[2], "MPI_Alltoall")
        assert fastest.duration > slowest.duration

    def test_collective_mismatch_raises(self):
        def body(b, rank):
            with b.segment("s"):
                if rank == 0:
                    b.barrier()
                else:
                    b.bcast(1)

        with pytest.raises(DeadlockError, match="mismatch"):
            _run(2, body)

    def test_root_mismatch_raises(self):
        def body(b, rank):
            with b.segment("s"):
                b.bcast(rank)  # every rank names a different root

        with pytest.raises(DeadlockError, match="mismatch"):
            _run(2, body)


class TestNoiseInteraction:
    def test_noise_inflates_compute(self):
        noise = PeriodicNoise([[NoiseSource(period=50.0, duration=10.0, phase=0.0)]])

        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 200.0)

        quiet = _events_by_rank(_run(1, body))
        noisy = _events_by_rank(_run(1, body, noise=noise))
        assert _event(noisy[0], "w").duration > _event(quiet[0], "w").duration

    def test_noise_does_not_affect_other_ranks(self):
        noise = PeriodicNoise([[NoiseSource(50.0, 10.0)], []])

        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 200.0)

        events = _events_by_rank(_run(2, body, noise=noise))
        assert _event(events[1], "w").duration == pytest.approx(200.0)
        assert _event(events[0], "w").duration > 200.0


class TestEngineReuse:
    def test_engine_run_returns_trace_named_after_program(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", 1.0)

        program = build_program("my_program", 1, body)
        trace = SimulationEngine(program, _config()).run()
        assert trace.name == "my_program"
