"""Tests for the machine cost model."""

import pytest

from repro.simulator.machine import MachineModel


class TestMachineModel:
    def test_defaults_valid(self):
        MachineModel()

    def test_transfer_time_grows_with_bytes(self):
        m = MachineModel()
        assert m.transfer_time(10_000) > m.transfer_time(10)

    def test_transfer_time_includes_latency(self):
        m = MachineModel(latency=7.0, bandwidth=1000.0)
        assert m.transfer_time(0) == pytest.approx(7.0)

    def test_local_send_cost_positive(self):
        assert MachineModel().local_send_cost(1024) > 0

    def test_collective_cost_grows_with_ranks(self):
        m = MachineModel()
        assert m.collective_cost(32, 0) > m.collective_cost(2, 0)

    def test_collective_cost_single_rank(self):
        m = MachineModel(collective_base=5.0, collective_log_factor=3.0)
        assert m.collective_cost(1, 0) == pytest.approx(5.0)

    def test_collective_cost_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            MachineModel().collective_cost(0, 0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(latency=-1.0)


class TestCostMagnitudes:
    def test_communication_small_relative_to_millisecond_work(self):
        """The paper's benchmarks do ~1 ms of work per iteration; the default
        machine model must keep MPI costs well below that so application
        imbalance, not the interconnect, dominates the diagnoses."""
        m = MachineModel()
        assert m.transfer_time(1024) < 100.0
        assert m.collective_cost(32, 1024) < 100.0
