"""Tests for the system-interference noise models."""

import pytest

from repro.simulator.noise import NoiseSource, NullNoise, PeriodicNoise, asci_q_noise


class TestNoiseSource:
    def test_counts_firings_in_window(self):
        source = NoiseSource(period=10.0, duration=1.0, phase=0.0)
        # fire times 0, 10, 20, ...
        assert source.firings_in(0.0, 25.0) == 3

    def test_half_open_interval(self):
        source = NoiseSource(period=10.0, duration=1.0, phase=0.0)
        assert source.firings_in(0.0, 20.0) == 2  # fires at 0 and 10; 20 excluded

    def test_phase_offset(self):
        source = NoiseSource(period=10.0, duration=1.0, phase=5.0)
        assert source.firings_in(0.0, 5.0) == 0
        assert source.firings_in(0.0, 6.0) == 1

    def test_window_before_phase(self):
        source = NoiseSource(period=10.0, duration=1.0, phase=100.0)
        assert source.firings_in(0.0, 50.0) == 0

    def test_empty_window(self):
        source = NoiseSource(period=10.0, duration=1.0)
        assert source.firings_in(5.0, 5.0) == 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            NoiseSource(period=0.0, duration=1.0)


class TestNullNoise:
    def test_always_zero(self):
        noise = NullNoise()
        assert noise.extra_delay(0, 0.0, 1000.0) == 0.0
        assert noise.extra_delay(5, 1e9, 1.0) == 0.0


class TestPeriodicNoise:
    def test_extra_delay_accumulates_sources(self):
        noise = PeriodicNoise([[NoiseSource(10.0, 2.0, 0.0), NoiseSource(100.0, 50.0, 0.0)]])
        # window [0, 100): source A fires 10 times (20 µs), source B once (50 µs)
        assert noise.extra_delay(0, 0.0, 100.0) == pytest.approx(10 * 2.0 + 50.0)

    def test_zero_duration_no_delay(self):
        noise = PeriodicNoise([[NoiseSource(10.0, 2.0, 0.0)]])
        assert noise.extra_delay(0, 0.0, 0.0) == 0.0

    def test_unknown_rank_rejected(self):
        noise = PeriodicNoise([[NoiseSource(10.0, 2.0, 0.0)]])
        with pytest.raises(IndexError):
            noise.extra_delay(3, 0.0, 10.0)

    def test_nprocs(self):
        assert PeriodicNoise([[], []]).nprocs == 2


class TestAsciQNoise:
    def test_builds_sources_for_every_rank(self):
        noise = asci_q_noise(8, 32, seed=1)
        assert noise.nprocs == 8
        assert all(len(noise.sources_for(r)) > 0 for r in range(8))

    def test_larger_machine_has_stronger_noise(self):
        small = asci_q_noise(8, 32, seed=1)
        large = asci_q_noise(8, 1024, seed=1)
        small_total = sum(s.duration for s in small.sources_for(0))
        large_total = sum(s.duration for s in large.sources_for(0))
        assert large_total > small_total

    def test_phases_differ_between_ranks(self):
        noise = asci_q_noise(4, 32, seed=1)
        phases0 = [s.phase for s in noise.sources_for(0)]
        phases1 = [s.phase for s in noise.sources_for(1)]
        assert phases0 != phases1

    def test_deterministic_for_seed(self):
        a = asci_q_noise(4, 32, seed=9)
        b = asci_q_noise(4, 32, seed=9)
        assert [s.phase for s in a.sources_for(2)] == [s.phase for s in b.sources_for(2)]

    def test_rejects_more_ranks_than_simulated(self):
        with pytest.raises(ValueError):
            asci_q_noise(64, 32)

    def test_rejects_non_positive_nprocs(self):
        with pytest.raises(ValueError):
            asci_q_noise(0, 32)
