"""Tests for the SPMD program model and builder."""

import pytest

from repro.simulator.program import (
    Compute,
    MpiOp,
    Program,
    RankProgramBuilder,
    SegmentBegin,
    SegmentEnd,
    build_program,
)


class TestOps:
    def test_compute_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Compute(name="w", duration=-1.0)

    def test_program_validates_rank_count(self):
        with pytest.raises(ValueError):
            Program(name="p", nprocs=2, rank_ops=[[]])

    def test_program_num_ops(self):
        program = Program(name="p", nprocs=1, rank_ops=[[Compute("w", 1.0)]])
        assert program.num_ops == 1

    def test_ops_for_checks_rank(self):
        program = Program(name="p", nprocs=1, rank_ops=[[]])
        with pytest.raises(ValueError):
            program.ops_for(1)


class TestBuilderSegments:
    def test_segment_context_manager(self):
        b = RankProgramBuilder(0, 2)
        with b.segment("init"):
            b.compute("w", 1.0)
        ops = b.finish()
        assert isinstance(ops[0], SegmentBegin) and ops[0].context == "init"
        assert isinstance(ops[-1], SegmentEnd) and ops[-1].context == "init"

    def test_nested_segments_rejected(self):
        b = RankProgramBuilder(0, 2)
        b.begin_segment("a")
        with pytest.raises(ValueError, match="nest"):
            b.begin_segment("b")

    def test_mismatched_end_rejected(self):
        b = RankProgramBuilder(0, 2)
        b.begin_segment("a")
        with pytest.raises(ValueError):
            b.end_segment("b")

    def test_unclosed_segment_rejected_at_finish(self):
        b = RankProgramBuilder(0, 2)
        b.begin_segment("a")
        with pytest.raises(ValueError, match="still open"):
            b.finish()

    def test_loop_wraps_each_iteration(self):
        b = RankProgramBuilder(0, 2)
        for i in b.loop("main.1", 3):
            b.compute("w", float(i))
        ops = b.finish()
        begins = [op for op in ops if isinstance(op, SegmentBegin)]
        ends = [op for op in ops if isinstance(op, SegmentEnd)]
        assert len(begins) == len(ends) == 3
        assert all(op.context == "main.1" for op in begins)

    def test_loop_zero_iterations(self):
        b = RankProgramBuilder(0, 2)
        for _ in b.loop("main.1", 0):
            pytest.fail("loop body should not run")
        assert b.finish() == []

    def test_loop_negative_rejected(self):
        b = RankProgramBuilder(0, 2)
        with pytest.raises(ValueError):
            list(b.loop("main.1", -1))


class TestBuilderMpi:
    def test_default_function_names(self):
        b = RankProgramBuilder(0, 4)
        with b.segment("s"):
            b.send(1)
            b.recv(1)
            b.barrier()
            b.alltoall()
        names = [op.name for op in b.finish() if isinstance(op, MpiOp)]
        assert names == ["MPI_Send", "MPI_Recv", "MPI_Barrier", "MPI_Alltoall"]

    def test_name_override(self):
        b = RankProgramBuilder(0, 4)
        with b.segment("s"):
            b.recv(1, name="pmpi_recv")
        op = [op for op in b.finish() if isinstance(op, MpiOp)][0]
        assert op.name == "pmpi_recv"
        assert op.info.op == "recv"

    def test_peer_validation(self):
        b = RankProgramBuilder(0, 4)
        with pytest.raises(ValueError):
            b.send(4)

    def test_root_validation(self):
        b = RankProgramBuilder(0, 4)
        with pytest.raises(ValueError):
            b.bcast(7)

    def test_mpi_init_finalize_are_barriers(self):
        b = RankProgramBuilder(0, 2)
        with b.segment("init"):
            b.mpi_init()
        with b.segment("final"):
            b.mpi_finalize()
        mpi_ops = [op for op in b.finish() if isinstance(op, MpiOp)]
        assert [op.name for op in mpi_ops] == ["MPI_Init", "MPI_Finalize"]
        assert all(op.info.op == "barrier" for op in mpi_ops)


class TestBuildProgram:
    def test_builds_all_ranks(self):
        def body(b, rank):
            with b.segment("s"):
                b.compute("w", float(rank))

        program = build_program("p", 3, body)
        assert program.nprocs == 3
        durations = [
            op.duration for ops in program.rank_ops for op in ops if isinstance(op, Compute)
        ]
        assert durations == [0.0, 1.0, 2.0]

    def test_body_error_propagates(self):
        def body(b, rank):
            b.begin_segment("s")  # never closed

        with pytest.raises(ValueError):
            build_program("p", 2, body)
