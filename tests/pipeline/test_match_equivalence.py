"""Randomized batch-vs-scan equivalence: the batched matching engine must
produce byte-identical reduced traces to the legacy per-candidate scan for
all 9 metrics, across thresholds and workload shapes.

The legacy scan (``TraceReducer(batch=False)``) is the oracle: it is the
paper's algorithm as originally implemented, one candidate at a time.  The
batched path replays the same reduction through cached representative
vectors, per-key candidate matrices, and the metrics' ``match_batch``
kernels — any drift in vector layout, first-match ordering, limit math, or
cache invalidation shows up as a serialization mismatch here.
"""

import numpy as np
import pytest

from repro.core.metrics import DEFAULT_THRESHOLDS, METRIC_NAMES, create_metric
from repro.core.metrics.distance import AbsDiff
from repro.core.reducer import TraceReducer
from repro.pipeline.engine import PipelineConfig, reduce_pipeline
from repro.trace.io import serialize_reduced_trace
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

from tests.conftest import make_segment

#: Per-metric threshold sweep: the paper default plus a strict and a loose
#: setting, to cover high-, mid-, and low-match-rate regimes.
THRESHOLDS = {
    "relDiff": (0.01, 0.8, 1.0),
    "absDiff": (1.0, 1000.0, 1e6),
    "manhattan": (0.01, 0.4, 1.0),
    "euclidean": (0.001, 0.2, 1.0),
    "chebyshev": (0.001, 0.2, 1.0),
    "avgWave": (0.01, 0.2, 1.0),
    "haarWave": (0.01, 0.2, 1.0),
    "iter_k": (1, 10),
    "iter_avg": (None,),
}


def _random_rank(rng: np.random.Generator, rank: int, n_segments: int) -> SegmentedRankTrace:
    """A rank of jittered loop iterations over a few structural patterns."""
    patterns = [
        ("main.1", [("do_work", 1.0, 40.0), ("MPI_Barrier", 41.0, 50.0)], 55.0),
        ("main.2", [("exchange", 2.0, 12.0)], 20.0),
        ("main.2.1", [("solve", 0.5, 8.0), ("reduce", 9.0, 15.0), ("sync", 15.5, 18.0)], 19.0),
    ]
    segments = []
    t = 0.0
    for index in range(n_segments):
        context, events, end = patterns[int(rng.integers(len(patterns)))]
        # Multiplicative jitter keeps orderings valid while varying scale
        # enough that every threshold regime sees both matches and misses.
        scale = float(rng.choice([1.0, 1.0, 1.0, 1.5, 4.0])) * (
            1.0 + 0.1 * float(rng.standard_normal())
        )
        scale = max(scale, 0.05)
        jittered = [(name, s * scale, e * scale) for name, s, e in events]
        seg = make_segment(context, jittered, start=0.0, end=end * scale, index=index).shifted(t)
        segments.append(seg)
        t += end * scale + float(rng.uniform(1.0, 10.0))
    return SegmentedRankTrace(rank=rank, segments=segments)


def _random_trace(seed: int, nprocs: int = 3, n_segments: int = 60) -> SegmentedTrace:
    rng = np.random.default_rng(seed)
    return SegmentedTrace(
        name=f"random_{seed}",
        ranks=[_random_rank(rng, rank, n_segments) for rank in range(nprocs)],
    )


@pytest.fixture(scope="module", params=[11, 23])
def random_trace(request):
    return _random_trace(request.param)


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
class TestBatchScanEquivalence:
    def test_byte_identical_across_thresholds(self, random_trace, metric_name):
        for threshold in THRESHOLDS[metric_name]:
            scanned = TraceReducer(
                create_metric(metric_name, threshold), batch=False
            ).reduce(random_trace)
            batched = TraceReducer(
                create_metric(metric_name, threshold), batch=True
            ).reduce(random_trace)
            assert serialize_reduced_trace(batched) == serialize_reduced_trace(scanned), (
                f"{metric_name}({threshold}) batched output diverged from the scan"
            )

    def test_pipeline_default_path_matches_scan(self, random_trace, metric_name):
        scanned = TraceReducer(
            create_metric(metric_name), batch=False
        ).reduce(random_trace)
        piped = reduce_pipeline(
            random_trace, create_metric(metric_name), PipelineConfig(executor="serial")
        )
        assert serialize_reduced_trace(piped.reduced) == serialize_reduced_trace(scanned)


class TestIterAvgInvalidation:
    """iter_avg mutates stored timestamps via update_mean; cached vectors and
    candidate-matrix rows must be refreshed, not served stale."""

    def test_iter_avg_batch_equals_scan(self, random_trace):
        scanned = TraceReducer(create_metric("iter_avg"), batch=False).reduce(random_trace)
        batched = TraceReducer(create_metric("iter_avg"), batch=True).reduce(random_trace)
        assert serialize_reduced_trace(batched) == serialize_reduced_trace(scanned)

    def test_mutating_distance_metric_refreshes_matrix_rows(self, random_trace):
        """A distance metric that averages on match (iter_avg-style mutation
        on the batched matrix path) must stay byte-identical to the scan —
        this fails if stale cached rows survive update_mean."""

        class AveragingAbsDiff(AbsDiff):
            name = "absDiffAvg"
            mutates_stored = True

            def on_match(self, candidate, chosen):
                chosen.update_mean(candidate.timestamps())

        def run(batch):
            return serialize_reduced_trace(
                TraceReducer(AveragingAbsDiff(25.0), batch=batch).reduce(random_trace)
            )

        assert run(True) == run(False)

    def test_update_mean_invalidates_between_matches(self):
        """Two consecutive candidates folded into one representative: the
        second match must be judged against the *updated* mean."""

        class AveragingAbsDiff(AbsDiff):
            mutates_stored = True

            def on_match(self, candidate, chosen):
                chosen.update_mean(candidate.timestamps())

        base = [("f", 1.0, 10.0)]
        segments = [
            make_segment("c", base, end=20.0, index=0),
            make_segment("c", [("f", 1.0, 14.0)], end=24.0, index=1),
            # Matches the (12.0-ish) running mean but not the original 10.0
            # if the cached row went stale the decision would differ.
            make_segment("c", [("f", 1.0, 17.0)], end=27.0, index=2),
        ]
        scanned = TraceReducer(AveragingAbsDiff(5.0), batch=False).reduce_segments(segments)
        batched = TraceReducer(AveragingAbsDiff(5.0), batch=True).reduce_segments(segments)
        assert scanned.n_matches == batched.n_matches
        assert [s.segment_id for s in scanned.stored] == [s.segment_id for s in batched.stored]
        np.testing.assert_allclose(
            scanned.stored[0].timestamps(), batched.stored[0].timestamps()
        )
