"""Tests for the parallel reduction engine and its instrumentation."""

import pytest

from repro.core.metrics import create_metric
from repro.core.reducer import TraceReducer
from repro.pipeline.engine import PipelineConfig, ReductionPipeline, reduce_pipeline
from repro.pipeline.stats import PipelineStats, time_stage
from repro.trace.io import serialize_reduced_trace, write_trace


@pytest.fixture(params=["serial", "thread", "process"])
def executor(request):
    return request.param


class TestConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.executor == "process"
        assert config.store_capacity is None
        assert not config.merge

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            PipelineConfig(executor="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            PipelineConfig(workers=0)

    def test_serial_resolves_one_worker(self):
        assert PipelineConfig(executor="serial", workers=8).resolved_workers() == 1

    def test_metric_type_checked(self):
        with pytest.raises(TypeError, match="SimilarityMetric"):
            ReductionPipeline(object())


class TestEngineOutput:
    def test_identical_to_serial_reducer(self, small_late_sender_trace, executor):
        metric_name = "euclidean"
        serial = TraceReducer(create_metric(metric_name)).reduce(small_late_sender_trace)
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric(metric_name),
            PipelineConfig(executor=executor, workers=2),
        )
        assert serialize_reduced_trace(result.reduced) == serialize_reduced_trace(serial)
        assert result.reduced.name == small_late_sender_trace.name
        assert result.reduced.method == metric_name

    def test_rank_order_is_deterministic(self, small_dynlb_trace, executor):
        result = reduce_pipeline(
            small_dynlb_trace,
            create_metric("relDiff"),
            PipelineConfig(executor=executor, workers=2, max_pending=2),
        )
        assert [r.rank for r in result.reduced.ranks] == [0, 1, 2, 3]

    def test_reduces_straight_from_file(self, tmp_path, small_late_sender_trace):
        from repro.benchmarks_ats import late_sender

        workload = late_sender(nprocs=4, iterations=6, seed=3)
        raw = workload.run()
        path = tmp_path / "trace.txt"
        write_trace(raw, path)
        from_file = reduce_pipeline(
            path, create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        in_memory = TraceReducer(create_metric("relDiff")).reduce(raw.segmented())
        # File timestamps are rounded to two decimals, so compare shape only.
        assert from_file.reduced.nprocs == in_memory.nprocs
        assert from_file.reduced.n_segments == in_memory.n_segments
        assert from_file.reduced.name == "trace"

    def test_pickling_pool_path_matches_serial_on_files(self, tmp_path):
        """File sources can't be fork-shared, so this exercises payload pickling."""
        from repro.benchmarks_ats import late_sender

        raw = late_sender(nprocs=4, iterations=6, seed=3).run()
        path = tmp_path / "trace.txt"
        write_trace(raw, path)
        serial = reduce_pipeline(
            path, create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        pooled = reduce_pipeline(
            path, create_metric("relDiff"), PipelineConfig(executor="process", workers=2)
        )
        assert serialize_reduced_trace(pooled.reduced) == serialize_reduced_trace(serial.reduced)

    def test_merge_stage(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric("relDiff"),
            PipelineConfig(executor="serial", merge=True),
        )
        assert result.merged is not None
        assert result.merged.n_stored + result.merged.n_duplicates == result.reduced.n_stored
        assert result.stats.merged_stored == result.merged.n_stored
        assert "merge" in result.stats.stage_seconds

    def test_no_merge_by_default(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace, create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        assert result.merged is None

    def test_bounded_store_caps_candidates(self, small_dynlb_trace):
        unbounded = reduce_pipeline(
            small_dynlb_trace, create_metric("iter_k", 1000), PipelineConfig(executor="serial")
        )
        bounded = reduce_pipeline(
            small_dynlb_trace,
            create_metric("iter_k", 1000),
            PipelineConfig(executor="serial", store_capacity=1),
        )
        # iter_k(1000) stores every unmatched execution; with the store capped
        # at one representative per rank, evictions must occur and at least as
        # many representatives are stored.
        assert bounded.stats.store.evictions > 0
        assert bounded.reduced.n_stored >= unbounded.reduced.n_stored


class TestAutoDowngrade:
    """A pooled executor with one effective worker is pure IPC overhead, so
    the engine silently runs the serial path instead (output unchanged)."""

    @pytest.mark.parametrize("pooled", ["thread", "process"])
    def test_one_worker_pool_downgrades_to_serial(self, small_late_sender_trace, pooled):
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric("relDiff"),
            PipelineConfig(executor=pooled, workers=1),
        )
        assert result.stats.executor == "serial"
        assert result.stats.requested_executor == pooled
        assert result.stats.downgraded

    def test_downgraded_output_identical(self, small_late_sender_trace):
        serial = reduce_pipeline(
            small_late_sender_trace, create_metric("euclidean"), PipelineConfig(executor="serial")
        )
        downgraded = reduce_pipeline(
            small_late_sender_trace,
            create_metric("euclidean"),
            PipelineConfig(executor="process", workers=1),
        )
        assert serialize_reduced_trace(downgraded.reduced) == serialize_reduced_trace(
            serial.reduced
        )

    def test_single_rank_trace_downgrades_even_with_many_workers(self, small_late_sender_trace):
        from repro.trace.trace import SegmentedTrace

        one_rank = SegmentedTrace(
            name="one_rank", ranks=[small_late_sender_trace.ranks[0]]
        )
        result = reduce_pipeline(
            one_rank, create_metric("relDiff"), PipelineConfig(executor="process", workers=4)
        )
        assert result.stats.executor == "serial"
        assert result.stats.downgraded

    def test_multi_worker_pool_not_downgraded(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric("relDiff"),
            PipelineConfig(executor="thread", workers=2),
        )
        assert result.stats.executor == "thread"
        assert not result.stats.downgraded

    def test_serial_is_never_marked_downgraded(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace, create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        assert result.stats.executor == "serial"
        assert not result.stats.downgraded

    def test_downgrade_noted_in_stats_rows(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric("relDiff"),
            PipelineConfig(executor="process", workers=1),
        )
        executor_row = next(row for row in result.stats.rows() if row[0] == "executor")
        assert "auto-downgraded" in executor_row[1]


class TestStats:
    def test_counters_filled(self, small_late_sender_trace, executor):
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric("relDiff"),
            PipelineConfig(executor=executor, workers=2),
        )
        stats = result.stats
        assert stats.nprocs == 4
        assert stats.n_segments == result.reduced.n_segments
        assert stats.n_stored == result.reduced.n_stored
        assert stats.total_seconds > 0.0
        assert stats.segments_per_second > 0.0
        assert stats.store.lookups == stats.n_segments
        assert stats.store.hits == stats.n_possible_matches
        assert stats.stage_seconds.get("reduce", 0.0) >= 0.0
        assert stats.match.calls == stats.n_possible_matches
        assert stats.match.rows_compared >= stats.match.calls
        assert stats.match.seconds >= 0.0

    def test_match_rate_matches_degree_of_matching(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace, create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        assert result.stats.match_rate == result.reduced.degree_of_matching()

    def test_rows_render(self, small_late_sender_trace):
        result = reduce_pipeline(
            small_late_sender_trace, create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        rows = result.stats.rows()
        assert ["ranks", 4] in rows
        assert any(row[0] == "segments / second" for row in rows)

    def test_time_stage_accumulates(self):
        stats = PipelineStats(executor="serial", workers=1)
        with time_stage(stats, "ingest"):
            pass
        with time_stage(stats, "ingest"):
            pass
        assert stats.stage_seconds["ingest"] >= 0.0

    def test_empty_run(self):
        from repro.trace.trace import SegmentedTrace

        result = reduce_pipeline(
            SegmentedTrace(name="empty"), create_metric("relDiff"),
            PipelineConfig(executor="serial"),
        )
        assert result.reduced.nprocs == 0
        assert result.stats.match_rate == 1.0
        assert result.stats.segments_per_second >= 0.0
