"""Pipeline-vs-serial equivalence: every metric, every criterion.

The acceptance bar for the pipeline: for each similarity method the parallel
path must produce a byte-identical reduced-trace serialization and identical
values for all four evaluation criteria (file size %, degree of matching,
approximation distance, retention of trends).
"""

import pytest

from repro.core.metrics import METRIC_NAMES, create_metric
from repro.evaluation.runner import PreparedWorkload, evaluate_method
from repro.pipeline.engine import PipelineConfig
from repro.trace.io import serialize_reduced_trace


@pytest.fixture(scope="module")
def prepared(small_late_sender_trace):
    return PreparedWorkload.from_segmented("late_sender", small_late_sender_trace)


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
class TestEveryMetric:
    def test_serialization_identical(self, small_late_sender_trace, metric_name):
        from repro.core.reducer import TraceReducer
        from repro.pipeline.engine import reduce_pipeline

        serial = TraceReducer(create_metric(metric_name)).reduce(small_late_sender_trace)
        parallel = reduce_pipeline(
            small_late_sender_trace,
            create_metric(metric_name),
            PipelineConfig(executor="thread", workers=2),
        ).reduced
        assert serialize_reduced_trace(parallel) == serialize_reduced_trace(serial)

    def test_all_criteria_identical(self, prepared, metric_name):
        serial = evaluate_method(prepared, create_metric(metric_name), keep_comparison=False)
        pipeline = evaluate_method(
            prepared,
            create_metric(metric_name),
            keep_comparison=False,
            backend="pipeline",
            pipeline_config=PipelineConfig(executor="thread", workers=2),
        )
        assert pipeline.pct_file_size == serial.pct_file_size
        assert pipeline.degree_of_matching == serial.degree_of_matching
        assert pipeline.approx_distance_us == serial.approx_distance_us
        assert pipeline.trends_retained == serial.trends_retained
        assert pipeline.reduced_bytes == serial.reduced_bytes
        assert pipeline.n_segments == serial.n_segments
        assert pipeline.n_stored == serial.n_stored


class TestBackendValidation:
    def test_unknown_backend_rejected(self, prepared):
        with pytest.raises(ValueError, match="backend"):
            evaluate_method(prepared, create_metric("relDiff"), backend="quantum")

    def test_process_backend_matches_too(self, prepared):
        serial = evaluate_method(prepared, create_metric("relDiff"), keep_comparison=False)
        pipeline = evaluate_method(
            prepared,
            create_metric("relDiff"),
            keep_comparison=False,
            backend="pipeline",
            pipeline_config=PipelineConfig(executor="process", workers=2),
        )
        assert pipeline.pct_file_size == serial.pct_file_size
        assert pipeline.degree_of_matching == serial.degree_of_matching
