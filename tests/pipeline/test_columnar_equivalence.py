"""Columnar-vs-serial equivalence: the acceptance suite of the frame path.

The columnar ingest-to-match path (``RankFrame`` + ``reduce_frame`` + the
frame-fed sweep engine) must be invisible in the output: for every one of the
nine similarity metrics, over every source kind (in-memory, text file,
``.rpb`` file) and every dispatch mode (serial inline, sharded pool), the
reduced trace must serialize byte-identical to the segment-at-a-time
:class:`~repro.core.reducer.TraceReducer` oracle run over the *same* source.

Oracles are matched to the source deliberately: text files quantize
timestamps to two decimals, so a file's oracle legitimately differs from the
in-memory trace it was written from.
"""

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.core.reduced import ReducedTrace
from repro.core.reducer import TraceReducer
from repro.pipeline.engine import PipelineConfig, reduce_pipeline, sweep_pipeline
from repro.pipeline.stream import rank_frame_streams, rank_segment_streams
from repro.sweep.engine import sweep_source
from repro.sweep.plan import SweepConfig
from repro.trace.formats import convert_trace
from repro.trace.io import serialize_reduced_trace, write_trace

DISTANCE_METHODS = [
    "relDiff",
    "absDiff",
    "manhattan",
    "euclidean",
    "chebyshev",
    "avgWave",
    "haarWave",
]


@pytest.fixture(scope="module")
def raw_trace():
    return late_sender(nprocs=4, iterations=6, seed=3).run()


@pytest.fixture(scope="module")
def text_path(raw_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("columnar") / "trace.txt"
    write_trace(raw_trace, path)
    return path


@pytest.fixture(scope="module")
def rpb_path(text_path, tmp_path_factory):
    # text -> rpb so both files hold the same (quantized) values and share
    # one oracle per metric
    path = tmp_path_factory.mktemp("columnar") / "trace.rpb"
    convert_trace(text_path, path)
    return path


def _oracle(source, metric_name: str, name: str = "trace") -> bytes:
    reducer = TraceReducer(create_metric(metric_name))
    return serialize_reduced_trace(
        reducer.reduce_streams(name, rank_segment_streams(source))
    )


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
class TestReduceFrame:
    def test_matches_reduce_segments(self, small_late_sender_trace, metric_name):
        """reduce_frame over adapter frames == reduce_segments, per rank."""
        frame_reducer = TraceReducer(create_metric(metric_name))
        oracle_reducer = TraceReducer(create_metric(metric_name))
        framed = ReducedTrace(name="t", method=frame_reducer.metric.name,
                              threshold=frame_reducer.metric.threshold)
        oracle = ReducedTrace(name="t", method=framed.method, threshold=framed.threshold)
        for rank, frame in rank_frame_streams(small_late_sender_trace):
            framed.ranks.append(frame_reducer.reduce_frame(frame))
        for rank, segments in rank_segment_streams(small_late_sender_trace):
            oracle.ranks.append(oracle_reducer.reduce_segments(segments, rank=rank))
        assert serialize_reduced_trace(framed) == serialize_reduced_trace(oracle)


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
class TestPipelineByteIdentity:
    def test_serial_in_memory(self, small_late_sender_trace, metric_name):
        result = reduce_pipeline(
            small_late_sender_trace,
            create_metric(metric_name),
            PipelineConfig(executor="serial"),
        )
        assert serialize_reduced_trace(result.reduced) == _oracle(
            small_late_sender_trace, metric_name, small_late_sender_trace.name
        )

    def test_serial_text_file(self, text_path, metric_name):
        result = reduce_pipeline(
            str(text_path), create_metric(metric_name), PipelineConfig(executor="serial")
        )
        assert serialize_reduced_trace(result.reduced) == _oracle(
            str(text_path), metric_name, text_path.stem
        )

    def test_serial_rpb_file(self, rpb_path, metric_name):
        result = reduce_pipeline(
            str(rpb_path), create_metric(metric_name), PipelineConfig(executor="serial")
        )
        assert serialize_reduced_trace(result.reduced) == _oracle(
            str(rpb_path), metric_name, rpb_path.stem
        )

    def test_sharded_rpb_file(self, rpb_path, metric_name):
        result = reduce_pipeline(
            str(rpb_path),
            create_metric(metric_name),
            PipelineConfig(executor="thread", workers=2),
        )
        assert result.stats.dispatch == "shard"
        assert serialize_reduced_trace(result.reduced) == _oracle(
            str(rpb_path), metric_name, rpb_path.stem
        )


class TestSweepByteIdentity:
    PLAN = [SweepConfig(m, create_metric(m).threshold) for m in METRIC_NAMES]

    def _check(self, result, source):
        for outcome in result.outcomes:
            assert serialize_reduced_trace(outcome.reduced) == _oracle(
                source, outcome.config.method, result.name
            )

    def test_inline_in_memory(self, small_late_sender_trace):
        self._check(
            sweep_source(small_late_sender_trace, self.PLAN), small_late_sender_trace
        )

    def test_inline_text_file(self, text_path):
        self._check(sweep_source(str(text_path), self.PLAN), str(text_path))

    def test_inline_rpb_file(self, rpb_path):
        self._check(sweep_source(str(rpb_path), self.PLAN), str(rpb_path))

    def test_sharded_rpb_file(self, rpb_path):
        result = sweep_pipeline(
            str(rpb_path), self.PLAN, PipelineConfig(executor="thread", workers=2)
        )
        assert result.stats.dispatch == "shard"
        self._check(result, str(rpb_path))


class TestLazyStreamFrames:
    def test_text_stream_frames_equal_list_built_frames(self, tmp_path):
        """Frames built from the forward-only text reader match list-built ones.

        Regression: the adapter's by-object MPI intern memo was keyed on
        ``id()`` without pinning the object, so on lazy streams — where each
        segment dies as soon as it is consumed — a fresh ``MpiCallInfo``
        allocated at a dead one's address inherited the wrong table index,
        silently merging distinct MPI signatures.  Needs a trace with many
        signatures (sweep3d, 32 ranks) to surface; late_sender is too small.
        """
        from repro.core.frames import RankFrame
        from repro.experiments.config import build_workload, get_scale

        trace = build_workload("sweep3d_32p", get_scale("smoke")).run()
        path = tmp_path / "sweep3d.txt"
        write_trace(trace, path)
        stream_frames = dict(rank_frame_streams(str(path)))
        for rank, segments in rank_segment_streams(str(path)):
            from_list = RankFrame.from_segments(rank, list(segments))
            from_stream = stream_frames[rank]
            assert from_list.mpi_table == from_stream.mpi_table
            assert from_list.ev_mpi.tobytes() == from_stream.ev_mpi.tobytes()
            assert from_list.ev_starts.tobytes() == from_stream.ev_starts.tobytes()
            assert from_list.strings == from_stream.strings


class TestLazyMaterializationStats:
    def test_distance_metric_materializes_only_representatives(self, rpb_path):
        result = reduce_pipeline(
            str(rpb_path), create_metric("relDiff"), PipelineConfig(executor="serial")
        )
        stats = result.stats
        n_stored = sum(len(rank.stored) for rank in result.reduced.ranks)
        # default on_match never touches the segment object, so only stored
        # representatives are materialized
        assert stats.segments_materialized == n_stored
        assert 0 < stats.segments_materialized < stats.n_segments

    def test_scan_metric_materializes_everything(self, rpb_path):
        result = reduce_pipeline(
            str(rpb_path), create_metric("iter_k"), PipelineConfig(executor="serial")
        )
        assert result.stats.segments_materialized == result.stats.n_segments

    def test_stats_rows_and_registry(self, rpb_path):
        from repro import obs

        recorder = obs.Recorder(label="test")
        with obs.local_recording(recorder):
            result = reduce_pipeline(
                str(rpb_path), create_metric("relDiff"), PipelineConfig(executor="serial")
            )
        labels = [row[0] for row in result.stats.rows()]
        assert "segments materialized (lazy)" in labels
        counter = recorder.registry.counter("columnar.materialized")
        assert counter.get() == result.stats.segments_materialized

    def test_sweep_stats_rows_and_registry(self, rpb_path):
        from repro import obs

        plan = [SweepConfig("relDiff", create_metric("relDiff").threshold)]
        recorder = obs.Recorder(label="test")
        with obs.local_recording(recorder):
            result = sweep_source(str(rpb_path), plan)
        stats = result.stats
        labels = [row[0] for row in stats.rows()]
        assert "segments materialized (lazy)" in labels
        assert 0 < stats.segments_materialized < stats.n_segments
        assert (
            recorder.registry.counter("columnar.materialized").get()
            == stats.segments_materialized
        )
