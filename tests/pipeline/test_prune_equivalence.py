"""Pruned vs dense vs scalar-scan byte identity, on buckets deep enough that
the pruning machinery actually engages.

The randomized batch-vs-scan suite (``test_match_equivalence``) runs on
shallow buckets, where ``match_candidates`` takes the inline dense kernel and
the blocked/prefiltered probe never fires.  This suite builds traces whose
representative stores grow past :data:`FIRST_BLOCK` (blocked early-exit scan)
and past :data:`PRUNE_MIN_ROWS` (summary prefilter), then checks all three
reducer modes — ``prune=True`` (default), ``prune=False`` (dense oracle),
``batch=False`` (the paper's scalar scan) — produce byte-identical reduced
traces, from the in-memory trace and from text/``.rpb`` files.

Timestamps are multiples of 0.25 µs, which the two-decimal text format
round-trips exactly, so every source holds identical float64 values and one
reference serialization covers them all.
"""

import numpy as np
import pytest

from repro.core.candidates import MatchCounters
from repro.core.frametrace import FrameTrace
from repro.core.metrics import create_metric
from repro.core.metrics.base import FIRST_BLOCK, PRUNE_MIN_ROWS
from repro.core.reducer import TraceReducer
from repro.trace.events import MpiCallInfo
from repro.trace.io import serialize_reduced_trace, write_trace
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.trace import RankTrace, Trace

#: (metric, threshold) grid for the medium workload: strict settings match
#: only exact duplicates, loose ones also accept near misses, so both the
#: match and store branches run at every bucket depth.
MEDIUM_CONFIGS = [
    ("relDiff", 0.01),
    ("relDiff", 0.9),
    ("absDiff", 0.1),
    ("absDiff", 5.0),
    ("manhattan", 0.01),
    ("manhattan", 0.5),
    ("euclidean", 0.001),
    ("euclidean", 0.5),
    ("chebyshev", 0.001),
    ("chebyshev", 0.5),
    ("avgWave", 0.01),
    ("avgWave", 0.5),
    ("haarWave", 0.01),
    ("haarWave", 0.5),
    ("iter_k", 10),
    ("iter_avg", None),
]

#: Deep-workload configs (vectorized modes only; the O(n²) scalar scan runs
#: on a single config to bound runtime).
DEEP_CONFIGS = [
    ("relDiff", 0.01),
    ("absDiff", 0.1),
    ("manhattan", 0.01),
    ("euclidean", 0.001),
    ("chebyshev", 0.001),
    ("avgWave", 0.01),
    ("haarWave", 0.01),
]


def _jittered_records(
    rng: np.random.Generator, rank: int, n_segments: int, pool_size: int
) -> list[TraceRecord]:
    """One rank of loop iterations drawn from a pool of jitter patterns.

    Drawing measurement patterns from a finite pool makes exact repeats occur
    at controllable depth — matches land deep inside the bucket, where the
    blocked scan and the prefilter must preserve first-match order.  All
    timestamps are multiples of 0.25 µs (see module docstring).
    """
    pool = rng.integers(1, 33, size=(pool_size, 7))
    records: list[TraceRecord] = []
    t = 0.0
    for _ in range(n_segments):
        steps = pool[int(rng.integers(pool_size))]
        records.append(TraceRecord(RecordKind.SEGMENT_BEGIN, rank, t, "main.1"))
        cursor = t
        for e in range(3):
            start = cursor + 0.25 * int(steps[2 * e])
            end = start + 0.25 * int(steps[2 * e + 1])
            name = f"loop_f{e}"
            mpi = MpiCallInfo(op="barrier") if e == 2 else None
            records.append(TraceRecord(RecordKind.ENTER, rank, start, name, mpi=mpi))
            records.append(TraceRecord(RecordKind.EXIT, rank, end, name))
            cursor = end
        seg_end = cursor + 0.25 * int(steps[6])
        records.append(TraceRecord(RecordKind.SEGMENT_END, rank, seg_end, "main.1"))
        t = seg_end + 0.25
    return records


def _pooled_trace(seed: int, n_segments: int, pool_size: int, name: str) -> Trace:
    rng = np.random.default_rng(seed)
    return Trace(
        name=name,
        ranks=[RankTrace(rank=0, records=_jittered_records(rng, 0, n_segments, pool_size))],
    )


@pytest.fixture(scope="module")
def medium_trace():
    # Pool of ~3·FIRST_BLOCK patterns: the store outgrows the shallow-bucket
    # fast path, but stays below the prefilter gate — the blocked early-exit
    # scan is what runs.
    return _pooled_trace(seed=42, n_segments=360, pool_size=3 * FIRST_BLOCK, name="medium")


@pytest.fixture(scope="module")
def deep_trace():
    # Pool larger than PRUNE_MIN_ROWS: once enough distinct patterns are
    # stored, every probe crosses the prefilter gate.
    return _pooled_trace(
        seed=43, n_segments=PRUNE_MIN_ROWS + 400, pool_size=PRUNE_MIN_ROWS + 200, name="deep"
    )


def _reduce_bytes(trace, metric_name, threshold, *, batch=True, prune=True, counters=None):
    reducer = TraceReducer(create_metric(metric_name, threshold), batch=batch, prune=prune)
    segmented = trace.segmented() if isinstance(trace, Trace) else trace
    return serialize_reduced_trace(reducer.reduce(segmented, match_counters=counters))


class TestBlockedScanEquivalence:
    @pytest.mark.parametrize("metric_name,threshold", MEDIUM_CONFIGS)
    def test_three_modes_byte_identical(self, medium_trace, metric_name, threshold):
        scanned = _reduce_bytes(medium_trace, metric_name, threshold, batch=False)
        dense = _reduce_bytes(medium_trace, metric_name, threshold, prune=False)
        pruned = _reduce_bytes(medium_trace, metric_name, threshold)
        assert dense == scanned
        assert pruned == scanned

    def test_buckets_are_deep_enough(self, medium_trace):
        # Guard the fixture's premise: the store must outgrow FIRST_BLOCK or
        # this suite silently degenerates into the shallow-bucket tests.
        reduced = TraceReducer(create_metric("euclidean", 0.001)).reduce(
            medium_trace.segmented()
        )
        assert reduced.n_stored > FIRST_BLOCK


class TestPrefilterEquivalence:
    @pytest.mark.parametrize("metric_name,threshold", DEEP_CONFIGS)
    def test_pruned_matches_dense(self, deep_trace, metric_name, threshold):
        counters = MatchCounters()
        dense = _reduce_bytes(deep_trace, metric_name, threshold, prune=False)
        pruned = _reduce_bytes(deep_trace, metric_name, threshold, counters=counters)
        assert pruned == dense
        # The prefilter must actually have engaged — otherwise this test is
        # vacuously re-running the dense kernel.
        assert counters.rows_pruned > 0, f"{metric_name} prefilter never engaged"

    def test_scalar_scan_oracle(self, deep_trace):
        # One config against the O(n²) paper scan keeps the whole chain
        # anchored: scan == dense == pruned at prefilter depth.
        scanned = _reduce_bytes(deep_trace, "absDiff", 0.1, batch=False)
        pruned = _reduce_bytes(deep_trace, "absDiff", 0.1)
        assert pruned == scanned

    def test_store_outgrows_prefilter_gate(self, deep_trace):
        reduced = TraceReducer(create_metric("euclidean", 0.001)).reduce(
            deep_trace.segmented()
        )
        assert reduced.n_stored >= PRUNE_MIN_ROWS


class TestAcrossSources:
    @pytest.fixture(scope="class")
    def medium_files(self, medium_trace, tmp_path_factory):
        root = tmp_path_factory.mktemp("prune_sources")
        text = root / "medium.txt"
        rpb = root / "medium.rpb"
        write_trace(medium_trace, text)
        write_trace(medium_trace, rpb)
        return {"text": text, "rpb": rpb}

    @pytest.mark.parametrize("metric_name,threshold", [("euclidean", 0.001), ("absDiff", 0.1)])
    def test_all_modes_all_sources_byte_identical(
        self, medium_trace, medium_files, metric_name, threshold
    ):
        reference = _reduce_bytes(medium_trace, metric_name, threshold, batch=False)
        sources = {
            "memory": medium_trace.segmented(),
            "text": FrameTrace.from_file(medium_files["text"]),
            "rpb": FrameTrace.from_file(medium_files["rpb"]),
        }
        for label, source in sources.items():
            for mode in ({"prune": True}, {"prune": False}, {"batch": False}):
                got = _reduce_bytes(source, metric_name, threshold, **mode)
                assert got == reference, f"{label} source diverged under {mode}"
