"""Tests for the bounded/unbounded representative stores."""

import pytest

from repro.core.reduced import StoredSegment
from repro.pipeline.store import LRUStore, StoreCounters, UnboundedStore, create_store

from tests.conftest import make_segment


def _stored(sid, context="main.1"):
    return StoredSegment(
        segment_id=sid, segment=make_segment(context, [("f", 0.0, 1.0)], end=2.0)
    )


class TestUnboundedStore:
    def test_miss_then_hit(self):
        store = UnboundedStore()
        assert store.candidates("k") == ()
        store.add("k", _stored(0))
        assert [s.segment_id for s in store.candidates("k")] == [0]
        assert store.counters.lookups == 2
        assert store.counters.hits == 1
        assert store.counters.misses == 1
        assert store.counters.evictions == 0

    def test_candidates_keep_insertion_order(self):
        store = UnboundedStore()
        for sid in range(4):
            store.add("k", _stored(sid))
        assert [s.segment_id for s in store.candidates("k")] == [0, 1, 2, 3]

    def test_len_counts_representatives(self):
        store = UnboundedStore()
        store.add("a", _stored(0))
        store.add("a", _stored(1))
        store.add("b", _stored(2))
        assert len(store) == 3


class TestLRUStore:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUStore(0)

    def test_evicts_least_recently_used_key(self):
        store = LRUStore(capacity=2)
        store.add("a", _stored(0))
        store.add("b", _stored(1))
        store.add("c", _stored(2))  # evicts "a"
        assert store.candidates("a") == ()
        assert [s.segment_id for s in store.candidates("b")] == [1]
        assert [s.segment_id for s in store.candidates("c")] == [2]
        assert store.counters.evictions == 1
        assert len(store) == 2

    def test_lookup_refreshes_recency(self):
        store = LRUStore(capacity=2)
        store.add("a", _stored(0))
        store.add("b", _stored(1))
        store.candidates("a")  # "b" is now least recently used
        store.add("c", _stored(2))
        assert store.candidates("b") == ()
        assert [s.segment_id for s in store.candidates("a")] == [0]

    def test_evicts_whole_buckets(self):
        store = LRUStore(capacity=3)
        store.add("a", _stored(0))
        store.add("a", _stored(1))
        store.add("b", _stored(2))
        store.add("b", _stored(3))  # over capacity: bucket "a" (2 reps) evicted
        assert store.candidates("a") == ()
        assert [s.segment_id for s in store.candidates("b")] == [2, 3]
        assert store.counters.evictions == 2
        assert len(store) == 2

    def test_single_bucket_trims_oldest(self):
        store = LRUStore(capacity=2)
        for sid in range(5):
            store.add("a", _stored(sid))
        # The capacity is a hard ceiling even when one key holds everything;
        # the newest representatives survive, in insertion order.
        assert [s.segment_id for s in store.candidates("a")] == [3, 4]
        assert store.counters.evictions == 3
        assert len(store) == 2


class TestCounters:
    def test_merged_with(self):
        a = StoreCounters(lookups=3, hits=2, misses=1, evictions=0)
        b = StoreCounters(lookups=5, hits=1, misses=4, evictions=2)
        merged = a.merged_with(b)
        assert (merged.lookups, merged.hits, merged.misses, merged.evictions) == (8, 3, 5, 2)

    def test_hit_rate(self):
        assert StoreCounters().hit_rate == 1.0
        assert StoreCounters(lookups=4, hits=1).hit_rate == 0.25


class TestCreateStore:
    def test_none_means_unbounded(self):
        assert isinstance(create_store(None), UnboundedStore)

    def test_capacity_means_lru(self):
        store = create_store(8)
        assert isinstance(store, LRUStore)
        assert store.capacity == 8
