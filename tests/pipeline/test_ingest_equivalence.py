"""Ingestion equivalence: identical reduction from memory, text, and binary.

The acceptance bar for the columnar binary format: for every similarity
method, the pipeline's reduced-trace serialization must be byte-identical
whether it ingests

* the in-memory trace,
* the text file written from it, or
* the binary (``.rpb``) file converted from that text file,

and binary file sources must reach pool workers as ``(path, rank)`` shard
tasks, never as pickled rank payloads.

Two reference chains are used because the text format quantizes timestamps
to two decimals: the *lossless* chain compares the raw in-memory trace
against the binary file written directly from it (exact float64 round trip),
and the *quantized* chain compares the text file, the binary file converted
from it, and the read-back in-memory trace against each other.
"""

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.pipeline.engine import PipelineConfig, reduce_pipeline
from repro.trace.formats import convert_trace
from repro.trace.io import read_trace, serialize_reduced_trace, write_trace


@pytest.fixture(scope="module")
def trace():
    return late_sender(nprocs=4, iterations=6, seed=3).run()


@pytest.fixture(scope="module")
def trace_files(trace, tmp_path_factory):
    root = tmp_path_factory.mktemp("ingest")
    text = root / "trace.txt"
    rpb_exact = root / "exact.rpb"
    rpb_converted = root / "converted.rpb"
    write_trace(trace, text)
    write_trace(trace, rpb_exact)
    convert_trace(text, rpb_converted)
    return {"text": text, "rpb_exact": rpb_exact, "rpb_converted": rpb_converted}


def _reduce_bytes(source, metric_name, config=None):
    result = reduce_pipeline(
        source, create_metric(metric_name), config or PipelineConfig(executor="serial")
    )
    return serialize_reduced_trace(result.reduced), result.stats


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
class TestEveryMetricEverySource:
    def test_binary_file_matches_in_memory_exactly(self, trace, trace_files, metric_name):
        # Lossless chain: .rpb written straight from the raw trace preserves
        # float64 timestamps, so its reduction matches the in-memory one.
        reference, _ = _reduce_bytes(trace, metric_name)
        from_file, _ = _reduce_bytes(trace_files["rpb_exact"], metric_name)
        assert from_file == reference

    def test_text_and_converted_binary_match(self, trace_files, metric_name):
        # Quantized chain: the text file and the binary converted from it
        # hold the same (two-decimal) values, as does the read-back trace.
        in_memory, _ = _reduce_bytes(read_trace(trace_files["text"]), metric_name)
        from_text, _ = _reduce_bytes(trace_files["text"], metric_name)
        from_rpb, _ = _reduce_bytes(trace_files["rpb_converted"], metric_name)
        assert from_text == in_memory
        assert from_rpb == in_memory


class TestShardDispatch:
    def test_binary_process_pool_uses_shards(self, trace, trace_files):
        reference, _ = _reduce_bytes(trace, "relDiff")
        got, stats = _reduce_bytes(
            trace_files["rpb_exact"],
            "relDiff",
            PipelineConfig(executor="process", workers=2),
        )
        assert got == reference
        assert stats.dispatch == "shard"
        assert stats.executor == "process"

    def test_binary_thread_pool_uses_shards(self, trace, trace_files):
        reference, _ = _reduce_bytes(trace, "relDiff")
        got, stats = _reduce_bytes(
            trace_files["rpb_exact"],
            "relDiff",
            PipelineConfig(executor="thread", workers=2),
        )
        assert got == reference
        assert stats.dispatch == "shard"

    def test_text_pool_still_pickles_payloads(self, trace_files):
        _, stats = _reduce_bytes(
            trace_files["text"],
            "relDiff",
            PipelineConfig(executor="thread", workers=2),
        )
        assert stats.dispatch == "payload"

    def test_serial_binary_is_inline(self, trace_files):
        _, stats = _reduce_bytes(trace_files["rpb_exact"], "relDiff")
        assert stats.dispatch == "inline"

    def test_single_rank_binary_downgrades_to_serial(self, tmp_path):
        from repro.trace.trace import Trace

        pair = late_sender(nprocs=2, iterations=3, seed=5).run()
        single = Trace(name="one_rank", ranks=pair.ranks[:1])
        path = tmp_path / "one.rpb"
        write_trace(single, path)
        _, stats = _reduce_bytes(
            path, "relDiff", PipelineConfig(executor="process", workers=4)
        )
        # The footer index reveals the single rank up front, so the engine
        # skips the pool entirely (text files can't know this in advance).
        assert stats.executor == "serial"
        assert stats.dispatch == "inline"
        assert stats.downgraded


class TestEvaluationFromFiles:
    def test_criteria_identical_across_formats(self, trace, trace_files):
        from repro.evaluation.runner import PreparedWorkload, evaluate_method

        prepared_text = PreparedWorkload.from_file(trace_files["text"])
        prepared_rpb = PreparedWorkload.from_file(
            trace_files["rpb_converted"], name=prepared_text.name
        )
        assert prepared_text.full_bytes == prepared_rpb.full_bytes
        metric = create_metric("euclidean")
        a = evaluate_method(prepared_text, metric, keep_comparison=False)
        b = evaluate_method(prepared_rpb, metric, keep_comparison=False)
        assert (a.pct_file_size, a.degree_of_matching, a.approx_distance_us) == (
            b.pct_file_size,
            b.degree_of_matching,
            b.approx_distance_us,
        )
        # The whole evaluation ran on the columns: preparation (analysis +
        # full size), reduction, and the criteria materialized segments only
        # for the stored representatives — nothing else.
        for prepared, result in ((prepared_text, a), (prepared_rpb, b)):
            assert prepared.segmented.materialized == result.n_stored
            assert prepared.segmented.materialized < prepared.segmented.num_segments

    def test_pipeline_source_shard_backend(self, trace_files):
        from repro.evaluation.runner import PreparedWorkload, evaluate_method

        prepared = PreparedWorkload.from_file(trace_files["rpb_converted"])
        serial = evaluate_method(prepared, create_metric("relDiff"), keep_comparison=False)
        sharded = evaluate_method(
            prepared,
            create_metric("relDiff"),
            keep_comparison=False,
            backend="pipeline",
            pipeline_config=PipelineConfig(executor="process", workers=2),
            pipeline_source=trace_files["rpb_converted"],
        )
        assert sharded.pct_file_size == serial.pct_file_size
        assert sharded.degree_of_matching == serial.degree_of_matching
        assert sharded.reduced_bytes == serial.reduced_bytes

    def test_pipeline_source_requires_pipeline_backend(self, trace_files):
        from repro.evaluation.runner import PreparedWorkload, evaluate_method

        prepared = PreparedWorkload.from_file(trace_files["text"])
        with pytest.raises(ValueError, match="pipeline_source"):
            evaluate_method(
                prepared,
                create_metric("relDiff"),
                pipeline_source=trace_files["text"],
            )
