"""Tests for streaming ingestion: lazy segmentation and rank streams."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.pipeline.stream import (
    indexed_source_ranks,
    rank_segment_streams,
    shard_segment_stream,
    source_name,
)
from repro.trace.io import iter_rank_record_streams, iter_trace_records, write_trace
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import SegmentationError, iter_segments, segment_rank_records


def _records():
    trace = late_sender(nprocs=4, iterations=3, seed=2).run()
    return trace, trace.ranks[0].records


class TestIterSegments:
    def test_matches_batch_segmentation(self):
        _, records = _records()
        streamed = list(iter_segments(iter(records)))
        batch = segment_rank_records(records)
        assert len(streamed) == len(batch)
        for s, b in zip(streamed, batch):
            assert s.context == b.context
            assert s.index == b.index
            assert s.timestamps() == b.timestamps()

    def test_is_lazy(self):
        _, records = _records()
        iterator = iter_segments(iter(records))
        first = next(iterator)
        assert first.context == "init"
        # The generator yields without having consumed the whole stream.
        remaining = list(iterator)
        assert len(remaining) == len(segment_rank_records(records)) - 1

    def test_unclosed_segment_rejected(self):
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="main.1")
        ]
        with pytest.raises(SegmentationError, match="never closed"):
            list(iter_segments(records))

    def test_mixed_ranks_rejected(self):
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="a"),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=1, timestamp=1.0, name="a"),
        ]
        with pytest.raises(SegmentationError, match="mixes ranks"):
            list(iter_segments(records))


class TestFileStreams:
    def test_iter_trace_records_round_trip(self, tmp_path):
        trace, _ = _records()
        path = tmp_path / "t.txt"
        write_trace(trace, path)
        streamed = list(iter_trace_records(path))
        assert len(streamed) == trace.num_records

    def test_rank_record_streams_grouped(self, tmp_path):
        trace, _ = _records()
        path = tmp_path / "t.txt"
        write_trace(trace, path)
        seen = []
        for rank, records in iter_rank_record_streams(path):
            count = sum(1 for _ in records)
            seen.append((rank, count))
        assert [rank for rank, _ in seen] == [0, 1, 2, 3]
        assert all(count > 0 for _, count in seen)

    def test_interleaved_ranks_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(
            "SEGMENT_BEGIN 0 0.00 a\nSEGMENT_END 0 1.00 a\n"
            "SEGMENT_BEGIN 1 0.00 a\nSEGMENT_END 1 1.00 a\n"
            "SEGMENT_BEGIN 0 2.00 a\nSEGMENT_END 0 3.00 a\n"
        )
        with pytest.raises(ValueError, match="interleaves rank 0"):
            for _, records in iter_rank_record_streams(path):
                for _ in records:
                    pass


class TestRankSegmentStreams:
    def test_from_segmented_trace(self):
        trace, _ = _records()
        segmented = trace.segmented()
        streams = list(rank_segment_streams(segmented))
        assert [rank for rank, _ in streams] == [0, 1, 2, 3]
        assert sum(len(list(s)) for _, s in streams) == segmented.num_segments

    def test_from_raw_trace(self):
        trace, _ = _records()
        total = sum(len(list(s)) for _, s in rank_segment_streams(trace))
        assert total == trace.segmented().num_segments

    def test_from_file(self, tmp_path):
        trace, _ = _records()
        path = tmp_path / "t.txt"
        write_trace(trace, path)
        total = 0
        for rank, segments in rank_segment_streams(path):
            total += sum(1 for _ in segments)
        assert total == trace.segmented().num_segments

    def test_unknown_source_rejected(self):
        with pytest.raises(TypeError, match="segment source"):
            list(rank_segment_streams(42))

    def test_source_name(self, tmp_path):
        trace, _ = _records()
        assert source_name(trace) == trace.name
        assert source_name(tmp_path / "foo.txt") == "foo"


class TestIndexedSources:
    @pytest.fixture()
    def rpb_path(self, tmp_path):
        trace, _ = _records()
        path = tmp_path / "t.rpb"
        write_trace(trace, path)
        return trace, path

    def test_from_indexed_file(self, rpb_path):
        trace, path = rpb_path
        total = sum(sum(1 for _ in segs) for _, segs in rank_segment_streams(path))
        assert total == trace.segmented().num_segments

    def test_indexed_streams_consumable_out_of_order(self, rpb_path):
        # Text streams must be drained in file order; indexed streams are
        # independent random-access decoders and may be consumed any time.
        trace, path = rpb_path
        streams = dict(rank_segment_streams(path))
        for rank in (3, 1, 0, 2):
            segments = list(streams[rank])
            assert len(segments) == len(trace.segmented().rank(rank).segments)

    def test_indexed_source_ranks(self, tmp_path, rpb_path):
        trace, path = rpb_path
        assert indexed_source_ranks(path) == [0, 1, 2, 3]
        text = tmp_path / "t.txt"
        write_trace(trace, text)
        assert indexed_source_ranks(text) is None
        assert indexed_source_ranks(trace) is None

    def test_shard_segment_stream_matches_reference(self, rpb_path):
        trace, path = rpb_path
        reference = segment_rank_records(trace.ranks[2].records)
        shard = list(shard_segment_stream(path, 2))
        assert len(shard) == len(reference)
        assert [s.timestamps() for s in shard] == [s.timestamps() for s in reference]

    def test_shard_segment_stream_rejects_text(self, tmp_path):
        trace, _ = _records()
        text = tmp_path / "t.txt"
        write_trace(trace, text)
        with pytest.raises(ValueError, match="not indexed"):
            shard_segment_stream(text, 0)
