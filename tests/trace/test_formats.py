"""Tests for the trace format registry and cross-format conversion."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.sweep3d import sweep3d_8p
from repro.trace.formats import (
    convert_trace,
    format_for_path,
    format_names,
    resolve_format,
    trace_format,
)
from repro.trace.io import iter_rank_record_streams, read_trace, write_trace


@pytest.fixture(scope="module")
def sweep_trace():
    return sweep3d_8p(scale=0.2, timesteps=2, seed=11).run()


class TestRegistry:
    def test_both_formats_registered(self):
        assert format_names() == ["rpb", "text"]

    def test_dispatch_on_extension(self):
        assert format_for_path("trace.rpb").name == "rpb"
        assert format_for_path("trace.RPB").name == "rpb"
        assert format_for_path("trace.txt").name == "text"
        assert format_for_path("trace.trace").name == "text"

    def test_unknown_extension_defaults_to_text(self):
        assert format_for_path("trace.dat").name == "text"
        assert format_for_path("trace").name == "text"

    def test_explicit_name_overrides_extension(self):
        assert resolve_format("trace.txt", "rpb").name == "rpb"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            trace_format("hdf5")

    def test_only_rpb_is_indexed(self):
        assert trace_format("rpb").is_indexed
        assert not trace_format("text").is_indexed


class TestDispatchedIo:
    def test_write_read_dispatch(self, tmp_path):
        trace = late_sender(nprocs=4, iterations=3, seed=2).run()
        for suffix in ("txt", "rpb"):
            path = tmp_path / f"t.{suffix}"
            write_trace(trace, path)
            loaded = read_trace(path)
            assert loaded.nprocs == trace.nprocs
            assert sum(len(r.records) for r in loaded.ranks) == trace.num_records

    def test_explicit_format_argument(self, tmp_path):
        trace = late_sender(nprocs=2, iterations=2, seed=2).run()
        path = tmp_path / "t.dat"  # extension says text; force binary
        write_trace(trace, path, format="rpb")
        with pytest.raises(ValueError):
            read_trace(path)  # read as text fails: it's binary
        assert read_trace(path, format="rpb").nprocs == trace.nprocs

    def test_rank_record_streams_dispatch(self, tmp_path):
        trace = late_sender(nprocs=4, iterations=3, seed=2).run()
        for suffix in ("txt", "rpb"):
            path = tmp_path / f"t.{suffix}"
            write_trace(trace, path)
            seen = {
                rank: sum(1 for _ in records)
                for rank, records in iter_rank_record_streams(path)
            }
            assert seen == {r.rank: len(r.records) for r in trace.ranks}


class TestConvert:
    def test_text_to_binary_to_text_is_byte_identical(self, sweep_trace, tmp_path):
        # The text format quantizes timestamps on write; converting the text
        # file to binary preserves the parsed values exactly, so converting
        # back reproduces the original file byte for byte.
        text = tmp_path / "s.txt"
        write_trace(sweep_trace, text)
        convert_trace(text, tmp_path / "s.rpb")
        convert_trace(tmp_path / "s.rpb", tmp_path / "back.txt")
        assert (tmp_path / "back.txt").read_bytes() == text.read_bytes()

    def test_binary_to_binary_preserves_records(self, sweep_trace, tmp_path):
        src = tmp_path / "a.rpb"
        write_trace(sweep_trace, src)
        convert_trace(src, tmp_path / "b.rpb")
        a = read_trace(src)
        b = read_trace(tmp_path / "b.rpb")
        for ra, rb in zip(a.ranks, b.ranks):
            assert ra.records == rb.records

    def test_report_counts(self, sweep_trace, tmp_path):
        text = tmp_path / "s.txt"
        write_trace(sweep_trace, text)
        report = convert_trace(text, tmp_path / "s.rpb")
        assert report.source_format == "text"
        assert report.dest_format == "rpb"
        assert report.n_ranks == sweep_trace.nprocs
        assert report.n_records == sweep_trace.num_records
        assert report.source_bytes == text.stat().st_size
        assert report.dest_bytes == (tmp_path / "s.rpb").stat().st_size

    def test_forced_formats(self, sweep_trace, tmp_path):
        src = tmp_path / "s.dat"
        write_trace(sweep_trace, src, format="text")
        report = convert_trace(
            src, tmp_path / "d.dat", from_format="text", to_format="rpb"
        )
        assert report.dest_format == "rpb"
        assert read_trace(tmp_path / "d.dat", format="rpb").nprocs == sweep_trace.nprocs

    def test_text_equivalent_size_matches_across_formats(self, sweep_trace, tmp_path):
        from repro.evaluation.filesize import full_trace_bytes_from_file

        text = tmp_path / "s.txt"
        write_trace(sweep_trace, text)
        convert_trace(text, tmp_path / "s.rpb")
        assert full_trace_bytes_from_file(text) == text.stat().st_size
        assert full_trace_bytes_from_file(tmp_path / "s.rpb") == full_trace_bytes_from_file(text)

    def test_text_equivalent_size_counts_utf8_bytes(self, tmp_path):
        # Non-ASCII names are legal (only whitespace is rejected); the
        # text-equivalent size must count encoded bytes, not characters.
        from repro.evaluation.filesize import full_trace_bytes_from_file
        from repro.trace.records import RecordKind, TraceRecord
        from repro.trace.trace import RankTrace, Trace

        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="αβγ"),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=0, timestamp=1.0, name="αβγ"),
        ]
        trace = Trace(name="t", ranks=[RankTrace(rank=0, records=records)])
        text = tmp_path / "u.txt"
        write_trace(trace, text)
        write_trace(trace, tmp_path / "u.rpb")
        assert full_trace_bytes_from_file(tmp_path / "u.rpb") == text.stat().st_size

    def test_binary_smaller_on_large_trace(self, tmp_path):
        # The per-array header overhead dominates tiny traces, but on a real
        # multi-rank trace the columnar encoding wins over text.
        trace = sweep3d_8p(scale=0.5, timesteps=3, seed=7).run()
        text = tmp_path / "big.txt"
        write_trace(trace, text)
        report = convert_trace(text, tmp_path / "big.rpb")
        assert report.dest_bytes < report.source_bytes
