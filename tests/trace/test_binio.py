"""Tests for the columnar binary trace format (``.rpb``)."""

import math
import struct

import pytest

from repro.benchmarks_ats import late_sender
from repro.trace import binio
from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import SegmentationError, iter_segments
from repro.trace.trace import RankTrace, Trace


@pytest.fixture(scope="module")
def small_trace():
    return late_sender(nprocs=4, iterations=3, seed=2).run()


@pytest.fixture()
def rpb_path(small_trace, tmp_path):
    path = tmp_path / "trace.rpb"
    binio.write_trace_rpb(small_trace, path)
    return path


class TestRoundTrip:
    def test_records_round_trip_exactly(self, small_trace, rpb_path):
        loaded = binio.read_trace_rpb(rpb_path)
        assert loaded.nprocs == small_trace.nprocs
        for original, back in zip(small_trace.ranks, loaded.ranks):
            assert back.records == original.records

    def test_float64_timestamps_lossless(self, tmp_path):
        # The binary format's precision guarantee: write→read is exact for
        # arbitrary float64 values (contrast TestTextQuantization in
        # test_io.py, which documents the text format's 2-decimal loss).
        values = [math.pi, 1e-9, 123.456789, 1e12 + 0.25]
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=values[0], name="s"),
            TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=values[1], name="f"),
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=values[2], name="f"),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=0, timestamp=values[3], name="s"),
        ]
        path = tmp_path / "exact.rpb"
        binio.write_trace_rpb(Trace(name="t", ranks=[RankTrace(rank=0, records=records)]), path)
        loaded = binio.read_trace_rpb(path)
        assert [r.timestamp for r in loaded.ranks[0].records] == values

    def test_mpi_parameters_round_trip(self, tmp_path):
        infos = [
            MpiCallInfo(op="bcast", root=0, nbytes=128),
            MpiCallInfo(op="send", peer=3, tag=7, nbytes=4096),
            MpiCallInfo(op="sendrecv", peer=1, source=2, tag=0, nbytes=8),
            MpiCallInfo(op="barrier"),
        ]
        records = []
        t = 0.0
        for info in infos:
            records.append(
                TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=t, name="MPI", mpi=info)
            )
            records.append(TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=t + 1, name="MPI"))
            t += 2
        path = tmp_path / "mpi.rpb"
        binio.write_trace_rpb(Trace(name="t", ranks=[RankTrace(rank=0, records=records)]), path)
        loaded = binio.read_trace_rpb(path).ranks[0].records
        assert [r.mpi for r in loaded[::2]] == infos
        assert all(r.mpi is None for r in loaded[1::2])

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rpb"
        binio.write_trace_rpb(Trace(name="e", ranks=[]), path)
        assert binio.read_trace_rpb(path).nprocs == 0
        assert binio.rank_ids(path) == []


class TestRandomAccess:
    def test_index_lists_ranks_and_counts(self, small_trace, rpb_path):
        index = binio.read_index(rpb_path)
        assert index.ranks == [0, 1, 2, 3]
        assert index.n_records == small_trace.num_records
        for entry, rank_trace in zip(index.entries, small_trace.ranks):
            assert entry.n_records == len(rank_trace.records)
            assert entry.length > 0

    def test_single_rank_decode_matches(self, small_trace, rpb_path):
        records = list(binio.iter_rank_records(rpb_path, 2))
        assert records == small_trace.ranks[2].records

    def test_ranks_decode_in_any_order(self, small_trace, rpb_path):
        for rank in (3, 0, 2, 1):
            records = list(binio.iter_rank_records(rpb_path, rank))
            assert records == small_trace.ranks[rank].records

    def test_missing_rank_rejected(self, rpb_path):
        with pytest.raises(KeyError, match="rank 9"):
            list(binio.iter_rank_records(rpb_path, 9))

    def test_record_streams_are_independent(self, small_trace, rpb_path):
        # Unlike the text reader, streams need not be consumed in order.
        streams = dict(binio.iter_rank_record_streams_rpb(rpb_path))
        assert list(streams[3]) == small_trace.ranks[3].records
        assert list(streams[0]) == small_trace.ranks[0].records


class TestFastSegmentDecoder:
    def test_matches_reference_segmentation(self, small_trace, rpb_path):
        for rank_trace in small_trace.ranks:
            fast = list(binio.iter_rank_segments(rpb_path, rank_trace.rank))
            reference = list(iter_segments(rank_trace.records))
            assert len(fast) == len(reference)
            for a, b in zip(fast, reference):
                assert (a.context, a.rank, a.index) == (b.context, b.rank, b.index)
                assert (a.start, a.end) == (b.start, b.end)
                assert a.timestamps() == b.timestamps()
                assert [e.structure() for e in a.events] == [
                    e.structure() for e in b.events
                ]

    def test_malformed_rank_raises_segmentation_error(self, tmp_path):
        # An EXIT without an ENTER defeats the vectorized validity check and
        # must surface the same SegmentationError the record path raises.
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="s"),
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=1.0, name="f"),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=0, timestamp=2.0, name="s"),
        ]
        path = tmp_path / "bad.rpb"
        binio.write_trace_rpb(Trace(name="t", ranks=[RankTrace(rank=0, records=records)]), path)
        with pytest.raises(SegmentationError, match="without an enter"):
            list(binio.iter_rank_segments(path, 0))

    def test_backwards_segment_end_matches_record_path(self, tmp_path):
        # iter_segments assigns the END timestamp after construction, so a
        # segment whose END precedes its BEGIN decodes (duration < 0) rather
        # than raising; the vectorized path must behave identically.
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=5.0, name="s"),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=0, timestamp=4.0, name="s"),
        ]
        reference = list(iter_segments(records))
        path = tmp_path / "backwards.rpb"
        binio.write_trace_rpb(Trace(name="t", ranks=[RankTrace(rank=0, records=records)]), path)
        fast = list(binio.iter_rank_segments(path, 0))
        assert [(s.start, s.end) for s in fast] == [(s.start, s.end) for s in reference]
        assert fast[0].end == 4.0

    def test_unclosed_segment_raises(self, tmp_path):
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="s"),
        ]
        path = tmp_path / "open.rpb"
        binio.write_trace_rpb(Trace(name="t", ranks=[RankTrace(rank=0, records=records)]), path)
        with pytest.raises(SegmentationError, match="never closed"):
            list(binio.iter_rank_segments(path, 0))


class TestWriterValidation:
    def test_duplicate_rank_rejected(self, small_trace, tmp_path):
        with binio.RpbTraceWriter(tmp_path / "dup.rpb") as writer:
            writer.write_rank(0, small_trace.ranks[0].records)
            with pytest.raises(ValueError, match="already written"):
                writer.write_rank(0, small_trace.ranks[0].records)

    def test_wrong_rank_records_rejected(self, small_trace, tmp_path):
        with binio.RpbTraceWriter(tmp_path / "wrong.rpb") as writer:
            with pytest.raises(ValueError, match="rank-1 block"):
                writer.write_rank(1, small_trace.ranks[0].records)

    def test_non_contiguous_ranks_rejected_on_read(self, small_trace, tmp_path):
        path = tmp_path / "gap.rpb"
        with binio.RpbTraceWriter(path) as writer:
            writer.write_rank(0, small_trace.ranks[0].records)
            writer.write_rank(2, small_trace.ranks[2].records)
        with pytest.raises(ValueError, match="missing ranks"):
            binio.read_trace_rpb(path)


class TestCorruptFiles:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not.rpb"
        path.write_bytes(b"definitely not a trace")
        with pytest.raises(binio.RpbFormatError, match="bad magic"):
            binio.read_index(path)

    def test_truncated_file_rejected(self, rpb_path):
        data = rpb_path.read_bytes()
        rpb_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(binio.RpbFormatError):
            binio.read_index(rpb_path)

    def test_bad_footer_offset_rejected(self, rpb_path):
        data = bytearray(rpb_path.read_bytes())
        data[-12:-4] = struct.pack("<Q", len(data) + 100)
        rpb_path.write_bytes(bytes(data))
        with pytest.raises(binio.RpbFormatError, match="footer offset"):
            binio.read_index(rpb_path)


class TestIndexCacheFreshness:
    """The footer-index cache must never serve a stale index.

    A parsed footer is cached per stat identity; these tests rewrite a file
    so that the *lazy* parts of the stat key (size, mtime) are unchanged and
    assert the finer fields (inode, ctime) still force a fresh parse.  The
    two fixture traces differ only in an event name of equal length, so the
    files are byte-for-byte the same size but their footer string tables —
    exactly what the cache holds — differ.
    """

    @staticmethod
    def _trace(event_name: str) -> Trace:
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="s"),
            TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=1.0, name=event_name),
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=2.0, name=event_name),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=0, timestamp=3.0, name="s"),
        ]
        return Trace(name="t", ranks=[RankTrace(rank=0, records=records)])

    def _event_name(self, path) -> str:
        (segment,) = list(binio.iter_rank_segments(path, 0))
        (event,) = segment.events
        return event.name

    def test_unchanged_file_hits_cache(self, rpb_path):
        assert binio.read_index(rpb_path) is binio.read_index(rpb_path)

    def test_same_second_replace_is_not_stale(self, tmp_path):
        import os

        a = tmp_path / "a.rpb"
        b = tmp_path / "b.rpb"
        binio.write_trace_rpb(self._trace("fff"), a)
        binio.write_trace_rpb(self._trace("ggg"), b)
        assert a.stat().st_size == b.stat().st_size
        stat = a.stat()
        assert self._event_name(a) == "fff"  # warm the cache
        os.replace(b, a)
        # forge the mtime back so (path, size, mtime) alone would collide;
        # the new inode must still miss the cache
        os.utime(a, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert a.stat().st_mtime_ns == stat.st_mtime_ns
        assert self._event_name(a) == "ggg"

    def test_in_place_rewrite_with_forged_mtime_is_not_stale(self, tmp_path):
        import os
        import time

        a = tmp_path / "a.rpb"
        b = tmp_path / "b.rpb"
        binio.write_trace_rpb(self._trace("fff"), a)
        binio.write_trace_rpb(self._trace("ggg"), b)
        stat = a.stat()
        assert self._event_name(a) == "fff"  # warm the cache
        time.sleep(0.05)  # ensure the rewrite lands on a later ctime tick
        with a.open("r+b") as handle:
            handle.write(b.read_bytes())
        os.utime(a, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        after = a.stat()
        assert after.st_mtime_ns == stat.st_mtime_ns
        assert after.st_size == stat.st_size
        assert after.st_ino == stat.st_ino
        # same path, size, mtime, and inode: only the change time differs,
        # and it alone must invalidate the cache
        assert self._event_name(a) == "ggg"


class TestRankFrameDecoder:
    def test_frame_matches_segment_decoder_bitwise(self, small_trace, rpb_path):
        for rank_trace in small_trace.ranks:
            frame = binio.rank_frame(rpb_path, rank_trace.rank)
            reference = list(binio.iter_rank_segments(rpb_path, rank_trace.rank))
            assert frame.n_segments == len(reference)
            assert frame.materialized == 0  # decode builds no Segment objects
            for i, expected in enumerate(reference):
                built = frame.segment(i)
                relative = expected.relative_to_start()
                assert built.context == relative.context
                assert built.index == relative.index
                assert [t.hex() for t in built.timestamps()] == [
                    t.hex() for t in relative.timestamps()
                ]
                assert [e.structure() for e in built.events] == [
                    e.structure() for e in relative.events
                ]

    def test_malformed_rank_raises_same_error(self, tmp_path):
        records = [
            TraceRecord(kind=RecordKind.SEGMENT_BEGIN, rank=0, timestamp=0.0, name="s"),
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=1.0, name="f"),
            TraceRecord(kind=RecordKind.SEGMENT_END, rank=0, timestamp=2.0, name="s"),
        ]
        path = tmp_path / "bad.rpb"
        binio.write_trace_rpb(Trace(name="t", ranks=[RankTrace(rank=0, records=records)]), path)
        with pytest.raises(SegmentationError, match="without an enter"):
            binio.rank_frame(path, 0)
