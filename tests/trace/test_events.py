"""Tests for events and MPI call metadata."""

import pytest

from repro.trace.events import ALL_OPS, COLLECTIVE_OPS, P2P_OPS, Event, MpiCallInfo


class TestMpiCallInfo:
    def test_collective_classification(self):
        info = MpiCallInfo(op="barrier")
        assert info.is_collective
        assert not info.is_p2p

    def test_p2p_classification(self):
        info = MpiCallInfo(op="send", peer=1, tag=0)
        assert info.is_p2p
        assert not info.is_collective

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown MPI operation"):
            MpiCallInfo(op="frobnicate")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            MpiCallInfo(op="send", peer=0, nbytes=-1)

    def test_key_is_hashable_and_stable(self):
        a = MpiCallInfo(op="send", peer=1, tag=2, nbytes=100)
        b = MpiCallInfo(op="send", peer=1, tag=2, nbytes=100)
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())

    def test_key_differs_on_parameters(self):
        a = MpiCallInfo(op="send", peer=1, tag=2)
        b = MpiCallInfo(op="send", peer=2, tag=2)
        assert a.key() != b.key()

    def test_op_sets_are_disjoint_and_cover_all(self):
        assert COLLECTIVE_OPS & P2P_OPS == frozenset()
        assert COLLECTIVE_OPS | P2P_OPS == ALL_OPS

    def test_whitespace_comm_rejected(self):
        # ``comm=<name>`` is a whitespace-delimited token in the text format.
        with pytest.raises(ValueError, match="communicator name"):
            MpiCallInfo(op="barrier", comm="my comm")

    def test_frozen(self):
        info = MpiCallInfo(op="barrier")
        with pytest.raises(AttributeError):
            info.op = "bcast"


class TestEvent:
    def test_duration(self):
        event = Event(name="f", start=1.0, end=3.5)
        assert event.duration == pytest.approx(2.5)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="before start"):
            Event(name="f", start=2.0, end=1.0)

    @pytest.mark.parametrize("name", ["two words", "tab\tsep", ""])
    def test_unserializable_name_rejected(self, name):
        # Regression: ``EV <name> ...`` lines silently gained extra tokens.
        with pytest.raises(ValueError, match="event name"):
            Event(name=name, start=0.0, end=1.0)

    def test_is_mpi(self):
        assert not Event(name="f", start=0, end=1).is_mpi
        assert Event(name="f", start=0, end=1, mpi=MpiCallInfo(op="barrier")).is_mpi

    def test_structure_ignores_timestamps(self):
        a = Event(name="f", start=0, end=1)
        b = Event(name="f", start=10, end=20)
        assert a.structure() == b.structure()

    def test_structure_distinguishes_mpi_parameters(self):
        a = Event(name="MPI_Send", start=0, end=1, mpi=MpiCallInfo(op="send", peer=1))
        b = Event(name="MPI_Send", start=0, end=1, mpi=MpiCallInfo(op="send", peer=2))
        assert a.structure() != b.structure()

    def test_shifted(self):
        event = Event(name="f", start=1.0, end=2.0)
        moved = event.shifted(10.0)
        assert (moved.start, moved.end) == (11.0, 12.0)
        assert (event.start, event.end) == (1.0, 2.0), "original unchanged"

    def test_timestamps(self):
        assert Event(name="f", start=1.0, end=2.0).timestamps() == (1.0, 2.0)
