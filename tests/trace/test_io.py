"""Tests for trace serialization and file-size accounting."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.trace.events import MpiCallInfo
from repro.trace.io import (
    format_record,
    iter_reduced_rank_chunks,
    parse_record,
    read_trace,
    reduced_trace_size_bytes,
    segmented_trace_size_bytes,
    serialize_exec_entry,
    serialize_records,
    serialize_reduced_trace,
    serialize_segment,
    serialize_segment_as_records,
    trace_size_bytes,
    write_reduced_trace,
    write_trace,
)
from repro.trace.records import RecordKind, TraceRecord

from tests.conftest import make_segment


def _record(mpi=None):
    return TraceRecord(kind=RecordKind.ENTER, rank=2, timestamp=123.456, name="MPI_Send", mpi=mpi)


class TestRecordRoundTrip:
    def test_plain_record(self):
        record = TraceRecord(kind=RecordKind.EXIT, rank=1, timestamp=7.0, name="do_work")
        parsed = parse_record(format_record(record))
        assert parsed.kind is RecordKind.EXIT
        assert parsed.rank == 1
        assert parsed.name == "do_work"
        assert parsed.timestamp == pytest.approx(7.0)

    def test_mpi_record(self):
        mpi = MpiCallInfo(op="send", peer=3, tag=7, nbytes=4096)
        parsed = parse_record(format_record(_record(mpi)))
        assert parsed.mpi == mpi

    def test_rooted_collective_record(self):
        mpi = MpiCallInfo(op="bcast", root=0, nbytes=128)
        parsed = parse_record(format_record(_record(mpi)))
        assert parsed.mpi == mpi

    def test_timestamp_precision(self):
        record = TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=0.123, name="f")
        parsed = parse_record(format_record(record))
        assert parsed.timestamp == pytest.approx(0.12, abs=1e-9)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_record("ENTER 0 1.0")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError):
            parse_record("ENTER 0 1.00 MPI_Send send bogus=1")


class TestSizes:
    def test_serialize_records_counts_every_record(self):
        records = [
            TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=1.0, name="f"),
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=2.0, name="f"),
        ]
        data = serialize_records(records)
        assert data.count(b"\n") == 2

    def test_segment_serialization_has_header_and_events(self, paper_segments):
        data = serialize_segment(paper_segments["s0"], segment_id=7)
        text = data.decode()
        assert text.startswith("SEG 7 main.1")
        assert text.count("\nEV ") + text.startswith("EV ") == 2

    def test_exec_entry_small(self):
        assert len(serialize_exec_entry(3, 123.0)) < 30

    def test_reduced_size_smaller_than_full(self, paper_segments):
        segments = list(paper_segments.values())
        full = sum(len(serialize_segment_as_records(s)) for s in segments)
        reduced = reduced_trace_size_bytes(
            [(0, segments[0])], [(0, 0.0), (0, 60.0), (0, 120.0)]
        )
        assert reduced < full

    def test_trace_size_consistent_with_segmented_size(self):
        workload = late_sender(nprocs=4, iterations=4, seed=2)
        trace = workload.run()
        raw = trace_size_bytes(trace)
        segmented = segmented_trace_size_bytes(trace.segmented())
        # Same records, same format: sizes agree exactly.
        assert raw == segmented


class TestFileRoundTrip:
    def test_write_and_read(self, tmp_path):
        workload = late_sender(nprocs=4, iterations=3, seed=2)
        trace = workload.run()
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.nprocs == trace.nprocs
        assert sum(len(r.records) for r in loaded.ranks) == trace.num_records

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_trace(path).nprocs == 0

    def test_loaded_trace_segments_identically(self, tmp_path):
        workload = late_sender(nprocs=4, iterations=3, seed=2)
        trace = workload.run()
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        original = trace.segmented()
        loaded = read_trace(path).segmented()
        assert loaded.num_segments == original.num_segments
        assert loaded.num_events == original.num_events


class TestStreamingReducedWriter:
    @pytest.fixture()
    def reduced(self, small_late_sender_trace):
        from repro.core.metrics import create_metric
        from repro.core.reducer import TraceReducer

        return TraceReducer(create_metric("relDiff")).reduce(small_late_sender_trace)

    def test_chunks_concatenate_to_size_bytes(self, reduced):
        for rank in reduced.ranks:
            chunks = list(iter_reduced_rank_chunks(rank))
            assert sum(len(c) for c in chunks) == rank.size_bytes()

    def test_serialize_reduced_trace_matches_size(self, reduced):
        assert len(serialize_reduced_trace(reduced)) == reduced.size_bytes()

    def test_streaming_write_identical_to_in_memory(self, tmp_path, reduced):
        path = tmp_path / "reduced.txt"
        written = write_reduced_trace(reduced, path)
        data = path.read_bytes()
        assert written == len(data) == reduced.size_bytes()
        assert data == serialize_reduced_trace(reduced)

    def test_written_form_has_expected_line_kinds(self, tmp_path, reduced):
        path = tmp_path / "reduced.txt"
        write_reduced_trace(reduced, path)
        kinds = {line.split()[0] for line in path.read_text().splitlines() if line}
        assert kinds == {"SEG", "EV", "EXEC"}

    def test_empty_reduced_trace(self, tmp_path):
        from repro.core.reduced import ReducedTrace

        empty = ReducedTrace(name="e", method="relDiff", threshold=0.8)
        path = tmp_path / "empty.txt"
        assert write_reduced_trace(empty, path) == 0
        assert path.read_bytes() == b""
