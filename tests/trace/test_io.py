"""Tests for trace serialization and file-size accounting."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.trace.events import MpiCallInfo
from repro.trace.io import (
    format_record,
    iter_reduced_rank_chunks,
    parse_record,
    read_trace,
    reduced_trace_size_bytes,
    segmented_trace_size_bytes,
    serialize_exec_entry,
    serialize_records,
    serialize_reduced_trace,
    serialize_segment,
    serialize_segment_as_records,
    trace_size_bytes,
    write_reduced_trace,
    write_trace,
)
from repro.trace.records import RecordKind, TraceRecord

from tests.conftest import make_segment


def _record(mpi=None):
    return TraceRecord(kind=RecordKind.ENTER, rank=2, timestamp=123.456, name="MPI_Send", mpi=mpi)


class TestRecordRoundTrip:
    def test_plain_record(self):
        record = TraceRecord(kind=RecordKind.EXIT, rank=1, timestamp=7.0, name="do_work")
        parsed = parse_record(format_record(record))
        assert parsed.kind is RecordKind.EXIT
        assert parsed.rank == 1
        assert parsed.name == "do_work"
        assert parsed.timestamp == pytest.approx(7.0)

    def test_mpi_record(self):
        mpi = MpiCallInfo(op="send", peer=3, tag=7, nbytes=4096)
        parsed = parse_record(format_record(_record(mpi)))
        assert parsed.mpi == mpi

    def test_rooted_collective_record(self):
        mpi = MpiCallInfo(op="bcast", root=0, nbytes=128)
        parsed = parse_record(format_record(_record(mpi)))
        assert parsed.mpi == mpi

    def test_timestamp_precision(self):
        record = TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=0.123, name="f")
        parsed = parse_record(format_record(record))
        assert parsed.timestamp == pytest.approx(0.12, abs=1e-9)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_record("ENTER 0 1.0")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError):
            parse_record("ENTER 0 1.00 MPI_Send send bogus=1")


def _mpi_combinations():
    """Every combination of optional MpiCallInfo fields the ops allow."""
    combos = [
        MpiCallInfo(op="barrier"),
        MpiCallInfo(op="barrier", comm="sub"),
        MpiCallInfo(op="allreduce", nbytes=8192),
        MpiCallInfo(op="bcast", root=0),
        MpiCallInfo(op="bcast", root=3, nbytes=128),
        MpiCallInfo(op="reduce", root=0, nbytes=64, comm="row"),
        MpiCallInfo(op="send", peer=1),
        MpiCallInfo(op="send", peer=1, tag=0),
        MpiCallInfo(op="send", peer=2, tag=7, nbytes=4096),
        MpiCallInfo(op="recv", peer=0, tag=9, nbytes=16, comm="col"),
        MpiCallInfo(op="sendrecv", peer=1, source=2),
        MpiCallInfo(op="sendrecv", peer=1, source=2, tag=3, nbytes=32),
        MpiCallInfo(op="ssend", peer=0, tag=0, nbytes=1, comm="sub"),
    ]
    return [pytest.param(info, id=f"{info.op}-{i}") for i, info in enumerate(combos)]


class TestMpiFieldMatrix:
    """format_record/parse_record round trips across all MpiCallInfo fields."""

    @pytest.mark.parametrize("info", _mpi_combinations())
    def test_round_trip(self, info):
        record = TraceRecord(
            kind=RecordKind.ENTER, rank=5, timestamp=42.25, name="MPI_Call", mpi=info
        )
        parsed = parse_record(format_record(record))
        assert parsed.mpi == info
        assert parsed.kind is record.kind
        assert parsed.rank == record.rank
        assert parsed.name == record.name

    @pytest.mark.parametrize("info", _mpi_combinations())
    def test_key_survives_round_trip(self, info):
        record = TraceRecord(
            kind=RecordKind.ENTER, rank=0, timestamp=1.0, name="MPI_Call", mpi=info
        )
        parsed = parse_record(format_record(record))
        assert parsed.mpi.key() == info.key()


class TestTextQuantization:
    """The text format's documented precision loss (and its boundary).

    Timestamps are serialized with two decimals, so a write→read round trip
    loses sub-10µs detail.  The binary format has no such loss — see
    ``TestRoundTrip.test_float64_timestamps_lossless`` in test_binio.py for
    the other half of this pair.
    """

    def test_sub_centimicrosecond_detail_lost(self):
        record = TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=0.123456, name="f")
        parsed = parse_record(format_record(record))
        assert parsed.timestamp != record.timestamp
        assert parsed.timestamp == pytest.approx(0.12, abs=1e-12)

    def test_two_decimal_values_survive(self):
        record = TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=123.46, name="f")
        parsed = parse_record(format_record(record))
        assert format_record(parsed) == format_record(record)


class TestSizes:
    def test_serialize_records_counts_every_record(self):
        records = [
            TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=1.0, name="f"),
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=2.0, name="f"),
        ]
        data = serialize_records(records)
        assert data.count(b"\n") == 2

    def test_segment_serialization_has_header_and_events(self, paper_segments):
        data = serialize_segment(paper_segments["s0"], segment_id=7)
        text = data.decode()
        assert text.startswith("SEG 7 main.1")
        assert text.count("\nEV ") + text.startswith("EV ") == 2

    def test_exec_entry_small(self):
        assert len(serialize_exec_entry(3, 123.0)) < 30

    def test_reduced_size_smaller_than_full(self, paper_segments):
        segments = list(paper_segments.values())
        full = sum(len(serialize_segment_as_records(s)) for s in segments)
        reduced = reduced_trace_size_bytes(
            [(0, segments[0])], [(0, 0.0), (0, 60.0), (0, 120.0)]
        )
        assert reduced < full

    def test_trace_size_consistent_with_segmented_size(self):
        workload = late_sender(nprocs=4, iterations=4, seed=2)
        trace = workload.run()
        raw = trace_size_bytes(trace)
        segmented = segmented_trace_size_bytes(trace.segmented())
        # Same records, same format: sizes agree exactly.
        assert raw == segmented


class TestFileRoundTrip:
    def test_write_and_read(self, tmp_path):
        workload = late_sender(nprocs=4, iterations=3, seed=2)
        trace = workload.run()
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.nprocs == trace.nprocs
        assert sum(len(r.records) for r in loaded.ranks) == trace.num_records

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_trace(path).nprocs == 0

    def test_loaded_trace_segments_identically(self, tmp_path):
        workload = late_sender(nprocs=4, iterations=3, seed=2)
        trace = workload.run()
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        original = trace.segmented()
        loaded = read_trace(path).segmented()
        assert loaded.num_segments == original.num_segments
        assert loaded.num_events == original.num_events


class TestStreamingReducedWriter:
    @pytest.fixture()
    def reduced(self, small_late_sender_trace):
        from repro.core.metrics import create_metric
        from repro.core.reducer import TraceReducer

        return TraceReducer(create_metric("relDiff")).reduce(small_late_sender_trace)

    def test_chunks_concatenate_to_size_bytes(self, reduced):
        for rank in reduced.ranks:
            chunks = list(iter_reduced_rank_chunks(rank))
            assert sum(len(c) for c in chunks) == rank.size_bytes()

    def test_serialize_reduced_trace_matches_size(self, reduced):
        assert len(serialize_reduced_trace(reduced)) == reduced.size_bytes()

    def test_streaming_write_identical_to_in_memory(self, tmp_path, reduced):
        path = tmp_path / "reduced.txt"
        written = write_reduced_trace(reduced, path)
        data = path.read_bytes()
        assert written == len(data) == reduced.size_bytes()
        assert data == serialize_reduced_trace(reduced)

    def test_written_form_has_expected_line_kinds(self, tmp_path, reduced):
        path = tmp_path / "reduced.txt"
        write_reduced_trace(reduced, path)
        kinds = {line.split()[0] for line in path.read_text().splitlines() if line}
        assert kinds == {"SEG", "EV", "EXEC"}

    def test_empty_reduced_trace(self, tmp_path):
        from repro.core.reduced import ReducedTrace

        empty = ReducedTrace(name="e", method="relDiff", threshold=0.8)
        path = tmp_path / "empty.txt"
        assert write_reduced_trace(empty, path) == 0
        assert path.read_bytes() == b""
