"""Tests for trace containers."""

import numpy as np
import pytest

from repro.benchmarks_ats import late_sender
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

from tests.conftest import make_segment


class TestRawTrace:
    def test_simulated_trace_shape(self):
        workload = late_sender(nprocs=4, iterations=3, seed=1)
        trace = workload.run()
        assert trace.nprocs == 4
        assert trace.num_records > 0
        assert trace.rank(0).rank == 0

    def test_rank_out_of_range(self):
        trace = late_sender(nprocs=4, iterations=2, seed=1).run()
        with pytest.raises(IndexError):
            trace.rank(4)

    def test_segmented_preserves_rank_count(self):
        trace = late_sender(nprocs=4, iterations=2, seed=1).run()
        segmented = trace.segmented()
        assert segmented.nprocs == 4


class TestSegmentedTrace:
    def _make(self):
        ranks = []
        for rank in range(2):
            segments = [
                make_segment("init", [("MPI_Init", 0.0, 1.0)], start=0.0, end=1.0, rank=rank),
                make_segment("main.1", [("do_work", 2.0, 3.0)], start=2.0, end=4.0, rank=rank,
                             index=1),
            ]
            ranks.append(SegmentedRankTrace(rank=rank, segments=segments))
        return SegmentedTrace(name="t", ranks=ranks)

    def test_counts(self):
        trace = self._make()
        assert trace.num_segments == 4
        assert trace.num_events == 4
        assert trace.nprocs == 2

    def test_timestamps_layout(self):
        trace = self._make()
        rank0 = trace.rank(0)
        ts = rank0.timestamps()
        # per segment: start, event start/end pairs, segment end
        expected = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 4.0]
        np.testing.assert_allclose(ts, expected)

    def test_trace_timestamps_concatenates_ranks(self):
        trace = self._make()
        assert trace.timestamps().size == 2 * trace.rank(0).timestamps().size

    def test_duration(self):
        assert self._make().duration() == 4.0

    def test_empty_trace(self):
        trace = SegmentedTrace(name="empty", ranks=[])
        assert trace.duration() == 0.0
        assert trace.timestamps().size == 0

    def test_rank_events_in_order(self):
        rank0 = self._make().rank(0)
        names = [e.name for e in rank0.events()]
        assert names == ["MPI_Init", "do_work"]

    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            self._make().rank(5)
