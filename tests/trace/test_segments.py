"""Tests for segments and segmentation of record streams."""

import pytest

from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import Segment, SegmentationError, segment_rank_records, structural_key

from tests.conftest import make_segment


def _rec(kind, t, name, rank=0, mpi=None):
    return TraceRecord(kind=kind, rank=rank, timestamp=t, name=name, mpi=mpi)


def _valid_stream(rank=0):
    """init segment with one MPI_Init event, then one main.1 iteration."""
    return [
        _rec(RecordKind.SEGMENT_BEGIN, 0.0, "init", rank),
        _rec(RecordKind.ENTER, 1.0, "MPI_Init", rank, MpiCallInfo(op="barrier")),
        _rec(RecordKind.EXIT, 2.0, "MPI_Init", rank),
        _rec(RecordKind.SEGMENT_END, 2.0, "init", rank),
        _rec(RecordKind.SEGMENT_BEGIN, 2.0, "main.1", rank),
        _rec(RecordKind.ENTER, 3.0, "do_work", rank),
        _rec(RecordKind.EXIT, 9.0, "do_work", rank),
        _rec(RecordKind.SEGMENT_END, 9.5, "main.1", rank),
    ]


class TestSegment:
    def test_duration_and_counts(self, paper_segments):
        s0 = paper_segments["s0"]
        assert s0.duration == 50.0
        assert s0.num_events == 2

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Segment(context="c", rank=0, start=5.0, end=4.0)

    def test_whitespace_context_rejected(self):
        # Regression: ``SEG <id> <context> ...`` lines silently gained tokens.
        with pytest.raises(ValueError, match="segment context"):
            Segment(context="main 1", rank=0, start=0.0, end=1.0)

    def test_timestamps_layout(self, paper_segments):
        # event start/end pairs then segment end
        assert paper_segments["s2"].timestamps() == [1.0, 17.0, 18.0, 48.0, 49.0]

    def test_relative_to_start(self):
        seg = make_segment("c", [("f", 11.0, 12.0)], start=10.0, end=13.0)
        rel = seg.relative_to_start()
        assert rel.start == 0.0
        assert rel.end == 3.0
        assert rel.events[0].start == pytest.approx(1.0)
        # original untouched
        assert seg.events[0].start == 11.0

    def test_shifted_round_trip(self):
        seg = make_segment("c", [("f", 1.0, 2.0)], start=0.0, end=3.0)
        assert seg.shifted(5.0).shifted(-5.0).timestamps() == seg.timestamps()

    def test_structure_equal_for_same_shape(self, paper_segments):
        assert paper_segments["s0"].structure() == paper_segments["s1"].structure()
        assert structural_key(paper_segments["s0"]) == structural_key(paper_segments["s2"])

    def test_structure_differs_on_context(self):
        a = make_segment("main.1", [("f", 0.0, 1.0)], end=2.0)
        b = make_segment("main.2", [("f", 0.0, 1.0)], end=2.0)
        assert a.structure() != b.structure()

    def test_structure_differs_on_event_order(self):
        a = make_segment("c", [("f", 0.0, 1.0), ("g", 1.0, 2.0)], end=3.0)
        b = make_segment("c", [("g", 0.0, 1.0), ("f", 1.0, 2.0)], end=3.0)
        assert a.structure() != b.structure()

    def test_structure_differs_on_mpi_parameters(self):
        a = make_segment("c", [("MPI_Send", 0.0, 1.0)], end=2.0,
                         mpi_for={"MPI_Send": MpiCallInfo(op="send", peer=1)})
        b = make_segment("c", [("MPI_Send", 0.0, 1.0)], end=2.0,
                         mpi_for={"MPI_Send": MpiCallInfo(op="send", peer=2)})
        assert a.structure() != b.structure()

    def test_with_rank(self):
        seg = make_segment("c", [("f", 0.0, 1.0)], end=2.0)
        moved = seg.with_rank(3)
        assert moved.rank == 3
        assert moved.events[0].rank == 3
        assert seg.rank == 0


class TestSegmentation:
    def test_valid_stream(self):
        segments = segment_rank_records(_valid_stream())
        assert [s.context for s in segments] == ["init", "main.1"]
        assert segments[0].events[0].name == "MPI_Init"
        assert segments[0].events[0].mpi is not None
        assert segments[1].events[0].name == "do_work"
        assert segments[1].start == 2.0 and segments[1].end == 9.5

    def test_indices_assigned_in_order(self):
        segments = segment_rank_records(_valid_stream())
        assert [s.index for s in segments] == [0, 1]

    def test_empty_stream(self):
        assert segment_rank_records([]) == []

    def test_event_outside_segment_rejected(self):
        records = [_rec(RecordKind.ENTER, 0.0, "f"), _rec(RecordKind.EXIT, 1.0, "f")]
        with pytest.raises(SegmentationError, match="outside any segment"):
            segment_rank_records(records)

    def test_nested_segments_rejected(self):
        records = [
            _rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"),
            _rec(RecordKind.SEGMENT_BEGIN, 1.0, "b"),
        ]
        with pytest.raises(SegmentationError, match="nest"):
            segment_rank_records(records)

    def test_unclosed_segment_rejected(self):
        records = [_rec(RecordKind.SEGMENT_BEGIN, 0.0, "a")]
        with pytest.raises(SegmentationError, match="never closed"):
            segment_rank_records(records)

    def test_mismatched_segment_end_rejected(self):
        records = [
            _rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"),
            _rec(RecordKind.SEGMENT_END, 1.0, "b"),
        ]
        with pytest.raises(SegmentationError, match="does not match"):
            segment_rank_records(records)

    def test_exit_without_enter_rejected(self):
        records = [
            _rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"),
            _rec(RecordKind.EXIT, 1.0, "f"),
        ]
        with pytest.raises(SegmentationError, match="without an enter"):
            segment_rank_records(records)

    def test_unclosed_event_rejected(self):
        records = [
            _rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"),
            _rec(RecordKind.ENTER, 1.0, "f"),
            _rec(RecordKind.SEGMENT_END, 2.0, "a"),
        ]
        with pytest.raises(SegmentationError, match="inside open event"):
            segment_rank_records(records)

    def test_mixed_ranks_rejected(self):
        records = [
            _rec(RecordKind.SEGMENT_BEGIN, 0.0, "a", rank=0),
            _rec(RecordKind.SEGMENT_END, 1.0, "a", rank=1),
        ]
        with pytest.raises(SegmentationError, match="mixes ranks"):
            segment_rank_records(records)

    def test_mismatched_exit_name_rejected(self):
        records = [
            _rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"),
            _rec(RecordKind.ENTER, 1.0, "f"),
            _rec(RecordKind.EXIT, 2.0, "g"),
        ]
        with pytest.raises(SegmentationError, match="does not match open event"):
            segment_rank_records(records)


class TestRecordSegmenter:
    """The push-style segmenter behind iter_segments and the online service."""

    def _push_all(self, segmenter, records):
        out = []
        for rec in records:
            segment = segmenter.push(rec)
            if segment is not None:
                out.append(segment)
        return out

    def test_push_matches_batch_segmentation(self):
        from repro.trace.segments import RecordSegmenter

        records = _valid_stream()
        want = segment_rank_records(records)
        segmenter = RecordSegmenter()
        got = self._push_all(segmenter, records)
        segmenter.finish()
        assert got == want
        assert segmenter.n_emitted == len(want)

    def test_mid_segment_flag(self):
        from repro.trace.segments import RecordSegmenter

        segmenter = RecordSegmenter()
        records = _valid_stream()
        assert not segmenter.mid_segment
        segmenter.push(records[0])
        assert segmenter.mid_segment
        segmenter.push(records[1])
        assert segmenter.mid_segment  # open event
        segmenter.push(records[2])
        segmenter.push(records[3])
        assert not segmenter.mid_segment

    def test_picklable_mid_stream(self):
        import pickle

        from repro.trace.segments import RecordSegmenter

        records = _valid_stream()
        cut = 5  # inside main.1, after its SEGMENT_BEGIN
        segmenter = RecordSegmenter()
        first = self._push_all(segmenter, records[:cut])
        resumed = pickle.loads(pickle.dumps(segmenter))
        second = self._push_all(resumed, records[cut:])
        resumed.finish()
        assert first + second == segment_rank_records(records)
        assert resumed.n_emitted == 2

    def test_finish_rejects_open_segment(self):
        from repro.trace.segments import RecordSegmenter

        segmenter = RecordSegmenter()
        segmenter.push(_rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"))
        with pytest.raises(SegmentationError, match="never closed"):
            segmenter.finish()

    def test_finish_rejects_open_event(self):
        from repro.trace.segments import RecordSegmenter

        segmenter = RecordSegmenter()
        segmenter.push(_rec(RecordKind.SEGMENT_BEGIN, 0.0, "a"))
        segmenter.push(_rec(RecordKind.ENTER, 1.0, "f"))
        with pytest.raises(SegmentationError):
            segmenter.finish()

    def test_rank_pinned_at_construction(self):
        from repro.trace.segments import RecordSegmenter

        segmenter = RecordSegmenter(0)
        with pytest.raises(SegmentationError, match="mixes ranks"):
            segmenter.push(_rec(RecordKind.SEGMENT_BEGIN, 0.0, "a", rank=1))
