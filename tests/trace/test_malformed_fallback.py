"""Hardening: every decode path fails malformed ranks with identical errors.

These tests pin the fallback contract the fuzz oracle
(:func:`repro.fuzz.oracles.oracle_malformed_fallback`) checks statistically:
for each way a rank's record stream can violate the segmentation rules, the
in-memory segmenter, the streaming ``.rpb`` decoder, and the columnar frame
decoder must raise :class:`SegmentationError` with the *same message*, while
the well-formed ranks of the same file keep decoding on every path.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generators import MALFORMED_KINDS, CaseSpec, generate_case
from repro.trace import binio
from repro.trace.segments import SegmentationError, iter_segments


@pytest.fixture(params=MALFORMED_KINDS)
def malformed_trace(request, tmp_path):
    spec = CaseSpec(
        family="malformed",
        seed=21,
        params={"nprocs": 3, "kind": request.param},
    )
    trace = generate_case(spec)
    path = tmp_path / "malformed.rpb"
    binio.write_trace_rpb(trace, path)
    return trace, path


def _segmentation_error(fn) -> str:
    with pytest.raises(SegmentationError) as excinfo:
        fn()
    return str(excinfo.value)


def test_all_three_decode_paths_raise_the_identical_message(malformed_trace):
    trace, path = malformed_trace
    bad = trace.ranks[-1]
    reference = _segmentation_error(lambda: list(iter_segments(bad.records)))
    streaming = _segmentation_error(
        lambda: list(binio.iter_rank_segments(path, bad.rank))
    )
    assert streaming == reference

    def decode_frame():
        frame = binio.rank_frame(path, bad.rank)
        return [frame.segment(i) for i in range(frame.n_segments)]

    assert _segmentation_error(decode_frame) == reference


def test_well_formed_ranks_still_decode_on_every_path(malformed_trace):
    trace, path = malformed_trace
    for rank_trace in trace.ranks[:-1]:
        reference = list(iter_segments(rank_trace.records))
        assert list(binio.iter_rank_segments(path, rank_trace.rank)) == reference
        frame = binio.rank_frame(path, rank_trace.rank)
        normalized = [s.relative_to_start() for s in reference]
        assert [frame.segment(i) for i in range(frame.n_segments)] == normalized


def test_malformed_rank_survives_a_text_round_trip(malformed_trace, tmp_path):
    # Converting a trace with a malformed rank must not "repair" it: the
    # text writer/reader deal in raw records, so the violation is preserved
    # verbatim for downstream tools to diagnose.
    from repro.trace.io import read_trace, write_trace

    trace, _ = malformed_trace
    text_path = tmp_path / "malformed.txt"
    write_trace(trace, text_path, format="text")
    back = read_trace(text_path, name=trace.name)
    for orig, reread in zip(trace.ranks, back.ranks):
        assert orig.records == reread.records
    with pytest.raises(SegmentationError):
        list(iter_segments(back.ranks[-1].records))
