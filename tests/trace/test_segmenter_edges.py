"""Hardening: RecordSegmenter behaviour at half-open segment edges.

Segments are half-open in time: a segment owns ``[start, end)``, so a new
segment (or the next record batch) may begin at *exactly* the timestamp the
previous segment ended on.  These edges are where an incremental consumer
is easiest to get wrong — a strict ``>`` comparison, an off-by-one on the
emission index, or state that doesn't survive a checkpoint mid-edge — so
each rule is pinned explicitly here.
"""

from __future__ import annotations

import pickle

import pytest

from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import RecordSegmenter, SegmentationError, iter_segments


def _rec(kind, t, name, rank=0):
    return TraceRecord(kind, rank, t, name)


BEGIN, END = RecordKind.SEGMENT_BEGIN, RecordKind.SEGMENT_END
ENTER, EXIT = RecordKind.ENTER, RecordKind.EXIT


class TestHalfOpenEdges:
    def test_next_segment_may_begin_exactly_at_previous_end(self):
        records = [
            _rec(BEGIN, 0.0, "main.1"),
            _rec(END, 4.0, "main.1"),
            _rec(BEGIN, 4.0, "main.2"),
            _rec(END, 8.0, "main.2"),
        ]
        first, second = iter_segments(records)
        assert first.end == second.start == 4.0
        assert (first.index, second.index) == (0, 1)

    def test_zero_duration_segment_is_legal(self):
        records = [_rec(BEGIN, 2.5, "sync.1"), _rec(END, 2.5, "sync.1")]
        (segment,) = iter_segments(records)
        assert segment.start == segment.end == 2.5
        assert segment.events == []

    def test_event_may_close_exactly_at_segment_end_timestamp(self):
        records = [
            _rec(BEGIN, 0.0, "main.1"),
            _rec(ENTER, 1.0, "compute"),
            _rec(EXIT, 3.0, "compute"),
            _rec(END, 3.0, "main.1"),
        ]
        (segment,) = iter_segments(records)
        assert segment.events[0].end == segment.end == 3.0

    def test_zero_duration_event_at_segment_start(self):
        records = [
            _rec(BEGIN, 0.0, "main.1"),
            _rec(ENTER, 0.0, "barrier"),
            _rec(EXIT, 0.0, "barrier"),
            _rec(END, 1.0, "main.1"),
        ]
        (segment,) = iter_segments(records)
        assert segment.events[0].start == segment.events[0].end == 0.0

    def test_event_still_open_at_segment_end_is_rejected(self):
        segmenter = RecordSegmenter()
        segmenter.push(_rec(BEGIN, 0.0, "main.1"))
        segmenter.push(_rec(ENTER, 1.0, "compute"))
        with pytest.raises(SegmentationError, match="inside open event"):
            segmenter.push(_rec(END, 1.0, "main.1"))

    def test_begin_at_previous_end_requires_the_end_first(self):
        # Same timestamp, wrong order: BEGIN before the END is still nesting.
        segmenter = RecordSegmenter()
        segmenter.push(_rec(BEGIN, 0.0, "main.1"))
        with pytest.raises(SegmentationError, match="must not nest"):
            segmenter.push(_rec(BEGIN, 4.0, "main.2"))


class TestIncrementalStateAtEdges:
    def test_mid_segment_flag_flips_exactly_on_the_edge_records(self):
        segmenter = RecordSegmenter()
        assert not segmenter.mid_segment
        segmenter.push(_rec(BEGIN, 0.0, "main.1"))
        assert segmenter.mid_segment
        emitted = segmenter.push(_rec(END, 0.0, "main.1"))
        assert emitted is not None and not segmenter.mid_segment
        segmenter.finish()

    def test_pickle_on_the_half_open_edge_resumes_identically(self):
        # Checkpoint between an END and a BEGIN that share a timestamp: the
        # resumed segmenter must keep the emission index and accept the
        # back-to-back BEGIN exactly like an uninterrupted run.
        segmenter = RecordSegmenter()
        segmenter.push(_rec(BEGIN, 0.0, "main.1"))
        segmenter.push(_rec(END, 4.0, "main.1"))
        resumed = pickle.loads(pickle.dumps(segmenter))
        assert resumed.n_emitted == 1 and not resumed.mid_segment
        resumed.push(_rec(BEGIN, 4.0, "main.2"))
        segment = resumed.push(_rec(END, 4.0, "main.2"))
        assert segment.index == 1
        resumed.finish()

    def test_pickle_with_open_event_preserves_the_pending_edge(self):
        segmenter = RecordSegmenter()
        segmenter.push(_rec(BEGIN, 0.0, "main.1"))
        segmenter.push(_rec(ENTER, 1.0, "compute"))
        resumed = pickle.loads(pickle.dumps(segmenter))
        assert resumed.mid_segment
        resumed.push(_rec(EXIT, 1.0, "compute"))
        segment = resumed.push(_rec(END, 1.0, "main.1"))
        assert segment.events[0].start == segment.events[0].end == 1.0

    def test_finish_names_the_unclosed_segment_on_the_edge(self):
        segmenter = RecordSegmenter()
        segmenter.push(_rec(BEGIN, 0.0, "main.1"))
        segmenter.push(_rec(END, 4.0, "main.1"))
        segmenter.push(_rec(BEGIN, 4.0, "main.2"))
        with pytest.raises(SegmentationError, match="'main.2' was never closed"):
            segmenter.finish()
