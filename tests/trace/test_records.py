"""Tests for raw trace records."""

import pytest

from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord


class TestTraceRecord:
    def test_basic_construction(self):
        record = TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=1.0, name="f")
        assert record.kind is RecordKind.ENTER
        assert record.name == "f"

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=-1.0, name="f")

    def test_mpi_only_on_enter(self):
        info = MpiCallInfo(op="barrier")
        TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=0.0, name="MPI_Barrier", mpi=info)
        with pytest.raises(ValueError, match="ENTER"):
            TraceRecord(kind=RecordKind.EXIT, rank=0, timestamp=0.0, name="MPI_Barrier", mpi=info)

    def test_frozen(self):
        record = TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=0.0, name="f")
        with pytest.raises(AttributeError):
            record.timestamp = 5.0

    def test_record_kinds_distinct(self):
        assert len({k.value for k in RecordKind}) == 4

    @pytest.mark.parametrize("name", ["two words", "tab\tsep", "line\nbreak", " pad", ""])
    def test_unserializable_name_rejected(self, name):
        # Regression: these names used to serialize into lines that parse back
        # into different tokens (or not at all); now they fail at construction.
        with pytest.raises(ValueError, match="record name"):
            TraceRecord(kind=RecordKind.ENTER, rank=0, timestamp=1.0, name=name)
