"""Tests for merging per-rank record streams and reduced representatives."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import create_metric
from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.core.reducer import TraceReducer
from repro.trace.merge import merge_records, merge_reduced_trace, merge_trace
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.trace import Trace

from tests.conftest import make_segment


def _rec(rank, t, name="f"):
    return TraceRecord(kind=RecordKind.ENTER, rank=rank, timestamp=t, name=name)


class TestMergeRecords:
    def test_orders_by_timestamp(self):
        merged = merge_records([[_rec(0, 2.0)], [_rec(1, 1.0)]])
        assert [r.rank for r in merged] == [1, 0]

    def test_tie_broken_by_rank(self):
        merged = merge_records([[_rec(1, 1.0)], [_rec(0, 1.0)]])
        assert [r.rank for r in merged] == [0, 1]

    def test_preserves_per_rank_order(self):
        merged = merge_records([[_rec(0, 1.0, "a"), _rec(0, 3.0, "b")], [_rec(1, 2.0, "c")]])
        assert [r.name for r in merged] == ["a", "c", "b"]

    def test_unsorted_stream_rejected(self):
        with pytest.raises(ValueError, match="not sorted"):
            merge_records([[_rec(0, 2.0), _rec(0, 1.0)]])

    def test_empty_input(self):
        assert merge_records([]) == []

    def test_merge_full_trace(self):
        trace = late_sender(nprocs=4, iterations=2, seed=0).run()
        merged = merge_trace(trace)
        assert len(merged) == trace.num_records
        times = [r.timestamp for r in merged]
        assert times == sorted(times)

    def test_empty_trace(self):
        assert merge_trace(Trace(name="empty", ranks=[])) == []

    def test_single_rank_passthrough(self):
        records = [_rec(0, 1.0, "a"), _rec(0, 2.0, "b")]
        assert [r.name for r in merge_records([records])] == ["a", "b"]


def _rank(rank, segments, execs):
    reduced = ReducedRankTrace(rank=rank)
    for sid, segment in enumerate(segments):
        reduced.stored.append(StoredSegment(segment_id=sid, segment=segment))
    reduced.execs = execs
    reduced.n_segments = len(execs)
    return reduced


def _seg(context="main.1", duration=2.0):
    return make_segment(context, [("f", 0.0, 1.0)], end=duration)


class TestMergeReducedTrace:
    def test_empty_reduced_trace(self):
        merged = merge_reduced_trace(ReducedTrace(name="e", method="relDiff", threshold=0.8))
        assert merged.n_stored == 0
        assert merged.n_duplicates == 0
        assert merged.rank_execs == []
        assert merged.size_bytes() == 0

    def test_single_rank_is_identity(self):
        rank = _rank(0, [_seg()], [(0, 0.0), (0, 5.0)])
        reduced = ReducedTrace(name="t", method="relDiff", threshold=0.8, ranks=[rank])
        merged = merge_reduced_trace(reduced)
        assert merged.n_stored == 1
        assert merged.n_duplicates == 0
        assert merged.rank_execs == [(0, [(0, 0.0), (0, 5.0)])]
        assert merged.size_bytes() == reduced.size_bytes()

    def test_identical_representatives_deduped(self):
        ranks = [_rank(r, [_seg()], [(0, 0.0)]) for r in range(3)]
        reduced = ReducedTrace(name="t", method="relDiff", threshold=0.8, ranks=ranks)
        merged = merge_reduced_trace(reduced)
        assert merged.n_rank_stored == 3
        assert merged.n_stored == 1
        assert merged.n_duplicates == 2
        assert merged.stored[0].count == 3
        assert merged.size_bytes() < reduced.size_bytes()

    def test_disjoint_structures_not_merged(self):
        ranks = [
            _rank(0, [_seg(context="main.1")], [(0, 0.0)]),
            _rank(1, [_seg(context="main.2")], [(0, 0.0)]),
        ]
        merged = merge_reduced_trace(
            ReducedTrace(name="t", method="relDiff", threshold=0.8, ranks=ranks)
        )
        assert merged.n_stored == 2
        assert merged.n_duplicates == 0
        # Global ids are assigned in first-seen order and execs remapped.
        assert merged.rank_execs == [(0, [(0, 0.0)]), (1, [(1, 0.0)])]

    def test_dedup_uses_serialized_precision(self):
        # Timestamps that differ below the 2-decimal serialization precision
        # produce byte-identical representatives and must merge.
        ranks = [
            _rank(0, [_seg(duration=2.0)], [(0, 0.0)]),
            _rank(1, [_seg(duration=2.0 + 1e-9)], [(0, 0.0)]),
        ]
        merged = merge_reduced_trace(
            ReducedTrace(name="t", method="iter_avg", threshold=None, ranks=ranks)
        )
        assert merged.n_stored == 1
        assert merged.n_duplicates == 1

    def test_same_structure_different_measurements_kept_apart(self):
        ranks = [
            _rank(0, [_seg(duration=2.0)], [(0, 0.0)]),
            _rank(1, [_seg(duration=3.0)], [(0, 0.0)]),
        ]
        merged = merge_reduced_trace(
            ReducedTrace(name="t", method="relDiff", threshold=0.8, ranks=ranks)
        )
        assert merged.n_stored == 2
        assert merged.n_duplicates == 0

    def test_input_not_mutated(self):
        ranks = [_rank(r, [_seg()], [(0, 0.0)]) for r in range(2)]
        reduced = ReducedTrace(name="t", method="relDiff", threshold=0.8, ranks=ranks)
        merge_reduced_trace(reduced)
        assert all(r.stored[0].segment_id == 0 for r in reduced.ranks)
        assert all(r.stored[0].count == 1 for r in reduced.ranks)

    def test_real_reduction_round_trip(self, small_late_sender_trace):
        reduced = TraceReducer(create_metric("iter_avg")).reduce(small_late_sender_trace)
        merged = merge_reduced_trace(reduced)
        assert merged.n_stored + merged.n_duplicates == reduced.n_stored
        # Every exec entry survives with a valid global id.
        valid_ids = {s.segment_id for s in merged.stored}
        total_execs = 0
        for _, execs in merged.rank_execs:
            total_execs += len(execs)
            assert all(sid in valid_ids for sid, _ in execs)
        assert total_execs == sum(len(r.execs) for r in reduced.ranks)
