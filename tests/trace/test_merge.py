"""Tests for merging per-rank record streams."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.trace.merge import merge_records, merge_trace
from repro.trace.records import RecordKind, TraceRecord


def _rec(rank, t, name="f"):
    return TraceRecord(kind=RecordKind.ENTER, rank=rank, timestamp=t, name=name)


class TestMergeRecords:
    def test_orders_by_timestamp(self):
        merged = merge_records([[_rec(0, 2.0)], [_rec(1, 1.0)]])
        assert [r.rank for r in merged] == [1, 0]

    def test_tie_broken_by_rank(self):
        merged = merge_records([[_rec(1, 1.0)], [_rec(0, 1.0)]])
        assert [r.rank for r in merged] == [0, 1]

    def test_preserves_per_rank_order(self):
        merged = merge_records([[_rec(0, 1.0, "a"), _rec(0, 3.0, "b")], [_rec(1, 2.0, "c")]])
        assert [r.name for r in merged] == ["a", "c", "b"]

    def test_unsorted_stream_rejected(self):
        with pytest.raises(ValueError, match="not sorted"):
            merge_records([[_rec(0, 2.0), _rec(0, 1.0)]])

    def test_empty_input(self):
        assert merge_records([]) == []

    def test_merge_full_trace(self):
        trace = late_sender(nprocs=4, iterations=2, seed=0).run()
        merged = merge_trace(trace)
        assert len(merged) == trace.num_records
        times = [r.timestamp for r in merged]
        assert times == sorted(times)
