"""Replay every persisted corpus case: mined bugs must stay fixed.

Each ``<id>.json`` beside this file is a fuzz case persisted by
``repro-trace fuzz --save-failures`` (or seeded deliberately).  Replay
runs the case's oracles from its stored records alone — no generator
involved — so a green corpus means every pathway pair the case once
split (or pins) is still byte-identical.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.casedb import CaseDB, CorpusCase

CORPUS_DIR = Path(__file__).parent
_DB = CaseDB(CORPUS_DIR)


def _case_ids():
    paths = _DB.case_paths()
    assert paths, "regression corpus is empty — seed cases are expected here"
    return [p.stem for p in paths]


@pytest.fixture(params=_case_ids())
def corpus_case(request) -> CorpusCase:
    return _DB.load(request.param)


def test_corpus_case_is_well_formed(corpus_case):
    assert corpus_case.id
    assert corpus_case.oracles, "a corpus case with no oracles replays nothing"
    assert corpus_case.n_records > 0
    trace = corpus_case.trace()
    assert trace.nprocs == len(corpus_case.records)


def test_corpus_case_replays_green(corpus_case, tmp_path):
    from repro.fuzz.oracles import run_oracles

    outcomes = run_oracles(
        corpus_case.trace(),
        corpus_case.config,
        tmp_path,
        corpus_case.oracles,
        seed=corpus_case.seed,
    )
    failed = [(o.name, o.detail) for o in outcomes if o.failed]
    assert not failed, f"corpus case {corpus_case.id} regressed: {failed}"


def test_corpus_file_is_canonical_json(corpus_case):
    # Saving the loaded case reproduces the file byte-for-byte, so corpus
    # diffs stay reviewable and ulp-precision floats are proven lossless.
    import json

    path = _DB.path_for(corpus_case.id)
    on_disk = path.read_text()
    rewritten = json.dumps(corpus_case.to_json(), indent=1, sort_keys=True) + "\n"
    assert rewritten == on_disk
