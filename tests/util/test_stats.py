"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.util.stats import (
    coefficient_of_variation,
    pearson,
    percentile,
    spearman,
    summarize,
)


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 90) == 0.0

    def test_single_value(self):
        assert percentile([5.0], 90) == 5.0

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_90th(self):
        values = list(range(1, 101))
        assert percentile(values, 90) == pytest.approx(90.1)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_accepts_numpy_array(self):
        assert percentile(np.array([1.0, 3.0]), 100) == 3.0


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.p50 == 2.0

    def test_as_dict_keys(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "max", "p50", "p90", "p99"}


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_both_constant(self):
        assert pearson([1, 1, 1], [2, 2, 2]) == 1.0

    def test_one_constant(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_single_element(self):
        assert pearson([1.0], [5.0]) == 1.0


class TestSpearman:
    def test_monotonic_is_one(self):
        assert spearman([1, 2, 3, 4], [10, 100, 1000, 10000]) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_handles_ties(self):
        value = spearman([1, 1, 2, 3], [1, 1, 2, 3])
        assert value == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1], [1, 2])


class TestCoefficientOfVariation:
    def test_uniform_is_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_empty_is_zero(self):
        assert coefficient_of_variation([]) == 0.0

    def test_zero_mean_is_zero(self):
        assert coefficient_of_variation([-1, 1]) == 0.0

    def test_known_value(self):
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)
