"""Tests for plain-text table formatting."""

import pytest

from repro.util.tables import format_matrix, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert lines[2].split() == ["1", "2"]

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_floats_formatted(self):
        text = format_table(["x"], [[3.14159]], float_fmt=".2f")
        assert "3.14" in text

    def test_bools_rendered_as_yes_no(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["longer_name", 1], ["x", 22]])
        lines = text.splitlines()
        # all rows have the same position for the second column
        assert lines[2].index("1") == lines[3].index("2")


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series("t", [1, 2], {"a": [10.0, 20.0], "b": [1.0, 2.0]})
        header = text.splitlines()[0].split()
        assert header == ["t", "a", "b"]

    def test_values_in_rows(self):
        text = format_series("t", [0.1], {"a": [5.0]})
        assert "5" in text.splitlines()[2]


class TestFormatMatrix:
    def test_missing_cells_dash(self):
        text = format_matrix(["r1"], ["c1", "c2"], {("r1", "c1"): 1})
        assert "-" in text.splitlines()[2]

    def test_corner_label(self):
        text = format_matrix(["r"], ["c"], {}, corner="corner")
        assert text.splitlines()[0].startswith("corner")
