"""Tests for argument validation helpers."""

import pytest

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_rank,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_message_contains_name(self):
        with pytest.raises(ValueError, match="iterations"):
            check_positive("iterations", -2)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckRank:
    def test_accepts_valid(self):
        assert check_rank(3, 4) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_rank(4, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_rank(-1, 4)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            check_rank(1.5, 4)


class TestCheckType:
    def test_accepts_correct_type(self):
        assert check_type("x", 3, int) == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="must be int"):
            check_type("x", "3", int)

    def test_tuple_of_types(self):
        assert check_type("x", 3.0, (int, float)) == 3.0
