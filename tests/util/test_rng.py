"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro.util.rng import derive_seed, rng_for


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_different_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_base_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_returns_valid_numpy_seed(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**63
        np.random.default_rng(seed)  # must not raise

    def test_no_labels(self):
        assert derive_seed(7) == derive_seed(7)

    def test_numeric_vs_string_labels_differ(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")


class TestRngFor:
    def test_same_stream_for_same_labels(self):
        a = rng_for(0, "rank", 3).normal(size=5)
        b = rng_for(0, "rank", 3).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        a = rng_for(0, "rank", 0).normal(size=100)
        b = rng_for(0, "rank", 1).normal(size=100)
        assert not np.allclose(a, b)

    def test_returns_generator(self):
        assert isinstance(rng_for(0, "x"), np.random.Generator)
