"""Generator families: determinism, text-safety, and the 1-ulp boundary."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.metrics import create_metric
from repro.fuzz.executor import plan_cases
from repro.fuzz.generators import (
    DISTANCE_METRICS,
    FAMILIES,
    FAMILY_NAMES,
    MALFORMED_KINDS,
    TICK,
    CaseSpec,
    boundary_deltas,
    edge_boundary_ends,
    generate_case,
    trace_from_records,
)
from repro.trace.io import serialize_records
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import SegmentationError, iter_segments
from repro.util.rng import rng_for


def _spec(family: str, seed: int = 11) -> CaseSpec:
    params = FAMILIES[family].default_params(rng_for(seed, "params", family))
    return CaseSpec(family=family, seed=seed, params=params)


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_same_spec_builds_byte_identical_records(family):
    spec = _spec(family)
    first = generate_case(spec)
    second = generate_case(spec)
    assert first.nprocs == second.nprocs
    for a, b in zip(first.ranks, second.ranks):
        assert serialize_records(a.records) == serialize_records(b.records)


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_different_seeds_change_the_trace(family):
    # Params are drawn per seed too, so the pair (params, seed) always moves.
    a = generate_case(_spec(family, seed=1))
    b = generate_case(_spec(family, seed=2))
    a_bytes = b"".join(serialize_records(r.records) for r in a.ranks)
    b_bytes = b"".join(serialize_records(r.records) for r in b.ranks)
    assert a_bytes != b_bytes


@pytest.mark.parametrize("family", [n for n in FAMILY_NAMES if FAMILIES[n].text_safe])
def test_text_safe_families_stay_on_the_tick_grid(family):
    trace = generate_case(_spec(family))
    for rank in trace.ranks:
        for rec in rank.records:
            scaled = rec.timestamp / TICK
            assert scaled == round(scaled), (
                f"{family} rank {rank.rank} timestamp {rec.timestamp} off the 0.25 grid"
            )


@pytest.mark.parametrize("family", [n for n in FAMILY_NAMES if FAMILIES[n].segmentable])
def test_segmentable_families_segment_cleanly(family):
    trace = generate_case(_spec(family))
    segmented = trace.segmented()
    assert segmented.num_segments > 0


def test_malformed_family_breaks_exactly_its_last_rank():
    for kind in MALFORMED_KINDS:
        spec = CaseSpec(family="malformed", seed=3, params={"nprocs": 3, "kind": kind})
        trace = generate_case(spec)
        for rank in trace.ranks[:-1]:
            list(iter_segments(rank.records))  # well-formed
        with pytest.raises(SegmentationError):
            list(iter_segments(trace.ranks[-1].records))


def test_trace_from_records_renumbers_ranks_contiguously():
    rec = TraceRecord(RecordKind.SEGMENT_BEGIN, 5, 0.0, "main.1")
    end = TraceRecord(RecordKind.SEGMENT_END, 5, 1.0, "main.1")
    trace = trace_from_records("t", [[rec, end]])
    assert trace.ranks[0].rank == 0
    assert all(r.rank == 0 for r in trace.ranks[0].records)


# --------------------------------------------------------------------------
# The threshold-edge family's core claim: probes land 1 ulp from the boundary.


def test_boundary_deltas_returns_adjacent_floats():
    last_true, first_false = boundary_deltas(lambda x: x <= 7.3, 0.0, 100.0)
    assert last_true <= 7.3 < first_false
    assert math.nextafter(last_true, math.inf) == first_false


@pytest.mark.parametrize("method", DISTANCE_METRICS)
def test_edge_boundary_is_one_ulp_wide(method):
    from repro.core.metrics import DEFAULT_THRESHOLDS
    from repro.fuzz.generators import _RankScript

    threshold = DEFAULT_THRESHOLDS[method]
    script = _RankScript(0)
    script.begin_segment("edge.0")
    for d in (5, 9, 3):
        script.call("compute", d)
    script.end_segment("edge.0", gap=1)
    base = next(iter_segments(script.records))

    end_match, end_miss = edge_boundary_ends(base, method, threshold)
    assert math.nextafter(end_match, math.inf) == end_miss

    # Replay the decision exactly as the reducer does: normalise, then match.
    metric = create_metric(method, threshold)
    stored = base.relative_to_start()
    stored_ts = np.asarray(stored.timestamps(), dtype=float)

    def decision(end_value):
        from repro.trace.segments import Segment

        probe = Segment(
            context=base.context,
            rank=0,
            start=base.start,
            end=end_value,
            events=list(base.events),
        ).relative_to_start()
        ts = np.asarray(probe.timestamps(), dtype=float)
        return metric.similar(ts, stored_ts, probe, stored)

    assert decision(end_match) is True
    assert decision(end_miss) is False


def test_threshold_edge_case_reduces_to_expected_match_pattern():
    params = {
        "method": "euclidean",
        "threshold": 0.2,
        "pairs": 2,
        "config": {"method": "euclidean", "threshold": 0.2, "store_capacity": None},
    }
    trace = generate_case(CaseSpec(family="threshold_edge", seed=9, params=params))
    from repro.core.reducer import TraceReducer

    reduced = TraceReducer(create_metric("euclidean", 0.2), batch=False).reduce(
        trace.segmented()
    )
    rank = reduced.ranks[0]
    by_context: dict[str, list] = {}
    for stored in rank.stored:
        by_context.setdefault(stored.segment.context, []).append(stored)
    # Per probe group: 5 executions — base (stored), exact copy (match),
    # edge-match (match), edge-miss (stored), exact copy again (match, and it
    # must pick the *first* representative, proving first-match order).
    for context, stored in by_context.items():
        assert len(stored) == 2, context
        assert stored[0].count == 4  # base + copy + edge-match + final copy
        assert stored[1].count == 1  # the boundary miss
