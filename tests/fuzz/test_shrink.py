"""Shrink soundness: the minimized case still fails, and only then shrinks."""

from __future__ import annotations

import pytest

from repro.fuzz.generators import CaseConfig
from repro.fuzz.shrink import (
    _segment_chunks,
    make_failure_check,
    shrink_records,
)
from repro.trace.records import RecordKind, TraceRecord


def _seg(rank, start, names=("compute",), context="main.1", gap=1.0):
    records = [TraceRecord(RecordKind.SEGMENT_BEGIN, rank, start, context)]
    t = start + gap
    for name in names:
        records.append(TraceRecord(RecordKind.ENTER, rank, t, name))
        t += gap
        records.append(TraceRecord(RecordKind.EXIT, rank, t, name))
        t += gap
    records.append(TraceRecord(RecordKind.SEGMENT_END, rank, t, context))
    return records, t + gap


def _multi_rank_case(n_ranks=3, n_segments=3):
    out = []
    for rank in range(n_ranks):
        records, t = [], 0.0
        for i in range(n_segments):
            seg, t = _seg(rank, t, names=("compute", "exchange"), context=f"main.{i + 1}")
            records.extend(seg)
        out.append(records)
    return out


def _has_needle(records_by_rank):
    return any(
        rec.name == "needle" for records in records_by_rank for rec in records
    )


def test_shrink_with_synthetic_predicate_minimizes_hard():
    records = _multi_rank_case()
    # Plant the needle mid-way through rank 1.
    records[1][5] = TraceRecord(RecordKind.ENTER, 1, records[1][5].timestamp, "needle")
    records[1][6] = TraceRecord(RecordKind.EXIT, 1, records[1][6].timestamp, "needle")
    result = shrink_records(records, _has_needle)
    assert _has_needle(result.records)
    # Everything but the needle-bearing chunk is droppable under this
    # predicate: one rank, one segment chunk, the needle pair inside it.
    assert len(result.records) == 1
    assert result.records_after <= 4
    assert result.records_after < result.records_before
    assert result.reduction > 0.5


def test_shrink_rejects_a_passing_input():
    records = _multi_rank_case(n_ranks=1, n_segments=1)
    with pytest.raises(ValueError, match="does not fail its own check"):
        shrink_records(records, _has_needle)


def test_shrink_respects_the_check_budget():
    records = _multi_rank_case(n_ranks=4, n_segments=4)
    records[0][1] = TraceRecord(RecordKind.ENTER, 0, records[0][1].timestamp, "needle")
    records[0][2] = TraceRecord(RecordKind.EXIT, 0, records[0][2].timestamp, "needle")
    result = shrink_records(records, _has_needle, budget=10)
    assert result.checks <= 10
    assert _has_needle(result.records)


def test_shrink_never_returns_more_records_than_it_got():
    records = _multi_rank_case()
    result = shrink_records(records, lambda r: True)
    assert result.records_after <= result.records_before


def test_segment_chunks_balanced_spans():
    records, _ = _seg(0, 0.0, names=("a", "b"))
    more, _ = _seg(0, 20.0, names=("c",))
    chunks = _segment_chunks(records + more)
    assert len(chunks) == 2
    assert [len(c) for c in chunks] == [6, 4]


def test_segment_chunks_isolates_stray_records():
    # A malformed stream: an EXIT outside any segment is its own chunk, so
    # shrinking can drop rule-violating records individually.
    seg, t = _seg(0, 0.0)
    stray = TraceRecord(RecordKind.EXIT, 0, t, "orphan")
    chunks = _segment_chunks(seg + [stray])
    assert chunks[-1] == [stray]
    assert len(chunks) == 2


def test_segment_chunks_keeps_unclosed_tail():
    begin = TraceRecord(RecordKind.SEGMENT_BEGIN, 0, 0.0, "main.1")
    enter = TraceRecord(RecordKind.ENTER, 0, 1.0, "compute")
    chunks = _segment_chunks([begin, enter])
    assert chunks == [[begin, enter]]


# --------------------------------------------------------------------------
# End-to-end soundness against a *real* oracle: the text format rounds
# timestamps to two decimals, so an off-grid timestamp genuinely fails
# text_roundtrip — a true failure for make_failure_check to preserve.


def _off_grid_case():
    records = _multi_rank_case(n_ranks=2, n_segments=2)
    bad = records[0][2]
    records[0][2] = TraceRecord(bad.kind, bad.rank, bad.timestamp + 0.003, bad.name)
    return records


def test_make_failure_check_detects_the_lossy_text_path():
    check = make_failure_check(CaseConfig("relDiff", 0.5), ["text_roundtrip"])
    assert check(_off_grid_case()) is True
    assert check(_multi_rank_case(n_ranks=2, n_segments=2)) is False
    assert check([[]]) is False


def test_shrink_against_real_oracle_is_sound():
    check = make_failure_check(CaseConfig("relDiff", 0.5), ["text_roundtrip"])
    result = shrink_records(_off_grid_case(), check, budget=120)
    # Sound: the shrunk case still fails the very oracle it was mined on.
    assert check(result.records) is True
    # And it actually shrank: the clean rank and untouched segments go.
    assert len(result.records) == 1
    assert result.records_after < result.records_before
    # The timestamp-simplification pass must NOT have snapped the off-grid
    # value to the grid (that would make the case pass and be rejected).
    off_grid = [
        rec
        for records in result.records
        for rec in records
        if (rec.timestamp / 0.25) != round(rec.timestamp / 0.25)
    ]
    assert off_grid, "shrink lost the off-grid timestamp that made the case fail"
