"""Corpus case JSON round-trips, including ulp-precision timestamps."""

from __future__ import annotations

import math

import pytest

from repro.fuzz.casedb import CaseDB, CorpusCase, decode_records, encode_records
from repro.fuzz.generators import CaseConfig, CaseSpec, generate_case
from repro.fuzz.oracles import run_oracles
from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.util.rng import rng_for


def _records_with_awkward_values():
    ulp = math.nextafter(7.25, math.inf)  # not representable in the text format
    mpi = MpiCallInfo(op="send", peer=3, tag=17, nbytes=4096, comm="world")
    return [
        [
            TraceRecord(RecordKind.SEGMENT_BEGIN, 0, 0.0, "main.1"),
            TraceRecord(RecordKind.ENTER, 0, 0.25, "MPI_Send", mpi=mpi),
            TraceRecord(RecordKind.EXIT, 0, ulp, "MPI_Send"),
            TraceRecord(RecordKind.SEGMENT_END, 0, 8.0, "main.1"),
        ],
        [
            TraceRecord(RecordKind.SEGMENT_BEGIN, 1, 0.0, "main.1"),
            TraceRecord(RecordKind.SEGMENT_END, 1, 1.0, "main.1"),
        ],
    ]


def test_encode_decode_records_is_exact():
    records = _records_with_awkward_values()
    decoded = decode_records(encode_records(records))
    assert decoded == records
    # The ulp timestamp survives bit-for-bit.
    assert decoded[0][2].timestamp == records[0][2].timestamp


def _case(case_id="deadbeef0123"):
    return CorpusCase(
        id=case_id,
        family="stencil",
        seed=42,
        params={"nprocs": 2},
        config=CaseConfig("euclidean", 0.2, store_capacity=5),
        oracles=["dense_vs_scan", "rpb_roundtrip"],
        records=_records_with_awkward_values(),
        divergence="byte 17: expected 0x00, got 0x01",
        shrunk=True,
        note="unit-test fixture",
    )


def test_corpus_case_json_round_trip():
    case = _case()
    back = CorpusCase.from_json(case.to_json())
    assert back == case


def test_save_load_by_id_and_path(tmp_path):
    db = CaseDB(tmp_path)
    case = _case()
    path = db.save(case)
    assert path == tmp_path / "deadbeef0123.json"
    assert db.load(case.id) == case
    assert db.load(path) == case
    assert db.case_paths() == [path]
    assert len(db) == 1
    assert [c.id for c in db] == [case.id]


def test_load_missing_case_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="no corpus case"):
        CaseDB(tmp_path).load("nope")


def test_corpus_case_rebuilds_a_reducible_trace():
    trace = _case().trace()
    assert trace.nprocs == 2
    assert trace.segmented().num_segments == 2


def test_persisted_case_replays_green(tmp_path):
    # Persist a known-passing generated case, reload it, and replay its
    # oracles from the stored records alone — the corpus replay contract.
    params = {"nprocs": 3, "iterations": 4, "halo_width": 1, "jitter": 0}
    spec = CaseSpec(family="stencil", seed=8, params=params)
    trace = generate_case(spec)
    config = CaseConfig("relDiff", 0.5)
    case = CorpusCase(
        id="replaygreen00",
        family=spec.family,
        seed=spec.seed,
        params=params,
        config=config,
        oracles=["dense_vs_scan", "rpb_roundtrip", "text_roundtrip"],
        records=[list(rank.records) for rank in trace.ranks],
    )
    db = CaseDB(tmp_path)
    db.save(case)
    loaded = db.load(case.id)
    outcomes = run_oracles(loaded.trace(), loaded.config, tmp_path, loaded.oracles)
    assert all(o.status == "pass" for o in outcomes), [
        (o.name, o.detail) for o in outcomes
    ]


def test_encode_is_stable_under_rng_reuse():
    # Same drawn records encode identically regardless of call order.
    rng = rng_for(0, "casedb-noise")
    rng.random()  # unrelated RNG activity must not leak into encoding
    records = _records_with_awkward_values()
    assert encode_records(records) == encode_records(records)
