"""Executor determinism and full oracle-matrix coverage."""

from __future__ import annotations

import pytest

from repro.fuzz.executor import FuzzCase, plan_cases, run_case, run_fuzz
from repro.fuzz.generators import FAMILIES, FAMILY_NAMES, CaseConfig, CaseSpec
from repro.fuzz.oracles import ORACLE_NAMES, applicable_oracles

#: One round of every family; seed 5 draws quick params for each (pinned so
#: a slow prune_stress deep-bucket draw can't creep into the unit suite).
SEED = 5
ROUND = len(FAMILY_NAMES)


def test_plan_is_deterministic():
    first = plan_cases(SEED, 2 * ROUND)
    second = plan_cases(SEED, 2 * ROUND)
    assert [c.id for c in first] == [c.id for c in second]
    assert [c.spec for c in first] == [c.spec for c in second]
    assert [c.config for c in first] == [c.config for c in second]


def test_plan_depends_on_seed():
    assert [c.id for c in plan_cases(1, ROUND)] != [c.id for c in plan_cases(2, ROUND)]


def test_plan_round_robins_all_families():
    planned = plan_cases(SEED, ROUND)
    assert [c.spec.family for c in planned] == list(FAMILY_NAMES)


def test_plan_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown fuzz family"):
        plan_cases(SEED, 1, families=["nope"])


def test_case_id_depends_on_config_too():
    spec = CaseSpec(family="stencil", seed=1, params={"nprocs": 2, "iterations": 4})
    a = FuzzCase(spec=spec, config=CaseConfig("relDiff", 0.8))
    b = FuzzCase(spec=spec, config=CaseConfig("relDiff", 0.4))
    assert a.id != b.id


@pytest.fixture(scope="module")
def one_round_results():
    return [run_case(case) for case in plan_cases(SEED, ROUND)]


def test_every_family_passes_every_applicable_oracle(one_round_results):
    for result in one_round_results:
        assert result.ok, (
            f"{result.case.describe()} failed {result.failed_oracles}: "
            f"{result.divergence}"
        )


def test_one_round_covers_the_full_oracle_matrix(one_round_results):
    ran: set[str] = set()
    for result in one_round_results:
        ran.update(o.name for o in result.outcomes if o.status != "skip")
    assert ran == set(ORACLE_NAMES)


def test_rerun_reproduces_outcomes(one_round_results):
    # Re-running the first case must reproduce its exact outcome list.
    first = one_round_results[0]
    again = run_case(first.case)
    assert [(o.name, o.status) for o in again.outcomes] == [
        (o.name, o.status) for o in first.outcomes
    ]


def test_applicable_oracles_matrix():
    malformed = applicable_oracles(FAMILIES["malformed"])
    assert malformed == ("malformed_fallback",)
    edge = applicable_oracles(FAMILIES["threshold_edge"])
    assert "text_roundtrip" not in edge
    assert "pruned_vs_scan" in edge
    full = applicable_oracles(FAMILIES["stencil"])
    assert "text_roundtrip" in full


def test_run_fuzz_report_shape(tmp_path):
    report = run_fuzz(SEED, 3, corpus_dir=tmp_path)
    assert report.planned == 3
    assert len(report.results) == 3
    assert report.ok and not report.saved
    assert report.oracle_coverage["dense_vs_scan"] == 3


def test_time_budget_truncates_but_never_alters(monkeypatch):
    # A zero budget runs no cases at all — planned cases are only truncated.
    report = run_fuzz(SEED, 5, time_budget=0.0)
    assert report.truncated
    assert report.results == []


def test_a_divergence_is_persisted_shrunk_and_replayable(tmp_path, monkeypatch):
    # Force one oracle to report a divergence so the mining path —
    # persist, shrink, reload, replay — is exercised end to end even
    # while the real pathways agree.
    from repro.fuzz import executor as executor_mod
    from repro.fuzz import oracles as oracles_mod
    from repro.fuzz.casedb import CaseDB

    real_run_oracles = oracles_mod.run_oracles

    def failing_run_oracles(trace, config, workdir, names, seed=0):
        outcomes = real_run_oracles(trace, config, workdir, names, seed=seed)
        return [
            type(o)(o.name, "fail", "injected divergence")
            if o.name == "dense_vs_scan"
            else o
            for o in outcomes
        ]

    monkeypatch.setattr(executor_mod, "run_oracles", failing_run_oracles)
    monkeypatch.setattr(oracles_mod, "run_oracles", failing_run_oracles)

    report = run_fuzz(
        SEED, 1, families=["stencil"], corpus_dir=tmp_path, shrink=True, shrink_budget=60
    )
    assert report.n_failed == 1
    assert len(report.saved) == 1

    case = CaseDB(tmp_path).load(report.saved[0])
    assert case.oracles == ["dense_vs_scan"]
    assert case.shrunk
    assert case.divergence == "injected divergence"
    # The shrunk case still "fails" under the same (patched) check.
    monkeypatch.undo()
    from repro.fuzz.oracles import run_oracles as clean_run_oracles

    outcomes = clean_run_oracles(case.trace(), case.config, tmp_path, case.oracles)
    assert all(o.status == "pass" for o in outcomes)  # pathways really do agree
