"""Tests for the trend-retention comparison."""

import numpy as np
import pytest

from repro.analysis.compare import ComparisonOptions, compare_diagnoses
from repro.analysis.patterns import EXECUTION_TIME, LATE_SENDER, WAIT_AT_BARRIER, WAIT_AT_NXN
from repro.analysis.report import DiagnosisReport


def _report(entries, nprocs=4, wall_time=10_000.0, name="r"):
    """entries: {(metric, location): per-rank list}"""
    report = DiagnosisReport(name=name, nprocs=nprocs, wall_time=wall_time)
    for (metric, location), values in entries.items():
        for rank, value in enumerate(values):
            report.add(metric, location, rank, max(0.0, value), value)
    return report


FULL = {
    (LATE_SENDER, "MPI_Recv"): [0.0, 5000.0, 0.0, 5000.0],
    (EXECUTION_TIME, "do_work"): [10_000.0, 10_000.0, 10_000.0, 10_000.0],
}


class TestRetained:
    def test_identical_reports_retained(self):
        full = _report(FULL)
        reduced = _report(FULL)
        result = compare_diagnoses(full, reduced)
        assert result.retained
        assert result.violations == []
        assert (LATE_SENDER, "MPI_Recv") in result.major_diagnoses

    def test_small_perturbation_retained(self):
        reduced = {
            (LATE_SENDER, "MPI_Recv"): [0.0, 5400.0, 0.0, 4600.0],
            (EXECUTION_TIME, "do_work"): [10_100.0, 9_900.0, 10_000.0, 10_050.0],
        }
        assert compare_diagnoses(_report(FULL), _report(reduced)).retained


class TestViolations:
    def test_vanished_major_diagnosis(self):
        reduced = {
            (LATE_SENDER, "MPI_Recv"): [0.0, 10.0, 0.0, 10.0],
            (EXECUTION_TIME, "do_work"): FULL[(EXECUTION_TIME, "do_work")],
        }
        result = compare_diagnoses(_report(FULL), _report(reduced))
        assert not result.retained
        assert any("total severity changed" in v for v in result.violations)

    def test_wildly_inflated_major_diagnosis(self):
        reduced = {
            (LATE_SENDER, "MPI_Recv"): [0.0, 50_000.0, 0.0, 50_000.0],
            (EXECUTION_TIME, "do_work"): FULL[(EXECUTION_TIME, "do_work")],
        }
        assert not compare_diagnoses(_report(FULL), _report(reduced)).retained

    def test_profile_inversion_detected(self):
        """The waiting ranks swap: totals match but the per-rank profile doesn't."""
        reduced = {
            (LATE_SENDER, "MPI_Recv"): [5000.0, 0.0, 5000.0, 0.0],
            (EXECUTION_TIME, "do_work"): FULL[(EXECUTION_TIME, "do_work")],
        }
        result = compare_diagnoses(_report(FULL), _report(reduced))
        assert not result.retained
        assert any("profile" in v for v in result.violations)

    def test_spurious_diagnosis_detected(self):
        reduced = dict(FULL)
        reduced[(WAIT_AT_BARRIER, "MPI_Barrier")] = [8000.0, 8000.0, 8000.0, 8000.0]
        result = compare_diagnoses(_report(FULL), _report(reduced))
        assert not result.retained
        assert any("spurious" in v for v in result.violations)

    def test_execution_time_disparity_lost(self):
        full = {
            (LATE_SENDER, "MPI_Recv"): [0.0, 5000.0, 0.0, 5000.0],
            (EXECUTION_TIME, "do_work"): [20_000.0, 5_000.0, 20_000.0, 5_000.0],
        }
        reduced = {
            (LATE_SENDER, "MPI_Recv"): [0.0, 5000.0, 0.0, 5000.0],
            (EXECUTION_TIME, "do_work"): [5_000.0, 20_000.0, 5_000.0, 20_000.0],
        }
        result = compare_diagnoses(_report(full), _report(reduced))
        assert not result.retained
        assert any("disparity" in v for v in result.violations)


class TestOptionsAndEdges:
    def test_mismatched_rank_counts_rejected(self):
        with pytest.raises(ValueError):
            compare_diagnoses(_report(FULL, nprocs=4), DiagnosisReport(name="x", nprocs=2))

    def test_empty_reports_are_retained(self):
        full = DiagnosisReport(name="a", nprocs=2, wall_time=100.0)
        reduced = DiagnosisReport(name="b", nprocs=2, wall_time=100.0)
        assert compare_diagnoses(full, reduced).retained

    def test_stricter_factor_flags_more(self):
        reduced = {
            (LATE_SENDER, "MPI_Recv"): [0.0, 2200.0, 0.0, 2200.0],
            (EXECUTION_TIME, "do_work"): FULL[(EXECUTION_TIME, "do_work")],
        }
        lenient = compare_diagnoses(_report(FULL), _report(reduced))
        strict = compare_diagnoses(
            _report(FULL), _report(reduced), ComparisonOptions(severity_factor=1.5)
        )
        assert lenient.retained
        assert not strict.retained

    def test_summary_mentions_status(self):
        result = compare_diagnoses(_report(FULL), _report(FULL))
        assert "retained" in result.summary()

    def test_deltas_reported_for_major_diagnoses(self):
        result = compare_diagnoses(_report(FULL), _report(FULL))
        assert len(result.deltas) == len(result.major_diagnoses)
        delta = result.deltas[0]
        assert delta.full_total == pytest.approx(delta.reduced_total)
