"""Tests for the CUBE-style severity chart rendering."""

import pytest

from repro.analysis.cube import severity_chart, severity_level, severity_row
from repro.analysis.patterns import EXECUTION_TIME, WAIT_AT_NXN
from repro.analysis.report import DiagnosisReport


class TestSeverityLevel:
    def test_negative_is_neg(self):
        assert severity_level(-1.0, 100.0) == "neg"

    def test_zero_reference(self):
        assert severity_level(5.0, 0.0) == "0"

    def test_buckets(self):
        assert severity_level(100.0, 100.0) == "high"
        assert severity_level(60.0, 100.0) == "med"
        assert severity_level(30.0, 100.0) == "low"
        assert severity_level(10.0, 100.0) == "vlow"
        assert severity_level(1.0, 100.0) == "0"

    def test_row(self):
        assert severity_row([100.0, -5.0, 0.0], 100.0) == ["high", "neg", "0"]


class TestSeverityChart:
    def _report(self):
        report = DiagnosisReport(name="t", nprocs=3, wall_time=100.0)
        report.add(WAIT_AT_NXN, "MPI_Alltoall", 0, 90.0, 90.0)
        report.add(WAIT_AT_NXN, "MPI_Alltoall", 1, 10.0, 10.0)
        report.add(WAIT_AT_NXN, "MPI_Alltoall", 2, 0.0, -40.0)
        report.add(EXECUTION_TIME, "do_work", 2, 70.0, 70.0)
        return report

    def test_chart_contains_abbreviation_and_levels(self):
        chart = severity_chart(self._report(), [(WAIT_AT_NXN, "MPI_Alltoall")])
        assert "NN" in chart
        assert "high" in chart
        assert "neg" in chart  # signed view shows the negative severity

    def test_unsigned_view_has_no_neg(self):
        chart = severity_chart(self._report(), [(WAIT_AT_NXN, "MPI_Alltoall")], signed=False)
        assert "neg" not in chart

    def test_one_column_per_process(self):
        chart = severity_chart(self._report(), [(WAIT_AT_NXN, "MPI_Alltoall")])
        header = chart.splitlines()[0]
        assert all(f"p{r}" in header for r in range(3))

    def test_multiple_entries(self):
        chart = severity_chart(
            self._report(), [(WAIT_AT_NXN, "MPI_Alltoall"), (EXECUTION_TIME, "do_work")]
        )
        assert len(chart.splitlines()) == 4  # header, rule, two rows

    def test_missing_entry_renders_zeros(self):
        chart = severity_chart(self._report(), [("Late Sender", "MPI_Recv")])
        assert "Late Sender" in chart or "LS" in chart

    def test_title(self):
        chart = severity_chart(self._report(), [(WAIT_AT_NXN, "MPI_Alltoall")], title="full trace")
        assert chart.splitlines()[0] == "full trace"
