"""Tests for the diagnosis report container."""

import numpy as np
import pytest

from repro.analysis.patterns import EXECUTION_TIME, LATE_SENDER, WAIT_AT_NXN
from repro.analysis.report import DiagnosisReport


def _report():
    report = DiagnosisReport(name="t", nprocs=4, wall_time=1000.0)
    report.add(LATE_SENDER, "MPI_Recv", 1, 100.0, 100.0)
    report.add(LATE_SENDER, "MPI_Recv", 1, 50.0, 50.0)
    report.add(LATE_SENDER, "MPI_Recv", 3, 20.0, -20.0)
    report.add(WAIT_AT_NXN, "MPI_Alltoall", 0, 5.0, 5.0)
    report.add(EXECUTION_TIME, "do_work", 0, 500.0, 500.0)
    return report


class TestDiagnosisReport:
    def test_accumulates_per_rank(self):
        report = _report()
        np.testing.assert_allclose(report.per_rank(LATE_SENDER, "MPI_Recv"), [0, 150, 0, 20])

    def test_signed_tracked_separately(self):
        report = _report()
        assert report.per_rank_signed(LATE_SENDER, "MPI_Recv")[3] == pytest.approx(-20.0)

    def test_total(self):
        assert _report().total(LATE_SENDER, "MPI_Recv") == pytest.approx(170.0)

    def test_missing_diagnosis_is_zero(self):
        report = _report()
        assert report.total("Late Receiver", "MPI_Ssend") == 0.0
        assert report.per_rank("Late Receiver", "MPI_Ssend").shape == (4,)

    def test_wait_diagnoses_exclude_execution_time(self):
        keys = set(_report().wait_diagnoses())
        assert (EXECUTION_TIME, "do_work") not in keys
        assert (LATE_SENDER, "MPI_Recv") in keys

    def test_execution_times(self):
        assert set(_report().execution_times()) == {(EXECUTION_TIME, "do_work")}

    def test_max_wait_total(self):
        assert _report().max_wait_total() == pytest.approx(170.0)

    def test_major_diagnoses_filters_small_entries(self):
        majors = _report().major_diagnoses(fraction=0.1, floor=0.0)
        assert (LATE_SENDER, "MPI_Recv") in majors
        assert (WAIT_AT_NXN, "MPI_Alltoall") not in majors

    def test_major_diagnoses_floor(self):
        majors = _report().major_diagnoses(fraction=0.0, floor=1000.0)
        assert majors == []

    def test_empty_report(self):
        report = DiagnosisReport(name="e", nprocs=2)
        assert report.max_wait_total() == 0.0
        assert report.major_diagnoses() == []
        assert report.as_table() == []

    def test_as_table_sorted(self):
        rows = _report().as_table()
        assert rows == sorted(rows)
