"""Tests for the flat profile and the paper's "profiles are not enough" argument."""

import pytest

from repro.analysis.expert import analyze
from repro.analysis.patterns import LATE_RECEIVER, LATE_SENDER
from repro.analysis.profile import flat_profile
from repro.benchmarks_ats import late_receiver, late_sender
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

from tests.conftest import make_segment


def _simple_trace():
    segments = [
        make_segment("c", [("work", 0.0, 100.0), ("MPI_Recv", 100.0, 150.0)], end=150.0),
        make_segment("c", [("work", 150.0, 260.0), ("MPI_Recv", 260.0, 300.0)], end=300.0,
                     index=1),
    ]
    return SegmentedTrace(name="t", ranks=[SegmentedRankTrace(rank=0, segments=segments)])


class TestFlatProfile:
    def test_totals_and_calls(self):
        profile = flat_profile(_simple_trace())
        work = profile.entry("work")
        assert work.calls == 2
        assert work.total_time == pytest.approx(210.0)
        assert work.mean_time == pytest.approx(105.0)
        assert work.max_time == pytest.approx(110.0)

    def test_fractions_sum_to_one(self):
        profile = flat_profile(_simple_trace())
        assert sum(e.fraction for e in profile.entries) == pytest.approx(1.0)

    def test_sorted_by_total_time(self):
        profile = flat_profile(_simple_trace())
        totals = [e.total_time for e in profile.entries]
        assert totals == sorted(totals, reverse=True)

    def test_missing_function_entry_is_zero(self):
        profile = flat_profile(_simple_trace())
        assert profile.entry("does_not_exist").calls == 0

    def test_mpi_fraction(self):
        profile = flat_profile(_simple_trace())
        assert profile.mpi_fraction() == pytest.approx(90.0 / 300.0)

    def test_empty_trace(self):
        profile = flat_profile(SegmentedTrace(name="e", ranks=[]))
        assert profile.total_time == 0.0
        assert profile.entries == []
        assert profile.mpi_fraction() == 0.0

    def test_table_rendering(self):
        text = flat_profile(_simple_trace()).as_table()
        assert "MPI_Recv" in text and "% of total" in text


class TestProfilesAreNotEnough:
    """The paper's motivating argument (Section 1): two workloads with different
    root causes look alike in a profile but differ in the trace diagnosis."""

    @pytest.fixture(scope="class")
    def traces(self):
        sender_late = late_sender(4, 12, severity=500.0, seed=5).run_segmented()
        receiver_late = late_receiver(4, 12, severity=500.0, seed=5).run_segmented()
        return sender_late, receiver_late

    def test_profiles_show_similar_mpi_share(self, traces):
        sender_late, receiver_late = traces
        a = flat_profile(sender_late).mpi_fraction()
        b = flat_profile(receiver_late).mpi_fraction()
        assert a == pytest.approx(b, rel=0.35)
        assert a > 0.05

    def test_trace_diagnosis_distinguishes_the_two(self, traces):
        sender_late, receiver_late = traces
        report_ls = analyze(sender_late)
        report_lr = analyze(receiver_late)
        # late_sender: Late Sender dominates; late_receiver: Late Receiver dominates.
        assert report_ls.total(LATE_SENDER, "MPI_Recv") > 5 * report_ls.total(
            LATE_RECEIVER, "MPI_Ssend"
        )
        assert report_lr.total(LATE_RECEIVER, "MPI_Ssend") > 5 * report_lr.total(
            LATE_SENDER, "MPI_Recv"
        )
