"""Tests for the EXPERT-style analyzer."""

import numpy as np
import pytest

from repro.analysis.expert import AnalysisError, analyze
from repro.analysis.patterns import (
    EARLY_GATHER,
    EXECUTION_TIME,
    LATE_BROADCAST,
    LATE_RECEIVER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.benchmarks_ats import early_gather, late_broadcast, late_sender
from repro.simulator.engine import SimulatorConfig, simulate
from repro.simulator.program import build_program
from repro.trace.events import MpiCallInfo
from repro.trace.segments import Segment
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

from tests.conftest import make_segment


def _trace_from_segments(per_rank_segments, name="t"):
    ranks = [
        SegmentedRankTrace(rank=r, segments=[s.with_rank(r) for s in segments])
        for r, segments in enumerate(per_rank_segments)
    ]
    return SegmentedTrace(name=name, ranks=ranks)


class TestExecutionTime:
    def test_per_function_per_rank(self):
        seg0 = make_segment("c", [("f", 0.0, 10.0), ("g", 10.0, 30.0)], end=30.0)
        seg1 = make_segment("c", [("f", 0.0, 40.0), ("g", 40.0, 45.0)], end=45.0)
        report = analyze(_trace_from_segments([[seg0], [seg1]]))
        np.testing.assert_allclose(report.per_rank(EXECUTION_TIME, "f"), [10.0, 40.0])
        np.testing.assert_allclose(report.per_rank(EXECUTION_TIME, "g"), [20.0, 5.0])

    def test_wall_time_recorded(self):
        seg = make_segment("c", [("f", 0.0, 10.0)], end=12.0)
        report = analyze(_trace_from_segments([[seg]]))
        assert report.wall_time == pytest.approx(12.0)


class TestPointToPointPairing:
    def _p2p_trace(self, send_start, recv_start, op="send"):
        send_info = MpiCallInfo(op=op, peer=1, tag=0, nbytes=8)
        recv_info = MpiCallInfo(op="recv", peer=0, tag=0, nbytes=8)
        name = "MPI_Ssend" if op == "ssend" else "MPI_Send"
        sender = make_segment(
            "c", [(name, send_start, send_start + 5.0)], start=0.0, end=send_start + 6.0,
            mpi_for={name: send_info},
        )
        receiver = make_segment(
            "c", [("MPI_Recv", recv_start, max(recv_start, send_start) + 6.0)],
            start=0.0, end=max(recv_start, send_start) + 7.0,
            mpi_for={"MPI_Recv": recv_info},
        )
        return _trace_from_segments([[sender], [receiver]])

    def test_late_sender_detected(self):
        report = analyze(self._p2p_trace(send_start=300.0, recv_start=100.0))
        assert report.per_rank(LATE_SENDER, "MPI_Recv")[1] == pytest.approx(200.0)

    def test_no_late_sender_when_send_is_early(self):
        report = analyze(self._p2p_trace(send_start=50.0, recv_start=100.0))
        assert report.total(LATE_SENDER, "MPI_Recv") == 0.0
        assert report.per_rank_signed(LATE_SENDER, "MPI_Recv")[1] == pytest.approx(-50.0)

    def test_late_receiver_only_for_synchronous_sends(self):
        eager = analyze(self._p2p_trace(send_start=50.0, recv_start=400.0, op="send"))
        sync = analyze(self._p2p_trace(send_start=50.0, recv_start=400.0, op="ssend"))
        assert eager.total(LATE_RECEIVER, "MPI_Send") == 0.0
        assert sync.per_rank(LATE_RECEIVER, "MPI_Ssend")[0] == pytest.approx(350.0)

    def test_fifo_pairing_per_tag(self):
        send_info = MpiCallInfo(op="send", peer=1, tag=0, nbytes=8)
        recv_info = MpiCallInfo(op="recv", peer=0, tag=0, nbytes=8)
        sender = make_segment(
            "c",
            [("MPI_Send", 100.0, 105.0), ("MPI_Send", 300.0, 305.0)],
            end=306.0,
            mpi_for={"MPI_Send": send_info},
        )
        receiver = make_segment(
            "c",
            [("MPI_Recv", 10.0, 110.0), ("MPI_Recv", 120.0, 310.0)],
            end=311.0,
            mpi_for={"MPI_Recv": recv_info},
        )
        report = analyze(_trace_from_segments([[sender], [receiver]]))
        # first recv waits for first send (90), second for second send (180)
        assert report.per_rank(LATE_SENDER, "MPI_Recv")[1] == pytest.approx(90.0 + 180.0)


class TestCollectivePairing:
    def _collective_trace(self, enters, op="barrier", root=None, name="MPI_Barrier"):
        info = MpiCallInfo(op=op, root=root)
        per_rank = []
        for enter in enters:
            seg = make_segment(
                "c", [(name, enter, max(enters) + 10.0)], start=0.0, end=max(enters) + 11.0,
                mpi_for={name: info},
            )
            per_rank.append([seg])
        return _trace_from_segments(per_rank)

    def test_barrier_waits(self):
        report = analyze(self._collective_trace([100.0, 400.0, 250.0]))
        waits = report.per_rank(WAIT_AT_BARRIER, "MPI_Barrier")
        np.testing.assert_allclose(waits, [300.0, 0.0, 150.0])

    def test_late_broadcast(self):
        report = analyze(
            self._collective_trace([500.0, 100.0, 150.0], op="bcast", root=0, name="MPI_Bcast")
        )
        waits = report.per_rank(LATE_BROADCAST, "MPI_Bcast")
        np.testing.assert_allclose(waits, [0.0, 400.0, 350.0])

    def test_early_gather(self):
        report = analyze(
            self._collective_trace([50.0, 600.0, 300.0], op="gather", root=0, name="MPI_Gather")
        )
        waits = report.per_rank(EARLY_GATHER, "MPI_Gather")
        np.testing.assert_allclose(waits, [550.0, 0.0, 0.0])

    def test_inconsistent_participation_rejected(self):
        info = MpiCallInfo(op="barrier")
        seg = make_segment("c", [("MPI_Barrier", 0.0, 1.0)], end=2.0, mpi_for={"MPI_Barrier": info})
        empty = make_segment("c", [], end=2.0)
        with pytest.raises(AnalysisError, match="participants"):
            analyze(_trace_from_segments([[seg], [empty]]))

    def test_mixed_collective_ops_rejected(self):
        barrier = make_segment(
            "c", [("MPI_Barrier", 0.0, 1.0)], end=2.0, mpi_for={"MPI_Barrier": MpiCallInfo(op="barrier")}
        )
        alltoall = make_segment(
            "c", [("MPI_Alltoall", 0.0, 1.0)], end=2.0, mpi_for={"MPI_Alltoall": MpiCallInfo(op="alltoall")}
        )
        with pytest.raises(AnalysisError, match="mixes"):
            analyze(_trace_from_segments([[barrier], [alltoall]]))


class TestOnSimulatedWorkloads:
    def test_late_sender_workload_severity_magnitude(self):
        iterations, severity = 10, 500.0
        workload = late_sender(4, iterations, severity=severity, seed=2)
        report = analyze(workload.run_segmented())
        per_receiver = report.per_rank(LATE_SENDER, "MPI_Recv")[1]
        assert per_receiver == pytest.approx(iterations * severity, rel=0.15)

    def test_expected_metric_is_dominant(self):
        for factory in (late_sender, early_gather, late_broadcast):
            workload = factory(4, 8, seed=3)
            report = analyze(workload.run_segmented())
            expected_total = report.total(workload.expected_metric, workload.expected_location)
            assert expected_total == pytest.approx(report.max_wait_total())
