"""Tests for pattern severity definitions."""

import pytest

from repro.analysis.patterns import (
    EARLY_GATHER,
    LATE_BROADCAST,
    LATE_RECEIVER,
    LATE_SENDER,
    METRIC_ABBREVIATIONS,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
    WAIT_METRICS,
    PatternContribution,
    early_gather_contribution,
    late_broadcast_contribution,
    late_receiver_contribution,
    late_sender_contribution,
    nxn_wait_contribution,
)


class TestPatternContribution:
    def test_from_signed_clamps_waiting(self):
        c = PatternContribution.from_signed("m", "loc", 0, -5.0)
        assert c.waiting == 0.0
        assert c.signed == -5.0

    def test_positive_signed_preserved(self):
        c = PatternContribution.from_signed("m", "loc", 0, 7.0)
        assert c.waiting == 7.0 == c.signed


class TestContributionFormulas:
    def test_late_sender(self):
        c = late_sender_contribution("MPI_Recv", 1, recv_enter=100.0, send_enter=350.0)
        assert c.metric == LATE_SENDER
        assert c.rank == 1
        assert c.waiting == pytest.approx(250.0)

    def test_late_sender_negative_when_sender_early(self):
        c = late_sender_contribution("MPI_Recv", 1, recv_enter=400.0, send_enter=350.0)
        assert c.waiting == 0.0
        assert c.signed == pytest.approx(-50.0)

    def test_late_receiver(self):
        c = late_receiver_contribution("MPI_Ssend", 0, send_enter=10.0, recv_enter=200.0)
        assert c.metric == LATE_RECEIVER
        assert c.waiting == pytest.approx(190.0)

    def test_late_broadcast(self):
        c = late_broadcast_contribution("MPI_Bcast", 3, receiver_enter=50.0, root_enter=500.0)
        assert c.metric == LATE_BROADCAST
        assert c.waiting == pytest.approx(450.0)

    def test_early_gather(self):
        c = early_gather_contribution("MPI_Gather", 0, root_enter=10.0, last_sender_enter=600.0)
        assert c.metric == EARLY_GATHER
        assert c.waiting == pytest.approx(590.0)

    def test_nxn_wait(self):
        c = nxn_wait_contribution(WAIT_AT_NXN, "MPI_Alltoall", 2, own_enter=100.0, last_other_enter=900.0)
        assert c.waiting == pytest.approx(800.0)

    def test_nxn_last_arriver_has_negative_signed(self):
        c = nxn_wait_contribution(WAIT_AT_BARRIER, "MPI_Barrier", 2, own_enter=900.0, last_other_enter=100.0)
        assert c.waiting == 0.0
        assert c.signed == pytest.approx(-800.0)


class TestMetricSets:
    def test_wait_metrics_exclude_execution_time(self):
        assert "Execution Time" not in WAIT_METRICS
        assert LATE_SENDER in WAIT_METRICS

    def test_every_metric_has_abbreviation(self):
        for metric in WAIT_METRICS:
            assert metric in METRIC_ABBREVIATIONS
