"""End-to-end integration tests: simulate → segment → reduce → reconstruct → analyze.

These tests exercise the full pipeline on scaled-down versions of the paper's
workloads and check the *qualitative* findings the paper reports, which is the
level at which this reproduction claims fidelity.
"""

import numpy as np
import pytest

from repro.analysis.expert import analyze
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.core.reconstruct import reconstruct
from repro.core.reducer import reduce_trace
from repro.benchmarks_ats import dyn_load_balance, interference, late_sender
from repro.evaluation.runner import PreparedWorkload, evaluate_method
from repro.sweep3d import sweep3d_8p


@pytest.fixture(scope="module")
def late_sender_prepared():
    return PreparedWorkload.from_workload(late_sender(nprocs=4, iterations=20, seed=11))


@pytest.fixture(scope="module")
def dynlb_prepared():
    return PreparedWorkload.from_workload(
        dyn_load_balance(nprocs=4, iterations=24, rebalance_period=8, drift=80.0, seed=11)
    )


@pytest.fixture(scope="module")
def sweep3d_prepared():
    return PreparedWorkload.from_workload(sweep3d_8p(scale=0.2, timesteps=2, seed=11))


class TestFullPipelineAllMethods:
    @pytest.mark.parametrize("method", METRIC_NAMES)
    def test_pipeline_runs_and_criteria_sane(self, late_sender_prepared, method):
        result = evaluate_method(late_sender_prepared, create_metric(method))
        assert 0.0 < result.pct_file_size <= 110.0
        assert 0.0 <= result.degree_of_matching <= 1.0
        assert result.approx_distance_us >= 0.0
        assert isinstance(result.trends_retained, bool)

    @pytest.mark.parametrize("method", METRIC_NAMES)
    def test_reconstruction_structure_for_every_method(self, dynlb_prepared, method):
        reduced = reduce_trace(dynlb_prepared.segmented, create_metric(method))
        rebuilt = reconstruct(reduced)
        assert rebuilt.num_events == dynlb_prepared.segmented.num_events
        analyze(rebuilt)  # must not raise


class TestPaperFindingsQualitative:
    def test_regular_benchmark_high_matching(self, late_sender_prepared):
        """Section 5.2.1: on the regular benchmarks most methods match > 90 %."""
        for method in ("absDiff", "manhattan", "euclidean", "chebyshev", "avgWave", "haarWave"):
            result = evaluate_method(late_sender_prepared, create_metric(method))
            assert result.degree_of_matching > 0.9, method

    def test_regular_benchmark_trends_retained_by_most_methods(self, late_sender_prepared):
        retained = {
            method: evaluate_method(late_sender_prepared, create_metric(method)).trends_retained
            for method in METRIC_NAMES
        }
        assert sum(retained.values()) >= 7, retained

    def test_iter_avg_best_file_size(self, dynlb_prepared):
        """Section 5.2.1: iter_avg gives the best-case (smallest) files."""
        sizes = {
            method: evaluate_method(dynlb_prepared, create_metric(method)).pct_file_size
            for method in METRIC_NAMES
        }
        assert sizes["iter_avg"] == min(sizes.values())

    def test_reldiff_strictest_at_equal_threshold(self, dynlb_prepared):
        """Section 3.2.1: because every measurement pair is judged in isolation,
        relDiff is one of the strictest criteria — at the same threshold it
        admits no more error (and usually much less) than the Minkowski
        distances, at the cost of a larger file."""
        reldiff = evaluate_method(dynlb_prepared, create_metric("relDiff", 0.2))
        chebyshev = evaluate_method(dynlb_prepared, create_metric("chebyshev", 0.2))
        iter_avg = evaluate_method(dynlb_prepared, create_metric("iter_avg"))
        assert reldiff.approx_distance_us <= chebyshev.approx_distance_us + 1e-9
        assert reldiff.approx_distance_us <= iter_avg.approx_distance_us + 1e-9
        assert reldiff.pct_file_size >= chebyshev.pct_file_size - 1e-9

    def test_iter_avg_smooths_time_varying_behaviour(self, dynlb_prepared):
        """Section 5.2.3: averaging washes out the dynamic imbalance; the
        per-iteration variation of the reconstructed alltoall waits collapses."""
        reduced = reduce_trace(dynlb_prepared.segmented, create_metric("iter_avg"))
        rebuilt = reconstruct(reduced)

        def iteration_durations(trace, rank):
            return np.asarray(
                [s.duration for s in trace.rank(rank).segments if s.context == "main.1"]
            )

        original_spread = iteration_durations(dynlb_prepared.segmented, 0).std()
        rebuilt_spread = iteration_durations(rebuilt, 0).std()
        assert rebuilt_spread < 0.2 * original_spread

    def test_interference_spikes_survive_strict_thresholds(self):
        """With a strict threshold, disturbed iterations are stored separately,
        so the reconstructed trace keeps the interference spikes."""
        workload = interference("NtoN", 1024, nprocs=4, iterations=30, seed=7)
        prepared = PreparedWorkload.from_workload(workload)
        reduced = reduce_trace(prepared.segmented, create_metric("absDiff", 100.0))
        rebuilt = reconstruct(reduced)
        original = prepared.segmented.rank(0)
        rebuilt_rank = rebuilt.rank(0)
        orig_max = max(s.duration for s in original.segments if s.context == "main.1")
        rebuilt_max = max(s.duration for s in rebuilt_rank.segments if s.context == "main.1")
        assert rebuilt_max == pytest.approx(orig_max, rel=0.2)

    def test_sweep3d_structure_limits_matching(self, sweep3d_prepared):
        """Section 5.2.1: sweep3d has more segment diversity (message parameters
        differ), so even a permissive method stores more distinct segments per
        rank than the simple benchmarks do."""
        sweep_reduced = reduce_trace(sweep3d_prepared.segmented, create_metric("iter_avg"))
        per_rank_stored = [len(r.stored) for r in sweep_reduced.ranks]
        assert min(per_rank_stored) >= 5

    def test_iter_k_poor_on_sweep3d(self, sweep3d_prepared):
        """Section 5.2.1: iter_k keeps k copies of every distinct segment
        regardless of similarity, so its files are larger than avgWave's."""
        iter_k = evaluate_method(sweep3d_prepared, create_metric("iter_k"))
        avgwave = evaluate_method(sweep3d_prepared, create_metric("avgWave"))
        assert iter_k.pct_file_size > avgwave.pct_file_size

    def test_wavelets_retain_dynlb_imbalance_direction(self, dynlb_prepared):
        """Figure 7: avgWave keeps the Wait-at-NxN disparity between the lower
        and upper half of the ranks."""
        reduced = reduce_trace(dynlb_prepared.segmented, create_metric("avgWave"))
        rebuilt = reconstruct(reduced)
        report = analyze(rebuilt)
        waits = report.per_rank("Wait at NxN", "MPI_Alltoall")
        assert waits[:2].mean() > waits[2:].mean()


class TestCrossMethodConsistency:
    def test_all_methods_share_full_trace_artifacts(self, late_sender_prepared):
        results = [
            evaluate_method(late_sender_prepared, create_metric(m)) for m in ("relDiff", "iter_k")
        ]
        assert results[0].full_bytes == results[1].full_bytes
        assert results[0].n_segments == results[1].n_segments

    def test_results_deterministic(self, late_sender_prepared):
        a = evaluate_method(late_sender_prepared, create_metric("haarWave"))
        b = evaluate_method(late_sender_prepared, create_metric("haarWave"))
        assert a.pct_file_size == b.pct_file_size
        assert a.approx_distance_us == b.approx_distance_us
