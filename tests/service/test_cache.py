"""Content digests and the byte-bounded LRU result cache."""

import pickle

import pytest

from repro.benchmarks_ats import late_sender
from repro.service.cache import (
    ResultCache,
    chain_digest,
    combine_rank_digests,
    segment_digest,
    source_digest,
)
from tests.conftest import make_segment


@pytest.fixture(scope="module")
def segments():
    trace = late_sender(nprocs=2, iterations=3, seed=5).run().segmented()
    return trace.ranks[0].segments


class TestSegmentDigest:
    def test_deterministic(self, segments):
        assert segment_digest(segments[0]) == segment_digest(segments[0])
        assert len(segment_digest(segments[0])) == 32

    def test_sub_text_precision_differences_matter(self):
        # The text format quantizes to 2 decimals; digests must not.
        a = make_segment("c", [("e", 1.0, 2.0)], end=10.0)
        b = make_segment("c", [("e", 1.0, 2.0 + 1e-6)], end=10.0)
        assert segment_digest(a) != segment_digest(b)

    def test_mpi_parameters_matter(self):
        from repro.trace.events import MpiCallInfo

        a = make_segment(
            "c",
            [("MPI_Send", 1.0, 2.0)],
            end=5.0,
            mpi_for={"MPI_Send": MpiCallInfo(op="send", peer=1, tag=0)},
        )
        b = make_segment(
            "c",
            [("MPI_Send", 1.0, 2.0)],
            end=5.0,
            mpi_for={"MPI_Send": MpiCallInfo(op="send", peer=2, tag=0)},
        )
        assert segment_digest(a) != segment_digest(b)

    def test_chain_is_order_sensitive(self, segments):
        forward = chain_digest(chain_digest(b"", segments[0]), segments[1])
        backward = chain_digest(chain_digest(b"", segments[1]), segments[0])
        assert forward != backward

    def test_combine_is_rank_order_independent(self, segments):
        d = {0: b"a" * 32, 1: b"b" * 32}
        assert combine_rank_digests(d) == combine_rank_digests(dict(reversed(d.items())))
        assert combine_rank_digests(d) != combine_rank_digests({0: b"b" * 32, 1: b"a" * 32})

    def test_source_digest_separates_seeds(self):
        a = late_sender(nprocs=2, iterations=3, seed=1).run().segmented()
        b = late_sender(nprocs=2, iterations=3, seed=2).run().segmented()
        assert source_digest(a) != source_digest(b)
        assert source_digest(a) == source_digest(a)


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(max_bytes=1024)
        assert cache.get("d", ("m",)) is None
        cache.put("d", ("m",), b"payload")
        assert cache.get("d", ("m",)) == b"payload"
        assert cache.get("d", ("other",)) is None
        assert cache.counters.hits == 1
        assert cache.counters.misses == 2
        assert cache.counters.hit_rate == pytest.approx(1 / 3)

    def test_byte_bound_evicts_lru(self):
        cache = ResultCache(max_bytes=10)
        cache.put("a", (), b"xxxx")
        cache.put("b", (), b"yyyy")
        cache.get("a", ())  # touch: b becomes LRU
        cache.put("c", (), b"zzzz")  # 12 bytes > 10: evict b
        assert cache.get("b", ()) is None
        assert cache.get("a", ()) == b"xxxx"
        assert cache.get("c", ()) == b"zzzz"
        assert cache.counters.evictions == 1
        assert cache.current_bytes == 8

    def test_oversized_payload_rejected(self):
        cache = ResultCache(max_bytes=4)
        assert not cache.put("a", (), b"too large to fit")
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_replacement_updates_bytes(self):
        cache = ResultCache(max_bytes=100)
        cache.put("a", (), b"12345")
        cache.put("a", (), b"123")
        assert len(cache) == 1
        assert cache.current_bytes == 3

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)

    def test_digest_bytes_are_picklable(self, segments):
        # Sessions checkpoint their chained digests; plain bytes must be all
        # that is needed (hashlib objects would not survive).
        d = chain_digest(b"", segments[0])
        assert pickle.loads(pickle.dumps(d)) == d
