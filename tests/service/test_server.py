"""Multi-tenant service: budgets, eviction-to-checkpoint, backpressure, cache.

The acceptance scenario: N concurrent sessions per tenant under a per-tenant
representative budget, with eviction-to-checkpoint observed and every
session's output still byte-identical to the batch oracle; a repeated
identical request is answered from the content-digest cache.
"""

import asyncio

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import create_metric
from repro.core.reducer import TraceReducer
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.stream import rank_segment_streams
from repro.service import ReductionService, ResultCache, SessionConfig
from repro.trace.io import serialize_reduced_trace


@pytest.fixture(scope="module")
def trace():
    return late_sender(nprocs=4, iterations=8, seed=3).run().segmented()


@pytest.fixture(scope="module")
def streams(trace):
    return {rank: list(segments) for rank, segments in rank_segment_streams(trace)}


@pytest.fixture(scope="module")
def oracle_bytes(trace):
    config = SessionConfig("relDiff", store_capacity=16)
    reducer = TraceReducer(create_metric(config.method, config.threshold))
    from repro.pipeline.store import create_store
    from repro.core.reduced import ReducedTrace

    reduced = ReducedTrace(
        name=trace.name, method=config.method, threshold=reducer.metric.threshold
    )
    for rank_trace in trace.ranks:
        reduced.ranks.append(
            reducer.reduce_segments(
                (s for s in rank_trace.segments),
                rank=rank_trace.rank,
                store=create_store(config.store_capacity),
            )
        )
    return serialize_reduced_trace(reduced)


async def _feed(handle, streams, chunk=3, flush_every=0):
    appends = 0
    for rank, segments in streams.items():
        for at in range(0, len(segments), chunk):
            await handle.append(rank, segments=segments[at : at + chunk])
            appends += 1
            if flush_every and appends % flush_every == 0:
                await handle.flush()
    return await handle.finish()


class TestMultiTenantEviction:
    def test_concurrent_sessions_under_budget(self, streams, oracle_bytes):
        async def main():
            service = ReductionService(tenant_budget=24, queue_limit=4)
            config = SessionConfig("relDiff", store_capacity=16)
            handles = [
                await service.open_session("acme", f"trace{i}", config)
                for i in range(4)
            ]
            results = await asyncio.gather(
                *(_feed(handle, streams, flush_every=2) for handle in handles)
            )
            stats = service.stats
            tenant_peak = service.tenant_peak_representatives("acme")
            await service.close()
            return results, stats, tenant_peak

        results, stats, tenant_peak = asyncio.run(main())
        # Every concurrent session produced the exact batch-oracle bytes.
        for result in results:
            assert serialize_reduced_trace(result.reduced) == oracle_bytes
        # The budget forced evictions, and evicted sessions came back.
        assert stats.evicted_to_checkpoint > 0
        assert stats.restored_from_checkpoint > 0
        assert stats.sessions_opened == 4
        assert stats.sessions_finished == 4
        assert stats.sessions_active == 0
        assert stats.deltas_emitted > 0
        assert tenant_peak == stats.peak_resident_representatives

    def test_phased_sessions_bound_peak_store_size(self, streams, oracle_bytes):
        # Sessions touched one at a time (the others idle) must keep the
        # tenant's resident representatives within budget + one active
        # session — the budget is a real bound, not advisory.
        async def main():
            service = ReductionService(tenant_budget=24, queue_limit=4)
            config = SessionConfig("relDiff", store_capacity=16)
            handles = [
                await service.open_session("acme", f"trace{i}", config)
                for i in range(4)
            ]
            split = len(streams[0]) // 2
            for lo, hi in ((0, split), (split, None)):
                for handle in handles:
                    for rank, segments in streams.items():
                        part = segments[lo:hi]
                        for at in range(0, len(part), 3):
                            await handle.append(rank, segments=part[at : at + 3])
                    await handle.flush()
            results = [await handle.finish() for handle in handles]
            stats = service.stats
            await service.close()
            return results, stats

        results, stats = asyncio.run(main())
        for result in results:
            assert serialize_reduced_trace(result.reduced) == oracle_bytes
        assert stats.evicted_to_checkpoint > 0
        assert stats.restored_from_checkpoint > 0
        per_session = max(
            sum(len(rank.stored) for rank in result.reduced.ranks)
            for result in results
        )
        assert stats.peak_resident_representatives <= 24 + per_session

    def test_tenants_are_isolated(self, streams):
        async def main():
            service = ReductionService(tenant_budget=10, queue_limit=4)
            config = SessionConfig("relDiff", store_capacity=16)
            a1 = await service.open_session("a", "t", config)
            b1 = await service.open_session("b", "t", config)  # same name, other tenant
            ra, rb = await asyncio.gather(_feed(a1, streams), _feed(b1, streams))
            stats = service.stats
            await service.close()
            return ra, rb, stats

        ra, rb, stats = asyncio.run(main())
        assert serialize_reduced_trace(ra.reduced) == serialize_reduced_trace(rb.reduced)
        assert stats.sessions_finished == 2

    def test_checkpoint_dir_spills_to_files(self, streams, tmp_path):
        async def main():
            service = ReductionService(
                tenant_budget=8, queue_limit=4, checkpoint_dir=tmp_path / "ckpts"
            )
            config = SessionConfig("relDiff", store_capacity=16)
            handles = [
                await service.open_session("acme", f"trace{i}", config)
                for i in range(3)
            ]
            spilled = []

            async def feed_and_watch(handle):
                result = await _feed(handle, streams)
                spilled.append(len(list((tmp_path / "ckpts").glob("*.ckpt"))))
                return result

            results = await asyncio.gather(*(feed_and_watch(h) for h in handles))
            stats = service.stats
            await service.close()
            return results, stats

        results, stats = asyncio.run(main())
        assert stats.evicted_to_checkpoint > 0
        assert len({serialize_reduced_trace(r.reduced) for r in results}) == 1
        # Restores consume the files; none leak once everything finished.
        assert not list((tmp_path / "ckpts").glob("*.ckpt"))


class TestBackpressure:
    def test_queue_never_exceeds_limit(self, streams):
        async def main():
            service = ReductionService(queue_limit=2)
            handle = await service.open_session(
                "acme", "t", SessionConfig("relDiff")
            )
            # Fire many appends concurrently; the bounded queue must make
            # producers wait rather than buffer everything.
            jobs = [
                handle.append(rank, segments=[segment])
                for rank, segments in streams.items()
                for segment in segments
            ]
            await asyncio.gather(*jobs)
            result = await handle.finish()
            peak = handle._managed.peak_queue
            await service.close()
            return result, peak

        result, peak = asyncio.run(main())
        assert result.reduced.n_segments == sum(len(s) for s in streams.values())
        assert peak <= 2

    def test_commands_execute_in_submission_order(self, streams):
        async def main():
            service = ReductionService(queue_limit=8)
            handle = await service.open_session("acme", "t", SessionConfig("relDiff"))
            segments = streams[0]
            first = asyncio.ensure_future(handle.append(0, segments=segments[:4]))
            mid_flush = asyncio.ensure_future(handle.flush())
            second = asyncio.ensure_future(handle.append(0, segments=segments[4:]))
            await asyncio.gather(first, mid_flush, second)
            delta = mid_flush.result()
            result = await handle.finish()
            await service.close()
            return delta, result

        delta, result = asyncio.run(main())
        # The interleaved flush saw exactly the first append's output.
        assert delta.n_execs == 4
        assert result.reduced.n_segments == len(streams[0])


class TestDigestCache:
    def test_repeat_submit_hits_cache(self, trace):
        async def main():
            service = ReductionService()
            config = SessionConfig("relDiff")
            first = await service.submit("acme", trace, config)
            second = await service.submit("acme", trace, config)
            other_tenant = await service.submit("beta", trace, config)
            stats = service.stats
            await service.close()
            return first, second, other_tenant, stats

        first, second, other, stats = asyncio.run(main())
        assert not first.cache_hit and first.reduced is not None
        assert second.cache_hit and other.cache_hit  # cache is content-keyed
        assert first.payload == second.payload == other.payload
        assert stats.cache_hits == 2 and stats.cache_misses == 1
        assert stats.cache_hits > 0  # the acceptance counter

    def test_config_changes_miss_the_cache(self, trace):
        async def main():
            service = ReductionService()
            await service.submit("acme", trace, SessionConfig("relDiff"))
            other = await service.submit(
                "acme", trace, SessionConfig("relDiff", threshold=0.2)
            )
            stats = service.stats
            await service.close()
            return other, stats

        other, stats = asyncio.run(main())
        assert not other.cache_hit
        assert stats.cache_misses == 2

    def test_session_finish_populates_cache_for_submit(self, trace, streams):
        async def main():
            service = ReductionService()
            config = SessionConfig("relDiff")
            handle = await service.open_session("acme", "live", config)
            await _feed(handle, streams)
            repeat = await service.submit("acme", trace, config)
            stats = service.stats
            await service.close()
            return repeat, stats

        repeat, stats = asyncio.run(main())
        assert repeat.cache_hit
        assert stats.cache_hits == 1 and stats.cache_misses == 0

    def test_cache_byte_bound_evicts(self, trace):
        async def main():
            service = ReductionService(cache=ResultCache(max_bytes=1))
            config = SessionConfig("relDiff")
            await service.submit("acme", trace, config)
            second = await service.submit("acme", trace, config)
            await service.close()
            return second, service.cache

        second, cache = asyncio.run(main())
        assert not second.cache_hit  # payload never fit
        assert cache.current_bytes == 0


class TestLifecycleErrors:
    def test_duplicate_open_rejected(self, trace):
        async def main():
            service = ReductionService()
            config = SessionConfig("relDiff")
            await service.open_session("acme", "t", config)
            with pytest.raises(ValueError, match="already"):
                await service.open_session("acme", "t", config)
            # Different config under the same name is a different session.
            await service.open_session("acme", "t", SessionConfig("euclidean"))
            await service.close()

        asyncio.run(main())

    def test_finished_handle_rejected(self, streams):
        async def main():
            service = ReductionService()
            handle = await service.open_session("acme", "t", SessionConfig("relDiff"))
            await _feed(handle, streams)
            with pytest.raises(RuntimeError, match="finished"):
                await handle.flush()
            await service.close()

        asyncio.run(main())

    def test_worker_errors_propagate_and_session_survives(self, streams):
        async def main():
            service = ReductionService()
            handle = await service.open_session("acme", "t", SessionConfig("relDiff"))
            with pytest.raises(ValueError, match="exactly one"):
                await handle.append(0, segments=[], records=[])
            await handle.append(0, segments=streams[0][:2])
            result = await handle.finish()
            await service.close()
            return result

        result = asyncio.run(main())
        assert result.reduced.n_segments == 2


def test_stats_record_to_registry(trace):
    async def main():
        service = ReductionService()
        config = SessionConfig("relDiff")
        await service.submit("acme", trace, config)
        await service.submit("acme", trace, config)
        return service.stats

    stats = asyncio.run(main())
    registry = MetricsRegistry()
    stats.record_to(registry)
    snapshot = registry.snapshot().values
    assert snapshot["service.cache_hits"].value == 1
    assert snapshot["service.sessions_opened"].value == 1
    assert snapshot["service.appends"].value > 0
    assert snapshot["service.segments"].value > 0
    assert snapshot["service.sessions_active"].kind == "gauge"
    assert snapshot["service.evicted_to_checkpoint"].value == 0
