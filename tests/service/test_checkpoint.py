"""Checkpoint/restore: a resumed session continues bit-identically.

Covers the pickle satellites (stores and candidate lists round-trip with
their PR 8 summary-index columns intact) and the end-to-end guarantee:
checkpoint mid-trace, restore — in this process or a freshly spawned one —
finish, and the reduced bytes, digest, and stats equal an uninterrupted
run's, including when bounded-store evictions happen on both sides of the
checkpoint.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.benchmarks_ats import late_sender
from repro.core.candidates import CandidateList
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.core.reduced import StoredSegment
from repro.pipeline.store import LRUStore, UnboundedStore
from repro.pipeline.stream import rank_segment_streams
from repro.service import (
    ReductionSession,
    SessionConfig,
    load_checkpoint,
    restore_state,
    save_checkpoint,
    session_state,
)
from repro.trace.io import serialize_reduced_trace


@pytest.fixture(scope="module")
def trace():
    return late_sender(nprocs=4, iterations=8, seed=3).run().segmented()


@pytest.fixture(scope="module")
def streams(trace):
    return {rank: list(segments) for rank, segments in rank_segment_streams(trace)}


def _run_split(config, streams, split, checkpoint=lambda s: restore_state(session_state(s))):
    """First halves → checkpoint hook → second halves → finish."""
    session = ReductionSession("t", config)
    for rank, segments in streams.items():
        session.append_segments(rank, segments[:split])
    session.flush()
    session = checkpoint(session)
    for rank, segments in streams.items():
        session.append_segments(rank, segments[split:])
    return session.finish()


def _run_straight(config, streams):
    session = ReductionSession("t", config)
    for rank, segments in streams.items():
        session.append_segments(rank, segments)
    return session.finish()


class TestStorePickles:
    """Satellite: stores round-trip with the summary-index columns intact."""

    def _populated_bucket(self, store, segments):
        metric = create_metric("euclidean")
        for i, segment in enumerate(segments):
            relative = segment.relative_to_start()
            key = "k"
            stored = StoredSegment(segment_id=i, segment=relative)
            vector = np.asarray(relative.timestamps(), dtype=float)
            if hasattr(store, "add_built"):
                store.add_built(key, stored, metric, vector)
            else:
                store.add(key, stored)
        return metric

    @pytest.mark.parametrize("make", [UnboundedStore, lambda: LRUStore(64)])
    def test_round_trip_preserves_columns_and_counters(self, streams, make):
        store = make()
        segments = streams[0][:6]
        self._populated_bucket(store, segments)
        store.candidates("k")
        store.candidates("missing")
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == len(store)
        assert clone.counters.lookups == store.counters.lookups
        assert clone.counters.misses == store.counters.misses
        bucket, bucket_clone = store.candidates("k"), clone.candidates("k")
        assert [s.segment_id for s in bucket_clone] == [s.segment_id for s in bucket]
        # The PR 8 pruning-index columns survive: matrix rows, scales, and
        # norm summaries equal the original's built prefix.
        assert isinstance(bucket_clone, CandidateList)
        np.testing.assert_array_equal(bucket_clone._matrix, bucket._matrix[: bucket._built])
        if bucket._scales is not None:
            np.testing.assert_array_equal(
                bucket_clone._scales, bucket._scales[: bucket._built]
            )
        if bucket._summaries is not None:
            np.testing.assert_array_equal(
                bucket_clone._summaries, bucket._summaries[: bucket._built]
            )

    def test_restored_bucket_keeps_growing(self, streams):
        # The growth rule doubles the matrix row count; a restored bucket
        # must re-grow cleanly from its trimmed copy (including the
        # zero-rows-into-None normalization for unbuilt buckets).
        store = LRUStore(64)
        metric = self._populated_bucket(store, streams[0][:3])
        clone = pickle.loads(pickle.dumps(store))
        for i, segment in enumerate(streams[0][3:9]):
            relative = segment.relative_to_start()
            clone.add_built(
                "k",
                StoredSegment(segment_id=100 + i, segment=relative),
                metric,
                np.asarray(relative.timestamps(), dtype=float),
            )
        assert len(clone.candidates("k")) == 9

    def test_empty_candidate_list_round_trip(self):
        bucket = CandidateList()
        clone = pickle.loads(pickle.dumps(bucket))
        assert len(clone) == 0
        assert clone._matrix is None and clone._built == 0

    def test_lru_recency_order_survives(self, streams):
        store = LRUStore(64)
        for i, key in enumerate(("a", "b", "c")):
            store.add(key, StoredSegment(segment_id=i, segment=streams[0][i].relative_to_start()))
        store.candidates("a")  # touch: order becomes b, c, a
        clone = pickle.loads(pickle.dumps(store))
        assert list(clone._by_key) == list(store._by_key) == ["b", "c", "a"]


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
def test_checkpoint_mid_trace_is_bit_identical(streams, metric_name):
    config = SessionConfig(metric_name)
    straight = _run_straight(config, streams)
    resumed = _run_split(config, streams, split=9)
    assert serialize_reduced_trace(resumed.reduced) == serialize_reduced_trace(
        straight.reduced
    )
    assert resumed.digest == straight.digest


def test_checkpoint_with_bounded_store_evictions(streams):
    # Capacity small enough that evictions happen before AND after the
    # checkpoint; the restored store must carry its LRU order and trimmed
    # candidate columns so post-restore evictions pick identical victims.
    config = SessionConfig("relDiff", store_capacity=3)
    straight = _run_straight(config, streams)
    resumed = _run_split(config, streams, split=9)
    assert serialize_reduced_trace(resumed.reduced) == serialize_reduced_trace(
        straight.reduced
    )
    assert straight.reduced.ranks[0].n_segments == len(streams[0])


def test_checkpoint_preserves_stats_and_seq(streams):
    config = SessionConfig("relDiff")
    session = ReductionSession("t", config)
    for rank, segments in streams.items():
        session.append_segments(rank, segments[:5])
    session.flush()
    clone = restore_state(session_state(session))
    assert clone.seq == session.seq
    assert clone.stats.segments == session.stats.segments
    assert clone.stats.appends == session.stats.appends
    assert clone.stats.match.calls == session.stats.match.calls
    assert clone.name == session.name and clone.config == session.config
    assert clone.live_representatives == session.live_representatives


def test_checkpoint_mid_record_stream():
    # A checkpoint taken while a segment is half-assembled (open segmenter
    # state) must resume without losing or duplicating records.
    config = SessionConfig("relDiff")
    raw = late_sender(nprocs=2, iterations=5, seed=7).run()
    straight = ReductionSession("t", config)
    for rank_trace in raw.ranks:
        straight.append_records(rank_trace.rank, rank_trace.records)
    want = straight.finish()

    session = ReductionSession("t", config)
    for rank_trace in raw.ranks:
        cut = len(rank_trace.records) // 2 + 1  # lands mid-segment
        session.append_records(rank_trace.rank, rank_trace.records[:cut])
        session = restore_state(session_state(session))
        session.append_records(rank_trace.rank, rank_trace.records[cut:])
    got = session.finish()
    assert serialize_reduced_trace(got.reduced) == serialize_reduced_trace(want.reduced)
    assert got.digest == want.digest


def test_checkpoint_file_round_trip(streams, tmp_path):
    config = SessionConfig("euclidean", store_capacity=4)
    path = tmp_path / "session.ckpt"

    def through_file(session):
        assert save_checkpoint(session, path) == path.stat().st_size
        return load_checkpoint(path)

    straight = _run_straight(config, streams)
    resumed = _run_split(config, streams, split=7, checkpoint=through_file)
    assert serialize_reduced_trace(resumed.reduced) == serialize_reduced_trace(
        straight.reduced
    )


def test_restore_rejects_unknown_version(streams):
    session = ReductionSession("t", SessionConfig("relDiff"))
    payload = pickle.loads(session_state(session))
    payload["version"] = 999
    with pytest.raises(ValueError, match="version"):
        restore_state(pickle.dumps(payload))


def _finish_in_child(checkpoint_path, tail, out_path):
    """Spawn target: restore from file, append the tail, write reduced bytes."""
    session = load_checkpoint(checkpoint_path)
    for rank, segments in tail.items():
        session.append_segments(rank, segments)
    result = session.finish()
    with open(out_path, "wb") as handle:
        handle.write(serialize_reduced_trace(result.reduced))
        handle.write(b"\n--digest--\n")
        handle.write(result.digest.encode())


@pytest.mark.parametrize("metric_name", ["relDiff", "iter_avg"])
def test_restore_in_fresh_process(streams, tmp_path, metric_name):
    # The hard cross-process case: a spawned interpreter has a different
    # string-hash salt, so interned keys and store buckets must rehash on
    # restore; iter_avg additionally requires store/output object sharing to
    # survive the round trip.
    config = SessionConfig(metric_name, store_capacity=5)
    straight = _run_straight(config, streams)
    want = serialize_reduced_trace(straight.reduced)

    session = ReductionSession("t", config)
    split = 9
    for rank, segments in streams.items():
        session.append_segments(rank, segments[:split])
    checkpoint_path = tmp_path / "mid.ckpt"
    save_checkpoint(session, checkpoint_path)

    tail = {rank: segments[split:] for rank, segments in streams.items()}
    out_path = tmp_path / "child.out"
    ctx = multiprocessing.get_context("spawn")
    child = ctx.Process(
        target=_finish_in_child, args=(str(checkpoint_path), tail, str(out_path))
    )
    child.start()
    child.join(timeout=120)
    assert child.exitcode == 0
    payload, digest = out_path.read_bytes().split(b"\n--digest--\n")
    assert payload == want
    assert digest.decode() == straight.digest
