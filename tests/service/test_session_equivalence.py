"""Incremental sessions are byte-identical to the batch reducer oracle.

The acceptance bar for the online service: for every similarity method,
feeding a trace through a :class:`ReductionSession` — segment by segment, in
ragged per-rank chunks, or as raw records — produces exactly the reduced
bytes of the one-shot batch :class:`TraceReducer`, from every source kind
(in-memory, text file, ``.rpb`` file).
"""

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import METRIC_NAMES, create_metric
from repro.core.reducer import TraceReducer
from repro.pipeline.stream import rank_segment_streams
from repro.service import ReductionSession, SessionConfig, source_digest
from repro.trace.formats import convert_trace
from repro.trace.io import read_trace, serialize_reduced_trace, write_trace


@pytest.fixture(scope="module")
def trace():
    return late_sender(nprocs=4, iterations=6, seed=3).run()


@pytest.fixture(scope="module")
def trace_files(trace, tmp_path_factory):
    root = tmp_path_factory.mktemp("service_ingest")
    text = root / "trace.txt"
    rpb = root / "trace.rpb"
    write_trace(trace, text)
    convert_trace(text, rpb)
    return {"text": text, "rpb": rpb}


def _oracle_bytes(source, metric_name):
    if not hasattr(source, "ranks"):
        source = read_trace(source)
    segmented = source.segmented() if hasattr(source, "segmented") else source
    reduced = TraceReducer(create_metric(metric_name)).reduce(segmented)
    return serialize_reduced_trace(reduced)


def _session_bytes(source, metric_name, chunks):
    """Feed ``source`` through a session in the given chunking pattern.

    ``chunks`` is a callable mapping a segment count to a list of slice
    sizes; chunk sizes cycle per rank so ranks are chunked *differently*
    (the ragged case the batch path never sees).
    """
    session = ReductionSession("t", SessionConfig(metric_name))
    for rank, segments in rank_segment_streams(source):
        segments = list(segments)
        at = 0
        for size in chunks(len(segments), rank):
            if at >= len(segments):
                break
            session.append_segments(rank, segments[at : at + size])
            at += size
        if at < len(segments):
            session.append_segments(rank, segments[at:])
    result = session.finish()
    return serialize_reduced_trace(result.reduced), result


def _one_by_one(n, rank):
    return [1] * n


def _ragged(n, rank):
    # Different chunk sizes per rank, including empty-looking tails.
    sizes, k = [], (rank % 3) + 1
    while sum(sizes) < n:
        sizes.append(k)
        k = (k % 4) + 1
    return sizes


@pytest.mark.parametrize("metric_name", METRIC_NAMES)
class TestEveryMetricEverySource:
    def test_segment_by_segment_in_memory(self, trace, metric_name):
        want = _oracle_bytes(trace, metric_name)
        got, _ = _session_bytes(trace, metric_name, _one_by_one)
        assert got == want

    def test_ragged_chunks_in_memory(self, trace, metric_name):
        want = _oracle_bytes(trace, metric_name)
        got, _ = _session_bytes(trace, metric_name, _ragged)
        assert got == want

    def test_text_file_source(self, trace_files, metric_name):
        want = _oracle_bytes(trace_files["text"], metric_name)
        got, _ = _session_bytes(trace_files["text"], metric_name, _ragged)
        assert got == want

    def test_rpb_file_source(self, trace_files, metric_name):
        want = _oracle_bytes(trace_files["rpb"], metric_name)
        got, _ = _session_bytes(trace_files["rpb"], metric_name, _ragged)
        assert got == want


class TestInterleavingAndFlushes:
    def test_rank_interleaved_appends_match(self, trace):
        # Append round-robin across ranks — per-rank state must be fully
        # independent of global arrival order.
        want = _oracle_bytes(trace, "relDiff")
        session = ReductionSession("t", SessionConfig("relDiff"))
        streams = {
            rank: list(segments) for rank, segments in rank_segment_streams(trace)
        }
        pending = {rank: 0 for rank in streams}
        step = 0
        while pending:
            for rank in sorted(pending):
                at = pending[rank]
                size = (step % 3) + 1
                session.append_segments(rank, streams[rank][at : at + size])
                pending[rank] = at + size
                if pending[rank] >= len(streams[rank]):
                    del pending[rank]
                step += 1
        assert serialize_reduced_trace(session.finish().reduced) == want

    def test_flush_frequency_does_not_change_output(self, trace):
        want = _oracle_bytes(trace, "euclidean")
        session = ReductionSession("t", SessionConfig("euclidean"))
        for rank, segments in rank_segment_streams(trace):
            for segment in segments:
                session.append_segments(rank, [segment])
                session.flush()  # flush after every single segment
        assert serialize_reduced_trace(session.finish().reduced) == want

    def test_deltas_accumulate_to_full_output(self, trace):
        # Concatenating the new representatives and execs of every delta
        # (including finish()'s tail) rebuilds the full reduced trace.
        session = ReductionSession("t", SessionConfig("relDiff"))
        deltas = []
        for rank, segments in rank_segment_streams(trace):
            segments = list(segments)
            for at in range(0, len(segments), 4):
                session.append_segments(rank, segments[at : at + 4])
                deltas.append(session.flush())
        result = session.finish()
        deltas.append(result.delta)
        stored = {}
        execs = {}
        for delta in deltas:
            for rank_delta in delta.ranks:
                stored.setdefault(rank_delta.rank, []).extend(rank_delta.new)
                execs.setdefault(rank_delta.rank, []).extend(rank_delta.execs)
        for rank_trace in result.reduced.ranks:
            assert [s.segment_id for s in stored[rank_trace.rank]] == [
                s.segment_id for s in rank_trace.stored
            ]
            assert execs[rank_trace.rank] == rank_trace.execs

    def test_updated_representatives_are_flagged(self, trace):
        # A representative stored in one flush window and matched in a later
        # one must appear in the later delta's ``updated`` list with its
        # advanced count.
        session = ReductionSession("t", SessionConfig("relDiff"))
        streams = {
            rank: list(segments) for rank, segments in rank_segment_streams(trace)
        }
        for rank, segments in streams.items():
            session.append_segments(rank, segments[: len(segments) // 2])
        first = session.flush()
        for rank, segments in streams.items():
            session.append_segments(rank, segments[len(segments) // 2 :])
        second = session.flush()
        assert first.n_new > 0
        assert second.n_updated > 0  # iterations repeat, so later halves match
        first_ids = {
            (rank_delta.rank, stored.segment_id)
            for rank_delta in first.ranks
            for stored in rank_delta.new
        }
        for rank_delta in second.ranks:
            for stored in rank_delta.updated:
                assert (rank_delta.rank, stored.segment_id) in first_ids
                assert stored.count > 1

    def test_empty_append_and_empty_flush(self, trace):
        session = ReductionSession("t", SessionConfig("relDiff"))
        assert session.append_segments(0, []) == 0
        delta = session.flush()
        assert delta.empty
        assert session.stats.deltas_emitted == 0


class TestRecordIngestion:
    def test_records_match_segments(self, trace):
        want = _oracle_bytes(trace, "relDiff")
        session = ReductionSession("t", SessionConfig("relDiff"))
        for rank_trace in trace.ranks:
            records = rank_trace.records
            # Ragged record batches that split segments mid-way.
            at, size = 0, 3
            while at < len(records):
                session.append_records(rank_trace.rank, records[at : at + size])
                at += size
                size = (size % 7) + 1
        result = session.finish()
        assert serialize_reduced_trace(result.reduced) == want
        assert result.digest == source_digest(trace.segmented())

    def test_finish_rejects_open_segment(self, trace):
        from repro.trace.segments import SegmentationError

        session = ReductionSession("t", SessionConfig("relDiff"))
        records = trace.ranks[0].records
        session.append_records(0, records[: len(records) - 2])  # mid-segment
        with pytest.raises(SegmentationError):
            session.finish()

    def test_append_after_finish_rejected(self, trace):
        session = ReductionSession("t", SessionConfig("relDiff"))
        session.append_segments(0, trace.segmented().ranks[0].segments)
        session.finish()
        with pytest.raises(RuntimeError, match="finished"):
            session.append_segments(0, [])


class TestDigests:
    def test_session_digest_matches_source_digest(self, trace, trace_files):
        segmented = trace.segmented()
        _, result = _session_bytes(trace, "relDiff", _ragged)
        assert result.digest == source_digest(segmented)
        # Digest is chunking-independent.
        _, again = _session_bytes(trace, "relDiff", _one_by_one)
        assert again.digest == result.digest
        # ...but content-dependent: the text file quantizes timestamps, so
        # its digest must differ from the exact in-memory trace's.
        assert source_digest(trace_files["text"]) != result.digest

    def test_text_and_rpb_digests_agree(self, trace_files):
        # Converted .rpb carries the text file's quantized values exactly.
        assert source_digest(trace_files["text"]) == source_digest(trace_files["rpb"])
