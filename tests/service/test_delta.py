"""The delta log format and its reconstruction guarantee."""

import pytest

from repro.benchmarks_ats import late_sender
from repro.core.metrics import create_metric
from repro.core.reducer import TraceReducer
from repro.pipeline.stream import rank_segment_streams
from repro.service import ReductionSession, SessionConfig
from repro.trace.io import (
    DeltaWriter,
    iter_delta_chunks,
    serialize_delta,
    serialize_exec_entry,
    serialize_reduced_trace,
    serialize_segment,
)


@pytest.fixture(scope="module")
def trace():
    return late_sender(nprocs=2, iterations=6, seed=3).run().segmented()


def _session_deltas(trace, config, chunk=4):
    session = ReductionSession("t", config)
    deltas = []
    for rank, segments in rank_segment_streams(trace):
        segments = list(segments)
        for at in range(0, len(segments), chunk):
            session.append_segments(rank, segments[at : at + chunk])
            deltas.append(session.flush())
    result = session.finish()
    deltas.append(result.delta)
    return deltas, result


class TestDeltaFormat:
    def test_header_and_framing(self, trace):
        deltas, _ = _session_deltas(trace, SessionConfig("relDiff"))
        payload = serialize_delta(deltas[0]).decode()
        lines = payload.splitlines()
        assert lines[0].startswith("DELTA 0 t relDiff 0.80 ")
        assert lines[1].startswith("RANK 0 new=")
        # Framing counts match the body.
        rank_delta = deltas[0].ranks[0]
        assert f"new={len(rank_delta.new)}" in lines[1]
        assert f"execs={len(rank_delta.execs)}" in lines[1]
        assert payload.count("DELTA ") == 1

    def test_thresholdless_method_writes_dash(self, trace):
        deltas, _ = _session_deltas(trace, SessionConfig("iter_avg"))
        assert serialize_delta(deltas[0]).decode().splitlines()[0] == (
            f"DELTA 0 t iter_avg - {len(deltas[0].ranks)}"
        )

    def test_empty_delta_serializes_header_only(self, trace):
        session = ReductionSession("t", SessionConfig("relDiff"))
        delta = session.flush()
        assert delta.empty
        assert serialize_delta(delta).decode() == "DELTA 0 t relDiff 0.80 0\n"

    def test_seq_increments(self, trace):
        deltas, _ = _session_deltas(trace, SessionConfig("relDiff"))
        assert [d.seq for d in deltas] == list(range(len(deltas)))

    def test_updated_entries_carry_count_and_segment(self, trace):
        deltas, _ = _session_deltas(trace, SessionConfig("relDiff"))
        updated = [
            (delta, rank_delta)
            for delta in deltas
            for rank_delta in delta.ranks
            if rank_delta.updated
        ]
        assert updated  # iterations repeat across flush windows
        delta, rank_delta = updated[0]
        payload = serialize_delta(delta).decode()
        stored = rank_delta.updated[0]
        # The UPD line is immediately followed by the representative's full
        # current SEG block.
        assert (
            f"UPD {stored.segment_id} count={stored.count}\n"
            f"SEG {stored.segment_id} "
        ) in payload
        assert stored.count > 1


class TestDeltaReconstruction:
    @pytest.mark.parametrize("metric_name", ["relDiff", "iter_k", "iter_avg"])
    def test_deltas_rebuild_batch_output(self, trace, metric_name):
        # Concatenating, per rank: every delta's new SEG blocks (taking the
        # *latest* state of ids that later appear in UPD) and every EXEC
        # entry reproduces the batch reduced trace byte-for-byte.
        deltas, result = _session_deltas(trace, SessionConfig(metric_name))
        want = serialize_reduced_trace(
            TraceReducer(create_metric(metric_name)).reduce(trace)
        )
        assert serialize_reduced_trace(result.reduced) == want

        latest = {}  # (rank, sid) -> StoredSegment, last state wins
        order = {}  # rank -> [sid in first-seen order]
        execs = {}
        for delta in deltas:
            for rank_delta in delta.ranks:
                for stored in rank_delta.new:
                    latest[(rank_delta.rank, stored.segment_id)] = stored
                    order.setdefault(rank_delta.rank, []).append(stored.segment_id)
                for stored in rank_delta.updated:
                    latest[(rank_delta.rank, stored.segment_id)] = stored
                execs.setdefault(rank_delta.rank, []).extend(rank_delta.execs)
        rebuilt = b""
        for rank in sorted(order):
            for sid in order[rank]:
                stored = latest[(rank, sid)]
                rebuilt += serialize_segment(stored.segment, segment_id=sid)
            for sid, start in execs[rank]:
                rebuilt += serialize_exec_entry(sid, start)
        assert rebuilt == want


class TestDeltaWriter:
    def test_appends_non_empty_deltas_only(self, trace, tmp_path):
        deltas, _ = _session_deltas(trace, SessionConfig("relDiff"))
        path = tmp_path / "deltas.log"
        with DeltaWriter(path) as writer:
            for delta in deltas:
                writer.write(delta)
            # An empty flush writes nothing.
            empty = ReductionSession("t", SessionConfig("relDiff")).flush()
            assert writer.write(empty) == 0
        non_empty = [d for d in deltas if not d.empty]
        assert writer.deltas_written == len(non_empty)
        payload = path.read_bytes()
        assert len(payload) == writer.bytes_written
        assert payload == b"".join(serialize_delta(d) for d in non_empty)
        assert payload.count(b"DELTA ") == len(non_empty)

    def test_chunks_concatenate_to_serialization(self, trace):
        deltas, _ = _session_deltas(trace, SessionConfig("euclidean"))
        for delta in deltas:
            assert b"".join(iter_delta_chunks(delta)) == serialize_delta(delta)
