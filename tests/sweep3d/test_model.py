"""Tests for the Sweep3D wavefront application model."""

import numpy as np
import pytest

from repro.analysis.expert import analyze
from repro.analysis.patterns import LATE_SENDER
from repro.sweep3d.model import Sweep3DParams, sweep3d, sweep3d_32p, sweep3d_8p


SMALL = Sweep3DParams(nx=8, ny=8, nz=8, px=2, py=2, mk=4, timesteps=2, cost_per_cell=0.05)


class TestParams:
    def test_defaults_valid(self):
        params = Sweep3DParams()
        assert params.nprocs == 8
        assert params.kb == 5

    def test_local_extents_ceiling(self):
        params = Sweep3DParams(nx=50, ny=50, nz=50, px=3, py=4)
        assert params.it == 17
        assert params.jt == 13

    def test_mk_larger_than_nz_rejected(self):
        with pytest.raises(ValueError):
            Sweep3DParams(nz=4, mk=8)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Sweep3DParams(nx=0)


class TestProgramStructure:
    def test_nprocs_from_decomposition(self):
        workload = sweep3d(SMALL)
        assert workload.nprocs == 4

    def test_segment_contexts(self):
        trace = sweep3d(SMALL, seed=1).run_segmented()
        contexts = {s.context for s in trace.rank(0).segments}
        assert contexts == {"init", "sweep.1", "sweep.1.1", "sweep.1.2", "final"}

    def test_kblock_segment_count(self):
        trace = sweep3d(SMALL, seed=1).run_segmented()
        kblocks = [s for s in trace.rank(0).segments if s.context == "sweep.1.1"]
        # 8 octants × kb blocks × timesteps
        assert len(kblocks) == 8 * SMALL.kb * SMALL.timesteps

    def test_corner_rank_has_fewer_messages_than_interior(self):
        params = Sweep3DParams(nx=9, ny=9, nz=6, px=3, py=3, mk=3, timesteps=1, cost_per_cell=0.05)
        trace = sweep3d(params, seed=1).run_segmented()
        def msg_count(rank):
            return sum(1 for e in trace.rank(rank).events() if e.name in ("pmpi_send", "pmpi_recv"))
        corner = msg_count(0)          # coordinates (0, 0)
        interior = msg_count(4)        # coordinates (1, 1)
        assert interior > corner

    def test_message_parameters_differ_between_ranks(self):
        """Different ranks send to different peers, which limits possible matches
        (the effect the paper observes for sweep3d)."""
        trace = sweep3d(SMALL, seed=1).run_segmented()
        def structures(rank):
            return {s.structure() for s in trace.rank(rank).segments if s.context == "sweep.1.1"}
        assert structures(0) != structures(3)

    def test_wavefront_creates_recv_waits(self):
        report = analyze(sweep3d(SMALL, seed=1).run_segmented())
        assert report.total(LATE_SENDER, "pmpi_recv") > 0.0

    def test_deterministic(self):
        a = sweep3d(SMALL, seed=2).run_segmented().timestamps()
        b = sweep3d(SMALL, seed=2).run_segmented().timestamps()
        np.testing.assert_array_equal(a, b)


class TestPaperConfigurations:
    def test_sweep3d_8p_decomposition(self):
        workload = sweep3d_8p(scale=0.2, timesteps=1)
        assert workload.nprocs == 8
        assert workload.name == "sweep3d_8p"

    def test_sweep3d_32p_decomposition(self):
        workload = sweep3d_32p(scale=0.1, timesteps=1)
        assert workload.nprocs == 32
        assert workload.name == "sweep3d_32p"

    def test_scale_changes_work_not_structure(self):
        """Scaling shrinks the grid (less compute) but keeps the loop structure,
        so the event count is unchanged while the runtime shrinks."""
        small = sweep3d_8p(scale=0.2, timesteps=1).run_segmented()
        larger = sweep3d_8p(scale=0.4, timesteps=1).run_segmented()
        assert larger.num_events == small.num_events
        assert larger.duration() > small.duration()

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            sweep3d_8p(scale=0.0)
