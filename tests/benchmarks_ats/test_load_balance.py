"""Tests for the dynamic-load-balance benchmark."""

import numpy as np
import pytest

from repro.analysis.expert import analyze
from repro.analysis.patterns import EXECUTION_TIME, WAIT_AT_NXN
from repro.benchmarks_ats.load_balance import dyn_load_balance, work_schedule


class TestWorkSchedule:
    def test_upper_half_grows(self):
        schedule = work_schedule(3, 4, 5, base_work=1000.0, drift=100.0, rebalance_period=10)
        assert schedule == [1000.0, 1100.0, 1200.0, 1300.0, 1400.0]

    def test_lower_half_shrinks(self):
        schedule = work_schedule(0, 4, 5, base_work=1000.0, drift=100.0, rebalance_period=10)
        assert schedule == [1000.0, 900.0, 800.0, 700.0, 600.0]

    def test_rebalance_resets(self):
        schedule = work_schedule(3, 4, 6, base_work=1000.0, drift=100.0, rebalance_period=3)
        assert schedule[3] == 1000.0
        assert schedule[4] == 1100.0

    def test_lower_bound_floor(self):
        schedule = work_schedule(0, 4, 30, base_work=1000.0, drift=100.0, rebalance_period=30)
        assert min(schedule) == pytest.approx(100.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            work_schedule(0, 4, 5, base_work=0.0, drift=1.0, rebalance_period=5)
        with pytest.raises(ValueError):
            work_schedule(0, 4, 5, base_work=1.0, drift=1.0, rebalance_period=0)


class TestDynLoadBalance:
    def test_metadata(self):
        workload = dyn_load_balance(4, 8)
        assert workload.expected_metric == WAIT_AT_NXN
        assert workload.expected_location == "MPI_Alltoall"

    def test_lower_ranks_wait_in_alltoall(self):
        workload = dyn_load_balance(4, 16, rebalance_period=8, drift=80.0, seed=1)
        report = analyze(workload.run_segmented())
        waits = report.per_rank(WAIT_AT_NXN, "MPI_Alltoall")
        lower = waits[:2].mean()
        upper = waits[2:].mean()
        assert lower > 2.0 * upper

    def test_upper_ranks_spend_more_time_in_do_work(self):
        workload = dyn_load_balance(4, 16, rebalance_period=8, drift=80.0, seed=1)
        report = analyze(workload.run_segmented())
        times = report.per_rank(EXECUTION_TIME, "do_work")
        assert times[2:].mean() > times[:2].mean()

    def test_segments_vary_over_time(self):
        """Successive iterations are NOT near-identical (unlike the regular set)."""
        trace = dyn_load_balance(4, 16, rebalance_period=8, drift=80.0, seed=1).run_segmented()
        durations = [s.duration for s in trace.rank(3).segments if s.context == "main.1"]
        assert max(durations) > 1.3 * min(durations)

    def test_deterministic(self):
        a = dyn_load_balance(4, 6, seed=4).run_segmented().timestamps()
        b = dyn_load_balance(4, 6, seed=4).run_segmented().timestamps()
        np.testing.assert_array_equal(a, b)
