"""Tests for the interference (irregular) benchmarks."""

import numpy as np
import pytest

from repro.analysis.expert import analyze
from repro.benchmarks_ats.irregular import INTERFERENCE_PATTERNS, interference
from repro.simulator.noise import PeriodicNoise

NPROCS = 4
ITERATIONS = 12


class TestConstruction:
    def test_all_patterns_build(self):
        for pattern in INTERFERENCE_PATTERNS:
            workload = interference(pattern, 32, nprocs=NPROCS, iterations=2)
            assert workload.name == f"{pattern}_32"
            assert workload.nprocs == NPROCS

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown interference pattern"):
            interference("NtoM", 32, nprocs=NPROCS, iterations=2)

    def test_pairwise_patterns_need_even_ranks(self):
        with pytest.raises(ValueError):
            interference("1to1r", 32, nprocs=3, iterations=2)

    def test_noise_model_attached(self):
        workload = interference("NtoN", 1024, nprocs=NPROCS, iterations=2)
        assert isinstance(workload.config.noise, PeriodicNoise)

    def test_expected_diagnosis_metadata(self):
        workload = interference("Nto1", 32, nprocs=NPROCS, iterations=2)
        assert workload.expected_metric == "Early Gather"
        assert workload.expected_location == "MPI_Gather"


class TestBehaviour:
    def test_runs_and_produces_segments(self):
        trace = interference("NtoN", 32, nprocs=NPROCS, iterations=ITERATIONS, seed=1).run_segmented()
        contexts = {s.context for s in trace.rank(0).segments}
        assert contexts == {"init", "main.1", "final"}
        assert len(trace.rank(0).segments) == ITERATIONS + 2

    def test_noise_creates_iteration_variability(self):
        """Interference must make some iterations noticeably longer than others."""
        trace = interference(
            "NtoN", 1024, nprocs=NPROCS, iterations=40, seed=3
        ).run_segmented()
        durations = [s.duration for s in trace.rank(0).segments if s.context == "main.1"]
        durations = np.asarray(durations)
        assert durations.max() > 1.15 * np.median(durations)

    def test_1024_noisier_than_32(self):
        quiet = interference("NtoN", 32, nprocs=NPROCS, iterations=40, seed=3).run_segmented()
        noisy = interference("NtoN", 1024, nprocs=NPROCS, iterations=40, seed=3).run_segmented()
        assert noisy.duration() > quiet.duration()

    def test_expected_wait_metric_appears(self):
        workload = interference("NtoN", 1024, nprocs=NPROCS, iterations=30, seed=2)
        report = analyze(workload.run_segmented())
        assert report.total(workload.expected_metric, workload.expected_location) > 0.0

    def test_1to1_patterns_pair_even_and_odd(self):
        workload = interference("1to1r", 32, nprocs=NPROCS, iterations=5, seed=0)
        trace = workload.run_segmented()
        rank0_names = {e.name for e in trace.rank(0).events()}
        rank1_names = {e.name for e in trace.rank(1).events()}
        assert "MPI_Send" in rank0_names
        assert "MPI_Recv" in rank1_names

    def test_1to1s_uses_synchronous_sends(self):
        workload = interference("1to1s", 32, nprocs=NPROCS, iterations=5, seed=0)
        trace = workload.run_segmented()
        assert "MPI_Ssend" in {e.name for e in trace.rank(0).events()}
