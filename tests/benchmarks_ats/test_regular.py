"""Tests for the regular-behaviour benchmarks.

Each benchmark is validated against the behaviour the paper designed it to
exhibit: the analyzer run on the full trace must report the expected
diagnosis, concentrated on the expected ranks.
"""

import numpy as np
import pytest

from repro.analysis.expert import analyze
from repro.analysis.patterns import (
    EARLY_GATHER,
    LATE_BROADCAST,
    LATE_RECEIVER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
)
from repro.benchmarks_ats.base import jittered
from repro.benchmarks_ats.regular import (
    early_gather,
    imbalance_at_mpi_barrier,
    late_broadcast,
    late_receiver,
    late_sender,
)
from repro.util.rng import rng_for

NPROCS = 4
ITERATIONS = 6


def _report(workload):
    return analyze(workload.run_segmented())


class TestJittered:
    def test_zero_jitter_is_identity(self):
        rng = rng_for(0, "t")
        assert jittered(rng, 100.0, 0.0) == 100.0

    def test_zero_nominal(self):
        rng = rng_for(0, "t")
        assert jittered(rng, 0.0, 0.1) == 0.0

    def test_bounded(self):
        rng = rng_for(0, "t")
        values = [jittered(rng, 100.0, 0.5) for _ in range(200)]
        assert all(50.0 <= v <= 200.0 for v in values)

    def test_varies(self):
        rng = rng_for(0, "t")
        values = {jittered(rng, 100.0, 0.05) for _ in range(10)}
        assert len(values) > 1


class TestLateSender:
    def test_metadata(self):
        workload = late_sender(NPROCS, ITERATIONS)
        assert workload.name == "late_sender"
        assert workload.expected_metric == LATE_SENDER
        assert workload.nprocs == NPROCS

    def test_odd_nprocs_rejected(self):
        with pytest.raises(ValueError):
            late_sender(5, ITERATIONS)

    def test_diagnosis_present_on_receivers(self):
        report = _report(late_sender(NPROCS, ITERATIONS, severity=500.0, seed=1))
        per_rank = report.per_rank(LATE_SENDER, "MPI_Recv")
        receivers = per_rank[1::2]
        senders = per_rank[0::2]
        # every receiver waited roughly severity × iterations
        assert np.all(receivers > 0.5 * 500.0 * ITERATIONS)
        assert np.all(senders == 0.0)

    def test_severity_scales(self):
        low = _report(late_sender(NPROCS, ITERATIONS, severity=200.0, seed=1))
        high = _report(late_sender(NPROCS, ITERATIONS, severity=800.0, seed=1))
        assert high.total(LATE_SENDER, "MPI_Recv") > low.total(LATE_SENDER, "MPI_Recv")

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            late_sender(NPROCS, 0)
        with pytest.raises(ValueError):
            late_sender(NPROCS, ITERATIONS, work=-1.0)


class TestLateReceiver:
    def test_diagnosis_on_senders(self):
        report = _report(late_receiver(NPROCS, ITERATIONS, severity=500.0, seed=1))
        per_rank = report.per_rank(LATE_RECEIVER, "MPI_Ssend")
        assert np.all(per_rank[0::2] > 0.5 * 500.0 * ITERATIONS)
        assert np.all(per_rank[1::2] == 0.0)

    def test_little_late_sender_waiting(self):
        report = _report(late_receiver(NPROCS, ITERATIONS, severity=500.0, seed=1))
        assert report.total(LATE_RECEIVER, "MPI_Ssend") > 3 * report.total(
            LATE_SENDER, "MPI_Recv"
        )


class TestEarlyGather:
    def test_diagnosis_on_root(self):
        report = _report(early_gather(NPROCS, ITERATIONS, severity=400.0, seed=1))
        per_rank = report.per_rank(EARLY_GATHER, "MPI_Gather")
        assert per_rank[0] > 0.5 * 400.0 * ITERATIONS
        assert np.all(per_rank[1:] == 0.0)

    def test_custom_root(self):
        report = _report(early_gather(NPROCS, ITERATIONS, severity=400.0, root=2, seed=1))
        per_rank = report.per_rank(EARLY_GATHER, "MPI_Gather")
        assert per_rank[2] > 0.0
        assert per_rank[0] == 0.0


class TestLateBroadcast:
    def test_diagnosis_on_receivers(self):
        report = _report(late_broadcast(NPROCS, ITERATIONS, severity=400.0, seed=1))
        per_rank = report.per_rank(LATE_BROADCAST, "MPI_Bcast")
        assert per_rank[0] == 0.0
        assert np.all(per_rank[1:] > 0.5 * 400.0 * ITERATIONS)


class TestImbalanceAtBarrier:
    def test_heavy_rank_does_not_wait(self):
        report = _report(imbalance_at_mpi_barrier(NPROCS, ITERATIONS, severity=400.0, seed=1))
        per_rank = report.per_rank(WAIT_AT_BARRIER, "MPI_Barrier")
        heavy = NPROCS - 1
        assert per_rank[heavy] < 0.2 * per_rank[:heavy].mean()
        assert np.all(per_rank[:heavy] > 0.5 * 400.0 * ITERATIONS)

    def test_do_work_time_reflects_imbalance(self):
        report = _report(imbalance_at_mpi_barrier(NPROCS, ITERATIONS, severity=400.0, seed=1))
        times = report.per_rank("Execution Time", "do_work")
        assert times[NPROCS - 1] > times[0]


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory", [late_sender, late_receiver, early_gather, late_broadcast, imbalance_at_mpi_barrier]
    )
    def test_same_seed_same_trace(self, factory):
        a = factory(NPROCS, 3, seed=7).run_segmented()
        b = factory(NPROCS, 3, seed=7).run_segmented()
        np.testing.assert_array_equal(a.timestamps(), b.timestamps())

    def test_different_seed_different_trace(self):
        a = late_sender(NPROCS, 3, seed=1).run_segmented()
        b = late_sender(NPROCS, 3, seed=2).run_segmented()
        assert not np.array_equal(a.timestamps(), b.timestamps())
