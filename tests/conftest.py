"""Shared fixtures: the paper's worked example segments and small workloads."""

from __future__ import annotations

import pytest

from repro.benchmarks_ats import dyn_load_balance, late_sender
from repro.trace.events import Event, MpiCallInfo
from repro.trace.segments import Segment


def make_event(
    name: str,
    start: float,
    end: float,
    *,
    rank: int = 0,
    mpi: MpiCallInfo | None = None,
) -> Event:
    """Convenience constructor used throughout the tests."""
    return Event(name=name, start=start, end=end, rank=rank, mpi=mpi)


def make_segment(
    context: str,
    events: list[tuple[str, float, float]],
    *,
    start: float = 0.0,
    end: float | None = None,
    rank: int = 0,
    index: int = 0,
    mpi_for: dict[str, MpiCallInfo] | None = None,
) -> Segment:
    """Build a segment from (name, start, end) triples."""
    mpi_for = mpi_for or {}
    evs = [
        make_event(name, s, e, rank=rank, mpi=mpi_for.get(name)) for name, s, e in events
    ]
    seg_end = end if end is not None else (max(e for _, _, e in events) + 1 if events else start)
    return Segment(context=context, rank=rank, start=start, end=seg_end, events=evs, index=index)


ALLGATHER = MpiCallInfo(op="allgather", nbytes=1024)


def _paper_segment(index: int, do_work: tuple[float, float], allgather: tuple[float, float], end: float) -> Segment:
    """One of the main.1 segments of Figure 2 (timestamps relative to segment start)."""
    return make_segment(
        "main.1",
        [("do_work", *do_work), ("MPI_Allgather", *allgather)],
        start=0.0,
        end=end,
        index=index,
        mpi_for={"MPI_Allgather": ALLGATHER},
    )


@pytest.fixture
def paper_segments() -> dict[str, Segment]:
    """The three segments of the paper's Figure 2 worked example.

    Measurement vectors (segment end, event start/end pairs):
    s0 = (50, 1, 20, 21, 49), s1 = (51, 1, 40, 41, 50), s2 = (49, 1, 17, 18, 48).
    """
    return {
        "s0": _paper_segment(0, (1.0, 20.0), (21.0, 49.0), 50.0),
        "s1": _paper_segment(1, (1.0, 40.0), (41.0, 50.0), 51.0),
        "s2": _paper_segment(2, (1.0, 17.0), (18.0, 48.0), 49.0),
    }


@pytest.fixture(scope="session")
def small_late_sender_trace():
    """A tiny late_sender workload's segmented trace (session-cached)."""
    return late_sender(nprocs=4, iterations=6, seed=3).run_segmented()


@pytest.fixture(scope="session")
def small_dynlb_trace():
    """A tiny dyn_load_balance workload's segmented trace (session-cached)."""
    return dyn_load_balance(nprocs=4, iterations=12, rebalance_period=4, seed=5).run_segmented()
