"""Online reduction service: incremental ingest cost and cache-hit latency.

Two questions the ``repro.service`` subsystem must answer with numbers
rather than design claims:

* **What does incrementality cost?**  A :class:`ReductionSession` fed the
  same trace in small chunks — with periodic delta flushes, per-segment
  content-digest chaining, and delta bookkeeping — is timed against the
  one-shot batch :class:`TraceReducer` on identical input.  Both sides are
  the same single-threaded match loop, so the ratio isolates the service's
  bookkeeping overhead.  The outputs are asserted byte-identical first;
  a fast-but-wrong incremental path would fail before any timing gate.

* **What does the content-digest cache buy?**  ``ReductionService.submit``
  is issued twice with identical content: the first call pays a full
  session reduction, the second is answered from the
  :class:`ResultCache` and pays only the streaming ``source_digest``.
  The hit/miss latency ratio is the cache's value proposition.

The headline (default-scale) gates are conservative: incremental overhead
must stay under 3x batch, and a cache hit must be at least 2x faster than
the miss it replaces — both ratios run on the same machine back to back, so
they are not hardware-dependent.  Results land in ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import time

from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro.core.metrics import create_metric
from repro.core.reducer import TraceReducer
from repro.experiments.config import build_workload, get_scale
from repro.pipeline.stream import rank_segment_streams
from repro.service import ReductionService, ReductionSession, SessionConfig
from repro.trace.io import serialize_delta, serialize_reduced_trace
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_service.json"

WORKLOAD = "sweep3d_32p"  # 32 ranks; the heaviest multi-rank workload
METHOD = "relDiff"
CHUNK = 8  # segments per append: small enough to exercise the delta path
FLUSH_EVERY = 4  # appends between delta flushes

#: Incremental session time / batch reducer time, measured at default scale.
MAX_INCREMENTAL_OVERHEAD = 3.0

#: Cache-miss latency / cache-hit latency for an identical repeat submit.
MIN_CACHE_HIT_SPEEDUP = 2.0


def _time_batch(trace, passes: int = 2) -> tuple[float, bytes]:
    """Best-of-N one-shot reduction; returns the oracle bytes too."""
    best = float("inf")
    payload = b""
    for _ in range(passes):
        reducer = TraceReducer(create_metric(METHOD))
        started = time.perf_counter()
        reduced = reducer.reduce(trace)
        best = min(best, time.perf_counter() - started)
        payload = serialize_reduced_trace(reduced)
    return best, payload


def _time_incremental(trace, streams, passes: int = 2) -> tuple[float, bytes, int]:
    """Best-of-N chunked session feed with periodic flushes.

    Every delta the session emits is also serialized, so the measured time
    includes the full cost a live consumer would impose on the service.
    """
    best = float("inf")
    payload = b""
    delta_bytes = 0
    for _ in range(passes):
        session = ReductionSession(trace.name, SessionConfig(METHOD))
        appends = 0
        delta_bytes = 0
        started = time.perf_counter()
        for rank, segments in streams.items():
            for at in range(0, len(segments), CHUNK):
                session.append_segments(rank, segments[at : at + CHUNK])
                appends += 1
                if appends % FLUSH_EVERY == 0:
                    delta_bytes += len(serialize_delta(session.flush()))
        result = session.finish()
        delta_bytes += len(serialize_delta(result.delta))
        best = min(best, time.perf_counter() - started)
        payload = serialize_reduced_trace(result.reduced)
    return best, payload, delta_bytes


def _time_cache(trace, hit_passes: int = 3) -> tuple[float, float, bytes]:
    """One cold submit (miss), then best-of-N identical submits (hits)."""

    async def main():
        service = ReductionService()
        config = SessionConfig(METHOD)
        started = time.perf_counter()
        first = await service.submit("bench", trace, config)
        miss = time.perf_counter() - started
        assert not first.cache_hit
        hit = float("inf")
        for _ in range(hit_passes):
            started = time.perf_counter()
            repeat = await service.submit("bench", trace, config)
            hit = min(hit, time.perf_counter() - started)
            assert repeat.cache_hit
            assert repeat.payload == first.payload
        await service.close()
        return miss, hit, first.payload

    return asyncio.run(main())


def _measure_scale(scale_name: str) -> dict:
    trace = build_workload(WORKLOAD, get_scale(scale_name)).run().segmented()
    streams = {rank: list(segments) for rank, segments in rank_segment_streams(trace)}
    n_segments = sum(len(segments) for segments in streams.values())

    batch_seconds, oracle = _time_batch(trace)
    incr_seconds, incremental, delta_bytes = _time_incremental(trace, streams)
    assert incremental == oracle, (
        "incremental session output diverged from the batch reducer"
    )
    miss_seconds, hit_seconds, payload = _time_cache(trace)
    assert payload == oracle, "service submit output diverged from the batch reducer"

    return {
        "scale": scale_name,
        "n_ranks": trace.nprocs,
        "n_segments": n_segments,
        "chunk": CHUNK,
        "flush_every": FLUSH_EVERY,
        "batch_seconds": round(batch_seconds, 6),
        "incremental_seconds": round(incr_seconds, 6),
        "incremental_overhead": round(incr_seconds / batch_seconds, 4)
        if batch_seconds
        else None,
        "append_throughput_segments_per_s": round(n_segments / incr_seconds, 1)
        if incr_seconds
        else None,
        "delta_bytes": delta_bytes,
        "reduced_bytes": len(oracle),
        "cache_miss_seconds": round(miss_seconds, 6),
        "cache_hit_seconds": round(hit_seconds, 6),
        "cache_hit_speedup": round(miss_seconds / hit_seconds, 4)
        if hit_seconds
        else None,
        "identical_output": True,
    }


def _run_comparison() -> dict:
    return {
        "workload": WORKLOAD,
        "method": METHOD,
        "max_incremental_overhead": MAX_INCREMENTAL_OVERHEAD,
        "min_cache_hit_speedup": MIN_CACHE_HIT_SPEEDUP,
        "scales": {name: _measure_scale(name) for name in ("smoke", "default")},
    }


def test_service_overhead_and_cache(benchmark):
    report = run_once(benchmark, _run_comparison)
    write_bench_json(BENCH_PATH, report)

    rows = [
        [
            entry["scale"],
            entry["n_segments"],
            f"{entry['batch_seconds']:.4f}",
            f"{entry['incremental_seconds']:.4f}",
            f"{entry['incremental_overhead']:.2f}x",
            f"{entry['append_throughput_segments_per_s']:.0f}",
        ]
        for entry in report["scales"].values()
    ]
    emit(
        "BENCH_service_incremental",
        format_table(
            ["scale", "segments", "batch s", "incremental s", "overhead", "seg/s"],
            rows,
            title=f"incremental session vs one-shot batch reduce — {WORKLOAD}",
        ),
    )
    cache_rows = [
        [
            entry["scale"],
            entry["reduced_bytes"],
            f"{entry['cache_miss_seconds']:.4f}",
            f"{entry['cache_hit_seconds']:.4f}",
            f"{entry['cache_hit_speedup']:.2f}x",
        ]
        for entry in report["scales"].values()
    ]
    emit(
        "BENCH_service_cache",
        format_table(
            ["scale", "reduced B", "miss s", "hit s", "speedup"],
            cache_rows,
            title=f"submit latency: cold reduction vs content-digest cache hit — {WORKLOAD}",
        ),
    )

    for entry in report["scales"].values():
        assert entry["identical_output"]
    headline = report["scales"]["default"]
    assert headline["incremental_overhead"] <= MAX_INCREMENTAL_OVERHEAD, (
        f"chunked incremental reduction must stay under {MAX_INCREMENTAL_OVERHEAD}x "
        f"the batch reducer, measured {headline['incremental_overhead']:.2f}x"
    )
    assert headline["cache_hit_speedup"] >= MIN_CACHE_HIT_SPEEDUP, (
        f"a cache hit must be >= {MIN_CACHE_HIT_SPEEDUP}x faster than the cold "
        f"submit it replaces, measured {headline['cache_hit_speedup']:.2f}x"
    )
