"""Ablation: Minkowski measurement-vector layout.

The paper's worked example prepends the segment end time to the Minkowski
vector (``(end, e0.start, e0.end, ...)``).  This ablation compares that layout
against the plain pairwise layout (event start/end pairs followed by the end)
to check that the design choice does not change the study's conclusions.
"""

import numpy as np

from support import bench_scale, emit, run_once

from repro.core.metrics.minkowski import Euclidean
from repro.core.metrics.vectors import pairwise_vector
from repro.evaluation.runner import evaluate_method
from repro.experiments.config import prepared_workload
from repro.util.tables import format_table

WORKLOADS = ("dyn_load_balance", "late_sender", "1to1r_1024")


class PairwiseEuclidean(Euclidean):
    """Euclidean distance on the pairwise vector layout (no leading segment end)."""

    name = "euclidean(pairwise)"

    def distance(self, new_segment, stored_segment):
        a = pairwise_vector(new_segment)
        b = pairwise_vector(stored_segment)
        return float(np.linalg.norm(a - b))

    def limit(self, new_segment, stored_segment):
        a = pairwise_vector(new_segment)
        b = pairwise_vector(stored_segment)
        largest = max(float(a.max(initial=0.0)), float(b.max(initial=0.0)))
        return self.threshold * largest


def _run(scale):
    rows = []
    for workload in WORKLOADS:
        prepared = prepared_workload(workload, scale)
        for metric in (Euclidean(0.2), PairwiseEuclidean(0.2)):
            result = evaluate_method(prepared, metric, keep_comparison=False)
            rows.append(
                [
                    workload,
                    metric.name,
                    result.pct_file_size,
                    result.approx_distance_us,
                    result.trends_retained,
                ]
            )
    return rows


def test_ablation_vector_layout(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, _run, scale)
    emit(
        "ablation_vector_layout",
        format_table(
            ["workload", "layout", "% file size", "approx dist (us)", "trends"],
            rows,
            title=f"Ablation — Minkowski vector layout (scale={scale.name})",
        ),
    )
    # the layouts may differ slightly in size but must agree qualitatively
    for i in range(0, len(rows), 2):
        paper_layout, pairwise_layout = rows[i], rows[i + 1]
        assert abs(paper_layout[2] - pairwise_layout[2]) < 20.0
