"""Tables 17–18: retention of performance trends vs threshold for the Sweep3D runs."""

import pytest

from support import bench_scale, emit, run_once

from repro.experiments.formatting import format_trend_table
from repro.experiments.trend_tables import TREND_TABLE_INDEX, trend_table

SWEEP3D_TABLES = {num: name for num, name in TREND_TABLE_INDEX.items() if num >= 17}


@pytest.mark.parametrize("table_number", sorted(SWEEP3D_TABLES))
def test_sweep3d_trend_table(benchmark, table_number):
    workload = SWEEP3D_TABLES[table_number]
    scale = bench_scale()
    table = run_once(benchmark, trend_table, workload, scale=scale)
    emit(
        f"table{table_number:02d}_trends_{workload}",
        format_trend_table(
            table,
            title=(
                f"Table {table_number} — retention of performance trends for {workload} "
                f"(scale={scale.name})"
            ),
        ),
    )
    assert len(table) == 9
