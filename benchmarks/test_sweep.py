"""Sweep engine vs naive per-config loop on a full threshold grid.

Reduces sweep3d_32p under the complete euclidean + manhattan threshold grids
(12 configs — one shared Minkowski feature family) two ways:

* **naive** — the historical schedule: one independent serial
  :class:`TraceReducer` pass per config, re-normalising every segment and
  recomputing its feature vector once per config;
* **sweep** — the :mod:`repro.sweep` engine: one shared pass, segments
  normalised and keyed once, the family vector computed once per segment for
  all 12 configs, matching via the batched kernels per config.

Both schedules must produce byte-identical reduced traces per config, and
the evaluation rows derived from them must agree field for field; the sweep
is asserted to be at least 3x faster.  The ratio is schedule-bound, not
pool- or hardware-bound (both sides run serially in one process), so it is
meaningful on a single-CPU CI runner.  Measurements go to
``BENCH_sweep.json`` at the repository root (plus the usual ``results/``
table).
"""

from __future__ import annotations

import time

from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro.core.reducer import TraceReducer
from repro.evaluation.runner import PreparedWorkload, result_from_reduced
from repro.experiments.config import build_workload, get_scale
from repro.sweep import SweepEngine, SweepPlan
from repro.trace.io import serialize_reduced_trace
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_sweep.json"

WORKLOAD = "sweep3d_32p"  # 32 ranks; the heaviest multi-rank workload
METHODS = ("euclidean", "manhattan")  # full paper grids; one shared family
MIN_HEADLINE_SPEEDUP = 3.0


def _measure_scale(scale_name: str, plan: SweepPlan) -> dict:
    scale = get_scale(scale_name)
    segmented = build_workload(WORKLOAD, scale).run_segmented()

    started = time.perf_counter()
    naive = [TraceReducer(config.create()).reduce(segmented) for config in plan]
    naive_seconds = time.perf_counter() - started

    started = time.perf_counter()
    swept = SweepEngine(plan).sweep(segmented)
    sweep_seconds = time.perf_counter() - started

    identical = all(
        serialize_reduced_trace(outcome.reduced) == serialize_reduced_trace(reference)
        for outcome, reference in zip(swept, naive)
    )

    # The evaluation rows the figure suite consumes must agree too.  Both
    # row sets run through the same (untimed) criteria code.
    prepared = PreparedWorkload.from_segmented(WORKLOAD, segmented)
    sweep_rows = swept.evaluation_results(prepared)
    naive_rows = [result_from_reduced(prepared, r, keep_comparison=False) for r in naive]
    rows_equal = all(
        (got.method, got.threshold, got.pct_file_size, got.degree_of_matching,
         got.approx_distance_us, got.trends_retained, got.reduced_bytes,
         got.n_segments, got.n_stored)
        == (want.method, want.threshold, want.pct_file_size, want.degree_of_matching,
            want.approx_distance_us, want.trends_retained, want.reduced_bytes,
            want.n_segments, want.n_stored)
        for got, want in zip(sweep_rows, naive_rows)
    )

    return {
        "scale": scale_name,
        "n_ranks": len(segmented.ranks),
        "n_segments": swept.stats.n_segments,
        "vector_builds": swept.stats.vector_builds,
        "vector_builds_saved": swept.stats.vector_builds_saved,
        "sharing_factor": round(swept.stats.sharing_factor, 4),
        "naive_seconds": round(naive_seconds, 6),
        "sweep_seconds": round(sweep_seconds, 6),
        "speedup": round(naive_seconds / sweep_seconds, 4) if sweep_seconds else None,
        "identical_output": identical,
        "evaluation_rows_equal": rows_equal,
    }


def _run_comparison() -> dict:
    plan = SweepPlan.from_grid(list(METHODS))
    return {
        "workload": WORKLOAD,
        "methods": list(METHODS),
        "n_configs": plan.n_configs,
        "n_families": plan.n_families,
        "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
        "scales": {name: _measure_scale(name, plan) for name in ("smoke", "default")},
    }


def test_sweep_speedup(benchmark):
    report = run_once(benchmark, _run_comparison)
    write_bench_json(BENCH_PATH, report)

    rows = [
        [
            entry["scale"],
            entry["n_ranks"],
            entry["n_segments"],
            f"{entry['sharing_factor']:.1f}x",
            f"{entry['naive_seconds']:.4f}",
            f"{entry['sweep_seconds']:.4f}",
            f"{entry['speedup']:.2f}x",
        ]
        for entry in report["scales"].values()
    ]
    emit(
        "BENCH_sweep",
        format_table(
            ["scale", "ranks", "segments", "sharing", "naive s", "sweep s", "speedup"],
            rows,
            title=(
                f"threshold-grid sweep: shared-ingest engine vs per-config loop — "
                f"{WORKLOAD}, {report['n_configs']} configs"
            ),
        ),
    )
    for entry in report["scales"].values():
        assert entry["identical_output"], (
            f"sweep output diverged from the serial oracle at scale {entry['scale']}"
        )
        assert entry["evaluation_rows_equal"], (
            f"sweep evaluation rows diverged at scale {entry['scale']}"
        )
    headline = report["scales"]["default"]
    assert headline["speedup"] >= MIN_HEADLINE_SPEEDUP, (
        f"the sweep engine must be >= {MIN_HEADLINE_SPEEDUP}x faster than the "
        f"per-config serial loop, measured {headline['speedup']:.2f}x"
    )
