"""Ablation: iter_k fill-in policy for reconstruction.

The paper's footnote 1 uses the *last* collected segment to fill in the
executions that were not collected and mentions the mean of the k collected
segments as an alternative.  This ablation measures both policies.
"""

from support import bench_scale, emit, run_once

from repro.core.metrics import create_metric
from repro.core.reconstruct import reconstruct
from repro.core.reducer import reduce_trace
from repro.evaluation.approximation import approximation_distance
from repro.evaluation.trends import retains_trends
from repro.experiments.config import prepared_workload
from repro.util.tables import format_table

WORKLOADS = ("dyn_load_balance", "late_sender", "NtoN_1024", "sweep3d_8p")


def _run(scale):
    rows = []
    for workload in WORKLOADS:
        prepared = prepared_workload(workload, scale)
        reduced = reduce_trace(prepared.segmented, create_metric("iter_k"))
        for policy in ("last", "mean"):
            rebuilt = reconstruct(reduced, iter_k_fill=policy)
            rows.append(
                [
                    workload,
                    policy,
                    approximation_distance(prepared.segmented, rebuilt),
                    retains_trends(
                        prepared.segmented, rebuilt, full_report=prepared.full_report
                    ).retained,
                ]
            )
    return rows


def test_ablation_iterk_fill(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, _run, scale)
    emit(
        "ablation_iterk_fill",
        format_table(
            ["workload", "fill policy", "approx dist (us)", "trends"],
            rows,
            title=f"Ablation — iter_k reconstruction fill-in policy (scale={scale.name})",
        ),
    )
    assert len(rows) == 2 * len(WORKLOADS)
