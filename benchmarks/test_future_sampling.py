"""Future-work experiment: trace sampling vs the paper's similarity methods.

Section 6 of the paper lists trace sampling as the next difference method to
investigate.  This bench runs periodic and random sampling through the same
evaluation criteria as the nine similarity methods on a regular, an irregular,
and a time-varying workload.
"""

from support import bench_scale, emit, run_once

from repro.core.metrics import create_metric
from repro.core.sampling import PeriodicSampling, RandomSampling
from repro.evaluation.runner import evaluate_method
from repro.experiments.config import prepared_workload
from repro.util.tables import format_table

WORKLOADS = ("late_sender", "NtoN_1024", "dyn_load_balance")


def _run(scale):
    rows = []
    for workload in WORKLOADS:
        prepared = prepared_workload(workload, scale)
        candidates = [
            create_metric("avgWave"),
            create_metric("iter_k"),
            create_metric("iter_avg"),
            PeriodicSampling(10),
            RandomSampling(0.1, seed=1),
        ]
        for metric in candidates:
            result = evaluate_method(prepared, metric, keep_comparison=False)
            rows.append(
                [
                    workload,
                    metric.describe(),
                    result.pct_file_size,
                    result.approx_distance_us,
                    result.trends_retained,
                ]
            )
    return rows


def test_future_work_sampling(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, _run, scale)
    emit(
        "future_sampling_vs_similarity",
        format_table(
            ["workload", "method", "% file size", "approx dist (us)", "trends"],
            rows,
            title=(
                "Future work — trace sampling (periodic 1-in-10, random 10%) vs similarity "
                f"methods (scale={scale.name})"
            ),
        ),
    )
    assert len(rows) == len(WORKLOADS) * 5
