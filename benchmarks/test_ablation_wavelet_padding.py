"""Ablation: wavelet vector zero-padding vs truncation.

The transforms need power-of-two input lengths.  The paper zero-pads the
measurement vector; truncating instead discards the trailing timestamps.  This
ablation shows how much the choice matters for the avgWave method.
"""

from support import bench_scale, emit, run_once

from repro.core.metrics.wavelet import AvgWave
from repro.evaluation.runner import evaluate_method
from repro.experiments.config import prepared_workload
from repro.util.tables import format_table

WORKLOADS = ("dyn_load_balance", "1to1s_1024", "sweep3d_8p")


def _run(scale):
    rows = []
    for workload in WORKLOADS:
        prepared = prepared_workload(workload, scale)
        for label, pad in (("zero-pad (paper)", True), ("truncate", False)):
            result = evaluate_method(prepared, AvgWave(0.2, pad=pad), keep_comparison=False)
            rows.append(
                [
                    workload,
                    label,
                    result.pct_file_size,
                    result.degree_of_matching,
                    result.approx_distance_us,
                    result.trends_retained,
                ]
            )
    return rows


def test_ablation_wavelet_padding(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, _run, scale)
    emit(
        "ablation_wavelet_padding",
        format_table(
            ["workload", "variant", "% file size", "matching", "approx dist (us)", "trends"],
            rows,
            title=f"Ablation — wavelet input padding (scale={scale.name})",
        ),
    )
    assert len(rows) == 2 * len(WORKLOADS)
