"""File→pipeline ingestion: text forward-pass vs binary indexed path.

Writes a multi-rank sweep3d trace as a text file and as a columnar binary
(``.rpb``) file, then times how long each takes to stream into the pipeline's
``(rank, segment stream)`` form — the text path parses line by line in a
single forward pass, the binary path decodes NumPy column blocks through the
per-rank footer index.  Also reduces both files through the process-pool
pipeline and checks the outputs are byte-identical, with the binary source
dispatched to the workers as ``(path, rank)`` shard tasks (no pickled rank
payloads).

A second stage measures the columnar hot path end to end on the ``.rpb``
file: fused decode→vectorize (column blocks → ``RankFrame`` → interned
structural keys + bulk feature vectors, no ``Segment`` objects) against
decode-to-segments followed by per-segment normalise/key/vectorize — the
work every reduction performs before its first match decision.

The measurements go to ``BENCH_ingest.json`` at the repository root (plus the
usual ``results/`` table).  The headline (default-scale) ingest speedup is
asserted to be at least 3x and the fused decode→vectorize speedup at least
2x: unlike pool speedups they are not hardware-dependent — both sides of
each ratio run the same single-threaded loop, so the ratios isolate the
decode and vectorize costs.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro.core.metrics import create_metric
from repro.experiments.config import build_workload, get_scale
from repro.pipeline.engine import PipelineConfig, reduce_pipeline
from repro.pipeline.stream import rank_frame_streams, rank_segment_streams
from repro.trace.formats import convert_trace
from repro.trace.io import serialize_reduced_trace, write_trace
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_ingest.json"

WORKLOAD = "sweep3d_32p"  # 32 ranks; the heaviest multi-rank workload
METHOD = "relDiff"  # cheap metric: keeps the reduce step from masking ingest
MIN_HEADLINE_SPEEDUP = 3.0
MIN_FUSED_SPEEDUP = 2.0


def _time_ingest(path: Path, passes: int = 2) -> tuple[float, int]:
    """Best-of-N wall time to stream a trace file fully into segments.

    The first pass pays one-off costs (page cache, allocator warm-up, lazy
    imports) that are not part of the decode; the minimum over two passes
    measures the steady state both paths reach in any real run.
    """
    best = float("inf")
    n_segments = 0
    for _ in range(passes):
        started = time.perf_counter()
        n_segments = 0
        for _, segments in rank_segment_streams(path):
            for _ in segments:
                n_segments += 1
        best = min(best, time.perf_counter() - started)
    return best, n_segments


def _time_segment_vectorize(path: Path, passes: int = 2) -> tuple[float, int]:
    """Decode-to-segments plus per-segment normalise/key/vectorize.

    The pre-columnar hot path: every segment is materialized, copied by
    ``relative_to_start()``, structurally keyed, and turned into a feature
    vector one at a time — the work a reduction performs before its first
    match decision.
    """
    metric = create_metric(METHOD)
    build_vector = metric.build_vector
    best = float("inf")
    n_segments = 0
    for _ in range(passes):
        started = time.perf_counter()
        n_segments = 0
        for _, segments in rank_segment_streams(path):
            for segment in segments:
                relative = segment.relative_to_start()
                relative.structure()
                build_vector(relative)
                n_segments += 1
        best = min(best, time.perf_counter() - started)
    return best, n_segments


def _time_fused(path: Path, passes: int = 2) -> tuple[float, int]:
    """Fused columnar decode→vectorize: columns to keys and vectors directly.

    The frame path's equivalent of :func:`_time_segment_vectorize`: column
    blocks become a ``RankFrame``, then one interning pass yields every
    structural key and one bulk pass yields every feature vector — no
    ``Segment`` objects at all.
    """
    metric = create_metric(METHOD)
    frame_vectors = metric.frame_vectors
    best = float("inf")
    n_segments = 0
    for _ in range(passes):
        started = time.perf_counter()
        n_segments = 0
        for _, frame in rank_frame_streams(path):
            frame.structural_keys()
            frame_vectors(frame)
            n_segments += frame.n_segments
        best = min(best, time.perf_counter() - started)
    return best, n_segments


def _measure_scale(scale_name: str, workdir: Path) -> dict:
    scale = get_scale(scale_name)
    trace = build_workload(WORKLOAD, scale).run()
    text_path = workdir / f"{scale_name}.txt"
    write_trace(trace, text_path)
    # Convert from the text file so both files hold identical (quantized)
    # values and the reductions below are comparable byte for byte.
    rpb_path = workdir / f"{scale_name}.rpb"
    convert_trace(text_path, rpb_path)

    text_seconds, text_segments = _time_ingest(text_path)
    rpb_seconds, rpb_segments = _time_ingest(rpb_path)
    assert rpb_segments == text_segments, "formats disagree on segment count"

    segvec_seconds, segvec_segments = _time_segment_vectorize(rpb_path)
    fused_seconds, fused_segments = _time_fused(rpb_path)
    assert fused_segments == segvec_segments == text_segments, (
        "vectorize stages disagree on segment count"
    )

    serial = reduce_pipeline(text_path, create_metric(METHOD), PipelineConfig(executor="serial"))
    sharded = reduce_pipeline(
        rpb_path,
        create_metric(METHOD),
        PipelineConfig(executor="process", workers=max(2, os.cpu_count() or 1)),
    )
    identical = serialize_reduced_trace(sharded.reduced) == serialize_reduced_trace(
        serial.reduced
    )
    assert identical, "binary shard reduction diverged from the text serial path"
    assert sharded.stats.dispatch == "shard", (
        "binary file sources must reach process workers as (path, rank) shard "
        f"tasks, got dispatch={sharded.stats.dispatch!r}"
    )

    return {
        "scale": scale_name,
        "n_ranks": trace.nprocs,
        "n_records": trace.num_records,
        "n_segments": text_segments,
        "text_bytes": text_path.stat().st_size,
        "rpb_bytes": rpb_path.stat().st_size,
        "text_ingest_seconds": round(text_seconds, 6),
        "rpb_ingest_seconds": round(rpb_seconds, 6),
        "ingest_speedup": round(text_seconds / rpb_seconds, 4) if rpb_seconds else None,
        "segment_vectorize_seconds": round(segvec_seconds, 6),
        "fused_seconds": round(fused_seconds, 6),
        "fused_speedup": round(segvec_seconds / fused_seconds, 4) if fused_seconds else None,
        "shard_dispatch": sharded.stats.dispatch,
        "identical_output": identical,
    }


def _run_comparison() -> dict:
    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)
        return {
            "workload": WORKLOAD,
            "method": METHOD,
            "cpu_count": os.cpu_count() or 1,
            "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
            "scales": {name: _measure_scale(name, workdir) for name in ("smoke", "default")},
        }


def test_ingest_speedup(benchmark):
    report = run_once(benchmark, _run_comparison)
    write_bench_json(BENCH_PATH, report)

    fused_rows = [
        [
            entry["scale"],
            entry["n_segments"],
            f"{entry['segment_vectorize_seconds']:.4f}",
            f"{entry['fused_seconds']:.4f}",
            f"{entry['fused_speedup']:.2f}x",
        ]
        for entry in report["scales"].values()
    ]
    emit(
        "BENCH_ingest_fused",
        format_table(
            ["scale", "segments", "per-segment s", "fused s", "speedup"],
            fused_rows,
            title=f"decode→vectorize on .rpb: per-segment vs fused columnar — {WORKLOAD}",
        ),
    )
    rows = [
        [
            entry["scale"],
            entry["n_ranks"],
            entry["n_records"],
            entry["text_bytes"],
            entry["rpb_bytes"],
            f"{entry['text_ingest_seconds']:.4f}",
            f"{entry['rpb_ingest_seconds']:.4f}",
            f"{entry['ingest_speedup']:.2f}x",
        ]
        for entry in report["scales"].values()
    ]
    emit(
        "BENCH_ingest",
        format_table(
            ["scale", "ranks", "records", "text B", "rpb B", "text s", "rpb s", "speedup"],
            rows,
            title=f"file ingestion: text forward-pass vs binary indexed — {WORKLOAD}",
        ),
    )
    for entry in report["scales"].values():
        assert entry["identical_output"]
        assert entry["shard_dispatch"] == "shard"
    headline = report["scales"]["default"]
    assert headline["ingest_speedup"] >= MIN_HEADLINE_SPEEDUP, (
        f"binary indexed ingestion must be >= {MIN_HEADLINE_SPEEDUP}x faster than "
        f"the text forward pass, measured {headline['ingest_speedup']:.2f}x"
    )
    assert headline["fused_speedup"] >= MIN_FUSED_SPEEDUP, (
        f"fused columnar decode→vectorize must be >= {MIN_FUSED_SPEEDUP}x faster "
        "than decode-to-segments + per-segment vectorize, measured "
        f"{headline['fused_speedup']:.2f}x"
    )
    # On a real multi-rank trace the columnar encoding is also smaller.
    assert headline["rpb_bytes"] < headline["text_bytes"]
