"""Figure 8: KOJAK performance trends for the 1to1r_1024 interference benchmark."""

from support import bench_scale, emit, run_once

from repro.experiments.comparative import fig8_interference_trends


def test_fig8_interference_trends(benchmark):
    scale = bench_scale()
    charts = run_once(benchmark, fig8_interference_trends, scale=scale)
    text = "\n\n".join(charts[name] for name in charts)
    emit("fig8_trends_1to1r_1024", text)
    assert "full trace" in charts
    assert len(charts) == 10
    for chart in charts.values():
        assert "MPI_Recv" in chart and "do_work" in chart
