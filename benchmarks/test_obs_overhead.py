"""Telemetry overhead guard: the disabled span path must stay under 1%.

The ``repro.obs`` instrumentation sits in the callers of the reduction's
inner loop (``pipeline.run``, ``rank.reduce``, the decode/merge stages), and
its whole design contract is that a run with telemetry *disabled* pays only
the no-op fast path: one global load, one thread-local probe, a shared
singleton.  This guard makes that contract an asserted number instead of a
comment:

* it times the disabled ``obs.span`` / ``obs.counter`` paths directly
  (hundreds of thousands of calls, empty-loop baseline subtracted);
* it counts how many instrumentation sites one serial reduction actually
  executes, by running the same reduction once with a recorder installed;
* it projects the worst-case disabled overhead (site count x per-call cost,
  with a 4x safety margin) and asserts it is below 1% of the measured
  match-kernel stage time — the tightest stage budget in the pipeline.

It also re-asserts the byte-identity invariant: recording telemetry must not
change the reduced output.  Results land in ``BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import os
import time

from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro import obs
from repro.core.metrics import create_metric
from repro.experiments.config import build_workload, get_scale
from repro.pipeline.engine import PipelineConfig, ReductionPipeline
from repro.trace.io import serialize_reduced_trace
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_obs_overhead.json"

WORKLOAD = "sweep3d_32p"
SCALE = "default"
METHOD = "relDiff"

#: Disabled-path timing loop length: large enough that per-call costs of a
#: few tens of nanoseconds resolve well above timer granularity.
N_CALLS = 200_000

#: Projected disabled overhead must stay below this fraction of the
#: match-kernel stage time.
MAX_OVERHEAD_FRACTION = 0.01

#: Multiplier on the projected overhead, so the gate holds even if a future
#: change quadruples the number of instrumentation sites per run.
SAFETY_FACTOR = 4


def _disabled_cost_ns(op) -> float:
    """Per-call cost of ``op`` with telemetry disabled, baseline-subtracted."""
    assert not obs.enabled(), "overhead must be measured with telemetry off"
    started = time.perf_counter_ns()
    for _ in range(N_CALLS):
        op()
    total = time.perf_counter_ns() - started
    started = time.perf_counter_ns()
    for _ in range(N_CALLS):
        pass
    baseline = time.perf_counter_ns() - started
    return max(total - baseline, 0) / N_CALLS


def _span_site():
    with obs.span("bench.overhead", rank=0):
        pass


def _counter_site():
    obs.counter("bench.overhead")


def _run_guard() -> dict:
    segmented = build_workload(WORKLOAD, get_scale(SCALE)).run_segmented()
    pipeline = ReductionPipeline(
        create_metric(METHOD, None), PipelineConfig(executor="serial")
    )

    span_ns = _disabled_cost_ns(_span_site)
    counter_ns = _disabled_cost_ns(_counter_site)

    started = time.perf_counter()
    plain = pipeline.reduce(segmented)
    plain_seconds = time.perf_counter() - started

    with obs.recording("guard") as recorder:
        recorded = pipeline.reduce(segmented)
    identical = serialize_reduced_trace(recorded.reduced) == serialize_reduced_trace(
        plain.reduced
    )

    # Every span and metric write the recorded run captured is a site the
    # disabled run paid the no-op fast path for.
    n_span_sites = recorder.n_spans
    n_metric_sites = len(recorder.registry)
    projected_seconds = (
        SAFETY_FACTOR * (n_span_sites * span_ns + n_metric_sites * counter_ns) / 1e9
    )
    match_seconds = plain.stats.match.seconds
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "method": METHOD,
        "cpu_count": os.cpu_count() or 1,
        "timing_calls": N_CALLS,
        "disabled_span_ns_per_call": round(span_ns, 2),
        "disabled_counter_ns_per_call": round(counter_ns, 2),
        "span_sites_per_run": n_span_sites,
        "metric_sites_per_run": n_metric_sites,
        "safety_factor": SAFETY_FACTOR,
        "projected_overhead_seconds": projected_seconds,
        "match_kernel_seconds": round(match_seconds, 6),
        "reduction_seconds": round(plain_seconds, 6),
        "overhead_vs_match_kernel": (
            projected_seconds / match_seconds if match_seconds else 0.0
        ),
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "identical_output": identical,
    }


def test_disabled_telemetry_overhead(benchmark):
    report = run_once(benchmark, _run_guard)
    write_bench_json(BENCH_PATH, report)

    rows = [
        ["disabled span (ns/call)", f"{report['disabled_span_ns_per_call']:.1f}"],
        ["disabled counter (ns/call)", f"{report['disabled_counter_ns_per_call']:.1f}"],
        ["span sites per run", report["span_sites_per_run"]],
        ["metric sites per run", report["metric_sites_per_run"]],
        [
            f"projected overhead x{report['safety_factor']} (us)",
            f"{1e6 * report['projected_overhead_seconds']:.2f}",
        ],
        ["match-kernel stage (s)", f"{report['match_kernel_seconds']:.4f}"],
        ["reduction total (s)", f"{report['reduction_seconds']:.4f}"],
        [
            "overhead vs match kernel",
            f"{100.0 * report['overhead_vs_match_kernel']:.4f}%",
        ],
        ["telemetry-on output identical", "yes" if report["identical_output"] else "NO"],
    ]
    emit(
        "BENCH_obs_overhead",
        format_table(
            ["property", "value"],
            rows,
            title=f"disabled-telemetry overhead — {WORKLOAD}/{SCALE}",
        ),
    )

    assert report["identical_output"], "telemetry changed the reduced output"
    assert report["match_kernel_seconds"] > 0
    assert report["overhead_vs_match_kernel"] < MAX_OVERHEAD_FRACTION, (
        f"projected disabled-telemetry overhead is "
        f"{100.0 * report['overhead_vs_match_kernel']:.3f}% of the match-kernel "
        f"stage; the budget is {100.0 * MAX_OVERHEAD_FRACTION:.0f}%"
    )
