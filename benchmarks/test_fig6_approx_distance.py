"""Figure 6: approximation distance for all methods at default thresholds."""

from support import bench_scale, emit, run_once

from repro.experiments.comparative import fig6_approximation_distance
from repro.experiments.config import ALL_WORKLOAD_NAMES
from repro.experiments.formatting import format_rows


def test_fig6_approximation_distance(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, fig6_approximation_distance, ALL_WORKLOAD_NAMES, scale=scale)
    emit(
        "fig6_approx_distance",
        format_rows(
            rows,
            title=(
                "Figure 6 — approximation distance (90th-percentile timestamp error, µs) "
                f"for all methods at default thresholds, scale={scale.name}"
            ),
        ),
    )
    assert len(rows) == len(ALL_WORKLOAD_NAMES) * 9
    assert all(row["approx_distance_us"] >= 0.0 for row in rows)
