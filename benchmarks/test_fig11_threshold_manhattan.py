"""Figure 11: file size and approximation distance vs threshold for manhattan (benchmark programs)."""

from support import bench_scale, emit, run_once

from repro.experiments.config import BENCHMARK_NAMES
from repro.experiments.formatting import format_rows
from repro.experiments.thresholds import threshold_study_rows


def test_fig11_threshold_manhattan(benchmark):
    scale = bench_scale()
    rows = run_once(
        benchmark, threshold_study_rows, "manhattan", BENCHMARK_NAMES, scale=scale
    )
    emit(
        "fig11_threshold_manhattan",
        format_rows(
            rows,
            title=(
                "Figure 11 — manhattan: % file size and approximation distance for varying "
                f"thresholds over the benchmark programs (scale={scale.name})"
            ),
        ),
    )
    assert len(rows) == len(BENCHMARK_NAMES) * 6
    assert all(row["pct_file_size"] > 0.0 for row in rows)
