"""Candidate-scan stage: legacy scan vs dense batch kernel vs pruned probe.

The matching step is the reduction's inner loop: every incoming segment is
compared against all stored representatives sharing its structural key.  This
benchmark times exactly that stage (via the reducer's match counters) on the
sweep3d workload at the default scale, three ways per configuration:

* the legacy Python scan (``TraceReducer(batch=False)``) — the oracle;
* the dense one-shot ``match_batch`` kernel (``batch=True, prune=False``);
* the production pruned probe (``batch=True, prune=True``): norm-bound
  prefilter over the cached summary column plus blocked early-exit scan.

All three reductions must be byte-identical, every configuration's pruned
probe must be at least as fast as the scan (the small-bucket floor), and the
strict-Euclidean headline must beat the scan by 3x; all are asserted, not
just recorded.

A second stage measures how the pruned probe *scales with store depth*: a
store-stress workload 10x the size of the base benchmark (jittered repeats
of a few structural keys under a strict threshold, so the representative
store grows linearly and candidate buckets run thousands of rows deep) is
reduced at 1x/3x/10x cuts, dense vs pruned.  The pruned probe's speedup over
the dense kernel must grow with the store size and reach at least 2x at the
largest cut — the sublinear-matching acceptance bar.  Results land in
``BENCH_match_kernel.json`` (``configs`` + ``store_scaling`` sections).
"""

from __future__ import annotations

import os
import time

import numpy as np
from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro.core.candidates import MatchCounters
from repro.core.metrics import DEFAULT_THRESHOLDS, create_metric
from repro.core.reducer import TraceReducer
from repro.experiments.config import build_workload, get_scale
from repro.trace.events import Event
from repro.trace.io import iter_reduced_rank_chunks, serialize_reduced_trace
from repro.trace.segments import Segment
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_match_kernel.json"

WORKLOAD = "sweep3d_32p"
SCALE = "default"

#: (method, threshold) pairs: the paper's default threshold plus a strict one
#: that forces deep candidate lists (the store-heavy regime).
CONFIGS: tuple[tuple[str, float], ...] = (
    ("relDiff", DEFAULT_THRESHOLDS["relDiff"]),
    ("relDiff", 0.01),
    ("absDiff", DEFAULT_THRESHOLDS["absDiff"]),
    ("manhattan", DEFAULT_THRESHOLDS["manhattan"]),
    ("manhattan", 0.01),
    ("euclidean", DEFAULT_THRESHOLDS["euclidean"]),
    ("euclidean", 0.001),
    ("chebyshev", DEFAULT_THRESHOLDS["chebyshev"]),
    ("chebyshev", 0.001),
    ("avgWave", DEFAULT_THRESHOLDS["avgWave"]),
    ("avgWave", 0.01),
    ("haarWave", DEFAULT_THRESHOLDS["haarWave"]),
    ("haarWave", 0.01),
)

#: The acceptance configuration: strict Euclidean produces the deepest
#: candidate lists of the sweep, i.e. the regime the batch kernel exists for.
HEADLINE = ("euclidean", 0.001)
MIN_HEADLINE_SPEEDUP = 3.0

#: Small-bucket floor: no configuration may be slower than the legacy scan.
#: Shallow buckets take a single lean kernel call (no blocking, no prefilter),
#: which is what keeps the default-threshold configs above water.
MIN_CONFIG_SPEEDUP = 1.0

#: Store-scaling stage: cuts of the store-stress stream, as multiples of the
#: base benchmark workload's segment count, and the required pruned-vs-dense
#: speedup at the largest (10x) cut.
STORE_BASE_SEGMENTS = 7936
STORE_CUTS = (1, 3, 10)
STORE_KEYS = 8
STORE_EVENTS = 6
STORE_METHOD = ("euclidean", 0.001)
MIN_STORE_SPEEDUP = 2.0


def _timed_reduction(
    segmented, metric_name: str, threshold: float, *, batch: bool, prune: bool = True
):
    counters = MatchCounters()
    reducer = TraceReducer(create_metric(metric_name, threshold), batch=batch, prune=prune)
    started = time.perf_counter()
    reduced = reducer.reduce(segmented, match_counters=counters)
    total = time.perf_counter() - started
    return serialize_reduced_trace(reduced), reduced, counters, total


#: Configurations whose match stage is this cheap get extra timed repetitions,
#: with the *minimum* across reps used for the speedup (the timeit estimator:
#: the fastest rep is the one least disturbed by scheduler and cache noise,
#: which on a tens-of-milliseconds stage can swing single runs by 20%).
REPEAT_TARGET_SECONDS = 0.25
MAX_REPEATS = 5


def _compare(segmented, metric_name: str, threshold: float) -> dict:
    scan_bytes, reduced, scan, scan_total = _timed_reduction(
        segmented, metric_name, threshold, batch=False
    )
    dense_bytes, _, dense, _ = _timed_reduction(
        segmented, metric_name, threshold, batch=True, prune=False
    )
    pruned_bytes, _, pruned, pruned_total = _timed_reduction(
        segmented, metric_name, threshold, batch=True, prune=True
    )
    assert dense_bytes == scan_bytes, (
        f"dense batch matcher diverged from the legacy scan for {metric_name}({threshold})"
    )
    assert pruned_bytes == scan_bytes, (
        f"pruned matcher diverged from the legacy scan for {metric_name}({threshold})"
    )
    scan_seconds = scan.seconds
    dense_seconds = dense.seconds
    pruned_seconds = pruned.seconds
    reps = 1
    while scan_seconds < REPEAT_TARGET_SECONDS and reps < MAX_REPEATS:
        scan_seconds = min(
            scan_seconds,
            _timed_reduction(segmented, metric_name, threshold, batch=False)[2].seconds,
        )
        dense_seconds = min(
            dense_seconds,
            _timed_reduction(
                segmented, metric_name, threshold, batch=True, prune=False
            )[2].seconds,
        )
        pruned_seconds = min(
            pruned_seconds,
            _timed_reduction(
                segmented, metric_name, threshold, batch=True, prune=True
            )[2].seconds,
        )
        reps += 1
    return {
        "method": metric_name,
        "threshold": threshold,
        "n_stored": reduced.n_stored,
        "match_calls": scan.calls,
        "rows_per_call": round(scan.rows_per_call, 3),
        "timed_repeats": reps,
        "scan_match_seconds": round(scan_seconds, 6),
        "dense_match_seconds": round(dense_seconds, 6),
        "pruned_match_seconds": round(pruned_seconds, 6),
        "rows_pruned": pruned.rows_pruned,
        "prune_rate": round(pruned.prune_rate, 4),
        "blocks_evaluated": pruned.blocks_evaluated,
        "match_speedup": round(scan_seconds / pruned_seconds, 4) if pruned_seconds else None,
        "dense_speedup": round(scan_seconds / dense_seconds, 4) if dense_seconds else None,
        "scan_total_seconds": round(scan_total, 6),
        "pruned_total_seconds": round(pruned_total, 6),
        "total_speedup": round(scan_total / pruned_total, 4) if pruned_total else None,
        "identical_output": True,
    }


def _store_stress_segments(n_segments: int, *, seed: int = 20260807) -> list[Segment]:
    """Store-stress stream: jittered repeats of a few structural keys.

    The per-event jitter is far wider than the strict match limit, so almost
    every segment becomes a new representative and the candidate buckets grow
    thousands of rows deep — while the jitter also spreads the row norms, the
    regime the summary prefilter exists for.  Deterministic via ``seed``.
    """
    rng = np.random.default_rng(seed)
    base = 1000.0 + 400.0 * rng.random((STORE_KEYS, STORE_EVENTS))
    jitter = 120.0 * rng.random((n_segments, STORE_EVENTS))
    segments = []
    for i in range(n_segments):
        k = i % STORE_KEYS
        cursor = 0.0
        events = []
        for j in range(STORE_EVENTS):
            duration = base[k, j] + jitter[i, j]
            events.append(Event(name=f"op{k}_{j}", start=cursor, end=cursor + duration))
            cursor += duration
        segments.append(
            Segment(context=f"loop{k}", rank=0, start=0.0, end=cursor, events=events, index=i)
        )
    return segments


def _timed_segment_reduction(segments, metric_name: str, threshold: float, *, prune: bool):
    counters = MatchCounters()
    reducer = TraceReducer(create_metric(metric_name, threshold), batch=True, prune=prune)
    reduced = reducer.reduce_segments(segments, match_counters=counters)
    return b"".join(iter_reduced_rank_chunks(reduced)), reduced, counters


def _run_store_scaling() -> dict:
    method, threshold = STORE_METHOD
    stream = _store_stress_segments(STORE_BASE_SEGMENTS * STORE_CUTS[-1])
    sizes = []
    for cut in STORE_CUTS:
        segments = stream[: STORE_BASE_SEGMENTS * cut]
        dense_bytes, _, dense = _timed_segment_reduction(
            segments, method, threshold, prune=False
        )
        pruned_bytes, reduced, pruned = _timed_segment_reduction(
            segments, method, threshold, prune=True
        )
        assert pruned_bytes == dense_bytes, (
            f"pruned store-stress reduction diverged from the dense kernel at {cut}x"
        )
        sizes.append(
            {
                "cut": f"{cut}x",
                "n_segments": len(segments),
                "n_stored": len(reduced.stored),
                "dense_match_seconds": round(dense.seconds, 6),
                "pruned_match_seconds": round(pruned.seconds, 6),
                "rows_pruned": pruned.rows_pruned,
                "prune_rate": round(pruned.prune_rate, 4),
                "blocks_evaluated": pruned.blocks_evaluated,
                "pruned_vs_dense_speedup": round(dense.seconds / pruned.seconds, 4)
                if pruned.seconds
                else None,
                "identical_output": True,
            }
        )
    return {
        "method": method,
        "threshold": threshold,
        "n_keys": STORE_KEYS,
        "n_events": STORE_EVENTS,
        "min_speedup_at_largest": MIN_STORE_SPEEDUP,
        "sizes": sizes,
    }


def _run_comparison() -> dict:
    segmented = build_workload(WORKLOAD, get_scale(SCALE)).run_segmented()
    entries = [_compare(segmented, method, threshold) for method, threshold in CONFIGS]
    headline = next(
        e for e in entries if (e["method"], e["threshold"]) == HEADLINE
    )
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "n_ranks": segmented.nprocs,
        "n_segments": segmented.num_segments,
        "cpu_count": os.cpu_count() or 1,
        "headline": {
            "method": HEADLINE[0],
            "threshold": HEADLINE[1],
            "match_speedup": headline["match_speedup"],
            "min_required": MIN_HEADLINE_SPEEDUP,
        },
        "configs": entries,
        "store_scaling": _run_store_scaling(),
    }


def test_match_kernel_speedup(benchmark):
    report = run_once(benchmark, _run_comparison)
    write_bench_json(BENCH_PATH, report)

    rows = [
        [
            entry["method"],
            f"{entry['threshold']:g}",
            entry["n_stored"],
            f"{entry['rows_per_call']:.2f}",
            f"{entry['scan_match_seconds']:.4f}",
            f"{entry['dense_match_seconds']:.4f}",
            f"{entry['pruned_match_seconds']:.4f}",
            f"{entry['prune_rate']:.1%}",
            f"{entry['match_speedup']:.2f}x",
        ]
        for entry in report["configs"]
    ]
    emit(
        "BENCH_match_kernel",
        format_table(
            [
                "method",
                "threshold",
                "stored",
                "rows/call",
                "scan s",
                "dense s",
                "pruned s",
                "pruned",
                "speedup",
            ],
            rows,
            title=(
                f"candidate-scan stage: scan vs dense vs pruned — "
                f"{WORKLOAD}/{SCALE} ({report['cpu_count']} cpus)"
            ),
        ),
    )

    scaling = report["store_scaling"]
    scaling_rows = [
        [
            size["cut"],
            size["n_segments"],
            size["n_stored"],
            f"{size['dense_match_seconds']:.4f}",
            f"{size['pruned_match_seconds']:.4f}",
            f"{size['prune_rate']:.1%}",
            f"{size['pruned_vs_dense_speedup']:.2f}x",
        ]
        for size in scaling["sizes"]
    ]
    emit(
        "BENCH_match_kernel_store_scaling",
        format_table(
            ["cut", "segments", "stored", "dense s", "pruned s", "pruned", "speedup"],
            scaling_rows,
            title=(
                f"store scaling: pruned probe vs dense kernel — "
                f"{scaling['method']}({scaling['threshold']:g}), "
                f"{scaling['n_keys']} keys x {scaling['n_events']} events"
            ),
        ),
    )

    for entry in report["configs"]:
        assert entry["identical_output"]
        assert entry["scan_match_seconds"] > 0 and entry["pruned_match_seconds"] > 0
        # Small-bucket floor: the pruned probe must never lose to the scan,
        # whatever the bucket depth profile of the configuration.
        assert entry["match_speedup"] >= MIN_CONFIG_SPEEDUP, (
            f"{entry['method']}({entry['threshold']}) pruned matcher is slower than "
            f"the legacy scan: {entry['match_speedup']}x"
        )
    # The acceptance bar: the pruned probe must beat the legacy scan by at
    # least 3x on the deep-candidate-list headline configuration.
    assert report["headline"]["match_speedup"] >= MIN_HEADLINE_SPEEDUP, (
        f"headline match-kernel speedup {report['headline']['match_speedup']}x "
        f"is below the required {MIN_HEADLINE_SPEEDUP}x"
    )
    # Sublinear-matching bar: the pruned probe's advantage over the dense
    # kernel must grow with the store depth and reach 2x at the 10x cut.
    speedups = [s["pruned_vs_dense_speedup"] for s in scaling["sizes"]]
    assert speedups == sorted(speedups), (
        f"pruned-vs-dense speedup does not grow with store size: {speedups}"
    )
    assert speedups[-1] >= MIN_STORE_SPEEDUP, (
        f"pruned-vs-dense speedup at the largest store is {speedups[-1]}x, "
        f"below the required {MIN_STORE_SPEEDUP}x"
    )
