"""Candidate-scan stage: legacy per-candidate scan vs batched match kernel.

The matching step is the reduction's inner loop: every incoming segment is
compared against all stored representatives sharing its structural key.  This
benchmark times exactly that stage (via the reducer's match counters) on the
sweep3d workload at the default scale, once with the legacy Python scan
(``TraceReducer(batch=False)``) and once with the vectorized ``match_batch``
kernels over cached representative matrices, asserts the two reductions are
byte-identical, and writes the measurements to ``BENCH_match_kernel.json``.

Two regimes are measured per method family:

* the paper's default threshold — high match rates, so candidate lists stay
  shallow and the win comes mostly from the cached representative vectors;
* a strict threshold — low match rates store many representatives per key,
  so candidate lists run deep and the broadcast kernel dominates.

The headline configuration (a strict-threshold Euclidean run, the deepest
candidate lists of the sweep) must show at least a 3x single-core speedup of
the candidate-scan stage; that bound is asserted, not just recorded.
"""

from __future__ import annotations

import os
import time

from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro.core.candidates import MatchCounters
from repro.core.metrics import DEFAULT_THRESHOLDS, create_metric
from repro.core.reducer import TraceReducer
from repro.experiments.config import build_workload, get_scale
from repro.trace.io import serialize_reduced_trace
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_match_kernel.json"

WORKLOAD = "sweep3d_32p"
SCALE = "default"

#: (method, threshold) pairs: the paper's default threshold plus a strict one
#: that forces deep candidate lists (the store-heavy regime).
CONFIGS: tuple[tuple[str, float], ...] = (
    ("relDiff", DEFAULT_THRESHOLDS["relDiff"]),
    ("relDiff", 0.01),
    ("absDiff", DEFAULT_THRESHOLDS["absDiff"]),
    ("manhattan", DEFAULT_THRESHOLDS["manhattan"]),
    ("manhattan", 0.01),
    ("euclidean", DEFAULT_THRESHOLDS["euclidean"]),
    ("euclidean", 0.001),
    ("chebyshev", DEFAULT_THRESHOLDS["chebyshev"]),
    ("chebyshev", 0.001),
    ("avgWave", DEFAULT_THRESHOLDS["avgWave"]),
    ("avgWave", 0.01),
    ("haarWave", DEFAULT_THRESHOLDS["haarWave"]),
    ("haarWave", 0.01),
)

#: The acceptance configuration: strict Euclidean produces the deepest
#: candidate lists of the sweep, i.e. the regime the batch kernel exists for.
HEADLINE = ("euclidean", 0.001)
MIN_HEADLINE_SPEEDUP = 3.0


def _timed_reduction(segmented, metric_name: str, threshold: float, *, batch: bool):
    counters = MatchCounters()
    reducer = TraceReducer(create_metric(metric_name, threshold), batch=batch)
    started = time.perf_counter()
    reduced = reducer.reduce(segmented, match_counters=counters)
    total = time.perf_counter() - started
    return serialize_reduced_trace(reduced), reduced, counters, total


def _compare(segmented, metric_name: str, threshold: float) -> dict:
    scan_bytes, reduced, scan, scan_total = _timed_reduction(
        segmented, metric_name, threshold, batch=False
    )
    batch_bytes, _, batch, batch_total = _timed_reduction(
        segmented, metric_name, threshold, batch=True
    )
    assert batch_bytes == scan_bytes, (
        f"batched matcher diverged from the legacy scan for {metric_name}({threshold})"
    )
    return {
        "method": metric_name,
        "threshold": threshold,
        "n_stored": reduced.n_stored,
        "match_calls": scan.calls,
        "rows_per_call": round(scan.rows_per_call, 3),
        "scan_match_seconds": round(scan.seconds, 6),
        "batch_match_seconds": round(batch.seconds, 6),
        "match_speedup": round(scan.seconds / batch.seconds, 4) if batch.seconds else None,
        "scan_total_seconds": round(scan_total, 6),
        "batch_total_seconds": round(batch_total, 6),
        "total_speedup": round(scan_total / batch_total, 4) if batch_total else None,
        "identical_output": True,
    }


def _run_comparison() -> dict:
    segmented = build_workload(WORKLOAD, get_scale(SCALE)).run_segmented()
    entries = [_compare(segmented, method, threshold) for method, threshold in CONFIGS]
    headline = next(
        e for e in entries if (e["method"], e["threshold"]) == HEADLINE
    )
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "n_ranks": segmented.nprocs,
        "n_segments": segmented.num_segments,
        "cpu_count": os.cpu_count() or 1,
        "headline": {
            "method": HEADLINE[0],
            "threshold": HEADLINE[1],
            "match_speedup": headline["match_speedup"],
            "min_required": MIN_HEADLINE_SPEEDUP,
        },
        "configs": entries,
    }


def test_match_kernel_speedup(benchmark):
    report = run_once(benchmark, _run_comparison)
    write_bench_json(BENCH_PATH, report)

    rows = [
        [
            entry["method"],
            f"{entry['threshold']:g}",
            entry["n_stored"],
            f"{entry['rows_per_call']:.2f}",
            f"{entry['scan_match_seconds']:.4f}",
            f"{entry['batch_match_seconds']:.4f}",
            f"{entry['match_speedup']:.2f}x",
        ]
        for entry in report["configs"]
    ]
    emit(
        "BENCH_match_kernel",
        format_table(
            ["method", "threshold", "stored", "rows/call", "scan s", "batch s", "speedup"],
            rows,
            title=(
                f"candidate-scan stage: legacy scan vs batched kernel — "
                f"{WORKLOAD}/{SCALE} ({report['cpu_count']} cpus)"
            ),
        ),
    )

    for entry in report["configs"]:
        assert entry["identical_output"]
        assert entry["scan_match_seconds"] > 0 and entry["batch_match_seconds"] > 0
    # The acceptance bar: the batched kernel must beat the legacy scan by at
    # least 3x on the deep-candidate-list headline configuration.
    assert report["headline"]["match_speedup"] >= MIN_HEADLINE_SPEEDUP, (
        f"headline match-kernel speedup {report['headline']['match_speedup']}x "
        f"is below the required {MIN_HEADLINE_SPEEDUP}x"
    )
