"""Serial vs parallel reduction wall time (the pipeline subsystem's bench).

Times the plain serial :class:`TraceReducer` against the streaming parallel
:class:`ReductionPipeline` on a multi-rank workload at the smoke and default
scales, verifies the outputs are byte-identical, and writes the measurements
to ``BENCH_pipeline.json`` at the repository root (plus the usual
``results/`` table).

Speedup is hardware-dependent — a process pool cannot beat the serial path on
a single-CPU runner — so the recorded ``cpu_count`` is part of the result and
the test only *asserts* equivalence, never a minimum speedup.
"""

from __future__ import annotations

import os
import time

from support import RESULTS_DIR, emit, run_once, write_bench_json

from repro.core.metrics import create_metric
from repro.core.reducer import TraceReducer
from repro.experiments.config import build_workload, get_scale
from repro.pipeline.engine import PipelineConfig, ReductionPipeline
from repro.trace.io import serialize_reduced_trace
from repro.util.tables import format_table

BENCH_PATH = RESULTS_DIR.parent / "BENCH_pipeline.json"

WORKLOAD = "sweep3d_32p"  # 32 ranks; the heaviest multi-rank workload
METHOD = "haarWave"  # the most compute-intensive similarity method


def _time_reduction(segmented, reducer) -> tuple[float, bytes]:
    started = time.perf_counter()
    reduced = reducer(segmented)
    elapsed = time.perf_counter() - started
    return elapsed, serialize_reduced_trace(reduced)


def _compare_at_scale(scale_name: str) -> dict:
    scale = get_scale(scale_name)
    segmented = build_workload(WORKLOAD, scale).run_segmented()
    workers = os.cpu_count() or 1
    config = PipelineConfig(executor="process", workers=workers)

    serial_seconds, serial_bytes = _time_reduction(
        segmented, lambda t: TraceReducer(create_metric(METHOD)).reduce(t)
    )
    parallel_seconds, parallel_bytes = _time_reduction(
        segmented,
        lambda t: ReductionPipeline(create_metric(METHOD), config).reduce(t).reduced,
    )
    assert parallel_bytes == serial_bytes, "pipeline output diverged from serial reducer"
    return {
        "scale": scale_name,
        "n_ranks": segmented.nprocs,
        "n_segments": segmented.num_segments,
        "executor": config.executor,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(serial_seconds / parallel_seconds, 4) if parallel_seconds else None,
        "identical_output": True,
    }


def _run_comparison() -> dict:
    return {
        "workload": WORKLOAD,
        "method": METHOD,
        "cpu_count": os.cpu_count() or 1,
        "scales": {name: _compare_at_scale(name) for name in ("smoke", "default")},
    }


def test_pipeline_speedup(benchmark):
    report = run_once(benchmark, _run_comparison)
    write_bench_json(BENCH_PATH, report)

    rows = [
        [
            entry["scale"],
            entry["n_ranks"],
            entry["n_segments"],
            f"{entry['serial_seconds']:.4f}",
            f"{entry['parallel_seconds']:.4f}",
            f"{entry['speedup']:.2f}x",
        ]
        for entry in report["scales"].values()
    ]
    emit(
        "BENCH_pipeline",
        format_table(
            ["scale", "ranks", "segments", "serial s", "parallel s", "speedup"],
            rows,
            title=(
                f"serial vs parallel reduction — {WORKLOAD}/{METHOD} "
                f"(process pool, {report['cpu_count']} cpus)"
            ),
        ),
    )
    for entry in report["scales"].values():
        assert entry["identical_output"]
        assert entry["serial_seconds"] > 0 and entry["parallel_seconds"] > 0
