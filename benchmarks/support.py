"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs the
corresponding experiment once (timed by pytest-benchmark), prints the rows or
series the paper reports, and also writes them to ``results/<experiment>.txt``
so the numbers recorded in ``EXPERIMENTS.md`` can be re-checked.

The workload scale is selected with the ``REPRO_SCALE`` environment variable
(``smoke`` / ``default`` / ``paper``); the ``default`` profile is used when it
is unset.  See ``repro.experiments.config`` for what each profile means.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.config import ExperimentScale, get_scale
from repro.obs import provenance

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> ExperimentScale:
    """Scale profile used by the benchmark harness (env ``REPRO_SCALE``)."""
    return get_scale(os.environ.get("REPRO_SCALE", "default"))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and moderately expensive, so a single
    round gives a representative wall-clock figure without re-simulating the
    same workloads over and over.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(experiment_id: str, text: str) -> None:
    """Print an experiment's table and persist it under ``results/``."""
    print(f"\n{'=' * 78}\n{experiment_id}\n{'=' * 78}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")


def write_bench_json(path: Path, report: dict) -> None:
    """Write a ``BENCH_*.json`` gate report with the shared provenance block.

    Every benchmark gate embeds the same machine/interpreter/commit stamp so
    recorded numbers can be compared across environments.  The provenance key
    is added to a copy — callers keep their report dict unchanged.
    """
    stamped = dict(report)
    stamped["provenance"] = provenance()
    path.write_text(json.dumps(stamped, indent=2) + "\n", encoding="utf-8")
