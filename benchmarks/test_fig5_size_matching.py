"""Figure 5: percentage file sizes and degree of matching, all methods at default thresholds."""

from support import bench_scale, emit, run_once

from repro.experiments.comparative import fig5_size_and_matching
from repro.experiments.config import ALL_WORKLOAD_NAMES
from repro.experiments.formatting import format_rows


def test_fig5_size_and_matching(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, fig5_size_and_matching, ALL_WORKLOAD_NAMES, scale=scale)
    emit(
        "fig5_size_matching",
        format_rows(
            rows,
            title=(
                "Figure 5 — % of full trace file size and degree of matching "
                f"(all methods at default thresholds, scale={scale.name})"
            ),
        ),
    )
    assert len(rows) == len(ALL_WORKLOAD_NAMES) * 9
    # iter_avg is the best case for file size on every workload (Section 5.2.1)
    by_workload: dict[str, dict[str, float]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["method"]] = row["pct_file_size"]
    for workload, sizes in by_workload.items():
        assert sizes["iter_avg"] <= min(sizes.values()) + 1e-9, workload
