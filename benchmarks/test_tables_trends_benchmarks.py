"""Tables 1–16: retention of performance trends vs threshold for every benchmark program."""

import pytest

from support import bench_scale, emit, run_once

from repro.experiments.formatting import format_trend_table
from repro.experiments.trend_tables import TREND_TABLE_INDEX, trend_table

BENCHMARK_TABLES = {num: name for num, name in TREND_TABLE_INDEX.items() if num <= 16}


@pytest.mark.parametrize("table_number", sorted(BENCHMARK_TABLES))
def test_trend_table(benchmark, table_number):
    workload = BENCHMARK_TABLES[table_number]
    scale = bench_scale()
    table = run_once(benchmark, trend_table, workload, scale=scale)
    emit(
        f"table{table_number:02d}_trends_{workload}",
        format_trend_table(
            table,
            title=(
                f"Table {table_number} — retention of performance trends for {workload} "
                f"(scale={scale.name})"
            ),
        ),
    )
    assert set(table) == {
        "relDiff",
        "absDiff",
        "manhattan",
        "euclidean",
        "chebyshev",
        "avgWave",
        "haarWave",
        "iter_k",
        "iter_avg",
    }
    assert all(len(cells) >= 1 for cells in table.values())
