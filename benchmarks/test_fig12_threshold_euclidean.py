"""Figure 12: file size and approximation distance vs threshold for euclidean (benchmark programs)."""

from support import bench_scale, emit, run_once

from repro.experiments.config import BENCHMARK_NAMES
from repro.experiments.formatting import format_rows
from repro.experiments.thresholds import threshold_study_rows


def test_fig12_threshold_euclidean(benchmark):
    scale = bench_scale()
    rows = run_once(
        benchmark, threshold_study_rows, "euclidean", BENCHMARK_NAMES, scale=scale
    )
    emit(
        "fig12_threshold_euclidean",
        format_rows(
            rows,
            title=(
                "Figure 12 — euclidean: % file size and approximation distance for varying "
                f"thresholds over the benchmark programs (scale={scale.name})"
            ),
        ),
    )
    assert len(rows) == len(BENCHMARK_NAMES) * 6
    assert all(row["pct_file_size"] > 0.0 for row in rows)
