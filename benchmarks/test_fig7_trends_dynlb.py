"""Figure 7: KOJAK performance trends for dyn_load_balance under every method."""

from support import bench_scale, emit, run_once

from repro.experiments.comparative import fig7_dyn_load_balance_trends


def test_fig7_dyn_load_balance_trends(benchmark):
    scale = bench_scale()
    charts = run_once(benchmark, fig7_dyn_load_balance_trends, scale=scale)
    text = "\n\n".join(charts[name] for name in charts)
    emit("fig7_trends_dyn_load_balance", text)
    assert "full trace" in charts
    assert len(charts) == 10  # full trace + nine methods
    # every chart shows the two rows the paper discusses
    for chart in charts.values():
        assert "MPI_Alltoall" in chart and "do_work" in chart
