"""Figure 18: Sweep3D file size and approximation distance vs threshold (Euclidean / Chebyshev / iter_k)."""

import pytest

from support import bench_scale, emit, run_once

from repro.experiments.config import SWEEP3D_NAMES
from repro.experiments.formatting import format_rows
from repro.experiments.thresholds import threshold_study_rows

METHODS = ('euclidean', 'chebyshev', 'iter_k')


@pytest.mark.parametrize("method", METHODS)
def test_fig18_sweep3d_threshold(benchmark, method):
    scale = bench_scale()
    rows = run_once(benchmark, threshold_study_rows, method, SWEEP3D_NAMES, scale=scale)
    emit(
        f"fig18_sweep3d_threshold_{method}",
        format_rows(
            rows,
            title=(
                f"Figure 18 — {method} on Sweep3D: % file size and approximation distance "
                f"for varying thresholds (scale={scale.name})"
            ),
        ),
    )
    assert len(rows) == len(SWEEP3D_NAMES) * 6
