"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in fully offline environments (the legacy
editable-install path needs no network access to set up a build environment).
"""

from setuptools import setup

setup()
