"""Wavefront-sweep program generator (Sweep3D analogue).

The generator reproduces the structural properties of Sweep3D that matter for
trace reduction (Section 5.2.1 of the paper):

* many distinct segment contexts (init, per-k-block inner loop, per-timestep
  flux reduction, final);
* point-to-point messages whose *parameters* (peer, tag, size) differ between
  ranks and octants, limiting how many segments are even possible matches;
* highly regular timing overall, so the possible matches that do exist are
  very similar.

Timing is pipelined: a rank cannot start a block before its upstream
neighbours have sent their boundary data, so interior ranks show the classic
wavefront fill/drain waits in ``pmpi_recv``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.benchmarks_ats.base import Workload, jittered
from repro.simulator.engine import SimulatorConfig
from repro.simulator.program import RankProgramBuilder, build_program
from repro.util.rng import rng_for
from repro.util.validation import check_positive

__all__ = ["Sweep3DParams", "sweep3d", "sweep3d_8p", "sweep3d_32p"]


@dataclass(frozen=True, slots=True)
class Sweep3DParams:
    """Problem and decomposition parameters.

    Attributes
    ----------
    nx, ny, nz:
        Global grid dimensions (cells).
    px, py:
        Processor decomposition in i and j (``px * py`` ranks).
    mk:
        k-plane block size of the pipelined sweep.
    timesteps:
        Number of outer iterations.
    cost_per_cell:
        Compute cost per cell per sweep block, in µs.
    bytes_per_face_cell:
        Message payload per boundary cell, in bytes.
    jitter:
        Relative jitter of compute durations.
    """

    nx: int = 50
    ny: int = 50
    nz: int = 50
    px: int = 2
    py: int = 4
    mk: int = 10
    timesteps: int = 6
    cost_per_cell: float = 0.02
    bytes_per_face_cell: int = 8
    jitter: float = 0.01

    def __post_init__(self) -> None:
        for field_name in ("nx", "ny", "nz", "px", "py", "mk", "timesteps"):
            check_positive(field_name, getattr(self, field_name))
        check_positive("cost_per_cell", self.cost_per_cell)
        check_positive("bytes_per_face_cell", self.bytes_per_face_cell)
        if self.mk > self.nz:
            raise ValueError(f"mk ({self.mk}) cannot exceed nz ({self.nz})")

    @property
    def nprocs(self) -> int:
        return self.px * self.py

    @property
    def it(self) -> int:
        """Local i extent (ceiling division, like Sweep3D's block distribution)."""
        return math.ceil(self.nx / self.px)

    @property
    def jt(self) -> int:
        """Local j extent."""
        return math.ceil(self.ny / self.py)

    @property
    def kb(self) -> int:
        """Number of k-plane blocks per octant sweep."""
        return math.ceil(self.nz / self.mk)


#: The eight octants as (i direction, j direction, k direction) sweep signs.
_OCTANTS: tuple[tuple[int, int, int], ...] = (
    (+1, +1, +1),
    (-1, +1, +1),
    (+1, -1, +1),
    (-1, -1, +1),
    (+1, +1, -1),
    (-1, +1, -1),
    (+1, -1, -1),
    (-1, -1, -1),
)


def _coords(rank: int, params: Sweep3DParams) -> tuple[int, int]:
    return rank % params.px, rank // params.px


def _rank_at(i: int, j: int, params: Sweep3DParams) -> int | None:
    if 0 <= i < params.px and 0 <= j < params.py:
        return j * params.px + i
    return None


def sweep3d(params: Sweep3DParams | None = None, *, name: str | None = None, seed: int = 0) -> Workload:
    """Build a Sweep3D-like workload from ``params``."""
    params = params or Sweep3DParams()
    nprocs = params.nprocs
    workload_name = name or f"sweep3d_{nprocs}p"

    def body(b: RankProgramBuilder, rank: int) -> None:
        rng = rng_for(seed, "sweep3d", workload_name, rank)
        i, j = _coords(rank, params)
        cells_per_block = params.it * params.jt * params.mk
        block_cost = cells_per_block * params.cost_per_cell
        i_face_bytes = params.jt * params.mk * params.bytes_per_face_cell
        j_face_bytes = params.it * params.mk * params.bytes_per_face_cell

        with b.segment("init"):
            b.mpi_init()
            b.compute("decomp", jittered(rng, 50.0, params.jitter))

        # Outer timestep loop.  It contains inner loops, so (per the paper's
        # marking scheme) the timestep itself is not one segment; instead the
        # per-timestep source computation, every k-block of the octant sweeps,
        # and the closing flux-error reduction are each their own segment.
        for _timestep in range(params.timesteps):
            with b.segment("sweep.1"):
                b.compute("source", jittered(rng, 0.1 * block_cost, params.jitter))
            for octant_index, (di, dj, _dk) in enumerate(_OCTANTS):
                upstream_i = _rank_at(i - di, j, params)
                upstream_j = _rank_at(i, j - dj, params)
                downstream_i = _rank_at(i + di, j, params)
                downstream_j = _rank_at(i, j + dj, params)
                for _block in range(params.kb):
                    b.begin_segment("sweep.1.1")
                    if upstream_i is not None:
                        b.recv(upstream_i, tag=octant_index, nbytes=i_face_bytes, name="pmpi_recv")
                    if upstream_j is not None:
                        b.recv(upstream_j, tag=8 + octant_index, nbytes=j_face_bytes, name="pmpi_recv")
                    b.compute("sweep_", jittered(rng, block_cost, params.jitter))
                    if downstream_i is not None:
                        b.send(downstream_i, tag=octant_index, nbytes=i_face_bytes, name="pmpi_send")
                    if downstream_j is not None:
                        b.send(downstream_j, tag=8 + octant_index, nbytes=j_face_bytes, name="pmpi_send")
                    b.end_segment("sweep.1.1")
            # Per-timestep global flux-error check.
            with b.segment("sweep.1.2"):
                b.compute("flux_err", jittered(rng, 0.2 * block_cost, params.jitter))
                b.allreduce(nbytes=8, name="MPI_Allreduce")

        with b.segment("final"):
            b.mpi_finalize()

    return Workload(
        name=workload_name,
        program=build_program(workload_name, nprocs, body),
        config=SimulatorConfig(seed=seed),
        description=(
            f"pipelined wavefront sweep on a {params.px}x{params.py} decomposition of a "
            f"{params.nx}x{params.ny}x{params.nz} grid, {params.timesteps} timesteps"
        ),
        expected_metric="Late Sender",
        expected_location="pmpi_recv",
    )


def sweep3d_8p(*, scale: float = 1.0, timesteps: int | None = None, seed: int = 0) -> Workload:
    """The paper's 8-process run (input.50, 2×4 decomposition), optionally scaled.

    ``scale`` shrinks the grid linearly (0.4 → a 20³ grid) so the workload can
    be generated quickly; the decomposition and loop structure are unchanged.
    """
    check_positive("scale", scale)
    nx = max(10, int(round(50 * scale)))
    nz = max(10, int(round(50 * scale)))
    params = Sweep3DParams(
        nx=nx,
        ny=nx,
        nz=nz,
        px=2,
        py=4,
        mk=max(2, nz // 5),
        timesteps=timesteps if timesteps is not None else 6,
    )
    return sweep3d(params, name="sweep3d_8p", seed=seed)


def sweep3d_32p(*, scale: float = 1.0, timesteps: int | None = None, seed: int = 0) -> Workload:
    """The paper's 32-process run (input.150, 4×8 decomposition), optionally scaled."""
    check_positive("scale", scale)
    nx = max(12, int(round(150 * scale)))
    nz = max(12, int(round(150 * scale)))
    params = Sweep3DParams(
        nx=nx,
        ny=nx,
        nz=nz,
        px=4,
        py=8,
        mk=max(2, nz // 8),
        timesteps=timesteps if timesteps is not None else 4,
    )
    return sweep3d(params, name="sweep3d_32p", seed=seed)
