"""Sweep3D application model.

The paper's full application is Sweep3D 2.2b, a structured-mesh discrete
ordinates neutron transport code whose dominant pattern is a pipelined
wavefront sweep over a 2-D processor decomposition.  This subpackage builds a
program with exactly that structure: for every timestep and every one of the
eight octants, each rank receives boundary data from its upstream neighbours,
computes over a block of k-planes, and sends boundary data downstream, with a
global flux-error reduction closing every timestep.
"""

from repro.sweep3d.model import Sweep3DParams, sweep3d, sweep3d_32p, sweep3d_8p

__all__ = ["Sweep3DParams", "sweep3d", "sweep3d_8p", "sweep3d_32p"]
