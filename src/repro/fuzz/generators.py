"""Seeded deterministic workload generators for the fuzzer.

Each *family* is a small DSL program that turns a :class:`CaseSpec` (family
name, seed, JSON-able params) into a raw :class:`~repro.trace.trace.Trace` —
per-rank :class:`~repro.trace.records.TraceRecord` streams, exactly what the
tracer would have written.  All randomness flows through
:func:`repro.util.rng.rng_for`, so the same spec always produces
byte-identical records (``serialize_records`` output is the determinism
contract tested in ``tests/fuzz/test_generators.py``).

Two kinds of families exist:

* **Workload families** model communication patterns the simulator does not
  cover: ``stencil`` (halo exchange), ``master_worker`` (rank-0 fan-out with
  ragged reply counts), ``bursty`` (rare latency spikes), ``phase_change``
  (event structure changes mid-run), ``ragged`` (wildly uneven segment
  counts per rank, including empty-event segments).
* **Adversarial families** are engineered against specific mechanisms:
  ``threshold_edge`` bisects float64 bit patterns to place probe segments
  within one ulp on either side of the metric's match boundary,
  ``lru_churn`` cycles more structural keys than a bounded store can hold,
  ``prune_stress`` builds a deep single-structure bucket with permuted
  (norm-identical) vectors and zero vectors to exercise the pruning index
  and its prefilter, and ``malformed`` emits record streams that violate
  segmentation rules to hit the malformed-rank fallback in
  :mod:`repro.trace.binio`.

Timestamps in *text-safe* families are multiples of 0.25 µs so the lossy
``"%.2f"`` text format round-trips them exactly; the ulp-precision families
declare ``text_safe=False`` and the harness skips the text oracle for them
(``.rpb`` stores float64 exactly, so every other oracle still applies).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.core.metrics import DEFAULT_THRESHOLDS, METRIC_NAMES, THRESHOLD_STUDY, create_metric
from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import Segment, iter_segments
from repro.trace.trace import RankTrace, Trace
from repro.util.rng import rng_for

__all__ = [
    "CaseConfig",
    "CaseSpec",
    "GeneratorFamily",
    "FAMILIES",
    "FAMILY_NAMES",
    "DISTANCE_METRICS",
    "generate_case",
    "trace_from_records",
    "boundary_deltas",
]

#: Time grid of the text-safe families: every timestamp is a multiple of this,
#: which the "%.2f" text format represents exactly.
TICK = 0.25

#: Metrics with a numeric distance threshold — the ones threshold_edge can
#: bisect against (iter_k counts occurrences and iter_avg is unconditional).
DISTANCE_METRICS = (
    "relDiff",
    "absDiff",
    "manhattan",
    "euclidean",
    "chebyshev",
    "avgWave",
    "haarWave",
)


@dataclass(frozen=True)
class CaseSpec:
    """What to generate: a family, its seed, and its parameters."""

    family: str
    seed: int
    params: Mapping = field(default_factory=dict)

    def rng(self, *labels) -> np.random.Generator:
        return rng_for(self.seed, "fuzz", self.family, *labels)


@dataclass(frozen=True)
class CaseConfig:
    """How to reduce the generated trace."""

    method: str
    threshold: Optional[float]
    store_capacity: Optional[int] = None

    def describe(self) -> str:
        parts = [self.method]
        if self.threshold is not None:
            parts.append(f"t={self.threshold:g}")
        if self.store_capacity is not None:
            parts.append(f"cap={self.store_capacity}")
        return "/".join(parts)

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "threshold": self.threshold,
            "store_capacity": self.store_capacity,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CaseConfig":
        return cls(
            method=data["method"],
            threshold=data["threshold"],
            store_capacity=data.get("store_capacity"),
        )


def random_config(rng: np.random.Generator) -> CaseConfig:
    """Draw a reduction config: any metric, a studied threshold, rare bounding."""
    method = METRIC_NAMES[int(rng.integers(0, len(METRIC_NAMES)))]
    if method == "iter_avg":
        threshold = None
    else:
        choices = list(THRESHOLD_STUDY.get(method, ())) or [DEFAULT_THRESHOLDS[method]]
        threshold = choices[int(rng.integers(0, len(choices)))]
        if method == "iter_k":
            threshold = int(threshold)
    capacity = int(rng.integers(4, 16)) if rng.random() < 0.25 else None
    return CaseConfig(method=method, threshold=threshold, store_capacity=capacity)


# --------------------------------------------------------------------------
# Record-building DSL


class _RankScript:
    """Accumulates one rank's record stream on the tick grid."""

    def __init__(self, rank: int):
        self.rank = rank
        self.records: list[TraceRecord] = []
        self._clock = 0  # in ticks

    def advance(self, ticks: int) -> None:
        self._clock += max(0, int(ticks))

    @property
    def now(self) -> float:
        return self._clock * TICK

    def _emit(self, kind: RecordKind, name: str, mpi: Optional[MpiCallInfo] = None) -> None:
        self.records.append(
            TraceRecord(kind=kind, rank=self.rank, timestamp=self.now, name=name, mpi=mpi)
        )

    def begin_segment(self, context: str, gap: int = 0) -> None:
        self.advance(gap)
        self._emit(RecordKind.SEGMENT_BEGIN, context)

    def end_segment(self, context: str, gap: int = 0) -> None:
        self.advance(gap)
        self._emit(RecordKind.SEGMENT_END, context)

    def call(self, name: str, duration: int, mpi: Optional[MpiCallInfo] = None, gap: int = 1) -> None:
        """One ENTER/EXIT pair: ``gap`` ticks of idle, then ``duration`` ticks inside."""
        self.advance(gap)
        self._emit(RecordKind.ENTER, name, mpi)
        self.advance(max(1, int(duration)))
        self._emit(RecordKind.EXIT, name)

    def raw(self, kind: RecordKind, name: str, gap: int = 1) -> None:
        """Emit a bare record — the malformed family's rule-breaking escape hatch."""
        self.advance(gap)
        self._emit(kind, name)


def trace_from_records(name: str, records_by_rank: Sequence[Sequence[TraceRecord]]) -> Trace:
    """Assemble a raw :class:`Trace` from per-rank record lists (rank = index).

    Records are re-stamped with their positional rank so shrunk cases that
    dropped ranks stay contiguous — the text writer requires ranks 0..n-1.
    """
    ranks = []
    for rank, records in enumerate(records_by_rank):
        fixed = [
            rec if rec.rank == rank else TraceRecord(rec.kind, rank, rec.timestamp, rec.name, rec.mpi)
            for rec in records
        ]
        ranks.append(RankTrace(rank=rank, records=fixed))
    return Trace(name=name, ranks=ranks)


# --------------------------------------------------------------------------
# Workload families


def _gen_stencil(spec: CaseSpec) -> Trace:
    """1-D stencil halo exchange: compute, then send/recv with both neighbours."""
    p = spec.params
    nprocs, iters = int(p["nprocs"]), int(p["iterations"])
    nbytes = int(p.get("nbytes", 4096))
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    for it in range(iters):
        for s in scripts:
            r = s.rank
            left, right = (r - 1) % nprocs, (r + 1) % nprocs
            s.begin_segment("main.1", gap=1)
            # Jitter only sometimes, so some iterations match exactly.
            jitter = int(rng.integers(0, 6)) if rng.random() < 0.5 else 0
            s.call("compute", 8 + jitter)
            s.call("MPI_Send", 2, MpiCallInfo(op="send", peer=left, tag=7, nbytes=nbytes))
            s.call("MPI_Recv", 2 + int(rng.integers(0, 3)), MpiCallInfo(op="recv", peer=right, tag=7, nbytes=nbytes))
            s.call("MPI_Allreduce", 3, MpiCallInfo(op="allreduce", nbytes=8))
            s.end_segment("main.1", gap=1)
    return trace_from_records("fuzz-stencil", [s.records for s in scripts])


def _params_stencil(rng: np.random.Generator) -> dict:
    return {
        "nprocs": int(rng.integers(2, 5)),
        "iterations": int(rng.integers(4, 12)),
        "nbytes": int(rng.integers(1, 64)) * 256,
    }


def _gen_master_worker(spec: CaseSpec) -> Trace:
    """Rank 0 fans work out; reply counts vary round to round (ragged events)."""
    p = spec.params
    nprocs, rounds = int(p["nprocs"]), int(p["rounds"])
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    master, workers = scripts[0], scripts[1:]
    for rd in range(rounds):
        active = [w for w in workers if rng.random() < 0.8] or workers[:1]
        master.begin_segment("main.1", gap=1)
        for w in active:
            master.call("MPI_Send", 1, MpiCallInfo(op="send", peer=w.rank, tag=rd % 3, nbytes=512))
        for w in active:
            master.call("MPI_Recv", 1 + int(rng.integers(0, 2)), MpiCallInfo(op="recv", peer=w.rank, tag=rd % 3, nbytes=128))
        master.end_segment("main.1", gap=1)
        for w in workers:
            w.begin_segment("main.1", gap=1)
            if w in active:
                w.call("MPI_Recv", 1, MpiCallInfo(op="recv", peer=0, tag=rd % 3, nbytes=512))
                w.call("work", 4 + int(rng.integers(0, 9)))
                w.call("MPI_Send", 1, MpiCallInfo(op="send", peer=0, tag=rd % 3, nbytes=128))
            else:
                w.call("idle", 2)
            w.end_segment("main.1", gap=1)
    return trace_from_records("fuzz-master-worker", [s.records for s in scripts])


def _params_master_worker(rng: np.random.Generator) -> dict:
    return {"nprocs": int(rng.integers(3, 6)), "rounds": int(rng.integers(4, 10))}


def _gen_bursty(spec: CaseSpec) -> Trace:
    """Near-constant iterations with rare large latency bursts on one rank."""
    p = spec.params
    nprocs, iters = int(p["nprocs"]), int(p["iterations"])
    burst_every, burst_scale = int(p["burst_every"]), int(p["burst_scale"])
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    slow_rank = int(rng.integers(0, nprocs))
    for it in range(iters):
        for s in scripts:
            burst = burst_scale if (s.rank == slow_rank and it % burst_every == burst_every - 1) else 1
            s.begin_segment("main.1", gap=1)
            s.call("compute", 6 * burst)
            s.call("MPI_Barrier", 2, MpiCallInfo(op="barrier"))
            s.end_segment("main.1", gap=1)
    return trace_from_records("fuzz-bursty", [s.records for s in scripts])


def _params_bursty(rng: np.random.Generator) -> dict:
    return {
        "nprocs": int(rng.integers(2, 5)),
        "iterations": int(rng.integers(6, 16)),
        "burst_every": int(rng.integers(3, 6)),
        "burst_scale": int(rng.integers(8, 40)),
    }


def _gen_phase_change(spec: CaseSpec) -> Trace:
    """Event structure changes between phases: new calls, new segment context."""
    p = spec.params
    nprocs, per_phase = int(p["nprocs"]), int(p["iterations_per_phase"])
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    phases = (
        ("main.1", ["compute", "MPI_Allreduce"]),
        ("main.1", ["compute", "exchange", "MPI_Bcast"]),
        ("main.2", ["solve", "MPI_Reduce"]),
    )
    mpi_for = {
        "MPI_Allreduce": MpiCallInfo(op="allreduce", nbytes=64),
        "MPI_Bcast": MpiCallInfo(op="bcast", root=0, nbytes=1024),
        "MPI_Reduce": MpiCallInfo(op="reduce", root=0, nbytes=64),
    }
    for context, names in phases:
        for it in range(per_phase):
            for s in scripts:
                s.begin_segment(context, gap=1)
                for name in names:
                    jitter = int(rng.integers(0, 3)) if rng.random() < 0.3 else 0
                    s.call(name, 4 + jitter, mpi_for.get(name))
                s.end_segment(context, gap=1)
    return trace_from_records("fuzz-phase-change", [s.records for s in scripts])


def _params_phase_change(rng: np.random.Generator) -> dict:
    return {"nprocs": int(rng.integers(2, 5)), "iterations_per_phase": int(rng.integers(3, 8))}


def _gen_ragged(spec: CaseSpec) -> Trace:
    """Wildly uneven segment counts per rank, incl. empty-event segments."""
    p = spec.params
    nprocs, max_segments = int(p["nprocs"]), int(p["max_segments"])
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    for s in scripts:
        n_segments = 1 + (s.rank * 7 + int(rng.integers(0, 3))) % max_segments
        for i in range(n_segments):
            context = "main.1" if i % 3 else "main.2"
            s.begin_segment(context, gap=1)
            n_events = int(rng.integers(0, 4))  # zero-event segments included
            for _ in range(n_events):
                s.call("step", 2 + int(rng.integers(0, 4)))
            s.end_segment(context, gap=1)
    return trace_from_records("fuzz-ragged", [s.records for s in scripts])


def _params_ragged(rng: np.random.Generator) -> dict:
    return {"nprocs": int(rng.integers(2, 7)), "max_segments": int(rng.integers(4, 12))}


# --------------------------------------------------------------------------
# Adversarial families


def _float_bits(x: float) -> int:
    return struct.unpack("<q", struct.pack("<d", x))[0]


def _bits_float(b: int) -> float:
    return struct.unpack("<d", struct.pack("<q", b))[0]


def boundary_deltas(pred: Callable[[float], bool], lo: float, hi: float) -> tuple[float, float]:
    """Bisect float64 *bit patterns* to the decision boundary of ``pred``.

    ``pred(lo)`` must be True and ``pred(hi)`` False, with ``0 <= lo < hi``.
    Returns adjacent floats ``(last_true, first_false)`` — one ulp apart.
    For non-negative floats the IEEE-754 bit pattern is monotone in the
    value, so binary search over the integer representation converges to
    adjacent representable values in at most 63 steps.
    """
    if not pred(lo):
        raise ValueError("pred(lo) must hold")
    if pred(hi):
        raise ValueError("pred(hi) must not hold")
    lo_b, hi_b = _float_bits(lo), _float_bits(hi)
    while hi_b - lo_b > 1:
        mid_b = (lo_b + hi_b) // 2
        if pred(_bits_float(mid_b)):
            lo_b = mid_b
        else:
            hi_b = mid_b
    return _bits_float(lo_b), _bits_float(hi_b)


class UnreachableBoundary(ValueError):
    """No end-perturbation of this segment shape can miss at this threshold."""


def edge_boundary_ends(
    base: Segment, method: str, threshold: float
) -> tuple[float, float]:
    """Last-matching and first-missing values of the final segment-end timestamp.

    The probe segment is ``base`` with only its SEGMENT_END timestamp raised;
    the predicate replays *exactly* what the reducer does with a candidate —
    ``relative_to_start()`` then the metric's scalar ``similar`` against the
    stored representative — so the returned adjacent floats straddle the real
    match boundary of the scan-path ground truth, one ulp apart.
    """
    metric = create_metric(method, threshold)
    stored = base.relative_to_start()
    stored_ts = np.asarray(stored.timestamps(), dtype=float)

    def matches(end_value: float) -> bool:
        probe = Segment(
            context=base.context,
            rank=base.rank,
            start=base.start,
            end=end_value,
            events=list(base.events),
            index=base.index,
        ).relative_to_start()
        probe_ts = np.asarray(probe.timestamps(), dtype=float)
        return bool(metric.similar(probe_ts, stored_ts, probe, stored))

    end0 = float(base.end)
    if not matches(end0):  # pragma: no cover - identical vectors always match
        raise RuntimeError(f"{method} t={threshold} rejects an identical segment")
    hi = end0 + max(1.0, end0 - base.start)
    # Find an upper probe that misses.  For scale-relative metrics the limit
    # grows with the perturbed coordinate, so the distance/limit ratio can
    # asymptote below 1 — some (threshold, shape) pairs have no boundary.
    while matches(hi):
        hi = base.start + (hi - base.start) * 4.0
        if hi - base.start > 1e9 * max(1.0, end0 - base.start):
            raise UnreachableBoundary(
                f"{method} t={threshold} matches every end-perturbation of this shape"
            )
    return boundary_deltas(matches, end0, hi)


def _edge_group_records(
    rank: int, start_tick: int, context: str, durations: Sequence[int], method: str, threshold: float
) -> list[TraceRecord]:
    """Records for one boundary probe group: base, copy, edge-match, edge-miss.

    All five segments occupy the *same* absolute time window (timestamps are
    not required to be monotone across segments), because shifting a probe in
    time would re-round the ulp-precision end value under ``(t + off)``
    arithmetic and move it off the boundary.
    """
    script = _RankScript(rank)
    script.advance(start_tick)
    script.begin_segment(context)
    for d in durations:
        script.call("compute", int(d))
    script.end_segment(context, gap=1)
    base_records = list(script.records)
    base = next(iter_segments(base_records))
    end_match, end_miss = edge_boundary_ends(base, method, threshold)

    def probe_records(end_value: float) -> list[TraceRecord]:
        last = base_records[-1]
        return base_records[:-1] + [TraceRecord(last.kind, rank, end_value, last.name)]

    out: list[TraceRecord] = []
    for end_value in (base.end, base.end, end_match, end_miss):
        out.extend(probe_records(end_value))
    # One more exact copy after the miss is stored: first-match must still
    # pick the original representative over the newer boundary-miss one.
    out.extend(probe_records(base.end))
    return out


def _gen_threshold_edge(spec: CaseSpec) -> Trace:
    p = spec.params
    method, threshold = str(p["method"]), float(p["threshold"])
    rng = spec.rng("shape")
    records: list[TraceRecord] = []
    for i in range(int(p["pairs"])):
        # The boundary's existence depends on the segment shape for the
        # scale-relative metrics; redraw (deterministically) until reachable.
        for _ in range(20):
            durations = [int(d) for d in rng.integers(2, 30, size=int(rng.integers(2, 5)))]
            try:
                group = _edge_group_records(0, 1000 * i, f"edge.{i}", durations, method, threshold)
            except UnreachableBoundary:
                continue
            records.extend(group)
            break
        else:  # pragma: no cover - t<1 filters make a boundary reachable
            raise RuntimeError(f"no reachable {method} t={threshold} boundary in 20 draws")
    return trace_from_records("fuzz-threshold-edge", [records])


def _params_threshold_edge(rng: np.random.Generator) -> dict:
    method = DISTANCE_METRICS[int(rng.integers(0, len(DISTANCE_METRICS)))]
    choices = list(THRESHOLD_STUDY.get(method, ())) or [DEFAULT_THRESHOLDS[method]]
    if method != "absDiff":
        # Scale-relative limits grow with the perturbed coordinate: at t >= 1
        # the distance can never exceed the limit, so no boundary exists.
        choices = [v for v in choices if v < 1.0] or [DEFAULT_THRESHOLDS[method]]
    threshold = float(choices[int(rng.integers(0, len(choices)))])
    return {
        "method": method,
        "threshold": threshold,
        "pairs": int(rng.integers(2, 5)),
        # The case must be reduced with the metric the probes were built for.
        "config": {"method": method, "threshold": threshold, "store_capacity": None},
    }


def _gen_lru_churn(spec: CaseSpec) -> Trace:
    """More structural keys than the bounded store holds: constant eviction.

    Keys repeat in waves, so with an unbounded store later repeats match the
    original representative, while a bounded store has already evicted it —
    eviction order differences between pathways become byte-level divergences.
    """
    p = spec.params
    nprocs, keys, repeats = int(p["nprocs"]), int(p["keys"]), int(p["repeats"])
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    for rep in range(repeats):
        for k in range(keys):
            for s in scripts:
                s.begin_segment("main.1", gap=1)
                s.call(f"f{k}", 3 + int(rng.integers(0, 2)))
                s.call("MPI_Barrier", 1, MpiCallInfo(op="barrier"))
                s.end_segment("main.1", gap=1)
    return trace_from_records("fuzz-lru-churn", [s.records for s in scripts])


def _params_lru_churn(rng: np.random.Generator) -> dict:
    keys = int(rng.integers(6, 12))
    return {
        "nprocs": int(rng.integers(1, 4)),
        "keys": keys,
        "repeats": int(rng.integers(2, 5)),
        # Capacity below the key count so every wave evicts.
        "config": {
            "method": "relDiff",
            "threshold": 0.8,
            "store_capacity": max(2, keys // 2),
        },
    }


def _gen_prune_stress(spec: CaseSpec) -> Trace:
    """A deep single-structure bucket built to stress the pruning index.

    * ``depth`` distinct-timing segments of one structure grow the candidate
      bucket past the blocked-probe and (for depth > 512) prefilter cutoffs.
    * Permuted-duration probes have *identical* norms to a stored row — the
      norm prefilter must keep them, the exact kernel must reject them.
    * Zero-vector segments (no events, zero duration) and tiny-duration
      segments push the scale-free corners of the prune bounds.
    """
    p = spec.params
    depth = int(p["depth"])
    s = _RankScript(0)
    for i in range(depth):
        s.begin_segment("deep.1", gap=1)
        a, b = 2 + 3 * i, 5 + 2 * (i % 7)
        s.call("stepA", a)
        s.call("stepB", b)
        s.end_segment("deep.1", gap=1)
        if i % 5 == 0:
            # Same two durations in swapped order: equal p-norms, different vector.
            s.begin_segment("deep.1", gap=1)
            s.call("stepA", b)
            s.call("stepB", a)
            s.end_segment("deep.1", gap=1)
    for _ in range(int(p["zeros"])):
        # Zero-duration, zero-event segments: all-zero feature vectors.
        s.begin_segment("zero.1", gap=1)
        s.end_segment("zero.1", gap=0)
    for _ in range(int(p["tiny"])):
        s.begin_segment("tiny.1", gap=1)
        s.call("blip", 1, gap=0)
        s.end_segment("tiny.1", gap=0)
    return trace_from_records("fuzz-prune-stress", [s.records])


def _params_prune_stress(rng: np.random.Generator) -> dict:
    # Deep cases engage the >512-row prefilter; shallow ones the blocked probe.
    depth = 560 if rng.random() < 0.2 else int(rng.integers(70, 120))
    return {
        "depth": depth,
        "zeros": int(rng.integers(3, 8)),
        "tiny": int(rng.integers(2, 6)),
        # Small threshold so distinct timings actually stay distinct.
        "config": {"method": "euclidean", "threshold": 0.05, "store_capacity": None},
    }


#: Ways a rank's record stream can violate the segmentation rules.
MALFORMED_KINDS = (
    "exit_without_enter",
    "nested_segment",
    "event_outside_segment",
    "name_mismatch",
    "unclosed_segment",
    "end_without_begin",
)


def _gen_malformed(spec: CaseSpec) -> Trace:
    """Well-formed ranks plus one malformed rank (the binio fallback target)."""
    p = spec.params
    nprocs, kind = int(p["nprocs"]), str(p["kind"])
    rng = spec.rng("timing")
    scripts = [_RankScript(r) for r in range(nprocs)]
    for s in scripts[:-1]:
        for _ in range(3):
            s.begin_segment("main.1", gap=1)
            s.call("compute", 3 + int(rng.integers(0, 3)))
            s.end_segment("main.1", gap=1)
    bad = scripts[-1]
    bad.begin_segment("main.1", gap=1)
    bad.call("compute", 3)
    if kind == "exit_without_enter":
        bad.raw(RecordKind.EXIT, "ghost")
        bad.end_segment("main.1", gap=1)
    elif kind == "nested_segment":
        bad.begin_segment("main.1.1", gap=1)
        bad.end_segment("main.1.1", gap=1)
        bad.end_segment("main.1", gap=1)
    elif kind == "event_outside_segment":
        bad.end_segment("main.1", gap=1)
        bad.call("stray", 2)
    elif kind == "name_mismatch":
        bad.raw(RecordKind.ENTER, "alpha")
        bad.raw(RecordKind.EXIT, "beta")
        bad.end_segment("main.1", gap=1)
    elif kind == "unclosed_segment":
        bad.call("tail", 2)
        # no SEGMENT_END
    elif kind == "end_without_begin":
        bad.end_segment("main.1", gap=1)
        bad.end_segment("main.1", gap=1)
    else:
        raise ValueError(f"unknown malformed kind {kind!r}")
    return trace_from_records("fuzz-malformed", [s.records for s in scripts])


def _params_malformed(rng: np.random.Generator) -> dict:
    return {
        "nprocs": int(rng.integers(2, 4)),
        "kind": MALFORMED_KINDS[int(rng.integers(0, len(MALFORMED_KINDS)))],
    }


# --------------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class GeneratorFamily:
    """One named generator: builder, param sampler, and oracle applicability."""

    name: str
    build: Callable[[CaseSpec], Trace]
    default_params: Callable[[np.random.Generator], dict]
    #: All timestamps survive the "%.2f" text format exactly.
    text_safe: bool = True
    #: The stream segments cleanly (malformed sets this False, which flips
    #: the harness from the equivalence oracles to the fallback oracle).
    segmentable: bool = True


FAMILIES: dict[str, GeneratorFamily] = {
    f.name: f
    for f in (
        GeneratorFamily("stencil", _gen_stencil, _params_stencil),
        GeneratorFamily("master_worker", _gen_master_worker, _params_master_worker),
        GeneratorFamily("bursty", _gen_bursty, _params_bursty),
        GeneratorFamily("phase_change", _gen_phase_change, _params_phase_change),
        GeneratorFamily("ragged", _gen_ragged, _params_ragged),
        GeneratorFamily("threshold_edge", _gen_threshold_edge, _params_threshold_edge, text_safe=False),
        GeneratorFamily("lru_churn", _gen_lru_churn, _params_lru_churn),
        GeneratorFamily("prune_stress", _gen_prune_stress, _params_prune_stress),
        GeneratorFamily("malformed", _gen_malformed, _params_malformed, segmentable=False),
    )
}

FAMILY_NAMES: tuple[str, ...] = tuple(FAMILIES)


def generate_case(spec: CaseSpec) -> Trace:
    """Build the trace for one case spec (deterministic in the spec)."""
    try:
        family = FAMILIES[spec.family]
    except KeyError:
        raise ValueError(f"unknown fuzz family {spec.family!r}; expected one of {FAMILY_NAMES}") from None
    return family.build(spec)
