"""Replayable case database: mined failures as JSON regression cases.

A :class:`CorpusCase` captures everything needed to replay a fuzz failure
without the generator that produced it: the raw per-rank records (the
generator's params and seed are kept for provenance, but replay runs from
the records, so corpus cases survive generator changes), the reduction
config, the oracles that failed, and the divergence report.

Cases live as one JSON file each under ``tests/regression_corpus/`` and are
replayed by an ordinary pytest parametrization there — every mined bug
becomes a permanent regression test.  Timestamps round-trip exactly:
``json`` serializes floats via ``repr``, which is lossless for float64, so
even ulp-precision boundary cases survive the corpus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence

from repro.fuzz.generators import CaseConfig, trace_from_records
from repro.trace.events import MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord

__all__ = ["CorpusCase", "CaseDB", "encode_records", "decode_records", "DEFAULT_CORPUS_DIR"]

#: Where the CLI persists failures by default (relative to the repo root).
DEFAULT_CORPUS_DIR = Path("tests/regression_corpus")

_MPI_FIELDS = ("op", "root", "peer", "source", "tag", "nbytes", "comm")


def _encode_mpi(mpi: Optional[MpiCallInfo]) -> Optional[dict]:
    if mpi is None:
        return None
    return {name: getattr(mpi, name) for name in _MPI_FIELDS}


def _decode_mpi(data: Optional[Mapping]) -> Optional[MpiCallInfo]:
    if data is None:
        return None
    return MpiCallInfo(**{name: data[name] for name in _MPI_FIELDS if name in data})


def encode_records(records_by_rank: Sequence[Sequence[TraceRecord]]) -> dict:
    """Per-rank record lists as a JSON-able mapping (rank → record rows)."""
    return {
        str(rank): [
            [rec.kind.name, rec.timestamp, rec.name, _encode_mpi(rec.mpi)] for rec in records
        ]
        for rank, records in enumerate(records_by_rank)
    }


def decode_records(data: Mapping) -> list[list[TraceRecord]]:
    """Inverse of :func:`encode_records` (ranks come back in index order)."""
    out: list[list[TraceRecord]] = []
    for rank in sorted(data, key=int):
        records = [
            TraceRecord(
                kind=RecordKind[row[0]],
                rank=int(rank),
                timestamp=row[1],
                name=row[2],
                mpi=_decode_mpi(row[3]),
            )
            for row in data[rank]
        ]
        out.append(records)
    return out


@dataclass(slots=True)
class CorpusCase:
    """One persisted fuzz case: records + config + the oracles to replay."""

    id: str
    family: str
    seed: int
    params: dict
    config: CaseConfig
    oracles: list[str]
    records: list[list[TraceRecord]]
    divergence: str = ""
    shrunk: bool = False
    note: str = ""

    @property
    def n_records(self) -> int:
        return sum(len(r) for r in self.records)

    def trace(self):
        """Rebuild the raw trace this case replays."""
        return trace_from_records(f"corpus-{self.id}", self.records)

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "family": self.family,
            "seed": self.seed,
            "params": self.params,
            "config": self.config.as_dict(),
            "oracles": list(self.oracles),
            "records": encode_records(self.records),
            "divergence": self.divergence,
            "shrunk": self.shrunk,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "CorpusCase":
        return cls(
            id=data["id"],
            family=data["family"],
            seed=data["seed"],
            params=dict(data.get("params", {})),
            config=CaseConfig.from_dict(data["config"]),
            oracles=list(data["oracles"]),
            records=decode_records(data["records"]),
            divergence=data.get("divergence", ""),
            shrunk=bool(data.get("shrunk", False)),
            note=data.get("note", ""),
        )


class CaseDB:
    """A directory of corpus cases, one ``<id>.json`` per case."""

    def __init__(self, directory: str | Path = DEFAULT_CORPUS_DIR):
        self.directory = Path(directory)

    def path_for(self, case_id: str) -> Path:
        return self.directory / f"{case_id}.json"

    def save(self, case: CorpusCase) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(case.id)
        path.write_text(json.dumps(case.to_json(), indent=1, sort_keys=True) + "\n")
        return path

    def load(self, ref: str | Path) -> CorpusCase:
        """Load by case id or by path."""
        path = Path(ref)
        if not path.suffix == ".json" or not path.exists():
            path = self.path_for(str(ref))
        if not path.exists():
            raise FileNotFoundError(f"no corpus case {ref!r} (looked at {path})")
        return CorpusCase.from_json(json.loads(path.read_text()))

    def case_paths(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def __iter__(self) -> Iterator[CorpusCase]:
        for path in self.case_paths():
            yield CorpusCase.from_json(json.loads(path.read_text()))

    def __len__(self) -> int:
        return len(self.case_paths())
