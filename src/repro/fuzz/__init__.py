"""Deterministic scenario fuzzer and adversarial workload families.

The simulator (:mod:`repro.simulator`, :mod:`repro.benchmarks_ats`) covers a
handful of regular communication patterns; this package generates the traces
nobody would hand-write.  Three layers:

* **Generators** (:mod:`repro.fuzz.generators`): a seeded, deterministic
  workload DSL producing per-rank record streams — randomized communication
  patterns (stencil halos, master/worker fan-out, bursty imbalance, phase
  changes mid-run, ragged rank counts) plus adversarial families engineered
  to sit exactly at metric thresholds (probes within one ulp of the match
  boundary), to churn bounded-store LRU eviction, to stress the pruning
  index (near-identical norms, permuted vectors, zero vectors), and to hit
  the malformed-rank fallback in :mod:`repro.trace.binio`.
* **Executor + oracles** (:mod:`repro.fuzz.executor`,
  :mod:`repro.fuzz.oracles`): every generated case runs through each
  configured pathway pair — serial scan vs dense vs pruned matching, the
  columnar frame path, inline vs sharded pipeline, sweep grid vs per-config
  loop, batch vs incremental session with a mid-stream checkpoint/restore,
  text and ``.rpb`` round trips — and the outputs are cross-checked
  byte-for-byte, with the metric's own similarity bound replayed on the
  reconstructed trace.
* **Case database + minimizer** (:mod:`repro.fuzz.casedb`,
  :mod:`repro.fuzz.shrink`): failures persist as replayable JSON cases,
  greedily shrunk (drop ranks → drop segments → drop events → simplify
  timestamps) to a minimal reproducer; the corpus under
  ``tests/regression_corpus/`` replays as ordinary pytest parametrizations,
  so every mined bug becomes a permanent regression test.

Everything is keyed by an integer seed through :func:`repro.util.rng.rng_for`,
so two runs of ``repro-trace fuzz --seed S --cases N`` produce identical case
ids and identical pass/fail results.
"""

from repro.fuzz.casedb import CaseDB, CorpusCase, decode_records, encode_records
from repro.fuzz.executor import (
    CaseResult,
    FuzzCase,
    FuzzReport,
    plan_cases,
    run_case,
    run_fuzz,
)
from repro.fuzz.generators import (
    FAMILIES,
    FAMILY_NAMES,
    CaseConfig,
    CaseSpec,
    generate_case,
    trace_from_records,
)
from repro.fuzz.oracles import ORACLE_NAMES, OracleOutcome, applicable_oracles, run_oracles
from repro.fuzz.shrink import ShrinkResult, make_failure_check, shrink_records

__all__ = [
    "CaseConfig",
    "CaseSpec",
    "CaseDB",
    "CorpusCase",
    "CaseResult",
    "FuzzCase",
    "FuzzReport",
    "FAMILIES",
    "FAMILY_NAMES",
    "ORACLE_NAMES",
    "OracleOutcome",
    "applicable_oracles",
    "decode_records",
    "encode_records",
    "generate_case",
    "ShrinkResult",
    "make_failure_check",
    "plan_cases",
    "run_case",
    "run_fuzz",
    "run_oracles",
    "shrink_records",
    "trace_from_records",
]
