"""Cross-pathway oracles: every generated case through every pathway pair.

The repository keeps many implementations of the same reduction semantics —
the scalar scan, the dense batch kernel, the pruned kernel, the columnar
frame path, the pipeline executors, the sweep engine, the incremental
session — all documented as byte-identical.  Each oracle here runs one
alternative pathway over a generated case and compares its
:func:`~repro.trace.io.serialize_reduced_trace` bytes against the ground
truth: a serial scalar-scan :class:`~repro.core.reducer.TraceReducer`.

Every oracle gets a fresh metric instance (``iter_avg`` mutates stored
representatives, so sharing one would couple the pathways) and a fresh
store per rank built by :func:`~repro.pipeline.store.create_store`, so a
bounded-capacity config exercises LRU eviction identically everywhere.

An oracle returns ``None`` on success or a human-readable divergence string
on failure; it raises :class:`OracleSkip` when structurally inapplicable
(e.g. the text round trip on a family whose ulp-precision timestamps the
two-decimal text format cannot carry).  Unexpected exceptions are caught by
the runner and reported as failures — a pathway crashing on a valid trace
is a finding, not a harness error.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.metrics import create_metric
from repro.core.reducer import TraceReducer
from repro.core.reconstruct import reconstruct
from repro.core.reduced import ReducedTrace
from repro.evaluation.approximation import timestamp_errors
from repro.fuzz.generators import DISTANCE_METRICS, CaseConfig
from repro.pipeline.engine import PipelineConfig, ReductionPipeline
from repro.pipeline.store import create_store
from repro.service.cache import source_digest
from repro.service.checkpoint import restore_state, session_state
from repro.service.session import ReductionSession, SessionConfig
from repro.sweep.engine import sweep_source
from repro.sweep.plan import SweepConfig, SweepPlan
from repro.trace import binio
from repro.trace.formats import convert_trace
from repro.trace.io import read_trace, serialize_reduced_trace, write_trace
from repro.trace.segments import SegmentationError, iter_segments
from repro.trace.trace import Trace
from repro.util.rng import rng_for

__all__ = [
    "ORACLES",
    "ORACLE_NAMES",
    "OracleOutcome",
    "OracleSkip",
    "CaseContext",
    "applicable_oracles",
    "run_oracles",
]


class OracleSkip(Exception):
    """The oracle does not apply to this case (not a failure)."""


@dataclass(slots=True)
class OracleOutcome:
    """Result of one oracle on one case."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _first_divergence(expected: bytes, got: bytes, label: str) -> Optional[str]:
    if expected == got:
        return None
    n = min(len(expected), len(got))
    offset = next((i for i in range(n) if expected[i] != got[i]), n)
    return (
        f"{label}: reduced bytes diverge at offset {offset} "
        f"(ground truth {len(expected)} bytes, pathway {len(got)} bytes)"
    )


class CaseContext:
    """Shared lazily-computed state of one case under test.

    The ground-truth reduction, the segmented trace, and the on-disk ``.rpb``
    and text copies are computed once and reused by every oracle; fresh
    metric/reducer/store instances are built per pathway.
    """

    def __init__(self, trace: Trace, config: CaseConfig, workdir: Path, seed: int = 0):
        self.trace = trace
        self.config = config
        self.workdir = Path(workdir)
        self.seed = seed
        self._segmented = None
        self._baseline = None
        self._baseline_bytes: Optional[bytes] = None
        self._rpb_path: Optional[Path] = None
        self._text_path: Optional[Path] = None

    # -- building blocks ---------------------------------------------------

    def metric(self, method: Optional[str] = None, threshold=Ellipsis):
        if method is None:
            method = self.config.method
        if threshold is Ellipsis:
            threshold = self.config.threshold
        return create_metric(method, threshold)

    def store_factory(self) -> Callable:
        capacity = self.config.store_capacity
        return lambda: create_store(capacity)

    @property
    def segmented(self):
        if self._segmented is None:
            self._segmented = self.trace.segmented()
        return self._segmented

    def reduce_serial(self, *, batch: bool, prune: bool, method=None, threshold=Ellipsis) -> ReducedTrace:
        """One serial reduction over in-memory segment streams."""
        reducer = TraceReducer(self.metric(method, threshold), batch=batch, prune=prune)
        segmented = self.segmented
        return reducer.reduce_streams(
            segmented.name,
            ((r.rank, r.segments) for r in segmented.ranks),
            store_factory=self.store_factory(),
        )

    @property
    def baseline(self) -> ReducedTrace:
        """Ground truth: the scalar scan, segment-at-a-time, serial."""
        if self._baseline is None:
            self._baseline = self.reduce_serial(batch=False, prune=False)
        return self._baseline

    @property
    def baseline_bytes(self) -> bytes:
        if self._baseline_bytes is None:
            self._baseline_bytes = serialize_reduced_trace(self.baseline)
        return self._baseline_bytes

    def check(self, reduced: ReducedTrace, label: str) -> Optional[str]:
        return _first_divergence(self.baseline_bytes, serialize_reduced_trace(reduced), label)

    @property
    def rpb_path(self) -> Path:
        if self._rpb_path is None:
            path = self.workdir / "case.rpb"
            binio.write_trace_rpb(self.trace, path)
            self._rpb_path = path
        return self._rpb_path

    @property
    def text_path(self) -> Path:
        if self._text_path is None:
            path = self.workdir / "case.trace"
            write_trace(self.trace, path, format="text")
            self._text_path = path
        return self._text_path


# --------------------------------------------------------------------------
# Matching-kernel oracles


def oracle_dense_vs_scan(ctx: CaseContext) -> Optional[str]:
    """Vectorized dense batch kernel == scalar scan."""
    return ctx.check(ctx.reduce_serial(batch=True, prune=False), "dense kernel")


def oracle_pruned_vs_scan(ctx: CaseContext) -> Optional[str]:
    """Norm-bound pruning index + blocked early-exit probe == scalar scan."""
    return ctx.check(ctx.reduce_serial(batch=True, prune=True), "pruned kernel")


def oracle_frame_path(ctx: CaseContext) -> Optional[str]:
    """Columnar ``reduce_frame`` (lazy materialization) == scalar scan."""
    from repro.core.frames import RankFrame

    reducer = TraceReducer(ctx.metric())
    store_factory = ctx.store_factory()
    reduced = ReducedTrace(
        name=ctx.segmented.name,
        method=reducer.metric.name,
        threshold=reducer.metric.threshold,
    )
    for rank_trace in ctx.segmented.ranks:
        frame = RankFrame.from_segments(rank_trace.rank, rank_trace.segments)
        reduced.ranks.append(reducer.reduce_frame(frame, store=store_factory()))
    return ctx.check(reduced, "frame path")


# --------------------------------------------------------------------------
# Pipeline oracles


def oracle_pipeline_inline(ctx: CaseContext) -> Optional[str]:
    """Serial pipeline dispatch over the in-memory trace == scalar scan."""
    config = PipelineConfig(executor="serial", store_capacity=ctx.config.store_capacity)
    result = ReductionPipeline(ctx.metric(), config).reduce(
        ctx.segmented, name=ctx.trace.name
    )
    return ctx.check(result.reduced, "inline pipeline")


def oracle_pipeline_shard(ctx: CaseContext) -> Optional[str]:
    """Sharded ``(path, rank)`` dispatch over ``.rpb`` == scalar scan."""
    config = PipelineConfig(
        executor="thread", workers=2, store_capacity=ctx.config.store_capacity
    )
    result = ReductionPipeline(ctx.metric(), config).reduce(
        ctx.rpb_path, name=ctx.trace.name
    )
    return ctx.check(result.reduced, "shard pipeline")


# --------------------------------------------------------------------------
# Sweep oracle


def _sibling_threshold(config: CaseConfig) -> Optional[float]:
    """A second, different threshold for the same method (None if unavailable)."""
    from repro.core.metrics import THRESHOLD_STUDY

    if config.method == "iter_avg" or config.threshold is None:
        return None
    for value in THRESHOLD_STUDY.get(config.method, ()):
        if value != config.threshold:
            return int(value) if config.method == "iter_k" else float(value)
    return config.threshold * 2


def oracle_sweep_grid(ctx: CaseContext) -> Optional[str]:
    """Shared-pass sweep grid == a per-config serial loop, config by config."""
    configs = [SweepConfig(ctx.config.method, ctx.config.threshold)]
    sibling = _sibling_threshold(ctx.config)
    if sibling is not None:
        configs.append(SweepConfig(ctx.config.method, sibling))
    plan = SweepPlan(configs)
    result = sweep_source(
        ctx.segmented,
        plan,
        store_capacity=ctx.config.store_capacity,
        name=ctx.trace.name,
    )
    for outcome in result:
        # The per-config comparator uses the dense kernel (itself pinned to
        # the scalar scan by dense_vs_scan) — a deep case would otherwise
        # pay the O(n²) python scan once per grid config.
        serial = ctx.reduce_serial(
            batch=True,
            prune=False,
            method=outcome.config.method,
            threshold=outcome.config.threshold,
        )
        divergence = _first_divergence(
            serialize_reduced_trace(serial),
            serialize_reduced_trace(outcome.reduced),
            f"sweep config {outcome.config.describe()}",
        )
        if divergence:
            return divergence
    return None


# --------------------------------------------------------------------------
# Incremental-session oracle


def oracle_session_checkpoint(ctx: CaseContext) -> Optional[str]:
    """Chunked incremental session + mid-stream checkpoint/restore == batch.

    Raw records are appended rank-interleaved in ragged chunks (sizes drawn
    from the case seed), with periodic flushes; halfway through, the session
    is serialized with :func:`session_state` and resumed from the bytes —
    the finished result and content digest must equal the batch pathway's.
    """
    config = SessionConfig(
        method=ctx.config.method,
        threshold=ctx.config.threshold,
        store_capacity=ctx.config.store_capacity,
    )
    session = ReductionSession(ctx.trace.name, config)
    rng = rng_for(ctx.seed, "session-chunks")
    pending = [(rank.rank, list(rank.records)) for rank in ctx.trace.ranks]
    chunks: list[tuple[int, list]] = []
    for rank, records in pending:
        pos = 0
        while pos < len(records):
            size = int(rng.integers(1, 8))
            chunks.append((rank, records[pos : pos + size]))
            pos += size
    # Interleave ranks round-robin, preserving each rank's chunk order.
    by_rank: dict[int, list] = {}
    for rank, chunk in chunks:
        by_rank.setdefault(rank, []).append(chunk)
    interleaved: list[tuple[int, list]] = []
    queues = {rank: iter(lst) for rank, lst in by_rank.items()}
    while queues:
        for rank in list(queues):
            chunk = next(queues[rank], None)
            if chunk is None:
                del queues[rank]
            else:
                interleaved.append((rank, chunk))
    checkpoint_at = len(interleaved) // 2
    for i, (rank, chunk) in enumerate(interleaved):
        if i == checkpoint_at:
            session = restore_state(session_state(session))
        session.append_records(rank, chunk)
        if i % 5 == 4:
            session.flush()
    result = session.finish()
    divergence = ctx.check(result.reduced, "incremental session")
    if divergence:
        return divergence
    expected_digest = source_digest(ctx.segmented)
    if result.digest != expected_digest:
        return (
            f"incremental session: content digest {result.digest[:16]}… != "
            f"source digest {expected_digest[:16]}…"
        )
    return None


# --------------------------------------------------------------------------
# Serialization round-trip oracles


def oracle_rpb_roundtrip(ctx: CaseContext) -> Optional[str]:
    """``.rpb`` write→read preserves records exactly; reduction unchanged."""
    reread = read_trace(ctx.rpb_path, name=ctx.trace.name)
    for orig, back in zip(ctx.trace.ranks, reread.ranks):
        if orig.records != back.records:
            return f"rpb round trip: rank {orig.rank} records changed"
    if reread.nprocs != ctx.trace.nprocs:
        return f"rpb round trip: {ctx.trace.nprocs} ranks in, {reread.nprocs} out"
    reducer = TraceReducer(ctx.metric())
    segmented = reread.segmented()
    reduced = reducer.reduce_streams(
        segmented.name,
        ((r.rank, r.segments) for r in segmented.ranks),
        store_factory=ctx.store_factory(),
    )
    return ctx.check(reduced, "rpb round trip")


def oracle_text_roundtrip(ctx: CaseContext) -> Optional[str]:
    """Text write→read preserves tick-grid records; text↔rpb converts cleanly.

    Only applies to text-safe families (all timestamps multiples of 0.25, so
    the two-decimal text format is lossless on them).
    """
    reread = read_trace(ctx.text_path, name=ctx.trace.name)
    for orig, back in zip(ctx.trace.ranks, reread.ranks):
        if orig.records != back.records:
            return f"text round trip: rank {orig.rank} records changed"
    # text -> rpb -> text must reproduce the text bytes.
    rpb2 = ctx.workdir / "via.rpb"
    text2 = ctx.workdir / "via.trace"
    convert_trace(ctx.text_path, rpb2)
    convert_trace(rpb2, text2)
    if ctx.text_path.read_bytes() != text2.read_bytes():
        return "text round trip: text→rpb→text changed the text serialization"
    reducer = TraceReducer(ctx.metric())
    segmented = reread.segmented()
    reduced = reducer.reduce_streams(
        segmented.name,
        ((r.rank, r.segments) for r in segmented.ranks),
        store_factory=ctx.store_factory(),
    )
    return ctx.check(reduced, "text round trip")


# --------------------------------------------------------------------------
# Reconstruction oracle


def oracle_reconstruction(ctx: CaseContext) -> Optional[str]:
    """Reconstruction is structure-identical; matched execs obey the metric bound.

    :func:`timestamp_errors` raises if the reconstructed trace's shape differs
    from the original anywhere.  For the distance metrics — whose stored
    representatives never mutate — every matched execution's original segment
    must still satisfy ``metric.similar`` against the representative it
    matched: the metric's own error bound, replayed exactly.
    """
    recon = reconstruct(ctx.baseline)
    try:
        timestamp_errors(ctx.segmented, recon)
    except ValueError as exc:
        return f"reconstruction: structural mismatch ({exc})"
    if ctx.config.method not in DISTANCE_METRICS:
        return None
    metric = ctx.metric()
    for rank_reduced, rank_seg in zip(ctx.baseline.ranks, ctx.segmented.ranks):
        by_id = rank_reduced.stored_by_id()
        for j, ((segment_id, _), matched) in enumerate(
            zip(rank_reduced.execs, rank_reduced.exec_matched)
        ):
            if not matched:
                continue
            original = rank_seg.segments[j].relative_to_start()
            stored = by_id[segment_id].segment
            orig_ts = np.asarray(original.timestamps(), dtype=float)
            stored_ts = np.asarray(stored.timestamps(), dtype=float)
            if not metric.similar(orig_ts, stored_ts, original, stored):
                return (
                    f"reconstruction: rank {rank_reduced.rank} exec {j} matched "
                    f"representative {segment_id} but violates the {metric.name} bound"
                )
    return None


# --------------------------------------------------------------------------
# Malformed-rank fallback oracle


def oracle_malformed_fallback(ctx: CaseContext) -> Optional[str]:
    """Malformed ranks fail identically on every decode path; good ranks decode.

    The reference outcome per rank comes from driving :func:`iter_segments`
    over the raw records.  The ``.rpb`` fast column decoder must fall back and
    raise a :class:`SegmentationError` with the *same message* for malformed
    ranks (``iter_rank_segments`` and ``rank_frame`` both), while well-formed
    ranks must decode to the same segments on every path.
    """
    reference: dict[int, object] = {}
    for rank_trace in ctx.trace.ranks:
        try:
            reference[rank_trace.rank] = list(iter_segments(rank_trace.records))
        except SegmentationError as exc:
            reference[rank_trace.rank] = str(exc)
    malformed = [rank for rank, ref in reference.items() if isinstance(ref, str)]
    if not malformed:
        return "malformed family produced a fully well-formed trace"

    for rank, ref in reference.items():
        # Path 1: streaming segment decode from the binary file.
        try:
            segments = list(binio.iter_rank_segments(ctx.rpb_path, rank))
            outcome: object = segments
        except SegmentationError as exc:
            outcome = str(exc)
        if isinstance(ref, str) != isinstance(outcome, str):
            got = "segments" if not isinstance(outcome, str) else f"error {outcome!r}"
            want = "segments" if not isinstance(ref, str) else f"error {ref!r}"
            return f"binio rank {rank}: expected {want}, got {got}"
        if outcome != ref:
            return f"binio rank {rank}: decode disagrees with in-memory segmentation"
        # Path 2: columnar frame decode (fast path with scalar fallback).
        # ``frame.segment(i)`` materializes the *normalised* form, so the
        # in-memory reference is compared after ``relative_to_start()``.
        try:
            frame = binio.rank_frame(ctx.rpb_path, rank)
            frame_out: object = [frame.segment(i) for i in range(frame.n_segments)]
        except SegmentationError as exc:
            frame_out = str(exc)
        frame_ref = [s.relative_to_start() for s in ref] if not isinstance(ref, str) else ref
        if frame_out != frame_ref:
            return f"rank_frame rank {rank}: decode disagrees with in-memory segmentation"
    # The text path must agree as well (the malformed family stays on the grid).
    reread = read_trace(ctx.text_path, name=ctx.trace.name)
    for orig, back in zip(ctx.trace.ranks, reread.ranks):
        if orig.records != back.records:
            return f"text round trip: malformed rank {orig.rank} records changed"
    return None


# --------------------------------------------------------------------------
# Registry and runner


ORACLES: dict[str, Callable[[CaseContext], Optional[str]]] = {
    "dense_vs_scan": oracle_dense_vs_scan,
    "pruned_vs_scan": oracle_pruned_vs_scan,
    "frame_path": oracle_frame_path,
    "pipeline_inline": oracle_pipeline_inline,
    "pipeline_shard": oracle_pipeline_shard,
    "sweep_grid": oracle_sweep_grid,
    "session_checkpoint": oracle_session_checkpoint,
    "rpb_roundtrip": oracle_rpb_roundtrip,
    "text_roundtrip": oracle_text_roundtrip,
    "reconstruction": oracle_reconstruction,
    "malformed_fallback": oracle_malformed_fallback,
}

ORACLE_NAMES: tuple[str, ...] = tuple(ORACLES)

#: The equivalence matrix run on every segmentable case.
EQUIVALENCE_ORACLES: tuple[str, ...] = (
    "dense_vs_scan",
    "pruned_vs_scan",
    "frame_path",
    "pipeline_inline",
    "pipeline_shard",
    "sweep_grid",
    "session_checkpoint",
    "rpb_roundtrip",
    "text_roundtrip",
    "reconstruction",
)


def applicable_oracles(family) -> tuple[str, ...]:
    """Which oracles a family's cases run (family = :class:`GeneratorFamily`)."""
    if not family.segmentable:
        return ("malformed_fallback",)
    if not family.text_safe:
        return tuple(n for n in EQUIVALENCE_ORACLES if n != "text_roundtrip")
    return EQUIVALENCE_ORACLES


def run_oracles(
    trace: Trace,
    config: CaseConfig,
    workdir: Path,
    names: Sequence[str],
    seed: int = 0,
) -> list[OracleOutcome]:
    """Run the named oracles over one case, capturing crashes as failures."""
    ctx = CaseContext(trace, config, workdir, seed=seed)
    outcomes: list[OracleOutcome] = []
    for name in names:
        oracle = ORACLES[name]
        try:
            divergence = oracle(ctx)
        except OracleSkip as skip:
            outcomes.append(OracleOutcome(name, "skip", str(skip)))
            continue
        except Exception as exc:  # a pathway crash is a finding
            tail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            outcomes.append(OracleOutcome(name, "fail", f"crash: {tail}"))
            continue
        if divergence:
            outcomes.append(OracleOutcome(name, "fail", divergence))
        else:
            outcomes.append(OracleOutcome(name, "pass"))
    return outcomes
