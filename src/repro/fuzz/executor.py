"""Fuzz executor: plan deterministic cases, run the oracle matrix, mine failures.

:func:`plan_cases` expands ``(seed, n_cases, families)`` into a fully
deterministic case list — case ``i`` draws its params and config from
``rng_for(seed, "case", i)`` and its own generator seed from
``derive_seed(seed, "case", i)``, and the case id is a content hash of
``(family, seed, params, config)``, so two runs with the same arguments
produce identical ids and identical pass/fail results (the CLI acceptance
contract).  A wall-clock ``time_budget`` only *truncates* that list — cases
either run exactly as planned or not at all, never differently.

Failures are persisted to a :class:`~repro.fuzz.casedb.CaseDB` (optionally
shrunk first) so they can be replayed by id, by the regression-corpus test,
or shown by ``examples/fuzz_tour.py``.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.fuzz.casedb import CaseDB, CorpusCase
from repro.fuzz.generators import (
    FAMILIES,
    FAMILY_NAMES,
    CaseConfig,
    CaseSpec,
    generate_case,
    random_config,
)
from repro.fuzz.oracles import OracleOutcome, applicable_oracles, run_oracles
from repro.fuzz.shrink import make_failure_check, shrink_records
from repro.util.rng import derive_seed, rng_for

__all__ = ["FuzzCase", "CaseResult", "FuzzReport", "plan_cases", "run_case", "run_fuzz"]


@dataclass(frozen=True)
class FuzzCase:
    """One planned case: what to generate and how to reduce it."""

    spec: CaseSpec
    config: CaseConfig

    @property
    def id(self) -> str:
        """Content hash of the full case description (stable across runs)."""
        payload = json.dumps(
            {
                "family": self.spec.family,
                "seed": self.spec.seed,
                "params": dict(self.spec.params),
                "config": self.config.as_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    @property
    def oracles(self) -> tuple[str, ...]:
        return applicable_oracles(FAMILIES[self.spec.family])

    def describe(self) -> str:
        return f"{self.id} {self.spec.family} [{self.config.describe()}]"


@dataclass(slots=True)
class CaseResult:
    """One executed case with its oracle outcomes."""

    case: FuzzCase
    outcomes: list[OracleOutcome]
    records: list[list] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def failed_oracles(self) -> list[str]:
        return [o.name for o in self.outcomes if o.failed]

    @property
    def ok(self) -> bool:
        return not self.failed_oracles

    @property
    def divergence(self) -> str:
        return "; ".join(o.detail for o in self.outcomes if o.failed)


@dataclass(slots=True)
class FuzzReport:
    """What one fuzz run did."""

    seed: int
    planned: int
    results: list[CaseResult] = field(default_factory=list)
    saved: list[Path] = field(default_factory=list)
    truncated: bool = False
    seconds: float = 0.0

    @property
    def n_failed(self) -> int:
        return sum(not r.ok for r in self.results)

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    @property
    def oracle_coverage(self) -> dict[str, int]:
        """How many cases ran each oracle (skips excluded)."""
        coverage: dict[str, int] = {}
        for result in self.results:
            for outcome in result.outcomes:
                if outcome.status != "skip":
                    coverage[outcome.name] = coverage.get(outcome.name, 0) + 1
        return coverage


def plan_cases(
    seed: int, n_cases: int, families: Optional[Sequence[str]] = None
) -> list[FuzzCase]:
    """The deterministic case list of one run (round-robin over families)."""
    names = tuple(families) if families else FAMILY_NAMES
    for name in names:
        if name not in FAMILIES:
            raise ValueError(f"unknown fuzz family {name!r}; expected one of {FAMILY_NAMES}")
    cases: list[FuzzCase] = []
    for i in range(n_cases):
        family = FAMILIES[names[i % len(names)]]
        rng = rng_for(seed, "case", i)
        params = family.default_params(rng)
        config = (
            CaseConfig.from_dict(params["config"])
            if "config" in params
            else random_config(rng)
        )
        spec = CaseSpec(family=family.name, seed=derive_seed(seed, "case", i), params=params)
        cases.append(FuzzCase(spec=spec, config=config))
    return cases


def run_case(case: FuzzCase, workdir: Optional[Path] = None) -> CaseResult:
    """Generate one case's trace and run its oracle set over it."""
    start = time.monotonic()
    trace = generate_case(case.spec)
    records = [list(rank.records) for rank in trace.ranks]

    def _run(directory: Path) -> list[OracleOutcome]:
        return run_oracles(trace, case.config, directory, case.oracles, seed=case.spec.seed)

    if workdir is not None:
        outcomes = _run(Path(workdir))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            outcomes = _run(Path(tmp))
    return CaseResult(
        case=case, outcomes=outcomes, records=records, seconds=time.monotonic() - start
    )


def _persist_failure(
    result: CaseResult, db: CaseDB, shrink: bool, shrink_budget: int
) -> Path:
    records = result.records
    shrunk = False
    if shrink:
        check = make_failure_check(result.case.config, result.failed_oracles)
        try:
            records = shrink_records(records, check, budget=shrink_budget).records
            shrunk = True
        except ValueError:
            # Flaky failure (did not reproduce under the shrinker's check):
            # persist the original records so a human can look.
            records = result.records
    corpus = CorpusCase(
        id=result.case.id,
        family=result.case.spec.family,
        seed=result.case.spec.seed,
        params=dict(result.case.spec.params),
        config=result.case.config,
        oracles=result.failed_oracles,
        records=records,
        divergence=result.divergence,
        shrunk=shrunk,
        note="mined by repro-trace fuzz",
    )
    return db.save(corpus)


def run_fuzz(
    seed: int,
    n_cases: int,
    *,
    families: Optional[Sequence[str]] = None,
    time_budget: Optional[float] = None,
    corpus_dir: Optional[Path] = None,
    shrink: bool = False,
    shrink_budget: int = 400,
    progress=None,
) -> FuzzReport:
    """Run one deterministic fuzz campaign.

    ``time_budget`` (seconds) stops *between* cases once exceeded — with no
    budget the run is exactly the planned list.  Failures are saved to
    ``corpus_dir`` when given; ``progress`` is an optional callable invoked
    with each :class:`CaseResult` as it completes (the CLI's live table).
    """
    started = time.monotonic()
    cases = plan_cases(seed, n_cases, families)
    report = FuzzReport(seed=seed, planned=len(cases))
    db = CaseDB(corpus_dir) if corpus_dir is not None else None
    for case in cases:
        if time_budget is not None and time.monotonic() - started > time_budget:
            report.truncated = True
            break
        result = run_case(case)
        report.results.append(result)
        if not result.ok and db is not None:
            report.saved.append(_persist_failure(result, db, shrink, shrink_budget))
        if progress is not None:
            progress(result)
    report.seconds = time.monotonic() - started
    return report
