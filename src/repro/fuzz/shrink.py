"""Greedy case minimizer: shrink a failing trace while it still fails.

Shrinking operates on the explicit per-rank record lists of a
:class:`~repro.fuzz.casedb.CorpusCase` — not on generator params — so a
minimized case keeps reproducing even after the generator that mined it
changes.  Passes run in coarse-to-fine order, restarting after any
successful edit, until a fixpoint or the check budget runs out:

1. **Drop ranks** (survivors are renumbered to stay contiguous, which the
   text format requires).
2. **Drop segment chunks** — a chunk is one balanced SEGMENT_BEGIN..END
   span of records; stray records outside any span (malformed streams)
   are their own single-record chunks, so rule-violating records can be
   dropped individually.  A rank shrunk to zero records is dropped.
3. **Drop events** — adjacent ENTER/EXIT pairs inside segments.
4. **Simplify timestamps** — global coarsening (quarter-tick, then whole
   numbers), accepted only if the case still fails.

The *check* is "the named oracles still fail" (a crash counts as failing:
turning a divergence into a crash on the same pathway is still the same
reproducer).  An edit that makes the records unbuildable is simply
rejected.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.fuzz.generators import CaseConfig, trace_from_records
from repro.trace.records import RecordKind, TraceRecord

__all__ = ["ShrinkResult", "make_failure_check", "shrink_records"]

Records = Sequence[Sequence[TraceRecord]]


@dataclass(slots=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    records: list[list[TraceRecord]]
    checks: int
    records_before: int
    records_after: int

    @property
    def reduction(self) -> float:
        if self.records_before == 0:
            return 0.0
        return 1.0 - self.records_after / self.records_before


def make_failure_check(config: CaseConfig, oracle_names: Sequence[str]) -> Callable[[Records], bool]:
    """Build the predicate "these records still fail one of the named oracles"."""
    from repro.fuzz.oracles import run_oracles

    names = tuple(oracle_names)

    def check(records_by_rank: Records) -> bool:
        if not any(len(r) for r in records_by_rank):
            return False
        try:
            trace = trace_from_records("shrink-probe", records_by_rank)
        except Exception:
            return False
        with tempfile.TemporaryDirectory(prefix="repro-shrink-") as tmp:
            try:
                outcomes = run_oracles(trace, config, Path(tmp), names)
            except Exception:
                # A harness-level crash still reproduces a defect on the
                # same pathways; keep the edit.
                return True
        return any(o.failed for o in outcomes)

    return check


def _segment_chunks(records: Sequence[TraceRecord]) -> list[list[TraceRecord]]:
    """Split one rank's records into droppable chunks (see module docstring)."""
    chunks: list[list[TraceRecord]] = []
    current: list[TraceRecord] = []
    depth = 0
    for rec in records:
        if rec.kind is RecordKind.SEGMENT_BEGIN:
            if depth == 0 and current:
                chunks.append(current)
                current = []
            depth += 1
            current.append(rec)
        elif rec.kind is RecordKind.SEGMENT_END:
            current.append(rec)
            if depth > 0:
                depth -= 1
                if depth == 0:
                    chunks.append(current)
                    current = []
        else:
            if depth == 0:
                # Stray record outside any segment: its own droppable chunk.
                if current:
                    chunks.append(current)
                    current = []
                chunks.append([rec])
            else:
                current.append(rec)
    if current:
        chunks.append(current)
    return chunks


def _drop_empty_ranks(records_by_rank: Records) -> list[list[TraceRecord]]:
    return [list(r) for r in records_by_rank if len(r)]


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        """Consume one check; False when exhausted."""
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _try(
    candidate: Records, check: Callable[[Records], bool], budget: _Budget
) -> Optional[list[list[TraceRecord]]]:
    if not budget.spend():
        return None
    if check(candidate):
        return _drop_empty_ranks(candidate)
    return None


def _pass_drop_ranks(current, check, budget):
    if len(current) <= 1:
        return None
    for i in reversed(range(len(current))):
        candidate = current[:i] + current[i + 1 :]
        kept = _try(candidate, check, budget)
        if kept is not None:
            return kept
    return None


def _pass_drop_chunks(current, check, budget):
    for rank_index, records in enumerate(current):
        chunks = _segment_chunks(records)
        if len(chunks) <= 1 and len(current) == 1:
            continue
        for i in reversed(range(len(chunks))):
            remaining = [rec for j, chunk in enumerate(chunks) if j != i for rec in chunk]
            candidate = [
                remaining if k == rank_index else recs for k, recs in enumerate(current)
            ]
            kept = _try(candidate, check, budget)
            if kept is not None:
                return kept
    return None


def _event_pair_indices(records: Sequence[TraceRecord]) -> list[tuple[int, int]]:
    """Indices of droppable event records: matched ENTER/EXIT pairs and strays."""
    out: list[tuple[int, int]] = []
    i = 0
    while i < len(records):
        rec = records[i]
        if rec.kind is RecordKind.ENTER:
            if (
                i + 1 < len(records)
                and records[i + 1].kind is RecordKind.EXIT
                and records[i + 1].name == rec.name
            ):
                out.append((i, i + 1))
                i += 2
                continue
            out.append((i, i))  # unmatched ENTER: droppable alone
        elif rec.kind is RecordKind.EXIT:
            out.append((i, i))  # unmatched EXIT: droppable alone
        i += 1
    return out


def _pass_drop_events(current, check, budget):
    for rank_index, records in enumerate(current):
        for lo, hi in reversed(_event_pair_indices(records)):
            remaining = records[:lo] + records[hi + 1 :]
            candidate = [
                remaining if k == rank_index else recs for k, recs in enumerate(current)
            ]
            kept = _try(candidate, check, budget)
            if kept is not None:
                return kept
    return None


def _quantize(value: float, grid: float) -> float:
    snapped = round(value / grid) * grid
    return snapped if snapped >= 0 else 0.0


def _pass_simplify_timestamps(current, check, budget):
    for grid in (1.0, 0.25):
        candidate = [
            [
                TraceRecord(r.kind, r.rank, _quantize(r.timestamp, grid), r.name, r.mpi)
                for r in records
            ]
            for records in current
        ]
        if all(a == b for a, b in zip(candidate, current)):
            continue
        kept = _try(candidate, check, budget)
        if kept is not None:
            return kept
    return None


_PASSES = (
    _pass_drop_ranks,
    _pass_drop_chunks,
    _pass_drop_events,
    _pass_simplify_timestamps,
)


def shrink_records(
    records_by_rank: Records,
    check: Callable[[Records], bool],
    *,
    budget: int = 400,
) -> ShrinkResult:
    """Greedily minimize ``records_by_rank`` while ``check`` keeps returning True.

    ``check`` receives candidate per-rank record lists and must return True
    while the case still reproduces.  The input must itself pass the check
    (shrinking something that does not fail is a caller error).
    """
    current = _drop_empty_ranks(records_by_rank)
    before = sum(len(r) for r in current)
    if not check(current):
        raise ValueError("shrink input does not fail its own check; nothing to minimize")
    counter = _Budget(budget)
    progress = True
    while progress and counter.used < counter.limit:
        progress = False
        for pass_fn in _PASSES:
            kept = pass_fn(current, check, counter)
            while kept is not None:
                current = kept
                progress = True
                kept = pass_fn(current, check, counter)
    return ShrinkResult(
        records=current,
        checks=counter.used,
        records_before=before,
        records_after=sum(len(r) for r in current),
    )
