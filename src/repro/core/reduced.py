"""Reduced-trace containers: stored segments and segment-execution lists.

This is the in-memory form of the paper's ``storedSegments`` and
``segmentExecs`` lists (Section 3.1), per rank, plus the counters needed by
the evaluation criteria (degree of matching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, Optional

import numpy as np

from repro.trace.io import reduced_trace_size_bytes
from repro.trace.segments import Segment

__all__ = ["StoredSegment", "ReducedRankTrace", "ReducedTrace"]


@dataclass(slots=True)
class StoredSegment:
    """One representative segment retained in the reduced trace.

    The segment's timestamps are relative to its start (the reducer normalises
    every segment before storing or comparing it).  ``count`` is the number of
    executions this representative stands for; ``iter_avg`` additionally keeps
    the running mean of the timestamps in the representative itself.

    Representatives additionally memoize the feature vectors the distance
    metrics derive from the segment (canonical pairwise layout, Minkowski
    layout, transformed wavelet coefficients), keyed by the metric's cache
    key.  The cache is invalidated whenever the stored timestamps mutate
    (``iter_avg``'s running mean) and is never pickled — workers rebuild
    vectors locally, so cached arrays don't inflate result payloads.
    """

    segment_id: int
    segment: Segment
    count: int = 1
    _vectors: Optional[dict] = field(default=None, repr=False, compare=False)

    def timestamps(self) -> np.ndarray:
        """Relative timestamp vector in the canonical segment layout."""
        return np.asarray(self.segment.timestamps(), dtype=float)

    def cached_vector(
        self, key: Hashable, build: Callable[[Segment], np.ndarray]
    ) -> np.ndarray:
        """Feature vector built by ``build(segment)``, memoized under ``key``."""
        cache = self._vectors
        if cache is None:
            cache = self._vectors = {}
        vector = cache.get(key)
        if vector is None:
            vector = cache[key] = build(self.segment)
        return vector

    def invalidate_vectors(self) -> None:
        """Drop memoized feature vectors (the stored timestamps changed)."""
        self._vectors = None

    def __getstate__(self):
        # The vector cache is derived data; rebuilding is cheaper than
        # shipping ndarrays across process-pool pickle boundaries.
        return (self.segment_id, self.segment, self.count)

    def __setstate__(self, state):
        self.segment_id, self.segment, self.count = state
        self._vectors = None

    def update_mean(self, new_timestamps: np.ndarray) -> None:
        """Fold one more execution into the running mean of the timestamps.

        Used by the ``iter_avg`` method: the stored representative always
        holds the average measurements of all executions it represents.
        """
        new_timestamps = np.asarray(new_timestamps, dtype=float)
        current = self.timestamps()
        if new_timestamps.shape != current.shape:
            raise ValueError(
                "cannot average segments with different numbers of timestamps "
                f"({new_timestamps.size} vs {current.size})"
            )
        self.count += 1
        updated = current + (new_timestamps - current) / self.count
        self._write_timestamps(updated)

    def _write_timestamps(self, values: np.ndarray) -> None:
        events = self.segment.events
        expected = 2 * len(events) + 1
        if values.size != expected:
            raise ValueError(
                f"timestamp vector has {values.size} entries, expected {expected}"
            )
        for i, event in enumerate(events):
            event.start = float(values[2 * i])
            event.end = float(values[2 * i + 1])
        self.segment.end = float(values[-1])
        self.invalidate_vectors()


@dataclass(slots=True)
class ReducedRankTrace:
    """Reduced trace of one rank.

    Attributes
    ----------
    rank:
        The rank this reduction belongs to.
    stored:
        Stored representative segments, in the order they were first seen.
    execs:
        ``(segment id, absolute start time)`` for every segment execution, in
        execution order — enough to re-create an approximate full trace.
    exec_matched:
        Parallel to ``execs``: True where the execution matched an existing
        stored segment (i.e. its own measurements were discarded).  This is
        bookkeeping for evaluation/reconstruction options and is *not* counted
        in the serialized size.
    n_segments, n_matches, n_possible_matches:
        Counters feeding the degree-of-matching criterion.
    """

    rank: int
    stored: list[StoredSegment] = field(default_factory=list)
    execs: list[tuple[int, float]] = field(default_factory=list)
    exec_matched: list[bool] = field(default_factory=list)
    n_segments: int = 0
    n_matches: int = 0
    n_possible_matches: int = 0

    def stored_by_id(self) -> dict[int, StoredSegment]:
        return {s.segment_id: s for s in self.stored}

    def size_bytes(self) -> int:
        """Serialized size of this rank's reduced trace."""
        return reduced_trace_size_bytes(
            ((s.segment_id, s.segment) for s in self.stored), self.execs
        )


@dataclass(slots=True)
class ReducedTrace:
    """Reduced application trace: one :class:`ReducedRankTrace` per rank."""

    name: str
    method: str
    threshold: Optional[float]
    ranks: list[ReducedRankTrace] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    def __iter__(self) -> Iterator[ReducedRankTrace]:
        return iter(self.ranks)

    @property
    def n_segments(self) -> int:
        return sum(r.n_segments for r in self.ranks)

    @property
    def n_stored(self) -> int:
        return sum(len(r.stored) for r in self.ranks)

    @property
    def n_matches(self) -> int:
        return sum(r.n_matches for r in self.ranks)

    @property
    def n_possible_matches(self) -> int:
        return sum(r.n_possible_matches for r in self.ranks)

    def degree_of_matching(self) -> float:
        """Matches / possible matches (Section 4.3.2); 1.0 when nothing could match."""
        possible = self.n_possible_matches
        if possible == 0:
            return 1.0
        return self.n_matches / possible

    def size_bytes(self) -> int:
        return sum(r.size_bytes() for r in self.ranks)
