"""Columnar rank frames: the decode→match hot path without per-segment objects.

A :class:`RankFrame` holds one rank's segments as NumPy column arrays —
per-segment context ids and boundary timestamps plus flattened per-event
columns sliced by an offset array — instead of a list of
:class:`~repro.trace.segments.Segment` objects.  Everything the matching
algorithm derives per segment is then computed **in bulk** over the columns:

* normalisation (timestamps relative to each segment's start) is one
  vectorized subtraction instead of a ``relative_to_start()`` copy per
  segment — and because IEEE-754 defines ``a - b`` as ``a + (-b)``, the bulk
  result is bitwise identical to the scalar path;
* structural keys are computed from per-event ``(name id, MPI id)`` codes and
  hash-interned once per distinct structure (:class:`InternedKey`, shared
  with the sweep engine), so store probes stay pointer-identity fast;
* each metric family's feature vectors (pairwise / Minkowski / transformed
  wavelet layouts) are built as row groups of equal width, so a whole rank
  vectorizes in a handful of NumPy calls.

``Segment`` objects are only *materialized* — built back from the columns —
lazily, for stored representatives, mutation-bearing metrics, and
reduced-trace output; :attr:`RankFrame.materialized` counts how few that is.
``.rpb`` files decode straight into frames (:func:`repro.trace.binio.rank_frame`);
text and in-memory sources adapt through :meth:`RankFrame.from_segments`, so
every engine runs one code path.  The segment-at-a-time
:class:`~repro.core.reducer.TraceReducer` remains the byte-identity oracle.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro import obs
from repro.trace.events import Event, MpiCallInfo
from repro.trace.segments import Segment

__all__ = ["InternedKey", "RankFrame", "pyramid_rows"]


class InternedKey:
    """A structural key wrapper with a cached hash, interned per rank.

    Every store is keyed by the segment's structural key — a large nested
    tuple whose hash would otherwise be recomputed on every dict operation.
    Each distinct structure is hashed once per rank and all consumers get the
    same wrapper object: its hash is a cached int and, because the wrapper is
    interned, dict probes succeed on pointer identity without ever
    re-comparing the underlying tuple.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: tuple) -> None:
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, InternedKey):
            return self.value == other.value
        return NotImplemented

    def __getstate__(self):
        # Only the value crosses the pickle boundary: string hashing is
        # salted per process (PYTHONHASHSEED), so a cached hash restored in
        # another process would disagree with freshly built keys and every
        # store probe would miss.  Dict reconstruction re-inserts keys after
        # __setstate__ has run, so restored stores rehash correctly.
        return self.value

    def __setstate__(self, value):
        self.value = value
        self._hash = hash(value)


def pyramid_rows(matrix: np.ndarray, scale: float) -> np.ndarray:
    """Row-batched multi-level DWT (the bulk form of ``wavelet._pyramid``).

    Applies the trends/fluctuations pyramid to every row of a power-of-two
    width matrix.  All operations are elementwise with the same operand order
    as the scalar transform, so each output row is bitwise identical to
    ``_pyramid(matrix[i], scale)``.
    """
    n_rows, width = matrix.shape
    if width & (width - 1):
        raise ValueError(f"wavelet transform requires a power-of-two width, got {width}")
    details: list[np.ndarray] = []
    current = matrix
    while current.shape[1] > 1:
        pairs = current.reshape(n_rows, -1, 2)
        trends = (pairs[:, :, 0] + pairs[:, :, 1]) * scale
        fluctuations = (pairs[:, :, 1] - pairs[:, :, 0]) * scale
        details.append(fluctuations)
        current = trends
    return np.concatenate([current] + details[::-1], axis=1)


def _next_power_of_two(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class RankFrame:
    """One rank's segments in columnar form.

    Columns (all absolute timestamps, exactly as decoded):

    ``contexts`` / ``starts`` / ``ends``
        Per-segment context string id and boundary timestamps.
    ``ev_offsets``
        Length ``n_segments + 1`` prefix array: segment ``i``'s events are
        the flattened event rows ``ev_offsets[i]:ev_offsets[i + 1]``.
    ``ev_names`` / ``ev_starts`` / ``ev_ends`` / ``ev_mpi``
        Per-event name id, timestamps, and MPI-table id (``-1`` = no MPI).
    ``strings`` / ``mpi_table``
        The id-indexed string table and deduplicated
        :class:`~repro.trace.events.MpiCallInfo` table.
    ``indices``
        Each segment's emission index (``Segment.index``); ``None`` means
        ``0..n-1`` (the value :func:`~repro.trace.segments.iter_segments`
        assigns).
    """

    __slots__ = (
        "rank",
        "contexts",
        "starts",
        "ends",
        "ev_offsets",
        "ev_names",
        "ev_starts",
        "ev_ends",
        "ev_mpi",
        "strings",
        "mpi_table",
        "indices",
        "materialized",
        "_keys",
        "_rel",
        "_rows",
        "_lists",
    )

    def __init__(
        self,
        *,
        rank: int,
        contexts: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        ev_offsets: np.ndarray,
        ev_names: np.ndarray,
        ev_starts: np.ndarray,
        ev_ends: np.ndarray,
        ev_mpi: np.ndarray,
        strings: Sequence[str],
        mpi_table: Sequence[Optional[MpiCallInfo]],
        indices: Optional[np.ndarray] = None,
    ) -> None:
        self.rank = rank
        self.contexts = contexts
        self.starts = starts
        self.ends = ends
        self.ev_offsets = ev_offsets
        self.ev_names = ev_names
        self.ev_starts = ev_starts
        self.ev_ends = ev_ends
        self.ev_mpi = ev_mpi
        self.strings = tuple(strings)
        self.mpi_table = tuple(mpi_table)
        self.indices = indices
        #: Segment objects built back from the columns so far (lazy-path win:
        #: stays far below ``n_segments`` for the distance metrics).
        self.materialized = 0
        self._keys: Optional[list[InternedKey]] = None
        self._rel = None
        self._rows: dict = {}
        self._lists = None

    # -- basic shape -----------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.starts)

    @property
    def n_events(self) -> int:
        return len(self.ev_starts)

    def __len__(self) -> int:
        return len(self.starts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RankFrame rank={self.rank} segments={self.n_segments} "
            f"events={self.n_events} materialized={self.materialized}>"
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_segments(cls, rank: int, segments: Iterable[Segment]) -> "RankFrame":
        """Adapter: build a frame from already-built :class:`Segment` objects.

        This is how text and in-memory sources join the columnar path — the
        segments are consumed (a stream works), their strings and MPI infos
        interned, and their timestamps laid out as columns.  The reverse of
        :meth:`segment`: ``frame.segment(i)`` rebuilds ``segments[i]``'s
        normalised form bit for bit.
        """
        with obs.span("columnar.decode", rank=rank, source="segments"):
            return cls._from_segments(rank, segments)

    @classmethod
    def _from_segments(cls, rank: int, segments: Iterable[Segment]) -> "RankFrame":
        strings: list[str] = []
        string_ids: dict[str, int] = {}

        def intern_string(value: str) -> int:
            ident = string_ids.get(value)
            if ident is None:
                ident = string_ids[value] = len(strings)
                strings.append(value)
            return ident

        mpi_table: list[MpiCallInfo] = []
        # The by-object fast path must pin the object it memoizes: lazy
        # streams drop segments as they are consumed, and a freshly
        # allocated MpiCallInfo can reuse a dead one's id().
        mpi_by_obj: dict[int, tuple[MpiCallInfo, int]] = {}
        mpi_by_key: dict[tuple, int] = {}

        def intern_mpi(info: Optional[MpiCallInfo]) -> int:
            if info is None:
                return -1
            entry = mpi_by_obj.get(id(info))
            if entry is not None and entry[0] is info:
                return entry[1]
            key = info.key()
            ident = mpi_by_key.get(key)
            if ident is None:
                ident = mpi_by_key[key] = len(mpi_table)
                mpi_table.append(info)
            mpi_by_obj[id(info)] = (info, ident)
            return ident

        contexts: list[int] = []
        starts: list[float] = []
        ends: list[float] = []
        offsets: list[int] = [0]
        ev_names: list[int] = []
        ev_starts: list[float] = []
        ev_ends: list[float] = []
        ev_mpi: list[int] = []
        indices: list[int] = []
        identity = True
        for position, segment in enumerate(segments):
            contexts.append(intern_string(segment.context))
            starts.append(segment.start)
            ends.append(segment.end)
            indices.append(segment.index)
            identity = identity and segment.index == position
            for event in segment.events:
                ev_names.append(intern_string(event.name))
                ev_starts.append(event.start)
                ev_ends.append(event.end)
                ev_mpi.append(intern_mpi(event.mpi))
            offsets.append(len(ev_names))
        return cls(
            rank=rank,
            contexts=np.asarray(contexts, dtype=np.int64),
            starts=np.asarray(starts, dtype=np.float64),
            ends=np.asarray(ends, dtype=np.float64),
            ev_offsets=np.asarray(offsets, dtype=np.int64),
            ev_names=np.asarray(ev_names, dtype=np.int64),
            ev_starts=np.asarray(ev_starts, dtype=np.float64),
            ev_ends=np.asarray(ev_ends, dtype=np.float64),
            ev_mpi=np.asarray(ev_mpi, dtype=np.int64),
            strings=strings,
            mpi_table=mpi_table,
            indices=None if identity else np.asarray(indices, dtype=np.int64),
        )

    # -- bulk normalisation ----------------------------------------------------

    def _relative(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Relative (normalised) event/boundary timestamps, computed in bulk.

        ``a - b`` is IEEE-defined as ``a + (-b)``, so these equal the scalar
        ``relative_to_start()`` results (``e.start + offset`` with
        ``offset = -start``) bit for bit.
        """
        rel = self._rel
        if rel is None:
            counts = np.diff(self.ev_offsets)
            seg_starts = np.repeat(self.starts, counts)
            rel = self._rel = (
                self.ev_starts - seg_starts,
                self.ev_ends - seg_starts,
                self.ends - self.starts,
            )
        return rel

    # -- vectorized structural keying ------------------------------------------

    def structural_keys(self) -> list[InternedKey]:
        """Per-segment structural keys, interned: one object per structure.

        Equality/hash semantics match ``segment.structure()`` exactly (the
        wrapped value *is* that tuple); the interning means every repeated
        structure in the rank maps to the same :class:`InternedKey` object.
        """
        keys = self._keys
        if keys is None:
            with obs.span("columnar.vectorize", rank=self.rank, stage="keys"):
                keys = self._keys = self._structural_keys()
        return keys

    def _structural_keys(self) -> list[InternedKey]:
        # One int64 code per event: (name id, MPI id) packed so a segment's
        # event-structure signature is a plain bytes slice.
        width = len(self.mpi_table) + 1
        codes = self.ev_names * width + (self.ev_mpi + 1)
        code_bytes = codes.tobytes()
        itemsize = codes.dtype.itemsize
        offsets = self.ev_offsets.tolist()
        contexts = self.contexts.tolist()
        strings = self.strings
        mpi_table = self.mpi_table
        codes_list = codes.tolist()

        struct_by_code: dict[int, tuple] = {}

        def event_struct(code: int) -> tuple:
            struct = struct_by_code.get(code)
            if struct is None:
                name_id, mpi_id = divmod(code, width)
                struct = struct_by_code[code] = (
                    strings[name_id],
                    mpi_table[mpi_id - 1].key() if mpi_id else None,
                )
            return struct

        interned: dict[tuple[int, bytes], InternedKey] = {}
        keys: list[InternedKey] = []
        for i in range(len(contexts)):
            lo, hi = offsets[i], offsets[i + 1]
            signature = (contexts[i], code_bytes[lo * itemsize : hi * itemsize])
            key = interned.get(signature)
            if key is None:
                structure = (
                    strings[contexts[i]],
                    tuple(event_struct(codes_list[j]) for j in range(lo, hi)),
                )
                key = interned[signature] = InternedKey(structure)
            keys.append(key)
        return keys

    # -- bulk feature vectors --------------------------------------------------

    def pairwise_vectors(self) -> list[np.ndarray]:
        """Canonical pairwise rows: event (start, end) pairs then segment end."""
        return self._vector_rows("pairwise")

    def minkowski_vectors(self) -> list[np.ndarray]:
        """Minkowski rows: segment duration first, then event pairs."""
        return self._vector_rows("minkowski")

    def wavelet_vectors(self, *, scale: float, pad: bool = True) -> list[np.ndarray]:
        """Transformed wavelet rows for the pyramid with scale ``scale``."""
        return self._vector_rows(("wavelet", scale, pad))

    def _vector_rows(self, layout) -> list[np.ndarray]:
        rows = self._rows.get(layout)
        if rows is None:
            with obs.span(
                "columnar.vectorize", rank=self.rank, stage=str(layout)
            ):
                rows = self._rows[layout] = self._build_rows(layout)
        return rows

    def _build_rows(self, layout) -> list[np.ndarray]:
        """Build every segment's feature vector, grouped by event count.

        Segments with ``k`` events share a vector width, so each group is one
        2-D allocation filled by strided assignment; the returned list holds
        row views in segment order.  Values are bitwise identical to the
        per-segment builders in :mod:`repro.core.metrics.vectors` because the
        relative timestamps already are (see :meth:`_relative`) and layout
        assembly only moves them.
        """
        rel_ev_starts, rel_ev_ends, rel_ends = self._relative()
        counts = np.diff(self.ev_offsets)
        rows: list[Optional[np.ndarray]] = [None] * self.n_segments
        for k in np.unique(counts).tolist():
            idx = np.flatnonzero(counts == k)
            m = idx.size
            if k:
                ev_idx = (self.ev_offsets[idx][:, None] + np.arange(k)).reshape(-1)
                starts_grid = rel_ev_starts[ev_idx].reshape(m, k)
                ends_grid = rel_ev_ends[ev_idx].reshape(m, k)
            if layout == "pairwise":
                group = np.empty((m, 2 * k + 1), dtype=np.float64)
                if k:
                    group[:, 0 : 2 * k : 2] = starts_grid
                    group[:, 1 : 2 * k : 2] = ends_grid
                group[:, 2 * k] = rel_ends[idx]
            elif layout == "minkowski":
                group = np.empty((m, 2 * k + 1), dtype=np.float64)
                # Leading element is the duration: on a normalised segment
                # that is ``rel_end - 0.0 == rel_end`` bit for bit.
                group[:, 0] = rel_ends[idx]
                if k:
                    group[:, 1 : 2 * k + 1 : 2] = starts_grid
                    group[:, 2 : 2 * k + 2 : 2] = ends_grid
            else:  # ("wavelet", scale, pad)
                _, scale, pad = layout
                base = 2 * k + 2
                target = _next_power_of_two(base) if pad else base
                group = np.zeros((m, target), dtype=np.float64)
                if k:
                    group[:, 1 : 2 * k + 1 : 2] = starts_grid
                    group[:, 2 : 2 * k + 2 : 2] = ends_grid
                group[:, 2 * k + 1] = rel_ends[idx]
                if not pad:
                    # Ablation variant: truncate to a power of two instead.
                    usable = 1 << max(0, base.bit_length() - 1)
                    if usable != base:
                        group = group[:, :usable]
                group = pyramid_rows(group, scale)
            for row_index, i in enumerate(idx.tolist()):
                rows[i] = group[row_index]
        return rows

    # -- lazy materialization --------------------------------------------------

    def _materialize_lists(self):
        """Python-scalar mirrors of the columns, built once on first use.

        Materialization hands plain floats/ints to ``Segment``/``Event`` so a
        rebuilt segment is indistinguishable from one built by
        ``relative_to_start()`` (down to ``repr``).
        """
        lists = self._lists
        if lists is None:
            rel_ev_starts, rel_ev_ends, rel_ends = self._relative()
            lists = self._lists = (
                self.contexts.tolist(),
                rel_ends.tolist(),
                self.ev_offsets.tolist(),
                self.ev_names.tolist(),
                rel_ev_starts.tolist(),
                rel_ev_ends.tolist(),
                self.ev_mpi.tolist(),
                None if self.indices is None else self.indices.tolist(),
            )
        return lists

    def segment(self, i: int) -> Segment:
        """Materialize segment ``i`` in its *normalised* (relative) form.

        Returns a fresh object each call — callers that want sharing keep the
        reference, callers that will mutate the result (``iter_avg`` stores)
        simply call again.  Bitwise identical to
        ``decoded_segments[i].relative_to_start()``.

        Deliberately unspanned: materializations happen per stored
        representative inside the reduction loop, and telemetry stays at
        rank/stage granularity (the ``columnar.materialized`` counter carries
        the per-segment tally; :meth:`segments` spans its bulk pass).
        """
        contexts, rel_ends, offsets, names, ev_starts, ev_ends, ev_mpi, indices = (
            self._materialize_lists()
        )
        strings = self.strings
        mpi_table = self.mpi_table
        rank = self.rank
        events = [
            Event(
                name=strings[names[j]],
                start=ev_starts[j],
                end=ev_ends[j],
                rank=rank,
                mpi=mpi_table[ev_mpi[j]] if ev_mpi[j] >= 0 else None,
            )
            for j in range(offsets[i], offsets[i + 1])
        ]
        self.materialized += 1
        return Segment(
            context=strings[contexts[i]],
            rank=rank,
            start=0.0,
            end=rel_ends[i],
            events=events,
            index=i if indices is None else indices[i],
        )

    def segments(self) -> list[Segment]:
        """Materialize every segment (test/oracle convenience, not the hot path)."""
        with obs.span("columnar.materialize", rank=self.rank, n=self.n_segments):
            return [self.segment(i) for i in range(self.n_segments)]

    def starts_list(self) -> list[float]:
        """Absolute segment starts as Python floats (for exec records)."""
        return self.starts.tolist()

    # -- pickling --------------------------------------------------------------

    def __getstate__(self):
        # Derived caches (keys, vectors, scalar mirrors) are cheaper to
        # rebuild in a worker than to ship across the pickle boundary.
        return {
            "rank": self.rank,
            "contexts": self.contexts,
            "starts": self.starts,
            "ends": self.ends,
            "ev_offsets": self.ev_offsets,
            "ev_names": self.ev_names,
            "ev_starts": self.ev_starts,
            "ev_ends": self.ev_ends,
            "ev_mpi": self.ev_mpi,
            "strings": self.strings,
            "mpi_table": self.mpi_table,
            "indices": self.indices,
        }

    def __setstate__(self, state):
        self.__init__(**state)
