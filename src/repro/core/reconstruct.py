"""Reconstruction of an approximate full trace from a reduced trace.

Every entry of the ``segmentExecs`` list is replayed: the referenced stored
segment's (relative) events are shifted to the recorded start time.  The
result has exactly the same structure as the original trace (same segments,
same events, same MPI parameters) but approximated timestamps — which is what
the approximation-distance and trend-retention criteria quantify.

For the ``iter_k`` method the paper (footnote 1) fills executions beyond the
k collected copies with the *last* collected segment; the mean of the k
collected copies is available as an alternative fill-in policy.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.trace.segments import Segment
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

__all__ = ["reconstruct", "reconstruct_rank"]

IterKFill = Literal["last", "mean"]


def _mean_segment(group: list[StoredSegment]) -> Segment:
    """Build a synthetic segment holding the mean timestamps of ``group``."""
    template = group[-1].segment
    stacked = np.vstack([member.timestamps() for member in group])
    mean = stacked.mean(axis=0)
    events = []
    for i, event in enumerate(template.events):
        events.append(
            type(event)(
                name=event.name,
                start=float(min(mean[2 * i], mean[2 * i + 1])),
                end=float(mean[2 * i + 1]),
                rank=event.rank,
                mpi=event.mpi,
            )
        )
    return Segment(
        context=template.context,
        rank=template.rank,
        start=0.0,
        end=float(mean[-1]),
        events=events,
        index=template.index,
    )


def reconstruct_rank(
    reduced: ReducedRankTrace, *, iter_k_fill: IterKFill = "last"
) -> SegmentedRankTrace:
    """Reconstruct one rank's approximate segment list."""
    if iter_k_fill not in ("last", "mean"):
        raise ValueError(f"iter_k_fill must be 'last' or 'mean', got {iter_k_fill!r}")
    by_id = reduced.stored_by_id()

    # Pre-compute mean representatives per structural group when requested.
    mean_by_id: dict[int, Segment] = {}
    if iter_k_fill == "mean":
        groups: dict[tuple, list[StoredSegment]] = {}
        for stored in reduced.stored:
            groups.setdefault(stored.segment.structure(), []).append(stored)
        for group in groups.values():
            mean_by_id[group[-1].segment_id] = _mean_segment(group)

    segments: list[Segment] = []
    for index, ((segment_id, start), was_match) in enumerate(
        zip(reduced.execs, reduced.exec_matched)
    ):
        stored = by_id.get(segment_id)
        if stored is None:
            raise KeyError(
                f"execution entry references unknown segment id {segment_id} on rank {reduced.rank}"
            )
        representative = stored.segment
        if was_match and iter_k_fill == "mean" and segment_id in mean_by_id:
            representative = mean_by_id[segment_id]
        rebuilt = representative.shifted(start).with_rank(reduced.rank)
        rebuilt.index = index
        segments.append(rebuilt)
    return SegmentedRankTrace(rank=reduced.rank, segments=segments)


def reconstruct(reduced: ReducedTrace, *, iter_k_fill: IterKFill = "last") -> SegmentedTrace:
    """Reconstruct the approximate full trace for every rank."""
    return SegmentedTrace(
        name=reduced.name,
        ranks=[reconstruct_rank(rank, iter_k_fill=iter_k_fill) for rank in reduced.ranks],
    )
