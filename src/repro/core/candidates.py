"""Batched candidate matching: per-key candidate lists backed by row matrices.

The matching algorithm compares every incoming segment against all stored
representatives that share its structural key, in insertion order, returning
the first match (Section 3.1 of the paper).  That scan is the reduction's
inner loop, so instead of a Python loop over :class:`StoredSegment` objects
the candidates of each key are kept in a :class:`CandidateList`: an ordered
sequence that *also* maintains a contiguous 2-D matrix with one feature-vector
row per representative.  A metric's ``match_batch`` kernel then evaluates all
candidates in one NumPy broadcast and returns the first matching row.

Because every candidate under one structural key has the same structure, all
rows have the same width; the matrix grows geometrically so appending a
representative is amortised O(row).  Rows hold whatever vector layout the
owning metric asks for (canonical pairwise timestamps, the Minkowski layout,
or pre-transformed wavelet coefficients) — the vectors themselves are cached
on the :class:`StoredSegment` and invalidated when ``iter_avg`` mutates the
stored timestamps.

Alongside the matrix, the bucket maintains one scalar *pruning summary* per
row (the metric's ``row_summary`` hook: a p-norm for the Minkowski family, a
coefficient norm for the wavelet metrics, a max-magnitude extremum for the
pairwise family).  The summaries feed the metrics' ``prune_mask`` necessary
condition, so a probe can discard most of a deep bucket with O(rows) work
before the exact kernel runs on the few survivors; the columns are kept
consistent through append, direct-row append, eviction compaction, and
``iter_avg`` refreshes, exactly like the scale cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reduced import StoredSegment

__all__ = ["CandidateList", "MatchCounters", "first_match_index"]


def first_match_index(mask: np.ndarray) -> Optional[int]:
    """Index of the first True row of a boolean mask, or None.

    This is what preserves the paper's first-match semantics after the scan is
    vectorized: the kernel evaluates every row, but the *earliest* matching
    representative is still the one chosen.
    """
    if mask.size == 0:
        return None
    # ndarray.argmax() avoids the np.argmax dispatch wrapper; this runs once
    # per candidate-bucket probe, which is the reduction's innermost call.
    index = mask.argmax()
    return int(index) if mask[index] else None


@dataclass(slots=True)
class MatchCounters:
    """Instrumentation of the match-kernel stage of one reduction.

    ``calls`` counts invocations of the matching step (one per segment that
    had at least one candidate), ``rows_compared`` the total candidate rows
    those calls evaluated, and ``seconds`` their accumulated wall time.
    ``rows_pruned`` counts candidate rows the pruning prefilter discarded
    before the exact kernel ran (a subset of ``rows_compared``), and
    ``blocks_evaluated`` the insertion-order blocks the blocked early-exit
    probe actually touched — together they show how much of each bucket the
    exact kernel never had to see.
    """

    calls: int = 0
    rows_compared: int = 0
    seconds: float = 0.0
    rows_pruned: int = 0
    blocks_evaluated: int = 0

    def merged_with(self, other: "MatchCounters") -> "MatchCounters":
        """Combine counters from two reductions (used to aggregate across ranks)."""
        return MatchCounters(
            calls=self.calls + other.calls,
            rows_compared=self.rows_compared + other.rows_compared,
            seconds=self.seconds + other.seconds,
            rows_pruned=self.rows_pruned + other.rows_pruned,
            blocks_evaluated=self.blocks_evaluated + other.blocks_evaluated,
        )

    @property
    def rows_per_call(self) -> float:
        """Mean candidate-list depth seen by the kernel."""
        return self.rows_compared / self.calls if self.calls else 0.0

    @property
    def prune_rate(self) -> float:
        """Fraction of compared rows the prefilter discarded."""
        return self.rows_pruned / self.rows_compared if self.rows_compared else 0.0

    def record_to(self, registry) -> None:
        """Record these counters into an ``obs`` metrics registry.

        The registry is a parameter (rather than an import) so the core stays
        telemetry-agnostic; callers pick run-global or worker-local capture.
        """
        registry.inc("match.kernel_calls", self.calls)
        registry.inc("match.kernel_rows", self.rows_compared)
        registry.inc("match.kernel_seconds", self.seconds)
        registry.inc("match.rows_pruned", self.rows_pruned)
        registry.inc("match.blocks_evaluated", self.blocks_evaluated)


class CandidateList:
    """Ordered stored-representative bucket with a contiguous row matrix.

    Behaves as a sequence of :class:`StoredSegment` (the interface the legacy
    scan and the iteration metrics use) while lazily maintaining, for one
    owning metric, a 2-D float matrix whose row ``i`` is the metric's feature
    vector of entry ``i``.  The matrix is built on first use, extended
    incrementally as representatives are appended, and compacted in place when
    a bounded store evicts leading entries.
    """

    __slots__ = (
        "_entries",
        "_owner",
        "_matrix",
        "_scales",
        "_summaries",
        "_built",
        "_views",
    )

    #: Minimum row capacity allocated for a new matrix.
    MIN_CAPACITY = 4

    def __init__(self) -> None:
        self._entries: list["StoredSegment"] = []
        self._owner = None  # metric the matrix rows belong to
        self._matrix: Optional[np.ndarray] = None
        self._scales: Optional[np.ndarray] = None  # per-row scale cache
        self._summaries: Optional[np.ndarray] = None  # per-row pruning summary
        self._built = 0  # entries materialized into the matrix so far
        self._views = None  # cached (matrix[:n], scales[:n], summaries[:n])

    # -- sequence protocol (what the legacy scan path sees) -------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator["StoredSegment"]:
        return iter(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CandidateList {len(self._entries)} entries, {self._built} rows built>"

    # -- mutation --------------------------------------------------------------

    def append(self, stored: "StoredSegment") -> None:
        """Register a new representative (its matrix row is built lazily)."""
        self._entries.append(stored)
        self._views = None

    def append_built(self, stored: "StoredSegment", metric, row: np.ndarray) -> None:
        """Register a representative whose feature row is already built.

        The columnar path probes each incoming segment with a pre-built
        vector; when the segment becomes a new representative that same
        vector *is* its matrix row, so it is written into the bucket directly
        instead of being recomputed at the next probe.  The direct write only
        happens when this bucket's matrix already belongs to ``metric``, has
        no lazy backlog, and (once allocated) the row width matches; any
        other state falls back to the plain lazy append, which stays cheap
        because the caller seeds the vector on the stored segment's cache.
        """
        n = len(self._entries)
        matrix = self._matrix
        if self._owner is None and not n:
            self._owner = metric
        if (
            metric is self._owner
            and self._built == n
            and (matrix is None or row.size == matrix.shape[1])
        ):
            if matrix is None:
                capacity = self.MIN_CAPACITY
                while capacity <= n:
                    capacity *= 2
                matrix = self._matrix = np.zeros((capacity, row.size), dtype=float)
                if metric.row_scale is not None:
                    self._scales = np.zeros(capacity, dtype=float)
                if metric.row_summary is not None:
                    self._summaries = np.zeros(capacity, dtype=float)
            elif n >= matrix.shape[0]:
                grown = np.zeros((matrix.shape[0] * 2, matrix.shape[1]), dtype=float)
                grown[:n] = matrix[:n]
                matrix = self._matrix = grown
                if self._scales is not None:
                    scales = np.zeros(grown.shape[0], dtype=float)
                    scales[:n] = self._scales[:n]
                    self._scales = scales
                if self._summaries is not None:
                    summaries = np.zeros(grown.shape[0], dtype=float)
                    summaries[:n] = self._summaries[:n]
                    self._summaries = summaries
            matrix[n] = row
            if self._scales is not None:
                self._scales[n] = metric.row_scale(row)
            if self._summaries is not None:
                self._summaries[n] = metric.row_summary(row)
            self._built = n + 1
        self._entries.append(stored)
        self._views = None

    def trim_front(self, n: int) -> None:
        """Drop the ``n`` oldest representatives, compacting matrix rows.

        Used by bounded stores' eviction: the surviving rows are shifted to
        the front of the existing buffer, so the matrix never reallocates on
        eviction and insertion order is preserved.
        """
        if n <= 0:
            return
        del self._entries[:n]
        self._views = None
        if self._matrix is not None:
            surviving = max(0, self._built - n)
            if surviving:
                self._matrix[:surviving] = self._matrix[n : n + surviving].copy()
                if self._scales is not None:
                    self._scales[:surviving] = self._scales[n : n + surviving].copy()
                if self._summaries is not None:
                    self._summaries[:surviving] = self._summaries[n : n + surviving].copy()
            self._built = surviving

    def refresh(self, stored: "StoredSegment") -> None:
        """Rebuild the matrix row of a mutated representative.

        Called after a metric with ``mutates_stored`` (``iter_avg``) updates a
        stored segment's timestamps; the segment's own vector cache has been
        invalidated by then, so the row is recomputed from fresh values.
        """
        if self._owner is None:
            return
        try:
            index = self._entries.index(stored)
        except ValueError:
            return
        if index < self._built:
            row = np.asarray(self._owner.candidate_vector(stored), dtype=float)
            self._matrix[index] = row
            if self._scales is not None:
                self._scales[index] = self._owner.row_scale(row)
            if self._summaries is not None:
                self._summaries[index] = self._owner.row_summary(row)

    # -- pickling --------------------------------------------------------------

    def __getstate__(self):
        """Checkpointable state: entries plus the built index columns.

        The matrix, scale, and pruning-summary columns are trimmed to their
        built rows (spare growth capacity is not worth shipping) and kept
        **intact** through the round trip, so a restored bucket probes with
        the same prefilter state it had — a session checkpoint must not
        silently degrade to rebuild-on-first-probe.  The owner metric rides
        along by reference; inside a session checkpoint every bucket's owner
        is the session's one metric instance, which pickle memoization keeps
        as a single shared object.
        """
        built = self._built
        # A zero-row matrix (possible after eviction trimmed every built row)
        # is stored as None: restoring a 0-capacity buffer would break the
        # doubling growth rule, and an empty matrix carries no information.
        keep = built > 0 and self._matrix is not None
        return {
            "entries": self._entries,
            "owner": self._owner,
            "matrix": self._matrix[:built].copy() if keep else None,
            "scales": self._scales[:built].copy() if keep and self._scales is not None else None,
            "summaries": (
                self._summaries[:built].copy()
                if keep and self._summaries is not None
                else None
            ),
            "built": built if keep else 0,
        }

    def __setstate__(self, state):
        self._entries = state["entries"]
        self._owner = state["owner"]
        self._matrix = state["matrix"]
        self._scales = state["scales"]
        self._summaries = state["summaries"]
        self._built = state["built"]
        self._views = None

    # -- the matrix ------------------------------------------------------------

    def matrix(self, metric) -> np.ndarray:
        """Feature-vector matrix for ``metric``: one row per representative.

        ``metric`` must provide ``candidate_vector(stored) -> 1-D ndarray``
        (see :class:`repro.core.metrics.base.DistanceMetric`).  The matrix is
        owned by one metric at a time; a different metric triggers a full
        rebuild (in practice each reduction run uses a single metric).
        """
        return self.matrix_and_scales(metric)[0]

    def matrix_and_scales(self, metric) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Like :meth:`matrix`, plus the cached per-row scale vector.

        Metrics whose match limit scales with each candidate's largest
        measurement magnitude (Minkowski, wavelet) declare a ``row_scale``
        hook; its value is computed once per row at build time and cached, so
        the kernel doesn't recompute ``abs(matrix).max(axis=1)`` on every
        incoming segment.  Metrics without the hook get None.

        The result pair is memoized until the bucket's rows change (append,
        eviction, owner switch): in steady state — a probe per incoming
        segment, few new representatives — this is a plain attribute read on
        the reduction's hottest path.  In-place row refreshes after
        ``iter_avg`` mutations don't invalidate it; the views alias the
        refreshed buffer.
        """
        views = self._views
        if views is not None and metric is self._owner:
            return views[0], views[1]
        return self.matrix_scales_summaries(metric)[:2]

    def matrix_scales_summaries(
        self, metric
    ) -> tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Matrix, scale vector, and per-row pruning summaries for ``metric``.

        The summary column (present when the metric declares a ``row_summary``
        hook) carries one scalar bound per row — a norm or extremum of the row
        — computed once at build time, exactly like the scale cache.  It feeds
        the metric's ``prune_stats`` prefilter, which is what lets a probe
        discard most of a deep bucket before the exact kernel runs.
        """
        if metric is not self._owner:
            self._owner = metric
            self._matrix = None
            self._scales = None
            self._summaries = None
            self._built = 0
            self._views = None
        elif self._views is not None:
            return self._views
        n = len(self._entries)
        while self._built < n:
            row = np.asarray(metric.candidate_vector(self._entries[self._built]), dtype=float)
            matrix = self._matrix
            if matrix is None:
                capacity = self.MIN_CAPACITY
                while capacity < n:
                    capacity *= 2
                matrix = self._matrix = np.zeros((capacity, row.size), dtype=float)
                if metric.row_scale is not None:
                    self._scales = np.zeros(capacity, dtype=float)
                if metric.row_summary is not None:
                    self._summaries = np.zeros(capacity, dtype=float)
            elif self._built >= matrix.shape[0]:
                grown = np.zeros((matrix.shape[0] * 2, matrix.shape[1]), dtype=float)
                grown[: self._built] = matrix[: self._built]
                matrix = self._matrix = grown
                if self._scales is not None:
                    scales = np.zeros(grown.shape[0], dtype=float)
                    scales[: self._built] = self._scales[: self._built]
                    self._scales = scales
                if self._summaries is not None:
                    summaries = np.zeros(grown.shape[0], dtype=float)
                    summaries[: self._built] = self._summaries[: self._built]
                    self._summaries = summaries
            matrix[self._built] = row
            if self._scales is not None:
                self._scales[self._built] = metric.row_scale(row)
            if self._summaries is not None:
                self._summaries[self._built] = metric.row_summary(row)
            self._built += 1
        if self._matrix is None:
            # No entries yet: an empty matrix with unknown width.
            return np.zeros((0, 0), dtype=float), None, None
        scales = self._scales[:n] if self._scales is not None else None
        summaries = self._summaries[:n] if self._summaries is not None else None
        self._views = (self._matrix[:n], scales, summaries)
        return self._views
