"""Frame-backed traces: the evaluation read protocol over columnar frames.

:class:`FrameTrace` exposes a set of decoded :class:`~repro.core.frames.RankFrame`
columns through the same read surface as
:class:`~repro.trace.trace.SegmentedTrace`, so the evaluation criteria —
EXPERT analysis, approximation distance, trend retention — and the reducers
consume a trace file without ever rebuilding its
:class:`~repro.trace.segments.Segment` objects:

* :meth:`FrameRankTrace.timestamps` fills the criterion's flat per-rank
  timestamp layout with three strided column assignments (pure copies of the
  decoded float64 values, so the array is bitwise identical to the
  segment-walk form);
* :meth:`FrameRankTrace.events` yields absolute :class:`~repro.trace.events.Event`
  objects straight from the flattened event columns (event order inside a
  frame *is* execution order), which is all the EXPERT analyzer reads;
* :meth:`FrameTrace.duration` is a column ``max``.

The only consumers that still need segment objects are oracles and scan
metrics; for them :attr:`FrameRankTrace.segments` lazily materializes the
*absolute* segments from the columns — counted in
:attr:`RankFrame.materialized` like every other materialization, so the
evaluation equivalence tests can assert how rarely that happens.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.frames import RankFrame
from repro.trace.events import Event
from repro.trace.segments import Segment, iter_segments

__all__ = ["FrameRankTrace", "FrameTrace"]


class FrameRankTrace:
    """One rank of a frame-backed trace, readable like ``SegmentedRankTrace``."""

    __slots__ = ("frame", "_segments")

    def __init__(self, frame: RankFrame) -> None:
        self.frame = frame
        self._segments: Optional[list[Segment]] = None

    @property
    def rank(self) -> int:
        return self.frame.rank

    def __len__(self) -> int:
        return self.frame.n_segments

    @property
    def num_events(self) -> int:
        return self.frame.n_events

    def events(self) -> Iterator[Event]:
        """All events of the rank in execution order, with absolute timestamps.

        The flattened event columns are laid out segment by segment, so
        iterating them flat is exactly the segment-walk order of
        :meth:`~repro.trace.trace.SegmentedRankTrace.events` — no segment
        objects needed.
        """
        frame = self.frame
        strings = frame.strings
        mpi_table = frame.mpi_table
        rank = frame.rank
        names = frame.ev_names.tolist()
        starts = frame.ev_starts.tolist()
        ends = frame.ev_ends.tolist()
        mpi_ids = frame.ev_mpi.tolist()
        for j in range(len(names)):
            mpi_id = mpi_ids[j]
            yield Event(
                name=strings[names[j]],
                start=starts[j],
                end=ends[j],
                rank=rank,
                mpi=mpi_table[mpi_id] if mpi_id >= 0 else None,
            )

    def timestamps(self) -> np.ndarray:
        """The criterion's flat timestamp layout, filled by strided assignment.

        Per segment: its start, each event's (start, end), its end — the
        layout of :meth:`~repro.trace.trace.SegmentedRankTrace.timestamps`.
        Segment ``i``'s block begins at ``2*i + 2*ev_offsets[i]`` (two
        boundary values per preceding segment plus two values per preceding
        event), which turns the whole walk into three vectorized copies of
        the decoded columns — bitwise identical to the scalar walk because
        no arithmetic touches the values themselves.
        """
        frame = self.frame
        n = frame.n_segments
        out = np.empty(2 * n + 2 * frame.n_events, dtype=float)
        offsets = frame.ev_offsets
        seg_pos = 2 * np.arange(n, dtype=np.int64)
        out[seg_pos + 2 * offsets[:-1]] = frame.starts
        out[seg_pos + 2 * offsets[1:] + 1] = frame.ends
        if frame.n_events:
            counts = np.diff(offsets)
            seg_of_event = np.repeat(np.arange(n, dtype=np.int64), counts)
            ev_pos = 2 * seg_of_event + 1 + 2 * np.arange(frame.n_events, dtype=np.int64)
            out[ev_pos] = frame.ev_starts
            out[ev_pos + 1] = frame.ev_ends
        return out

    @property
    def segments(self) -> list[Segment]:
        """Absolute segment objects, materialized from the columns on demand.

        The compatibility fallback for oracles and scan consumers: values are
        the decoded columns verbatim (no renormalisation round-trip), so each
        segment is bit-identical to the one a segment decoder would have
        built.  Counted in :attr:`RankFrame.materialized` so tests can assert
        the hot paths never come through here.
        """
        segments = self._segments
        if segments is None:
            segments = self._segments = self._materialize_absolute()
        return segments

    def _materialize_absolute(self) -> list[Segment]:
        frame = self.frame
        strings = frame.strings
        mpi_table = frame.mpi_table
        rank = frame.rank
        contexts = frame.contexts.tolist()
        starts = frame.starts.tolist()
        ends = frame.ends.tolist()
        offsets = frame.ev_offsets.tolist()
        names = frame.ev_names.tolist()
        ev_starts = frame.ev_starts.tolist()
        ev_ends = frame.ev_ends.tolist()
        ev_mpi = frame.ev_mpi.tolist()
        indices = None if frame.indices is None else frame.indices.tolist()
        segments: list[Segment] = []
        for i in range(len(starts)):
            events = [
                Event(
                    name=strings[names[j]],
                    start=ev_starts[j],
                    end=ev_ends[j],
                    rank=rank,
                    mpi=mpi_table[ev_mpi[j]] if ev_mpi[j] >= 0 else None,
                )
                for j in range(offsets[i], offsets[i + 1])
            ]
            segments.append(
                Segment(
                    context=strings[contexts[i]],
                    rank=rank,
                    start=starts[i],
                    end=ends[i],
                    events=events,
                    index=i if indices is None else indices[i],
                )
            )
        frame.materialized += len(segments)
        return segments


class FrameTrace:
    """A whole trace held as columnar frames, readable like ``SegmentedTrace``.

    Built by :meth:`from_file` (``.rpb`` ranks decode straight to frames;
    forward-only text streams adapt through
    :meth:`RankFrame.from_segments`) or :meth:`from_frames`.  The reducers
    and the pipeline/sweep ingestion recognise it and take their columnar
    paths; everything else reads it through the ``SegmentedTrace`` protocol.
    """

    __slots__ = ("name", "ranks")

    def __init__(self, name: str, ranks: Iterable[FrameRankTrace]) -> None:
        self.name = name
        self.ranks = list(ranks)

    @classmethod
    def from_frames(cls, name: str, frames: Iterable[RankFrame]) -> "FrameTrace":
        return cls(name, (FrameRankTrace(frame) for frame in frames))

    @classmethod
    def from_file(cls, path, name: Optional[str] = None) -> "FrameTrace":
        """Decode a trace file (any registered format) into frames.

        Indexed formats decode each rank's byte range directly into columns;
        forward-only formats stream records through the segmenter and the
        segments→frame adapter.
        """
        from repro.trace.formats import resolve_format

        path = Path(path)
        fmt = resolve_format(path)
        if fmt.rank_frame is not None and fmt.rank_ids is not None:
            frames = [fmt.rank_frame(path, rank) for rank in fmt.rank_ids(path)]
        else:
            frames = [
                RankFrame.from_segments(rank, iter_segments(records))
                for rank, records in fmt.rank_streams(path)
            ]
        return cls.from_frames(name or path.stem, frames)

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    @property
    def num_segments(self) -> int:
        return sum(rank.frame.n_segments for rank in self.ranks)

    @property
    def num_events(self) -> int:
        return sum(rank.frame.n_events for rank in self.ranks)

    @property
    def materialized(self) -> int:
        """Total segment materializations across all frames (lazy-path audit)."""
        return sum(rank.frame.materialized for rank in self.ranks)

    def rank(self, rank: int) -> FrameRankTrace:
        if not 0 <= rank < len(self.ranks):
            raise IndexError(f"rank {rank} out of range for trace with {len(self.ranks)} ranks")
        return self.ranks[rank]

    def timestamps(self) -> np.ndarray:
        """Concatenated per-rank timestamp arrays (rank order)."""
        if not self.ranks:
            return np.asarray([], dtype=float)
        return np.concatenate([rank.timestamps() for rank in self.ranks])

    def duration(self) -> float:
        """Wall-clock span of the trace (max segment end over all ranks)."""
        ends = [
            rank.frame.ends.max() for rank in self.ranks if rank.frame.n_segments
        ]
        return float(max(ends)) if ends else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FrameTrace {self.name!r} nprocs={self.nprocs} "
            f"segments={self.num_segments} materialized={self.materialized}>"
        )
