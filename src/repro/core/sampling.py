"""Trace sampling — the paper's "future directions" extension.

Section 6 of the paper names *trace sampling* (Carrington et al., Vetter,
Gamblin et al.) as the next difference method to investigate.  This module
provides two sampling strategies expressed in the same reducer framework, so
they can be compared against the nine similarity methods with the exact same
evaluation criteria:

* :class:`PeriodicSampling` — keep every ``period``-th execution of each traced
  segment of code (systematic sampling);
* :class:`RandomSampling` — keep each execution independently with probability
  ``rate`` (Vetter-style statistical sampling), always keeping the first
  execution of each pattern so reconstruction has a representative.

Executions that are not kept are recorded only in the execution list, exactly
like a matched segment in the similarity methods; reconstruction fills them in
with the most recently kept execution of the same pattern.

These strategies are intentionally *not* part of
:data:`repro.core.metrics.METRIC_NAMES` — the paper evaluates nine methods and
the reproduction keeps that set intact — but they plug into
:class:`~repro.core.reducer.TraceReducer`, :mod:`repro.evaluation`, and the
benchmark harness unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics.base import SimilarityMetric
from repro.core.reduced import StoredSegment
from repro.trace.segments import Segment
from repro.util.rng import rng_for
from repro.util.validation import check_probability

__all__ = ["PeriodicSampling", "RandomSampling"]


class PeriodicSampling(SimilarityMetric):
    """Keep every ``period``-th execution of each traced segment of code.

    ``period`` = 1 keeps everything (no reduction); ``period`` = 10 keeps one
    execution in ten.  The first execution of every pattern is always kept.
    """

    name = "sample_period"

    def __init__(self, period: int):
        if period < 1:
            raise ValueError(f"sampling period must be >= 1, got {period}")
        self.period = int(period)
        self.threshold = float(period)

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        if not stored:
            return None
        executions_so_far = sum(entry.count for entry in stored)
        if executions_so_far % self.period == 0:
            return None  # keep this execution as a new stored segment
        return stored[-1]


class RandomSampling(SimilarityMetric):
    """Keep each execution independently with probability ``rate``.

    The sampling decisions are drawn from a deterministic per-instance stream
    (seeded), so reductions are reproducible.
    """

    name = "sample_random"

    def __init__(self, rate: float, seed: int = 0):
        check_probability("rate", rate)
        self.rate = float(rate)
        self.threshold = float(rate)
        self._rng = rng_for(seed, "random_sampling", rate)

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        if not stored:
            return None
        if self._rng.random() < self.rate:
            return None  # sampled: keep the real measurements
        return stored[-1]
