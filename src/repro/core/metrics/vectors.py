"""Measurement-vector layouts used by the distance methods.

The paper uses two slightly different vector layouts:

* the Minkowski distances compare the vector
  ``(segment end, e0.start, e0.end, e1.start, e1.end, ...)`` — the worked
  example in Section 3.2.1 builds ``(49, 1, 17, 18, 48)`` for a segment with
  two events and a relative end time of 49;
* the wavelet transforms compare the vector
  ``(0, e0.start, e0.end, ..., segment end)`` zero-padded to the next power of
  two (the leading element is the segment's relative start, which is always
  zero after normalisation).

Both layouts are provided here so the choice can be ablated.
"""

from __future__ import annotations

import numpy as np

from repro.trace.segments import Segment

__all__ = ["pairwise_vector", "minkowski_vector", "wavelet_vector", "next_power_of_two"]


def pairwise_vector(segment: Segment) -> np.ndarray:
    """Canonical timestamp vector: event (start, end) pairs then segment end."""
    return np.asarray(segment.timestamps(), dtype=float)


def minkowski_vector(segment: Segment) -> np.ndarray:
    """Vector layout used by the Minkowski distances (segment end first).

    The leading element is the segment *duration* ``end - start``,
    unconditionally: branching on the truthiness of ``start`` (as an earlier
    revision did) silently treats ``start == 0.0`` differently from every
    other offset, which only coincidentally produced the same number.
    """
    values = [segment.end - segment.start]
    for event in segment.events:
        values.append(event.start)
        values.append(event.end)
    return np.asarray(values, dtype=float)


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def wavelet_vector(segment: Segment, *, pad: bool = True) -> np.ndarray:
    """Vector layout used by the wavelet transforms.

    Leading relative start (always 0 after normalisation), event start/end
    pairs, segment end; zero-padded to the next power of two when ``pad`` is
    True (the transforms require a power-of-two length).
    """
    values = [0.0]
    for event in segment.events:
        values.append(event.start)
        values.append(event.end)
    values.append(segment.end - segment.start)
    arr = np.asarray(values, dtype=float)
    if not pad:
        return arr
    target = next_power_of_two(arr.size)
    if target == arr.size:
        return arr
    padded = np.zeros(target, dtype=float)
    padded[: arr.size] = arr
    return padded
