"""Minkowski distance methods: Manhattan, Euclidean, Chebyshev.

The distance between the two segments' measurement vectors is compared against
``threshold × (largest measurement in the pair of vectors)`` — the worked
example of Section 3.2.1: vectors (49, 1, 17, 18, 48) and (51, 1, 40, 41, 50)
have Manhattan/Euclidean/Chebyshev distances 50 / 32.6 / 23 and the match
limit for threshold 0.2 is ``0.2 × 51 = 10.2``.
"""

from __future__ import annotations

import math

from typing import Hashable, Optional

import numpy as np

from repro.core.metrics.base import PRUNE_EPS, PRUNE_TINY, DistanceMetric
from repro.core.metrics.vectors import minkowski_vector
from repro.trace.segments import Segment

__all__ = ["MinkowskiMetric", "Manhattan", "Euclidean", "Chebyshev", "minkowski_distance"]


def minkowski_distance(a: np.ndarray, b: np.ndarray, order: float) -> float:
    """Minkowski distance of order ``order`` (``math.inf`` for Chebyshev)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"vectors must have equal length, got {a.size} and {b.size}")
    diff = np.abs(a - b)
    if math.isinf(order):
        return float(diff.max()) if diff.size else 0.0
    if order <= 0:
        raise ValueError(f"Minkowski order must be positive, got {order}")
    return float(np.power(np.power(diff, order).sum(), 1.0 / order))


class MinkowskiMetric(DistanceMetric):
    """Common implementation for the three Minkowski variants."""

    #: Minkowski order (1, 2, or inf); set by subclasses.
    order: float = 1.0

    def distance(self, new_segment: Segment, stored_segment: Segment) -> float:
        """Distance between the two segments' Minkowski measurement vectors."""
        return minkowski_distance(
            minkowski_vector(new_segment), minkowski_vector(stored_segment), self.order
        )

    def limit(self, new_segment: Segment, stored_segment: Segment) -> float:
        """Maximum distance still considered a match for this segment pair.

        The scale is the largest measurement *magnitude* in the pair of
        vectors.  A signed ``max(initial=0.0)`` would clamp the limit to zero
        whenever every measurement is <= 0, making near-identical segments
        unmatchable; magnitudes keep the limit meaningful for any sign.
        """
        v1 = minkowski_vector(new_segment)
        v2 = minkowski_vector(stored_segment)
        largest = max(float(np.abs(v1).max(initial=0.0)), float(np.abs(v2).max(initial=0.0)))
        return self.threshold * largest

    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        return self.distance(new_segment, stored_segment) <= self.limit(
            new_segment, stored_segment
        )

    # -- batched matching ------------------------------------------------------

    def vector_key(self) -> Hashable:
        return "minkowski"

    def build_vector(self, segment: Segment) -> np.ndarray:
        return minkowski_vector(segment)

    def row_scale(self, vector: np.ndarray) -> float:
        """Largest measurement magnitude of one candidate row (cached)."""
        return float(np.abs(vector).max(initial=0.0))

    def frame_vectors(self, frame):
        if type(self).build_vector is MinkowskiMetric.build_vector:
            return frame.minkowski_vectors()
        return [self.build_vector(frame.segment(i)) for i in range(frame.n_segments)]

    def match_stats(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        diff = np.abs(matrix - vector)
        if math.isinf(self.order):
            distances = diff.max(axis=1, initial=0.0)
        else:
            # Row-wise Minkowski norm; the power/sum/power sequence mirrors
            # minkowski_distance so per-row results match the scan exactly.
            distances = np.power(np.power(diff, self.order).sum(axis=1), 1.0 / self.order)
        if row_scales is None:
            row_scales = np.abs(matrix).max(axis=1, initial=0.0)
        return distances, np.maximum(row_scales, np.abs(vector).max(initial=0.0))

    def row_summary(self, vector: np.ndarray) -> float:
        """Pruning summary of one candidate row: its own p-norm (cached)."""
        if math.isinf(self.order):
            return float(np.abs(vector).max(initial=0.0))
        return float(np.power(np.power(np.abs(vector), self.order).sum(), 1.0 / self.order))

    def prune_stats(
        self,
        vector: np.ndarray,
        summaries: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        # Triangle inequality of the p-norm (valid for order >= 1, incl. inf):
        # |‖x‖_p - ‖r‖_p| <= d_p(x, r), and the match limit's base
        # max(row_scale, max|x|) is prune-side computable, so a row can only
        # match if the norm gap already fits under the limit.
        if self.order < 1.0:  # quasi-norms break the triangle inequality
            return np.full(summaries.shape, -np.inf), None
        probe = self.row_summary(vector)
        stat = np.abs(summaries - probe)
        stat -= (summaries + probe) * PRUNE_EPS + PRUNE_TINY
        if row_scales is None:
            raise ValueError("Minkowski pruning requires the cached row scales")
        return stat, np.maximum(row_scales, np.abs(vector).max(initial=0.0))


class Manhattan(MinkowskiMetric):
    """Minkowski distance with m = 1 (sum of absolute differences)."""

    name = "manhattan"
    order = 1.0


class Euclidean(MinkowskiMetric):
    """Minkowski distance with m = 2."""

    name = "euclidean"
    order = 2.0


class Chebyshev(MinkowskiMetric):
    """Minkowski distance with m = ∞ (largest single difference)."""

    name = "chebyshev"
    order = math.inf
