"""Wavelet-transform methods: average transform and Haar transform.

The segment's timestamp vector (leading 0, event start/end pairs, segment end,
zero-padded to a power of two) is decomposed with the discrete wavelet
transform; the Euclidean distance between the transformed vectors is compared
against ``threshold × (largest value in the pair of transformed vectors)``.

The *average* transform computes pairwise trends ``(x + y) / 2`` and
fluctuations ``(y - x) / 2``; the *Haar* transform multiplies both by √2,
which preserves the Euclidean norm (a property verified by the test suite).
The worked example of Figure 3 in the paper is reproduced in the unit tests:
the transformed vectors of segments s0 and s2 have Euclidean distance ≈ 1.9
and the match limit for threshold 0.2 is ``0.2 × 17.625 ≈ 3.5``.
"""

from __future__ import annotations

import math

from typing import Hashable, Optional

import numpy as np

from repro.core.metrics.base import PRUNE_EPS, PRUNE_TINY, DistanceMetric
from repro.core.metrics.vectors import next_power_of_two, wavelet_vector
from repro.trace.segments import Segment

__all__ = [
    "average_transform",
    "haar_transform",
    "WaveletMetric",
    "AvgWave",
    "HaarWave",
]


def _pyramid(values: np.ndarray, scale: float) -> np.ndarray:
    """Full multi-level DWT: repeatedly split into trends and fluctuations.

    The output layout is ``[final trend, coarsest details, ..., finest
    details]``; only the set of coefficients matters for the Euclidean
    distance and maximum used by the matching test.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        return values.copy()
    if n & (n - 1):
        raise ValueError(f"wavelet transform requires a power-of-two length, got {n}")
    details: list[np.ndarray] = []
    current = values
    while current.size > 1:
        pairs = current.reshape(-1, 2)
        trends = (pairs[:, 0] + pairs[:, 1]) * scale
        # Fluctuations use the (second - first) convention: with it, the worked
        # example of the paper's Figure 3 yields 17.625 (the final trend of s0)
        # as the largest value of the transformed vectors, exactly as printed.
        fluctuations = (pairs[:, 1] - pairs[:, 0]) * scale
        details.append(fluctuations)
        current = trends
    return np.concatenate([current] + details[::-1])


def average_transform(values: np.ndarray) -> np.ndarray:
    """Average wavelet transform: trends/fluctuations are (x ± y) / 2."""
    return _pyramid(values, 0.5)


def haar_transform(values: np.ndarray) -> np.ndarray:
    """Haar wavelet transform: trends/fluctuations are (x ± y) / √2."""
    return _pyramid(values, 1.0 / math.sqrt(2.0))


#: Pyramid scale of each known transform — the key the columnar bulk path
#: uses to reproduce ``transform`` row-batched (``frames.pyramid_rows``).
_TRANSFORM_SCALES = {average_transform: 0.5, haar_transform: 1.0 / math.sqrt(2.0)}


class WaveletMetric(DistanceMetric):
    """Common implementation for the two wavelet variants."""

    #: Set by subclasses to one of the transform functions above.
    transform = staticmethod(average_transform)

    def __init__(self, threshold: float, *, pad: bool = True):
        super().__init__(threshold)
        self.pad = pad

    def transformed(self, segment: Segment) -> np.ndarray:
        """Transformed measurement vector of ``segment``."""
        vector = wavelet_vector(segment, pad=self.pad)
        if not self.pad:
            # Truncate to a power of two instead of padding (ablation variant).
            usable = 1 << max(0, vector.size.bit_length() - 1)
            if usable != vector.size:
                vector = vector[:usable]
            if vector.size == 0:
                vector = np.zeros(1)
        return type(self).transform(vector)

    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        t1 = self.transformed(new_segment)
        t2 = self.transformed(stored_segment)
        # sqrt(sum of squares) rather than np.linalg.norm: BLAS dot products
        # may sum in a different order, and the batched kernel must reproduce
        # this distance bit-for-bit.
        distance = float(np.sqrt(np.square(t1 - t2).sum()))
        # The match limit scales with the largest coefficient *magnitude*:
        # fluctuations are signed, so a signed max would clamp the limit to
        # zero for vectors whose coefficients are all <= 0 and near-identical
        # segments could never match.
        largest = max(float(np.abs(t1).max(initial=0.0)), float(np.abs(t2).max(initial=0.0)))
        return distance <= self.threshold * largest

    # -- batched matching ------------------------------------------------------

    def vector_key(self) -> Hashable:
        # Rows hold *transformed* coefficients, so the cache key must pin the
        # transform variant and the padding ablation.
        return ("wavelet", self.name, self.pad)

    def build_vector(self, segment: Segment) -> np.ndarray:
        return self.transformed(segment)

    def row_scale(self, vector: np.ndarray) -> float:
        """Largest coefficient magnitude of one transformed row (cached)."""
        return float(np.abs(vector).max(initial=0.0))

    def frame_vectors(self, frame):
        # The bulk path re-derives the pyramid scale from the transform
        # function; an unknown transform (or overridden vector builder) means
        # a subclass we cannot vectorize for — fall back to per-segment build.
        scale = _TRANSFORM_SCALES.get(type(self).transform)
        if (
            scale is not None
            and type(self).build_vector is WaveletMetric.build_vector
            and type(self).transformed is WaveletMetric.transformed
        ):
            return frame.wavelet_vectors(scale=scale, pad=self.pad)
        return [self.build_vector(frame.segment(i)) for i in range(frame.n_segments)]

    def match_stats(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        distances = np.sqrt(np.square(matrix - vector).sum(axis=1))
        if row_scales is None:
            row_scales = np.abs(matrix).max(axis=1, initial=0.0)
        return distances, np.maximum(row_scales, np.abs(vector).max(initial=0.0))

    def row_summary(self, vector: np.ndarray) -> float:
        """Pruning summary of one transformed row: its Euclidean norm (cached)."""
        return float(np.sqrt(np.square(vector).sum()))

    def prune_stats(
        self,
        vector: np.ndarray,
        summaries: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        # Rows hold transformed coefficients and the match distance is their
        # Euclidean distance, so the 2-norm triangle inequality applies
        # directly: |‖x‖₂ - ‖r‖₂| <= d₂(x, r) <= t * max(row_scale, max|x|).
        probe = self.row_summary(vector)
        stat = np.abs(summaries - probe)
        stat -= (summaries + probe) * PRUNE_EPS + PRUNE_TINY
        if row_scales is None:
            raise ValueError("wavelet pruning requires the cached row scales")
        return stat, np.maximum(row_scales, np.abs(vector).max(initial=0.0))


class AvgWave(WaveletMetric):
    """Average wavelet transform method (the paper's overall winner)."""

    name = "avgWave"
    transform = staticmethod(average_transform)


class HaarWave(WaveletMetric):
    """Haar wavelet transform method."""

    name = "haarWave"
    transform = staticmethod(haar_transform)
