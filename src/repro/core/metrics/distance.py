"""Pairwise distance methods: relative difference and absolute difference.

Both methods compare each measurement with its paired counterpart in
isolation; a single pair exceeding the threshold fails the whole match.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.metrics.base import PRUNE_EPS, PRUNE_TINY, DistanceMetric
from repro.trace.segments import Segment

__all__ = ["RelDiff", "AbsDiff", "relative_differences"]


def _max_magnitude(vector: np.ndarray) -> float:
    """Pruning summary of one pairwise row: its largest magnitude."""
    return float(np.abs(vector).max(initial=0.0))


def relative_differences(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise relative differences ``|a - b| / max(|a|, |b|)``.

    Pairs where both values are (near) zero have zero relative difference.
    This matches the paper's worked example: comparing 17 and 40 gives
    ``23 / 40 = 0.58``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.maximum(np.abs(a), np.abs(b))
    diff = np.abs(a - b)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(denom > 0.0, diff / np.where(denom > 0.0, denom, 1.0), 0.0)
    return rel


class RelDiff(DistanceMetric):
    """Relative difference of every paired measurement against a threshold.

    Because every pair is judged in isolation and differences are scaled by
    the pair's own magnitude, this is one of the strictest criteria in the
    set; the paper expects (and finds) low error but comparatively little file
    size reduction.
    """

    name = "relDiff"

    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        rel = relative_differences(new_ts, stored_ts)
        return bool(np.all(rel <= self.threshold))

    def match_one(self, vector: np.ndarray, row: np.ndarray) -> bool:
        # max(rel) <= t decides identically to all(rel <= t): the values are
        # finite and non-negative (see match_stats).
        rel = relative_differences(vector, row)
        return rel.max(initial=0.0) <= self.threshold

    def match_stats(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        # relative_differences broadcasts (rows, n) against (n,) element-wise
        # and is symmetric in its operands; "every pair within threshold" is
        # exactly "the row's largest relative difference within threshold"
        # (the values are finite and non-negative), so each row's decision is
        # bit-identical to the scalar scan.
        rel = relative_differences(matrix, vector)
        return rel.max(axis=1, initial=0.0), None

    def row_summary(self, vector: np.ndarray) -> float:
        return _max_magnitude(vector)

    def prune_stats(
        self,
        vector: np.ndarray,
        summaries: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        # Necessary condition from the extrema alone.  With Mx = max|x|,
        # Mr = max|r| and (wlog) Mx >= Mr, at k* = argmax|x_k|:
        # Mx - Mr <= |x_k*| - |r_k*| <= |x_k* - r_k*| <= t*max(|x_k*|,|r_k*|)
        # <= t*max(Mx, Mr); so a match requires |Mx - Mr| <= t*max(Mx, Mr).
        probe = _max_magnitude(vector)
        stat = np.abs(summaries - probe)
        stat -= (summaries + probe) * PRUNE_EPS + PRUNE_TINY
        return stat, np.maximum(summaries, probe)


class AbsDiff(DistanceMetric):
    """Absolute difference of every paired measurement against a threshold.

    The threshold is in µs.  Unlike relDiff this has no bias against events
    that occur early in the segment (small timestamps), so the paper expects
    fairly accurate timing across processes.
    """

    name = "absDiff"

    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        return bool(np.all(np.abs(new_ts - stored_ts) <= self.threshold))

    def match_one(self, vector: np.ndarray, row: np.ndarray) -> bool:
        # max(|d|) <= t decides identically to all(|d| <= t) on finite values;
        # the ndarray.max method skips the np.all dispatch wrapper, which is
        # most of a depth-one probe's kernel cost.
        return np.abs(row - vector).max(initial=0.0) <= self.threshold

    def match_stats(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        # "Every pair within threshold" == "largest absolute difference of
        # the row within threshold"; values are finite, so max() and all()
        # decide identically.
        return np.abs(matrix - vector).max(axis=1, initial=0.0), None

    def row_summary(self, vector: np.ndarray) -> float:
        return _max_magnitude(vector)

    def prune_stats(
        self,
        vector: np.ndarray,
        summaries: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        # Same extremum argument with a unit base: every |x_k - r_k| <= t
        # forces |max|x| - max|r|| <= t.
        probe = _max_magnitude(vector)
        stat = np.abs(summaries - probe)
        stat -= (summaries + probe) * PRUNE_EPS + PRUNE_TINY
        return stat, None
