"""Similarity-metric interface.

The reducer performs the structural checks itself (same context, same events
in the same order, same MPI parameters — the ``compareSegments`` pre-checks of
the paper) and hands the metric only *structurally identical* candidates.  The
metric then decides whether the measurements are similar enough for a match.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable, Optional, Sequence

import numpy as np

from repro.core.candidates import CandidateList, first_match_index
from repro.core.reduced import StoredSegment
from repro.trace.segments import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.core.frames import RankFrame

__all__ = ["SimilarityMetric", "DistanceMetric"]


class SimilarityMetric(ABC):
    """Decides whether a new segment matches one of the stored representatives."""

    #: Paper name of the method (e.g. ``"relDiff"``); set by subclasses.
    name: str = "abstract"

    #: Threshold value (method specific meaning); ``None`` for iter_avg.
    threshold: Optional[float] = None

    #: True when :meth:`on_match` mutates the chosen representative's
    #: timestamps (``iter_avg``); the reducer then refreshes cached rows.
    mutates_stored: bool = False

    @abstractmethod
    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        """Return the stored segment the candidate matches, or None.

        ``candidate`` has already been normalised (timestamps relative to the
        segment start) and every element of ``stored`` has the same structure
        as the candidate.  Implementations must scan ``stored`` in order and
        return the *first* match, mirroring the paper's algorithm.
        """

    def match_candidates(
        self, candidate: Segment, candidates: Sequence[StoredSegment]
    ) -> Optional[StoredSegment]:
        """Match against a candidate bucket, batched when the bucket allows it.

        The default simply delegates to :meth:`match` (the per-candidate
        scan); :class:`DistanceMetric` overrides this to run its vectorized
        ``match_batch`` kernel when handed a
        :class:`~repro.core.candidates.CandidateList`.
        """
        return self.match(candidate, candidates)

    def on_match(self, candidate: Segment, chosen: StoredSegment) -> None:
        """Hook invoked after a successful match (default: count it)."""
        chosen.count += 1

    def describe(self) -> str:
        """Human-readable method description, e.g. ``"relDiff(0.8)"``."""
        if self.threshold is None:
            return self.name
        return f"{self.name}({self.threshold:g})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class DistanceMetric(SimilarityMetric):
    """Base class for threshold-based distance methods.

    Subclasses implement :meth:`similar`, which receives the two segments'
    timestamp vectors (canonical layout: event start/end pairs followed by the
    segment end, all relative to the segment start) plus the segments
    themselves for methods that need a different vector layout.
    """

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError(f"{self.name} threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    @abstractmethod
    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        """Return True if the two measurement vectors are similar enough."""

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        new_ts = np.asarray(candidate.timestamps(), dtype=float)
        for entry in stored:
            stored_ts = entry.timestamps()
            if self.similar(new_ts, stored_ts, candidate, entry.segment):
                return entry
        return None

    # -- batched matching ------------------------------------------------------

    def vector_key(self) -> Hashable:
        """Cache key of this metric's vector layout on :class:`StoredSegment`.

        Metrics sharing a layout (e.g. relDiff and absDiff, which both use
        the canonical pairwise vector) share cached vectors.
        """
        return "pairwise"

    def build_vector(self, segment: Segment) -> np.ndarray:
        """This metric's feature vector of one (normalised) segment."""
        return np.asarray(segment.timestamps(), dtype=float)

    def candidate_vector(self, stored: StoredSegment) -> np.ndarray:
        """Feature vector of a stored representative, memoized on the segment."""
        return stored.cached_vector(self.vector_key(), self.build_vector)

    def frame_vectors(self, frame: "RankFrame") -> list[np.ndarray]:
        """Every segment's feature vector, built in bulk from a columnar frame.

        The bulk layout is only taken when this instance still uses the base
        class's :meth:`build_vector` — a subclass with a custom vector layout
        silently drops to the safe per-segment fallback (materialize, then
        build), which stays bitwise-correct at the oracle's cost.
        """
        if type(self).build_vector is DistanceMetric.build_vector:
            return frame.pairwise_vectors()
        return [self.build_vector(frame.segment(i)) for i in range(frame.n_segments)]

    #: Optional hook: scalar scale of one candidate row, cached next to the
    #: row at matrix-build time and handed to :meth:`match_stats` as
    #: ``row_scales``.  None (the default) means the metric's limit does not
    #: depend on a per-row statistic, so no scale vector is maintained.
    row_scale = None

    @abstractmethod
    def match_stats(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Threshold-independent per-row match statistics.

        Returns ``(stat, base)`` such that candidate row ``i`` matches the
        probe ``vector`` at threshold ``t`` iff ``stat[i] <= t * base[i]``
        (``base is None`` means a unit base: ``stat[i] <= t``).

        ``matrix`` holds one candidate feature vector per row, in insertion
        order, all built by :meth:`build_vector`; ``row_scales`` carries the
        cached :attr:`row_scale` of each row when the metric declares the
        hook.  Implementations evaluate every row in one NumPy broadcast
        using only row-wise operations and must reproduce :meth:`similar`'s
        decision for each row exactly, so batched and scanned reductions stay
        byte-identical.  Two hard requirements let the sweep engine share one
        call across a whole threshold grid:

        * the result must not depend on :attr:`threshold` (only the final
          ``stat <= t * base`` comparison does);
        * row ``i``'s results must not depend on the other rows, so
          statistics computed over several configs' stacked candidate
          matrices equal the per-config results bit for bit.
        """

    def match_batch(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> Optional[int]:
        """First row of ``matrix`` similar to ``vector``, or None.

        The decision is :meth:`match_stats` compared against this metric's
        own threshold; first-match semantics mirror the scan.
        """
        stat, base = self.match_stats(vector, matrix, row_scales)
        limits = self.threshold if base is None else self.threshold * base
        return first_match_index(stat <= limits)

    def match_candidates(
        self, candidate: Segment, candidates: Sequence[StoredSegment]
    ) -> Optional[StoredSegment]:
        if isinstance(candidates, CandidateList):
            vector = self.build_vector(candidate)
            matrix, scales = candidates.matrix_and_scales(self)
            index = self.match_batch(vector, matrix, scales)
            return candidates[index] if index is not None else None
        return self.match(candidate, candidates)
