"""Similarity-metric interface.

The reducer performs the structural checks itself (same context, same events
in the same order, same MPI parameters — the ``compareSegments`` pre-checks of
the paper) and hands the metric only *structurally identical* candidates.  The
metric then decides whether the measurements are similar enough for a match.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable, Optional, Sequence

import numpy as np

from repro.core.candidates import CandidateList, first_match_index
from repro.core.reduced import StoredSegment
from repro.trace.segments import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.core.frames import RankFrame

__all__ = [
    "SimilarityMetric",
    "DistanceMetric",
    "PRUNE_REL",
    "PRUNE_EPS",
    "PRUNE_TINY",
    "FIRST_BLOCK",
    "BLOCK_GROWTH",
    "PRUNE_MIN_ROWS",
    "PRUNE_FALLBACK_DENOM",
]

# -- pruning soundness slack ---------------------------------------------------
#
# The prune prefilter compares float-computed norm bounds, so a mathematically
# necessary condition could still reject a row the exact kernel would match if
# rounding pushed the computed bound a few ulps past the limit.  Every
# ``prune_stats`` therefore subtracts a conservative slack from its statistic
# and ``prune_mask`` widens the limit multiplicatively; enlarging either only
# keeps *more* rows, so correctness never depends on their exact values.

#: Relative widening of the prune limit (covers rounding of ``t * base``).
PRUNE_REL = 1.0 + 1e-9

#: Relative slack on the norm difference, scaled by the norms' magnitudes
#: (covers the ~n·eps accumulation error of a float norm reduction).
PRUNE_EPS = 1e-10

#: Absolute slack floor (covers subnormal underflow: squared sub-normal
#: differences can flush to zero, making a computed distance 0 while the
#: norms still differ by a tiny amount).
PRUNE_TINY = 1e-140

#: Blocked early-exit schedule: candidates are probed in insertion-order
#: blocks of FIRST_BLOCK, FIRST_BLOCK*BLOCK_GROWTH, ... rows; the scan stops
#: at the first block containing a match.  Buckets no deeper than FIRST_BLOCK
#: bypass the machinery entirely with a single exact kernel call.
FIRST_BLOCK = 64
BLOCK_GROWTH = 4

#: Minimum bucket depth before the summary prefilter engages.  Below this the
#: exact kernel's row matrix is small enough that the prefilter's extra array
#: operations cost more than the rows they would skip — the prefilter is an
#: *asymptotic* optimisation whose win grows with store depth.
PRUNE_MIN_ROWS = 512

#: When the prefilter keeps more than 1/PRUNE_FALLBACK_DENOM of a bucket's
#: rows (the store's summaries cluster tighter than the match limit), the
#: survivor gather would cost more than it skips; the probe falls back to the
#: blocked early-exit scan over the raw rows.
PRUNE_FALLBACK_DENOM = 4


class SimilarityMetric(ABC):
    """Decides whether a new segment matches one of the stored representatives."""

    #: Paper name of the method (e.g. ``"relDiff"``); set by subclasses.
    name: str = "abstract"

    #: Threshold value (method specific meaning); ``None`` for iter_avg.
    threshold: Optional[float] = None

    #: True when :meth:`on_match` mutates the chosen representative's
    #: timestamps (``iter_avg``); the reducer then refreshes cached rows.
    mutates_stored: bool = False

    @abstractmethod
    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        """Return the stored segment the candidate matches, or None.

        ``candidate`` has already been normalised (timestamps relative to the
        segment start) and every element of ``stored`` has the same structure
        as the candidate.  Implementations must scan ``stored`` in order and
        return the *first* match, mirroring the paper's algorithm.
        """

    def match_candidates(
        self,
        candidate: Segment,
        candidates: Sequence[StoredSegment],
        counters=None,
        *,
        prune: bool = True,
    ) -> Optional[StoredSegment]:
        """Match against a candidate bucket, batched when the bucket allows it.

        The default simply delegates to :meth:`match` (the per-candidate
        scan); :class:`DistanceMetric` overrides this to run its vectorized
        kernels when handed a :class:`~repro.core.candidates.CandidateList`.
        ``counters`` (a :class:`~repro.core.candidates.MatchCounters`) and
        ``prune`` only affect the batched override; they are accepted here so
        callers can pass them uniformly for any metric.
        """
        return self.match(candidate, candidates)

    def on_match(self, candidate: Segment, chosen: StoredSegment) -> None:
        """Hook invoked after a successful match (default: count it)."""
        chosen.count += 1

    def describe(self) -> str:
        """Human-readable method description, e.g. ``"relDiff(0.8)"``."""
        if self.threshold is None:
            return self.name
        return f"{self.name}({self.threshold:g})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class DistanceMetric(SimilarityMetric):
    """Base class for threshold-based distance methods.

    Subclasses implement :meth:`similar`, which receives the two segments'
    timestamp vectors (canonical layout: event start/end pairs followed by the
    segment end, all relative to the segment start) plus the segments
    themselves for methods that need a different vector layout.
    """

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError(f"{self.name} threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    @abstractmethod
    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        """Return True if the two measurement vectors are similar enough."""

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        new_ts = np.asarray(candidate.timestamps(), dtype=float)
        for entry in stored:
            stored_ts = entry.timestamps()
            if self.similar(new_ts, stored_ts, candidate, entry.segment):
                return entry
        return None

    # -- batched matching ------------------------------------------------------

    def vector_key(self) -> Hashable:
        """Cache key of this metric's vector layout on :class:`StoredSegment`.

        Metrics sharing a layout (e.g. relDiff and absDiff, which both use
        the canonical pairwise vector) share cached vectors.
        """
        return "pairwise"

    def build_vector(self, segment: Segment) -> np.ndarray:
        """This metric's feature vector of one (normalised) segment."""
        return np.asarray(segment.timestamps(), dtype=float)

    def candidate_vector(self, stored: StoredSegment) -> np.ndarray:
        """Feature vector of a stored representative, memoized on the segment."""
        return stored.cached_vector(self.vector_key(), self.build_vector)

    def frame_vectors(self, frame: "RankFrame") -> list[np.ndarray]:
        """Every segment's feature vector, built in bulk from a columnar frame.

        The bulk layout is only taken when this instance still uses the base
        class's :meth:`build_vector` — a subclass with a custom vector layout
        silently drops to the safe per-segment fallback (materialize, then
        build), which stays bitwise-correct at the oracle's cost.
        """
        if type(self).build_vector is DistanceMetric.build_vector:
            return frame.pairwise_vectors()
        return [self.build_vector(frame.segment(i)) for i in range(frame.n_segments)]

    #: Optional hook: scalar scale of one candidate row, cached next to the
    #: row at matrix-build time and handed to :meth:`match_stats` as
    #: ``row_scales``.  None (the default) means the metric's limit does not
    #: depend on a per-row statistic, so no scale vector is maintained.
    row_scale = None

    #: Optional scalar kernel ``match_one(vector, row) -> bool``: decides one
    #: probe against one cached feature row with 1-D operations, reproducing
    #: :meth:`similar`'s decision exactly.  Metrics that define it get a
    #: depth-one fast path — a single-candidate bucket skips the ``(1, n)``
    #: axis reductions and mask bookkeeping of the dense kernel, which is
    #: what keeps the batched probe ahead of the legacy scan even when every
    #: bucket holds one representative.  None (the default) means depth-one
    #: buckets use the dense kernel like any other shallow bucket.
    match_one = None

    @abstractmethod
    def match_stats(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Threshold-independent per-row match statistics.

        Returns ``(stat, base)`` such that candidate row ``i`` matches the
        probe ``vector`` at threshold ``t`` iff ``stat[i] <= t * base[i]``
        (``base is None`` means a unit base: ``stat[i] <= t``).

        ``matrix`` holds one candidate feature vector per row, in insertion
        order, all built by :meth:`build_vector`; ``row_scales`` carries the
        cached :attr:`row_scale` of each row when the metric declares the
        hook.  Implementations evaluate every row in one NumPy broadcast
        using only row-wise operations and must reproduce :meth:`similar`'s
        decision for each row exactly, so batched and scanned reductions stay
        byte-identical.  Two hard requirements let the sweep engine share one
        call across a whole threshold grid:

        * the result must not depend on :attr:`threshold` (only the final
          ``stat <= t * base`` comparison does);
        * row ``i``'s results must not depend on the other rows, so
          statistics computed over several configs' stacked candidate
          matrices equal the per-config results bit for bit.
        """

    def match_batch(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> Optional[int]:
        """First row of ``matrix`` similar to ``vector``, or None.

        The decision is :meth:`match_stats` compared against this metric's
        own threshold; first-match semantics mirror the scan.
        """
        stat, base = self.match_stats(vector, matrix, row_scales)
        limits = self.threshold if base is None else self.threshold * base
        return first_match_index(stat <= limits)

    #: Optional hook: scalar pruning summary of one candidate row (a norm or
    #: extremum), cached next to the row at matrix-build time and handed to
    #: :meth:`prune_stats` as ``summaries``.  None (the default) disables the
    #: pruning prefilter for the metric.
    row_summary = None

    #: Optional companion of :meth:`match_stats`: threshold-independent
    #: ``(stat, base)`` of a *necessary* match condition computed from the
    #: cached row summaries alone (O(rows), no matrix access).  A row can only
    #: match at threshold ``t`` if ``stat[i] <= t * base[i]`` (``base is
    #: None`` = unit base), so rows failing it are discarded before the exact
    #: kernel runs — first match among survivors is provably the first match
    #: overall.  Implementations must pre-subtract the float-soundness slack
    #: ``(summaries + probe_summary) * PRUNE_EPS + PRUNE_TINY`` from ``stat``
    #: so rounding can never prune a true match; the final comparison also
    #: widens the limit by :data:`PRUNE_REL`.  None (the default) means no
    #: prefilter.
    prune_stats = None

    def prune_mask(
        self,
        vector: np.ndarray,
        summaries: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean survivor mask of the pruning prefilter (True = may match).

        Vectorized necessary condition at this metric's own threshold; rows
        masked False are *provably* non-matches, rows masked True still need
        the exact kernel.
        """
        stat, base = self.prune_stats(vector, summaries, row_scales)
        limit = self.threshold * PRUNE_REL
        return stat <= (limit if base is None else limit * base)

    def match_pruned(
        self,
        vector: np.ndarray,
        matrix: np.ndarray,
        row_scales: Optional[np.ndarray] = None,
        summaries: Optional[np.ndarray] = None,
        counters=None,
    ) -> Optional[int]:
        """First matching row via the pruned, blocked early-exit probe.

        Byte-identical to :meth:`match_batch` (the prefilter is a necessary
        condition and blocks are scanned in insertion order), but the exact
        kernel only sees prefilter survivors, evaluated in geometric
        insertion-order blocks with early exit on the first matching block.
        Buckets no deeper than :data:`FIRST_BLOCK` take a single lean exact
        call; the prefilter only engages on buckets of at least
        :data:`PRUNE_MIN_ROWS` rows (below that, the exact kernel is cheaper
        than the filter) and falls back to the raw blocked scan when it keeps
        more than ``1/PRUNE_FALLBACK_DENOM`` of the rows.  ``counters`` (a
        :class:`~repro.core.candidates.MatchCounters`) accumulates
        ``rows_pruned``/``blocks_evaluated`` when given.
        """
        n = matrix.shape[0]
        if n <= FIRST_BLOCK:
            if counters is not None and n:
                counters.blocks_evaluated += 1
            return self.match_batch(vector, matrix, row_scales)
        threshold = self.threshold
        survivors = None
        pruned = 0
        if (
            n >= PRUNE_MIN_ROWS
            and summaries is not None
            and self.prune_stats is not None
        ):
            # Prefilter once over the cached summary column (O(rows) scalar
            # work, no matrix access).  When it bites, the exact kernel scans
            # only the gathered survivor rows; when the store's summaries
            # cluster tighter than the match limit, the gather would cost
            # more than it skips, so the probe keeps the raw blocked scan.
            keep = self.prune_mask(vector, summaries, row_scales)
            kept = np.flatnonzero(keep)
            if kept.size * PRUNE_FALLBACK_DENOM <= n:
                survivors = kept
                pruned = n - kept.size
        # Blocked early-exit scan, over survivor rows when the prefilter
        # engaged and over the raw rows otherwise.  First-match semantics
        # hold either way: blocks follow insertion order, and pruned rows
        # provably cannot match.
        found = None
        blocks = 0
        start = 0
        block = FIRST_BLOCK
        total = n if survivors is None else survivors.size
        while start < total:
            stop = min(total, start + block)
            blocks += 1
            if survivors is None:
                chunk = None
                rows = matrix[start:stop]
                scales = row_scales[start:stop] if row_scales is not None else None
            else:
                chunk = survivors[start:stop]
                rows = matrix[chunk]
                scales = row_scales[chunk] if row_scales is not None else None
            stat, base = self.match_stats(vector, rows, scales)
            limits = threshold if base is None else threshold * base
            index = first_match_index(stat <= limits)
            if index is not None:
                found = start + index if chunk is None else int(chunk[index])
                break
            start = stop
            block *= BLOCK_GROWTH
        if counters is not None:
            counters.blocks_evaluated += blocks
            counters.rows_pruned += pruned
        return found

    def match_candidates(
        self,
        candidate: Segment,
        candidates: Sequence[StoredSegment],
        counters=None,
        *,
        prune: bool = True,
    ) -> Optional[StoredSegment]:
        if isinstance(candidates, CandidateList):
            vector = self.build_vector(candidate)
            if prune and len(candidates) > FIRST_BLOCK:
                matrix, scales, summaries = candidates.matrix_scales_summaries(self)
                index = self.match_pruned(vector, matrix, scales, summaries, counters)
                return candidates[index] if index is not None else None
            # Shallow buckets (the overwhelmingly common case at the paper's
            # default thresholds) take the dense kernel inline — no summary
            # lookups, no blocking, no extra call frames — so pruning costs
            # them nothing and the batched probe stays ahead of the scan even
            # at depth one.
            matrix, scales = candidates.matrix_and_scales(self)
            if matrix.shape[0] == 1 and self.match_one is not None:
                # Depth-one bucket: scalar kernel on the cached row — 1-D ops
                # beat a (1, n) axis reduction, and unlike the scan the stored
                # vector never gets rebuilt.
                entry = candidates[0]
                return entry if self.match_one(vector, matrix[0]) else None
            stat, base = self.match_stats(vector, matrix, scales)
            mask = stat <= (self.threshold if base is None else self.threshold * base)
            if mask.size:
                index = mask.argmax()
                if mask[index]:
                    return candidates[int(index)]
            return None
        return self.match(candidate, candidates)
