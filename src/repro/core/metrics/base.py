"""Similarity-metric interface.

The reducer performs the structural checks itself (same context, same events
in the same order, same MPI parameters — the ``compareSegments`` pre-checks of
the paper) and hands the metric only *structurally identical* candidates.  The
metric then decides whether the measurements are similar enough for a match.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.core.reduced import StoredSegment
from repro.trace.segments import Segment

__all__ = ["SimilarityMetric", "DistanceMetric"]


class SimilarityMetric(ABC):
    """Decides whether a new segment matches one of the stored representatives."""

    #: Paper name of the method (e.g. ``"relDiff"``); set by subclasses.
    name: str = "abstract"

    #: Threshold value (method specific meaning); ``None`` for iter_avg.
    threshold: Optional[float] = None

    @abstractmethod
    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        """Return the stored segment the candidate matches, or None.

        ``candidate`` has already been normalised (timestamps relative to the
        segment start) and every element of ``stored`` has the same structure
        as the candidate.  Implementations must scan ``stored`` in order and
        return the *first* match, mirroring the paper's algorithm.
        """

    def on_match(self, candidate: Segment, chosen: StoredSegment) -> None:
        """Hook invoked after a successful match (default: count it)."""
        chosen.count += 1

    def describe(self) -> str:
        """Human-readable method description, e.g. ``"relDiff(0.8)"``."""
        if self.threshold is None:
            return self.name
        return f"{self.name}({self.threshold:g})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class DistanceMetric(SimilarityMetric):
    """Base class for threshold-based distance methods.

    Subclasses implement :meth:`similar`, which receives the two segments'
    timestamp vectors (canonical layout: event start/end pairs followed by the
    segment end, all relative to the segment start) plus the segments
    themselves for methods that need a different vector layout.
    """

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError(f"{self.name} threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    @abstractmethod
    def similar(
        self,
        new_ts: np.ndarray,
        stored_ts: np.ndarray,
        new_segment: Segment,
        stored_segment: Segment,
    ) -> bool:
        """Return True if the two measurement vectors are similar enough."""

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        new_ts = np.asarray(candidate.timestamps(), dtype=float)
        for entry in stored:
            stored_ts = entry.timestamps()
            if self.similar(new_ts, stored_ts, candidate, entry.segment):
                return entry
        return None
