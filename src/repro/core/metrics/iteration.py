"""Iteration-based methods: keep k copies (iter_k) or keep the average (iter_avg).

These methods ignore the measurements entirely: structural equality (which the
reducer has already established) is all that matters.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics.base import SimilarityMetric
from repro.core.reduced import StoredSegment
from repro.trace.segments import Segment

__all__ = ["IterK", "IterAvg"]


class IterK(SimilarityMetric):
    """Keep only the first ``k`` executions of each traced segment of code.

    Once ``k`` copies of a structural pattern are stored, every further
    execution "matches" and is recorded only in the execution list.  Following
    the paper's footnote, reconstruction fills those executions with the last
    collected copy by default (the mean of the k copies is available as an
    option, see :func:`repro.core.reconstruct.reconstruct`).
    """

    name = "iter_k"

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"iter_k requires k >= 1, got {k}")
        self.k = int(k)
        self.threshold = float(k)

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        if len(stored) >= self.k:
            return stored[-1]
        return None


class IterAvg(SimilarityMetric):
    """Keep one copy per traced segment of code holding average measurements.

    Every structurally identical segment matches, and each match folds the new
    measurements into the stored representative's running mean.  This gives
    the smallest possible files (exactly one stored segment per pattern) at
    the cost of smoothing away any behaviour variability.
    """

    name = "iter_avg"

    #: on_match folds the candidate into the stored running mean, mutating the
    #: representative's timestamps — cached candidate rows must be refreshed.
    mutates_stored = True

    def __init__(self) -> None:
        self.threshold = None

    def match(self, candidate: Segment, stored: Sequence[StoredSegment]) -> Optional[StoredSegment]:
        return stored[0] if stored else None

    def on_match(self, candidate: Segment, chosen: StoredSegment) -> None:
        # update_mean() also increments the execution count.
        chosen.update_mean(candidate.timestamps())
