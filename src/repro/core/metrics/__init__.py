"""Similarity metrics for segment matching.

The nine methods evaluated by the paper, grouped as in Section 3.2:

* pairwise distance methods: :class:`~repro.core.metrics.distance.RelDiff`,
  :class:`~repro.core.metrics.distance.AbsDiff`;
* Minkowski distances: :class:`~repro.core.metrics.minkowski.Manhattan`,
  :class:`~repro.core.metrics.minkowski.Euclidean`,
  :class:`~repro.core.metrics.minkowski.Chebyshev`;
* wavelet transforms: :class:`~repro.core.metrics.wavelet.AvgWave`,
  :class:`~repro.core.metrics.wavelet.HaarWave`;
* iteration-based methods: :class:`~repro.core.metrics.iteration.IterK`,
  :class:`~repro.core.metrics.iteration.IterAvg`.

Use :func:`create_metric` to instantiate a metric by its paper name, with the
paper's "best" threshold by default.
"""

from __future__ import annotations

from typing import Optional

from repro.core.metrics.base import DistanceMetric, SimilarityMetric
from repro.core.metrics.distance import AbsDiff, RelDiff
from repro.core.metrics.iteration import IterAvg, IterK
from repro.core.metrics.minkowski import Chebyshev, Euclidean, Manhattan, MinkowskiMetric
from repro.core.metrics.wavelet import AvgWave, HaarWave, WaveletMetric

__all__ = [
    "SimilarityMetric",
    "DistanceMetric",
    "RelDiff",
    "AbsDiff",
    "Manhattan",
    "Euclidean",
    "Chebyshev",
    "MinkowskiMetric",
    "AvgWave",
    "HaarWave",
    "WaveletMetric",
    "IterK",
    "IterAvg",
    "METRIC_CLASSES",
    "METRIC_NAMES",
    "DEFAULT_THRESHOLDS",
    "THRESHOLD_STUDY",
    "create_metric",
]

#: Metric classes keyed by the names used throughout the paper.
METRIC_CLASSES: dict[str, type[SimilarityMetric]] = {
    "relDiff": RelDiff,
    "absDiff": AbsDiff,
    "manhattan": Manhattan,
    "euclidean": Euclidean,
    "chebyshev": Chebyshev,
    "avgWave": AvgWave,
    "haarWave": HaarWave,
    "iter_k": IterK,
    "iter_avg": IterAvg,
}

#: All metric names, in the order the paper lists them.
METRIC_NAMES: tuple[str, ...] = tuple(METRIC_CLASSES)

#: The "best" thresholds selected by the paper's threshold study (Section 5.1)
#: and used throughout the comparative study (Section 5.2).  ``iter_avg``
#: takes no threshold.
DEFAULT_THRESHOLDS: dict[str, Optional[float]] = {
    "relDiff": 0.8,
    "absDiff": 1000.0,
    "manhattan": 0.4,
    "euclidean": 0.2,
    "chebyshev": 0.2,
    "avgWave": 0.2,
    "haarWave": 0.2,
    "iter_k": 10,
    "iter_avg": None,
}

#: Threshold values swept in the paper's threshold study (Section 5.1).
THRESHOLD_STUDY: dict[str, tuple[float, ...]] = {
    "relDiff": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "absDiff": (1e1, 1e2, 1e3, 1e4, 1e5, 1e6),
    "manhattan": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "euclidean": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "chebyshev": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "avgWave": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "haarWave": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "iter_k": (1, 10, 50, 100, 500, 1000),
}


def create_metric(name: str, threshold: Optional[float] = None) -> SimilarityMetric:
    """Instantiate a similarity metric by paper name.

    Parameters
    ----------
    name:
        One of :data:`METRIC_NAMES`.
    threshold:
        Method threshold; if omitted, the paper's best threshold
        (:data:`DEFAULT_THRESHOLDS`) is used.  ``iter_avg`` ignores it.
    """
    if name not in METRIC_CLASSES:
        raise ValueError(f"unknown similarity metric {name!r}; expected one of {METRIC_NAMES}")
    cls = METRIC_CLASSES[name]
    if name == "iter_avg":
        if threshold is not None:
            raise ValueError("iter_avg does not take a threshold")
        return cls()
    value = DEFAULT_THRESHOLDS[name] if threshold is None else threshold
    if name == "iter_k":
        return cls(int(value))
    return cls(float(value))
