"""Trace reduction: the paper's primary contribution.

The pipeline is:

1. segment every rank's trace (done by :mod:`repro.trace`);
2. :class:`~repro.core.reducer.TraceReducer` walks the segments of each rank
   in execution order, keeps a list of *stored* representative segments and a
   list of *segment executions* ``(id, start time)``, and asks a
   :class:`~repro.core.metrics.base.SimilarityMetric` whether a new segment
   matches an already-stored one (Section 3.1 of the paper);
3. :func:`~repro.core.reconstruct.reconstruct` rebuilds an approximate full
   trace from the reduced representation so the evaluation criteria (error,
   retention of performance trends) can be applied.
"""

from repro.core.candidates import CandidateList, MatchCounters
from repro.core.metrics import (
    DEFAULT_THRESHOLDS,
    METRIC_NAMES,
    THRESHOLD_STUDY,
    create_metric,
)
from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.core.reducer import TraceReducer, reduce_trace
from repro.core.reconstruct import reconstruct

__all__ = [
    "METRIC_NAMES",
    "DEFAULT_THRESHOLDS",
    "THRESHOLD_STUDY",
    "create_metric",
    "CandidateList",
    "MatchCounters",
    "StoredSegment",
    "ReducedRankTrace",
    "ReducedTrace",
    "TraceReducer",
    "reduce_trace",
    "reconstruct",
]
