"""Intra-process trace reduction (Section 3.1 of the paper).

For every rank, segments are processed in execution order.  Each new segment
is normalised (timestamps relative to its start) and compared against the
stored representatives that share its *structure* — same context, same events
in the same order, same message-passing parameters.  The similarity metric
decides whether the measurements match; on a match only the ``(segment id,
start time)`` execution entry is recorded, otherwise the segment itself is
stored as a new representative.

The reducer consumes segments one at a time from any iterable, so it composes
with the streaming readers in :mod:`repro.pipeline.stream` without the whole
trace being materialized.  The candidate-list bookkeeping can be delegated to
a pluggable representative store (see :mod:`repro.pipeline.store`) — anything
with ``candidates(key)`` / ``add(key, stored)`` — which is how the pipeline
bounds reducer memory; with no store the historical inline dictionary is used.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.candidates import CandidateList, MatchCounters
from repro.core.metrics.base import FIRST_BLOCK, DistanceMetric, SimilarityMetric
from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.trace.segments import Segment
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.frames import RankFrame

__all__ = ["TraceReducer", "reduce_trace", "SegmentStore"]


class SegmentStore(Protocol):
    """What the reducer needs from a representative store (duck-typed)."""

    def candidates(self, key: tuple) -> Sequence[StoredSegment]: ...

    def add(self, key: tuple, stored: StoredSegment) -> None: ...


class _InlineStore:
    """The reducer's historical unbounded candidate dictionary.

    Also the storage layer of :class:`repro.pipeline.store.UnboundedStore`,
    which subclasses it to add lookup counters — the unbounded semantics are
    implemented exactly once.  Buckets are
    :class:`~repro.core.candidates.CandidateList`\\ s, so the batched match
    kernels see a contiguous row matrix per structural key; to the legacy
    scan they still behave as ordered sequences.
    """

    __slots__ = ("_by_key", "_size")

    def __init__(self) -> None:
        self._by_key: dict[tuple, CandidateList] = {}
        self._size = 0

    def candidates(self, key: tuple) -> Sequence[StoredSegment]:
        return self._by_key.get(key, ())

    def add(self, key: tuple, stored: StoredSegment) -> None:
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = self._by_key[key] = CandidateList()
        bucket.append(stored)
        self._size += 1

    def add_built(self, key: tuple, stored: StoredSegment, metric, row) -> None:
        """Register a representative with its feature row already built.

        Optional store hook (the columnar path discovers it via ``getattr``):
        like :meth:`add`, but hands the bucket the probe vector that just
        failed to match so it becomes the new matrix row without a rebuild.
        """
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = self._by_key[key] = CandidateList()
        bucket.append_built(stored, metric, row)
        self._size += 1

    def __len__(self) -> int:
        return self._size


class TraceReducer:
    """Applies one similarity metric to segmented traces.

    A reducer instance is stateless between calls; it can be reused across
    ranks and traces.

    ``batch=True`` (the default) routes candidate matching through the
    metric's vectorized kernels whenever the store's buckets carry a row
    matrix; ``batch=False`` forces the legacy per-candidate scan.  On the
    batched path ``prune=True`` (the default) additionally runs the blocked
    early-exit probe with the metric's norm-bound prefilter, so the exact
    kernel only sees prefilter survivors; ``prune=False`` keeps the dense
    one-shot ``match_batch`` kernel.  All three produce byte-identical
    reduced traces — the flags exist so the scan and the dense kernel can
    serve as benchmark baselines and equivalence oracles.
    """

    def __init__(self, metric: SimilarityMetric, *, batch: bool = True, prune: bool = True):
        if not isinstance(metric, SimilarityMetric):
            raise TypeError(
                f"metric must be a SimilarityMetric, got {type(metric).__name__}"
            )
        self.metric = metric
        self.batch = bool(batch)
        self.prune = bool(prune)

    # -- per-rank reduction ---------------------------------------------------

    def reduce_rank(
        self, rank_trace: SegmentedRankTrace, *, store: Optional[SegmentStore] = None
    ) -> ReducedRankTrace:
        """Reduce one rank's segment list."""
        return self.reduce_segments(rank_trace.segments, rank=rank_trace.rank, store=store)

    def reduce_segments(
        self,
        segments: Iterable[Segment],
        *,
        rank: int = 0,
        store: Optional[SegmentStore] = None,
        match_counters: Optional[MatchCounters] = None,
        into: Optional[ReducedRankTrace] = None,
    ) -> ReducedRankTrace:
        """Reduce a segment stream (list, generator, or any iterable).

        Segments are consumed one at a time; memory is bounded by the
        representative store, not the input length.  When ``match_counters``
        is given, the match-kernel stage (calls, candidate rows, wall time)
        is accumulated into it; with None the hot loop carries no timing
        overhead.

        ``into`` makes the call *incremental*: segments are appended to an
        existing :class:`ReducedRankTrace` (new representatives continue its
        id sequence) instead of starting a fresh one.  Passing the same
        ``store`` and ``into`` across successive calls reduces a trace that
        arrives in pieces byte-identically to one batch call over the
        concatenated stream — the contract the online reduction service
        (:mod:`repro.service`) is built on.
        """
        reduced = ReducedRankTrace(rank=rank) if into is None else into
        if store is None:
            store = _InlineStore()
        next_id = len(reduced.stored)
        metric = self.metric
        batched = self.batch
        prune = self.prune
        matcher = metric.match_candidates if batched else metric.match
        mutates = metric.mutates_stored
        perf_counter = time.perf_counter

        for segment in segments:
            reduced.n_segments += 1
            relative = segment.relative_to_start()
            key = relative.structure()
            candidates = store.candidates(key)
            chosen = None
            if candidates:
                reduced.n_possible_matches += 1
                if match_counters is None:
                    if batched:
                        chosen = matcher(relative, candidates, prune=prune)
                    else:
                        chosen = matcher(relative, candidates)
                else:
                    started = perf_counter()
                    if batched:
                        chosen = matcher(relative, candidates, match_counters, prune=prune)
                    else:
                        chosen = matcher(relative, candidates)
                    match_counters.seconds += perf_counter() - started
                    match_counters.calls += 1
                    match_counters.rows_compared += len(candidates)
            if chosen is not None:
                reduced.n_matches += 1
                reduced.execs.append((chosen.segment_id, segment.start))
                reduced.exec_matched.append(True)
                metric.on_match(relative, chosen)
                if mutates:
                    refresh = getattr(candidates, "refresh", None)
                    if refresh is not None:
                        refresh(chosen)
            else:
                stored_segment = StoredSegment(segment_id=next_id, segment=relative)
                next_id += 1
                store.add(key, stored_segment)
                reduced.stored.append(stored_segment)
                reduced.execs.append((stored_segment.segment_id, segment.start))
                reduced.exec_matched.append(False)
        return reduced

    # -- columnar (frame) reduction ---------------------------------------------

    def reduce_frame(
        self,
        frame: "RankFrame",
        *,
        store: Optional[SegmentStore] = None,
        match_counters: Optional[MatchCounters] = None,
        into: Optional[ReducedRankTrace] = None,
    ) -> ReducedRankTrace:
        """Reduce one rank's columnar frame — the lazy-materialization path.

        Structural keys and feature vectors come straight from the frame's
        bulk passes; :class:`~repro.trace.segments.Segment` objects are only
        materialized for stored representatives (and for metrics the bulk
        path cannot serve).  Byte-identical to :meth:`reduce_segments` over
        the frame's decoded segments — the latter remains the oracle.

        ``into`` continues an existing :class:`ReducedRankTrace` (see
        :meth:`reduce_segments`): the incremental form the online reduction
        service uses to feed appended chunks through the columnar path.
        """
        reduced = ReducedRankTrace(rank=frame.rank) if into is None else into
        reduced.n_segments += frame.n_segments
        if store is None:
            store = _InlineStore()
        if self.batch and isinstance(self.metric, DistanceMetric):
            self._reduce_frame_vectorized(frame, reduced, store, match_counters)
        else:
            self._reduce_frame_scan(frame, reduced, store, match_counters)
        return reduced

    def _reduce_frame_vectorized(
        self,
        frame: "RankFrame",
        reduced: ReducedRankTrace,
        store: SegmentStore,
        match_counters: Optional[MatchCounters],
    ) -> None:
        """Distance metrics: probe with pre-built vectors, materialize on store."""
        metric = self.metric
        keys = frame.structural_keys()
        vectors = metric.frame_vectors(frame)
        starts = frame.starts_list()
        mutates = metric.mutates_stored
        # When on_match is the base-class default (count the match) it runs
        # inline, so matches never force a Segment materialization.
        default_on_match = type(metric).on_match is SimilarityMetric.on_match
        vector_key = metric.vector_key()
        add_built = getattr(store, "add_built", None)
        perf_counter = time.perf_counter
        prune = self.prune
        next_id = len(reduced.stored)

        for i in range(frame.n_segments):
            key = keys[i]
            vector = vectors[i]
            candidates = store.candidates(key)
            chosen = None
            if candidates:
                reduced.n_possible_matches += 1
                if match_counters is None:
                    chosen = self._match_frame_row(
                        metric, frame, i, vector, candidates, None, prune
                    )
                else:
                    started = perf_counter()
                    chosen = self._match_frame_row(
                        metric, frame, i, vector, candidates, match_counters, prune
                    )
                    match_counters.seconds += perf_counter() - started
                    match_counters.calls += 1
                    match_counters.rows_compared += len(candidates)
            if chosen is not None:
                reduced.n_matches += 1
                reduced.execs.append((chosen.segment_id, starts[i]))
                reduced.exec_matched.append(True)
                if default_on_match:
                    chosen.count += 1
                else:
                    metric.on_match(frame.segment(i), chosen)
                if mutates:
                    refresh = getattr(candidates, "refresh", None)
                    if refresh is not None:
                        refresh(chosen)
            else:
                stored_segment = StoredSegment(segment_id=next_id, segment=frame.segment(i))
                next_id += 1
                if not mutates:
                    # Seed the vector cache with a private copy (a frame row
                    # is a view that would pin the whole group matrix) and
                    # hand the row to the bucket so it is never recomputed.
                    row = np.array(vector)
                    stored_segment.cached_vector(vector_key, lambda _s, _row=row: _row)
                    if add_built is not None:
                        add_built(key, stored_segment, metric, row)
                    else:
                        store.add(key, stored_segment)
                else:
                    store.add(key, stored_segment)
                reduced.stored.append(stored_segment)
                reduced.execs.append((stored_segment.segment_id, starts[i]))
                reduced.exec_matched.append(False)

    @staticmethod
    def _match_frame_row(metric, frame, i, vector, candidates, counters=None, prune=True):
        """Batched probe of one frame row against a candidate bucket."""
        if isinstance(candidates, CandidateList):
            if prune and len(candidates) > FIRST_BLOCK:
                matrix, scales, summaries = candidates.matrix_scales_summaries(metric)
                index = metric.match_pruned(vector, matrix, scales, summaries, counters)
                return candidates[index] if index is not None else None
            # Shallow buckets bypass the pruning machinery entirely (see
            # DistanceMetric.match_candidates): the dense kernel, inline.
            matrix, scales = candidates.matrix_and_scales(metric)
            if matrix.shape[0] == 1 and metric.match_one is not None:
                # Depth-one fast path (see DistanceMetric.match_candidates).
                entry = candidates[0]
                return entry if metric.match_one(vector, matrix[0]) else None
            stat, base = metric.match_stats(vector, matrix, scales)
            mask = stat <= (metric.threshold if base is None else metric.threshold * base)
            if mask.size:
                index = mask.argmax()
                if mask[index]:
                    return candidates[int(index)]
            return None
        # A custom store without CandidateList buckets: scan semantics need
        # the segment itself.
        return metric.match_candidates(frame.segment(i), candidates)

    def _reduce_frame_scan(
        self,
        frame: "RankFrame",
        reduced: ReducedRankTrace,
        store: SegmentStore,
        match_counters: Optional[MatchCounters],
    ) -> None:
        """Scan metrics (iteration methods): materialize each segment.

        These metrics inspect the segment object itself, so the frame only
        contributes the interned structural keys; the per-segment work is
        exactly what :meth:`reduce_segments` did.
        """
        metric = self.metric
        batched = self.batch
        prune = self.prune
        matcher = metric.match_candidates if batched else metric.match
        mutates = metric.mutates_stored
        keys = frame.structural_keys()
        starts = frame.starts_list()
        perf_counter = time.perf_counter
        next_id = len(reduced.stored)

        for i in range(frame.n_segments):
            relative = frame.segment(i)
            candidates = store.candidates(keys[i])
            chosen = None
            if candidates:
                reduced.n_possible_matches += 1
                if match_counters is None:
                    if batched:
                        chosen = matcher(relative, candidates, prune=prune)
                    else:
                        chosen = matcher(relative, candidates)
                else:
                    started = perf_counter()
                    if batched:
                        chosen = matcher(relative, candidates, match_counters, prune=prune)
                    else:
                        chosen = matcher(relative, candidates)
                    match_counters.seconds += perf_counter() - started
                    match_counters.calls += 1
                    match_counters.rows_compared += len(candidates)
            if chosen is not None:
                reduced.n_matches += 1
                reduced.execs.append((chosen.segment_id, starts[i]))
                reduced.exec_matched.append(True)
                metric.on_match(relative, chosen)
                if mutates:
                    refresh = getattr(candidates, "refresh", None)
                    if refresh is not None:
                        refresh(chosen)
            else:
                stored_segment = StoredSegment(segment_id=next_id, segment=relative)
                next_id += 1
                store.add(keys[i], stored_segment)
                reduced.stored.append(stored_segment)
                reduced.execs.append((stored_segment.segment_id, starts[i]))
                reduced.exec_matched.append(False)

    # -- whole-trace reduction --------------------------------------------------

    def reduce(
        self, trace: SegmentedTrace, *, match_counters: Optional[MatchCounters] = None
    ) -> ReducedTrace:
        """Reduce every rank of ``trace`` independently (intra-process reduction).

        Frame-backed ranks (a :class:`~repro.core.frametrace.FrameTrace`)
        route through :meth:`reduce_frame`, so their segments are never
        materialized just to be re-normalised; segment-list ranks take
        :meth:`reduce_segments` as before.  Both produce byte-identical
        reduced traces.
        """
        reduced = ReducedTrace(
            name=trace.name,
            method=self.metric.name,
            threshold=self.metric.threshold,
        )
        for rank_trace in trace.ranks:
            frame = getattr(rank_trace, "frame", None)
            # Span per rank, not per segment: the segment loop is the match
            # kernel's hot path and must stay telemetry-free.
            with obs.span("rank.reduce", rank=rank_trace.rank):
                if frame is not None:
                    reduced.ranks.append(
                        self.reduce_frame(frame, match_counters=match_counters)
                    )
                else:
                    reduced.ranks.append(
                        self.reduce_segments(
                            rank_trace.segments,
                            rank=rank_trace.rank,
                            match_counters=match_counters,
                        )
                    )
        return reduced

    def reduce_streams(
        self,
        name: str,
        streams: Iterable[Tuple[int, Iterable[Segment]]],
        *,
        store_factory=None,
        match_counters: Optional[MatchCounters] = None,
    ) -> ReducedTrace:
        """Reduce ``(rank, segment stream)`` pairs serially, in stream order.

        ``store_factory`` builds one representative store per rank (e.g.
        ``lambda: LRUStore(1000)``); with None each rank gets the unbounded
        inline dictionary.
        """
        reduced = ReducedTrace(
            name=name,
            method=self.metric.name,
            threshold=self.metric.threshold,
        )
        for rank, segments in streams:
            store = store_factory() if store_factory is not None else None
            # Span per rank, not per segment: the segment loop is the match
            # kernel's hot path and must stay telemetry-free.
            with obs.span("rank.reduce", rank=rank):
                reduced.ranks.append(
                    self.reduce_segments(
                        segments, rank=rank, store=store, match_counters=match_counters
                    )
                )
        return reduced


def reduce_trace(trace: SegmentedTrace, metric: SimilarityMetric) -> ReducedTrace:
    """Convenience wrapper: ``TraceReducer(metric).reduce(trace)``."""
    return TraceReducer(metric).reduce(trace)
