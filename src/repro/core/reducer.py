"""Intra-process trace reduction (Section 3.1 of the paper).

For every rank, segments are processed in execution order.  Each new segment
is normalised (timestamps relative to its start) and compared against the
stored representatives that share its *structure* — same context, same events
in the same order, same message-passing parameters.  The similarity metric
decides whether the measurements match; on a match only the ``(segment id,
start time)`` execution entry is recorded, otherwise the segment itself is
stored as a new representative.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.metrics.base import SimilarityMetric
from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.trace.segments import Segment
from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

__all__ = ["TraceReducer", "reduce_trace"]


class TraceReducer:
    """Applies one similarity metric to segmented traces.

    A reducer instance is stateless between calls; it can be reused across
    ranks and traces.
    """

    def __init__(self, metric: SimilarityMetric):
        if not isinstance(metric, SimilarityMetric):
            raise TypeError(
                f"metric must be a SimilarityMetric, got {type(metric).__name__}"
            )
        self.metric = metric

    # -- per-rank reduction ---------------------------------------------------

    def reduce_rank(self, rank_trace: SegmentedRankTrace) -> ReducedRankTrace:
        """Reduce one rank's segment list."""
        return self.reduce_segments(rank_trace.segments, rank=rank_trace.rank)

    def reduce_segments(self, segments: Sequence[Segment], *, rank: int = 0) -> ReducedRankTrace:
        """Reduce an explicit list of segments (used directly by unit tests)."""
        reduced = ReducedRankTrace(rank=rank)
        stored_by_key: dict[tuple, list[StoredSegment]] = {}
        next_id = 0

        for segment in segments:
            reduced.n_segments += 1
            relative = segment.relative_to_start()
            key = relative.structure()
            candidates = stored_by_key.setdefault(key, [])
            if candidates:
                reduced.n_possible_matches += 1
            chosen = self.metric.match(relative, candidates) if candidates else None
            if chosen is not None:
                reduced.n_matches += 1
                reduced.execs.append((chosen.segment_id, segment.start))
                reduced.exec_matched.append(True)
                self.metric.on_match(relative, chosen)
            else:
                stored_segment = StoredSegment(segment_id=next_id, segment=relative)
                next_id += 1
                candidates.append(stored_segment)
                reduced.stored.append(stored_segment)
                reduced.execs.append((stored_segment.segment_id, segment.start))
                reduced.exec_matched.append(False)
        return reduced

    # -- whole-trace reduction --------------------------------------------------

    def reduce(self, trace: SegmentedTrace) -> ReducedTrace:
        """Reduce every rank of ``trace`` independently (intra-process reduction)."""
        reduced = ReducedTrace(
            name=trace.name,
            method=self.metric.name,
            threshold=self.metric.threshold,
        )
        for rank_trace in trace.ranks:
            reduced.ranks.append(self.reduce_rank(rank_trace))
        return reduced


def reduce_trace(trace: SegmentedTrace, metric: SimilarityMetric) -> ReducedTrace:
    """Convenience wrapper: ``TraceReducer(metric).reduce(trace)``."""
    return TraceReducer(metric).reduce(trace)
