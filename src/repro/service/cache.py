"""Content-digest result cache for the online reduction service.

Two requests that carry the same trace content under the same reduction
config must produce the same reduced bytes, so the service answers the second
one from a cache keyed by ``(trace digest, config key)`` without re-running
the reduction.

Digests hash the **exact** ``float64`` timestamp bytes (via ``struct``), not
the text serialization: the text format quantizes timestamps to two decimals,
so hashing it could collide two traces that genuinely differ below 0.01 µs
and would then serve the wrong cached result.  Per-rank digests are *chained*
(each appended batch of segments folds into a running 32-byte digest), which
is what lets a live session compute its trace digest incrementally and lets a
checkpoint carry the digest as plain bytes — ``hashlib`` objects themselves
do not pickle.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # import cycle guard only; these are annotations
    from repro.pipeline.stream import SegmentSource
    from repro.trace.segments import Segment

__all__ = [
    "segment_digest",
    "chain_digest",
    "combine_rank_digests",
    "source_digest",
    "CacheCounters",
    "ResultCache",
]

_EVENT_TS = struct.Struct("<dd")
_SEG_HEAD = struct.Struct("<qdd")
_RANK_ID = struct.Struct("<q")


def segment_digest(segment: "Segment") -> bytes:
    """Exact content digest (32 bytes) of one segment.

    Covers context, rank, segment start/end, and every event's name,
    timestamps, and MPI parameters — everything that can influence the
    reduction.  Timestamps are hashed as raw float64, so traces differing
    below text precision still digest differently.
    """
    h = hashlib.sha256()
    h.update(segment.context.encode("utf-8"))
    h.update(b"\x00")
    h.update(_SEG_HEAD.pack(segment.rank, segment.start, segment.end))
    for event in segment.events:
        h.update(event.name.encode("utf-8"))
        h.update(b"\x00")
        h.update(_EVENT_TS.pack(event.start, event.end))
        if event.mpi is not None:
            h.update(repr(event.mpi.key()).encode("utf-8"))
        h.update(b"\x01")
    return h.digest()


def chain_digest(previous: bytes, segment: "Segment") -> bytes:
    """Fold one more segment into a running per-rank digest.

    ``previous`` is ``b""`` for the first segment; the result is always 32
    bytes and picklable, unlike a live ``hashlib`` object.
    """
    return hashlib.sha256(previous + segment_digest(segment)).digest()


def combine_rank_digests(rank_digests: Mapping[int, bytes]) -> str:
    """Combine per-rank chained digests into one hex trace digest.

    Ranks are folded in sorted order so the digest does not depend on
    append/arrival order across ranks (within a rank, order matters and is
    captured by the chain).
    """
    h = hashlib.sha256()
    for rank in sorted(rank_digests):
        h.update(_RANK_ID.pack(rank))
        h.update(rank_digests[rank])
    return h.hexdigest()


def source_digest(source: "SegmentSource") -> str:
    """Digest a whole segment source without reducing it.

    Streams the same segments a session would ingest and applies the same
    chaining, so a finished session's :meth:`ReductionSession.trace_digest`
    equals ``source_digest`` of the trace it was fed — that equality is what
    makes the submit-path cache lookup sound.
    """
    from repro.pipeline.stream import rank_segment_streams

    digests: dict[int, bytes] = {}
    for rank, segments in rank_segment_streams(source):
        d = b""
        for segment in segments:
            d = hashlib.sha256(d + segment_digest(segment)).digest()
        digests[rank] = d
    return combine_rank_digests(digests)


@dataclass(slots=True)
class CacheCounters:
    """Hit/miss/eviction counters of one result cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def record_to(self, registry) -> None:
        registry.inc("service.cache_hits", self.hits)
        registry.inc("service.cache_misses", self.misses)
        registry.inc("service.cache_insertions", self.insertions)
        registry.inc("service.cache_evictions", self.evictions)


class ResultCache:
    """LRU cache of serialized reduced traces, bounded by payload bytes.

    Keys are ``(trace digest, config key)`` pairs; values are the canonical
    ``serialize_reduced_trace`` bytes.  A single payload larger than
    ``max_bytes`` is never stored (it would immediately evict everything and
    then itself).
    """

    def __init__(self, max_bytes: int = 64 << 20) -> None:
        if max_bytes < 1:
            raise ValueError(f"ResultCache max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.counters = CacheCounters()
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._bytes = 0

    @property
    def current_bytes(self) -> int:
        """Total payload bytes currently cached."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str, config_key: tuple) -> Optional[bytes]:
        """Return the cached reduced bytes, or ``None`` on a miss."""
        entry = self._entries.get((digest, config_key))
        if entry is None:
            self.counters.misses += 1
            return None
        self._entries.move_to_end((digest, config_key))
        self.counters.hits += 1
        return entry

    def put(self, digest: str, config_key: tuple, payload: bytes) -> bool:
        """Insert (or refresh) an entry; returns False if it cannot fit."""
        if len(payload) > self.max_bytes:
            return False
        key = (digest, config_key)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[key] = payload
        self._bytes += len(payload)
        self.counters.insertions += 1
        while self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self.counters.evictions += 1
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
