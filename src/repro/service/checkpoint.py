"""Freeze and resume reduction sessions.

A checkpoint is one pickle payload holding the session's complete state:
config, metric, per-rank representative stores (with their candidate-matrix
and pruning-index columns), partially reduced outputs, open segmenters,
chained digests, and flush watermarks.  A session restored from it — in the
same process or a fresh one — continues **bit-identically**: the reduced
bytes and stats of checkpoint → restore → finish equal those of an
uninterrupted run.

Two properties make that work:

* Everything is pickled in a *single* payload, so pickle's memo preserves
  object sharing — a representative referenced by both the store and the
  already-emitted output is one object after restore too, which matters for
  ``iter_avg`` (matches mutate stored timestamps) and for count updates.
* Keys and candidate state rehash/rebuild on restore
  (:class:`~repro.core.frames.InternedKey` re-derives its cached hash;
  candidate matrices re-grow from their trimmed copies), so checkpoints are
  portable across processes with different string-hash salts.

The reducer itself is *not* pickled — it is stateless given the metric — and
is rebuilt from the config, so checkpoints stay small and stable across
reducer-internals refactors.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro import obs
from repro.core.reducer import TraceReducer
from repro.service.session import ReductionSession

__all__ = [
    "STATE_VERSION",
    "session_state",
    "restore_state",
    "save_checkpoint",
    "load_checkpoint",
]

#: Bump when the payload layout changes; restores reject other versions
#: instead of resuming from a misread state.
STATE_VERSION = 1


def session_state(session: ReductionSession) -> bytes:
    """Serialize a session's complete state to bytes."""
    with obs.span("service.checkpoint", session=session.name):
        payload = {
            "version": STATE_VERSION,
            "name": session.name,
            "config": session.config,
            "metric": session.metric,
            "seq": session.seq,
            "finished": session.finished,
            "stats": session.stats,
            "ranks": session._ranks,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def restore_state(data: bytes) -> ReductionSession:
    """Rebuild a live session from :func:`session_state` bytes."""
    with obs.span("service.restore"):
        payload = pickle.loads(data)
        version = payload.get("version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported session checkpoint version {version!r}; "
                f"this build reads version {STATE_VERSION}"
            )
        config = payload["config"]
        session = ReductionSession.__new__(ReductionSession)
        session.name = payload["name"]
        session.config = config
        # The restored metric instance, not a fresh one: candidate lists in
        # the stores hold it as their owner, and ``iter_avg`` keeps per-run
        # state nowhere else — identity must survive the round trip.
        session.metric = payload["metric"]
        session.reducer = TraceReducer(
            session.metric, batch=config.batch, prune=config.prune
        )
        session.seq = payload["seq"]
        session.stats = payload["stats"]
        session._ranks = payload["ranks"]
        session._finished = payload["finished"]
    return session


def save_checkpoint(session: ReductionSession, path: str | Path) -> int:
    """Write a session checkpoint file; returns bytes written."""
    data = session_state(session)
    Path(path).write_bytes(data)
    return len(data)


def load_checkpoint(path: str | Path) -> ReductionSession:
    """Restore a session from a checkpoint file."""
    return restore_state(Path(path).read_bytes())
