"""Incremental reduction sessions.

A :class:`ReductionSession` is the batch reducer turned inside out: instead
of consuming a whole trace in one call, a session is a long-lived object that
accepts appended raw records or pre-segmented batches per rank, reduces each
batch immediately through the columnar
:class:`~repro.core.frames.RankFrame` → ``reduce_frame`` path, and can at any
point emit a *delta* — the stored representatives and execution entries added
or updated since the previous flush.

The incremental path is **byte-identical** to the batch
:class:`~repro.core.reducer.TraceReducer`: feeding a trace in any per-rank
chunking produces exactly the bytes of the one-shot reduction, because
``reduce_frame(..., into=)`` continues the same representative store and
output the batch path uses.  The session additionally chains a per-rank
content digest over everything it ingests, so a finished session knows the
digest of the trace it saw — the key the service's result cache is indexed
by.

All state (stores with their pruning-index columns, partially-open
segmenters, digests, stats) is picklable; :mod:`repro.service.checkpoint`
relies on that to freeze and resume sessions bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro import obs
from repro.core.candidates import MatchCounters
from repro.core.frames import RankFrame
from repro.core.metrics import create_metric
from repro.core.reduced import ReducedRankTrace, ReducedTrace, StoredSegment
from repro.core.reducer import TraceReducer
from repro.pipeline.store import create_store
from repro.service.cache import chain_digest, combine_rank_digests
from repro.trace.records import TraceRecord
from repro.trace.segments import RecordSegmenter, Segment

__all__ = [
    "SessionConfig",
    "SessionStats",
    "RankDelta",
    "ReductionDelta",
    "SessionResult",
    "ReductionSession",
]


@dataclass(frozen=True)
class SessionConfig:
    """Reduction configuration of one session.

    ``method``/``threshold`` select the similarity metric (paper-default
    threshold when ``None``); ``store_capacity`` bounds the representative
    store (``None`` = unbounded); ``batch``/``prune`` pick the matching
    implementation — all implementations are byte-identical, so only
    ``(method, threshold, store_capacity)`` participate in the cache
    :attr:`key`.
    """

    method: str
    threshold: Optional[float] = None
    store_capacity: Optional[int] = None
    batch: bool = True
    prune: bool = True

    def __post_init__(self) -> None:
        create_metric(self.method, self.threshold)  # validate eagerly
        if self.store_capacity is not None and self.store_capacity < 1:
            raise ValueError(
                f"store_capacity must be >= 1 or None, got {self.store_capacity}"
            )

    @property
    def key(self) -> tuple:
        """Result-cache key: everything that can change the reduced bytes."""
        return (self.method, self.threshold, self.store_capacity)

    def describe(self) -> str:
        parts = [self.method]
        if self.threshold is not None:
            parts.append(f"t={self.threshold:g}")
        if self.store_capacity is not None:
            parts.append(f"cap={self.store_capacity}")
        return "/".join(parts)


@dataclass(slots=True)
class SessionStats:
    """Counters of one session's lifetime (append/flush activity)."""

    appends: int = 0
    records: int = 0
    segments: int = 0
    flushes: int = 0
    deltas_emitted: int = 0
    match: MatchCounters = field(default_factory=MatchCounters)


@dataclass(slots=True)
class RankDelta:
    """One rank's changes since the previous flush.

    ``new`` are representatives stored in the window (first occurrence of a
    pattern); ``updated`` are *earlier* representatives a window execution
    matched — their ``count`` advanced, and under ``iter_avg`` their stored
    timestamps moved too, so consumers must replace them.  ``execs`` are the
    window's ``segmentExecs`` entries, the complete execution record.
    """

    rank: int
    new: list[StoredSegment]
    updated: list[StoredSegment]
    execs: list[Tuple[int, float]]


@dataclass(slots=True)
class ReductionDelta:
    """Everything a flush added to the reduced trace since the last one.

    Applying deltas in ``seq`` order reconstructs exactly the reduced trace a
    batch reduction of the full stream would produce.
    """

    name: str
    method: str
    threshold: Optional[float]
    seq: int
    ranks: list[RankDelta]

    @property
    def empty(self) -> bool:
        return not self.ranks

    @property
    def n_new(self) -> int:
        return sum(len(r.new) for r in self.ranks)

    @property
    def n_updated(self) -> int:
        return sum(len(r.updated) for r in self.ranks)

    @property
    def n_execs(self) -> int:
        return sum(len(r.execs) for r in self.ranks)


@dataclass(slots=True)
class SessionResult:
    """What :meth:`ReductionSession.finish` returns.

    ``reduced`` is the complete reduced trace (identical to the batch
    oracle's), ``delta`` the final unflushed tail, and ``digest`` the content
    digest of everything the session ingested — equal to
    :func:`repro.service.cache.source_digest` of the same trace.
    """

    reduced: ReducedTrace
    delta: ReductionDelta
    digest: str


class _RankState:
    """Per-rank incremental state: store, output, segmenter, digest, marks."""

    __slots__ = (
        "rank",
        "store",
        "reduced",
        "segmenter",
        "stored_mark",
        "exec_mark",
        "digest",
        "by_id",
    )

    def __init__(self, rank: int, store_capacity: Optional[int]) -> None:
        self.rank = rank
        self.store = create_store(store_capacity)
        self.reduced = ReducedRankTrace(rank=rank)
        #: Created lazily on the first ``append_records`` — segment appends
        #: never need one, and its absence asserts the two ingestion styles
        #: are not mixed mid-segment.
        self.segmenter: Optional[RecordSegmenter] = None
        #: Flush watermarks into ``reduced.stored`` / ``reduced.execs``.
        self.stored_mark = 0
        self.exec_mark = 0
        #: Chained content digest of every segment ingested so far.
        self.digest = b""
        #: segment_id -> StoredSegment for every representative that has
        #: already been announced in a delta (lets later flushes resolve
        #: "updated" references without scanning ``reduced.stored``).
        self.by_id: dict[int, StoredSegment] = {}


class ReductionSession:
    """One live incremental reduction: a (trace, config) pair under service.

    Parameters
    ----------
    name:
        Trace/session name; carried into deltas and results.
    config:
        A :class:`SessionConfig` (or a bare method name, promoted to one).

    Appending and flushing interleave freely; :meth:`finish` seals the
    session (open per-rank segmenters must have no partial segment) and
    returns the full reduced trace plus the final delta.
    """

    def __init__(self, name: str, config: SessionConfig | str) -> None:
        if isinstance(config, str):
            config = SessionConfig(method=config)
        self.name = name
        self.config = config
        self.metric = create_metric(config.method, config.threshold)
        self.reducer = TraceReducer(self.metric, batch=config.batch, prune=config.prune)
        self.stats = SessionStats()
        self.seq = 0
        self._ranks: dict[int, _RankState] = {}
        self._finished = False

    # -- introspection -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def ranks(self) -> list[int]:
        """Rank ids seen so far, sorted."""
        return sorted(self._ranks)

    @property
    def n_segments(self) -> int:
        """Segments reduced so far, across ranks."""
        return sum(st.reduced.n_segments for st in self._ranks.values())

    @property
    def live_representatives(self) -> int:
        """Representatives currently held as match candidates (memory cost).

        For bounded stores this is what eviction keeps under the capacity —
        the number the service's per-tenant budget meters.
        """
        return sum(len(st.store) for st in self._ranks.values())

    def trace_digest(self) -> str:
        """Content digest of everything ingested so far (hex).

        After :meth:`finish` this equals
        :func:`~repro.service.cache.source_digest` of the same trace.
        """
        return combine_rank_digests(
            {rank: st.digest for rank, st in self._ranks.items()}
        )

    # -- ingestion ---------------------------------------------------------

    def append_records(self, rank: int, records: Iterable[TraceRecord]) -> int:
        """Push raw trace records for one rank; returns segments completed.

        Records stream through a persistent per-rank
        :class:`~repro.trace.segments.RecordSegmenter`, so a segment may span
        any number of ``append_records`` calls; only *completed* segments are
        reduced (and digested).  The open tail survives checkpoints.
        """
        state = self._rank_state(rank)
        segmenter = state.segmenter
        if segmenter is None:
            segmenter = state.segmenter = RecordSegmenter(rank)
        segments: list[Segment] = []
        n_records = 0
        for record in records:
            n_records += 1
            segment = segmenter.push(record)
            if segment is not None:
                segments.append(segment)
        self.stats.records += n_records
        return self._ingest(state, segments)

    def append_segments(self, rank: int, segments: Iterable[Segment]) -> int:
        """Push already-segmented data for one rank; returns segments taken."""
        return self._ingest(self._rank_state(rank), list(segments))

    def _rank_state(self, rank: int) -> _RankState:
        if self._finished:
            raise RuntimeError(f"session {self.name!r} is finished; cannot append")
        state = self._ranks.get(rank)
        if state is None:
            state = self._ranks[rank] = _RankState(rank, self.config.store_capacity)
        return state

    def _ingest(self, state: _RankState, segments: list[Segment]) -> int:
        n = len(segments)
        self.stats.appends += 1
        if not n:
            return 0
        with obs.span("service.append", rank=state.rank, segments=n):
            digest = state.digest
            for segment in segments:
                digest = chain_digest(digest, segment)
            state.digest = digest
            frame = RankFrame.from_segments(state.rank, segments)
            self.reducer.reduce_frame(
                frame,
                store=state.store,
                into=state.reduced,
                match_counters=self.stats.match,
            )
        self.stats.segments += n
        return n

    # -- output ------------------------------------------------------------

    def flush(self) -> ReductionDelta:
        """Emit everything reduced since the previous flush and advance.

        The delta lists, per rank with changes: newly stored representatives,
        previously announced representatives whose state changed (an
        execution matched them — count advanced, and under ``iter_avg`` the
        stored timestamps moved), and the window's execution entries.
        """
        with obs.span("service.flush", session=self.name, seq=self.seq):
            rank_deltas: list[RankDelta] = []
            for rank in sorted(self._ranks):
                state = self._ranks[rank]
                reduced = state.reduced
                new = list(reduced.stored[state.stored_mark:])
                execs = list(reduced.execs[state.exec_mark:])
                matched = reduced.exec_matched[state.exec_mark:]
                if not new and not execs:
                    continue
                for stored in new:
                    state.by_id[stored.segment_id] = stored
                new_ids = {stored.segment_id for stored in new}
                updated_ids = sorted(
                    {
                        sid
                        for (sid, _), hit in zip(execs, matched)
                        if hit and sid not in new_ids
                    }
                )
                rank_deltas.append(
                    RankDelta(
                        rank=rank,
                        new=new,
                        updated=[state.by_id[sid] for sid in updated_ids],
                        execs=execs,
                    )
                )
                state.stored_mark = len(reduced.stored)
                state.exec_mark = len(reduced.execs)
            delta = ReductionDelta(
                name=self.name,
                method=self.metric.name,
                threshold=self.metric.threshold,
                seq=self.seq,
                ranks=rank_deltas,
            )
            self.seq += 1
            self.stats.flushes += 1
            if rank_deltas:
                self.stats.deltas_emitted += 1
        return delta

    def result(self) -> ReducedTrace:
        """The complete reduced trace so far (ranks in rank order).

        The returned object shares state with the session: appending after
        taking a result mutates it.  Equals the batch oracle's output once
        the same segments have been fed.
        """
        reduced = ReducedTrace(
            name=self.name, method=self.metric.name, threshold=self.metric.threshold
        )
        for rank in sorted(self._ranks):
            reduced.ranks.append(self._ranks[rank].reduced)
        return reduced

    def finish(self) -> SessionResult:
        """Seal the session: final flush, full result, content digest.

        Raises if a record-fed rank still has a partially open segment (the
        stream ended mid-segment — finishing would silently drop data).
        """
        if self._finished:
            raise RuntimeError(f"session {self.name!r} is already finished")
        for state in self._ranks.values():
            if state.segmenter is not None:
                state.segmenter.finish()
        delta = self.flush()
        self._finished = True
        return SessionResult(
            reduced=self.result(), delta=delta, digest=self.trace_digest()
        )
