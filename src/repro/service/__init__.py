"""``repro.service`` — the online reduction service.

The batch reducer consumes whole trace files; this package turns it into a
long-lived incremental engine, the "traces as live streams" direction of the
ROADMAP:

* :mod:`repro.service.session` — :class:`ReductionSession` wraps reducer +
  representative-store state per (trace, config), accepts appended
  records/segments per rank through the columnar
  :class:`~repro.core.frames.RankFrame`/``reduce_frame`` path, and emits
  reduced-trace *deltas* (new/updated representatives since the last flush).
* :mod:`repro.service.checkpoint` — serialize/restore full session state so
  a restored session continues bit-identically, in another process if need
  be.
* :mod:`repro.service.server` — an asyncio multi-tenant session manager with
  per-tenant memory budgets, LRU eviction-to-checkpoint, and bounded ingest
  queues with backpressure.
* :mod:`repro.service.cache` — content-digest result cache so identical
  (trace digest, config) requests are answered without re-reduction.

The incremental path is byte-identical to the batch
:class:`~repro.core.reducer.TraceReducer`, which remains the oracle
(``tests/service/test_session_equivalence.py``).
"""

from repro.service.cache import ResultCache, source_digest
from repro.service.checkpoint import (
    load_checkpoint,
    restore_state,
    save_checkpoint,
    session_state,
)
from repro.service.server import (
    ReductionService,
    ServiceStats,
    SessionHandle,
    SubmitResult,
)
from repro.service.session import (
    RankDelta,
    ReductionDelta,
    ReductionSession,
    SessionConfig,
    SessionResult,
    SessionStats,
)

__all__ = [
    "ReductionSession",
    "SessionConfig",
    "SessionResult",
    "SessionStats",
    "RankDelta",
    "ReductionDelta",
    "ReductionService",
    "ServiceStats",
    "SessionHandle",
    "SubmitResult",
    "ResultCache",
    "source_digest",
    "session_state",
    "restore_state",
    "save_checkpoint",
    "load_checkpoint",
]
