"""Multi-tenant session manager: budgets, eviction, backpressure, caching.

:class:`ReductionService` hosts many :class:`ReductionSession` objects at
once, partitioned by tenant.  The design is a per-session actor: every
resident session owns a bounded :class:`asyncio.Queue` of commands and one
worker task that drains it, so

* commands of one session execute strictly in submission order (appends and
  flushes never interleave within a session);
* a full queue makes ``await handle.append(...)`` block — **backpressure**
  reaches the producer instead of growing memory;
* sessions of different tenants (and of one tenant) make progress
  concurrently at await granularity.

Memory is bounded two ways.  Per-tenant, ``tenant_budget`` caps the total
*live representatives* across the tenant's resident sessions; when an append
pushes a tenant over budget, least-recently-used **idle** sessions are
evicted to checkpoints (bytes in memory, or files under ``checkpoint_dir``)
and transparently restored on their next command.  Globally, the result
cache is byte-bounded, and a finished session's serialized output is
inserted under its ``(trace digest, config key)`` — a later
:meth:`ReductionService.submit` of identical content under the same config is
answered from the cache without re-reduction.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro import obs
from repro.service.cache import ResultCache, source_digest
from repro.service.checkpoint import restore_state, session_state
from repro.service.session import (
    ReductionDelta,
    ReductionSession,
    SessionConfig,
    SessionResult,
)
from repro.trace.io import serialize_reduced_trace
from repro.trace.records import TraceRecord
from repro.trace.segments import Segment

__all__ = ["ServiceStats", "SessionHandle", "SubmitResult", "ReductionService"]


@dataclass(slots=True)
class ServiceStats:
    """Service-wide counters, surfaced through the ``repro.obs`` registry."""

    sessions_opened: int = 0
    sessions_finished: int = 0
    sessions_active: int = 0
    sessions_resident: int = 0
    peak_active: int = 0
    peak_resident: int = 0
    peak_resident_representatives: int = 0
    appends: int = 0
    segments: int = 0
    flushes: int = 0
    deltas_emitted: int = 0
    evicted_to_checkpoint: int = 0
    restored_from_checkpoint: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def record_to(self, registry) -> None:
        """Record these counters into an ``obs`` metrics registry.

        Gauges carry the high-water marks (what budgets bound); counters
        carry lifetime totals.  ``repro-trace report`` renders every
        registry metric, so everything here shows up there unchanged.
        """
        registry.inc("service.sessions_opened", self.sessions_opened)
        registry.inc("service.sessions_finished", self.sessions_finished)
        registry.set_gauge("service.sessions_active", self.peak_active)
        registry.set_gauge("service.sessions_resident", self.peak_resident)
        registry.set_gauge(
            "service.resident_representatives", self.peak_resident_representatives
        )
        registry.inc("service.appends", self.appends)
        registry.inc("service.segments", self.segments)
        registry.inc("service.flushes", self.flushes)
        registry.inc("service.deltas_emitted", self.deltas_emitted)
        registry.inc("service.evicted_to_checkpoint", self.evicted_to_checkpoint)
        registry.inc("service.restored_from_checkpoint", self.restored_from_checkpoint)
        registry.inc("service.cache_hits", self.cache_hits)
        registry.inc("service.cache_misses", self.cache_misses)

    def rows(self) -> list[tuple[str, int]]:
        """(label, value) pairs for human-readable summaries (CLI tables)."""
        return [
            ("sessions opened", self.sessions_opened),
            ("sessions finished", self.sessions_finished),
            ("peak active sessions", self.peak_active),
            ("peak resident sessions", self.peak_resident),
            ("peak resident representatives", self.peak_resident_representatives),
            ("appends", self.appends),
            ("segments ingested", self.segments),
            ("flushes", self.flushes),
            ("deltas emitted", self.deltas_emitted),
            ("evicted to checkpoint", self.evicted_to_checkpoint),
            ("restored from checkpoint", self.restored_from_checkpoint),
            ("cache hits", self.cache_hits),
            ("cache misses", self.cache_misses),
        ]


@dataclass(slots=True)
class SubmitResult:
    """Outcome of a one-shot :meth:`ReductionService.submit`.

    ``payload`` is always the canonical ``serialize_reduced_trace`` bytes;
    ``reduced`` is only populated when the reduction actually ran (cache
    hits return bytes alone).
    """

    digest: str
    config_key: tuple
    payload: bytes
    cache_hit: bool
    reduced: Optional[object] = None


class _Tenant:
    """One tenant's sessions in LRU order (least recently used first)."""

    __slots__ = ("name", "sessions", "peak_representatives")

    def __init__(self, name: str) -> None:
        self.name = name
        self.sessions: OrderedDict[tuple, _ManagedSession] = OrderedDict()
        self.peak_representatives = 0

    def resident_representatives(self) -> int:
        return sum(
            ms.session.live_representatives
            for ms in self.sessions.values()
            if ms.session is not None
        )


class _ManagedSession:
    """A session under service management: queue, worker, checkpoint slot."""

    __slots__ = (
        "service",
        "tenant",
        "key",
        "session",
        "checkpoint",
        "queue",
        "worker",
        "busy",
        "finished",
        "peak_queue",
    )

    def __init__(
        self,
        service: "ReductionService",
        tenant: str,
        key: tuple,
        session: ReductionSession,
        queue_limit: int,
    ) -> None:
        self.service = service
        self.tenant = tenant
        self.key = key
        self.session: Optional[ReductionSession] = session
        #: ``("mem", bytes)`` or ``("file", Path)`` while evicted, else None.
        self.checkpoint: Optional[tuple] = None
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.worker: Optional[asyncio.Task] = asyncio.create_task(self._run())
        self.busy = False
        self.finished = False
        self.peak_queue = 0

    @property
    def resident(self) -> bool:
        return self.session is not None

    @property
    def evictable(self) -> bool:
        """Safe to freeze: resident, no command running or queued, not done."""
        return (
            self.resident and not self.busy and self.queue.empty() and not self.finished
        )

    async def _run(self) -> None:
        while True:
            kind, args, future = await self.queue.get()
            self.busy = True
            stop = False
            try:
                result = self._execute(kind, args)
            except Exception as error:
                if not future.cancelled():
                    future.set_exception(error)
                result = None
            else:
                stop = kind == "finish"
                if not future.cancelled():
                    future.set_result(result)
                else:
                    result = None
            finally:
                self.busy = False
                self.queue.task_done()
            self.service._after_command(self, kind, result)
            if stop:
                return

    def _execute(self, kind: str, args: tuple):
        session = self.session
        assert session is not None  # _touch restores before enqueueing
        if kind == "append_segments":
            rank, segments = args
            return session.append_segments(rank, segments)
        if kind == "append_records":
            rank, records = args
            return session.append_records(rank, records)
        if kind == "flush":
            return session.flush()
        if kind == "finish":
            return session.finish()
        raise ValueError(f"unknown session command {kind!r}")


class SessionHandle:
    """The async facade :meth:`ReductionService.open_session` returns.

    All methods enqueue onto the session's bounded command queue and await
    the result; when the queue is full, they block until the worker drains —
    that is the backpressure contract.
    """

    def __init__(self, service: "ReductionService", managed: _ManagedSession) -> None:
        self._service = service
        self._managed = managed

    @property
    def tenant(self) -> str:
        return self._managed.tenant

    @property
    def key(self) -> tuple:
        return self._managed.key

    @property
    def name(self) -> str:
        return self._managed.key[0]

    async def append(
        self,
        rank: int,
        *,
        segments: Optional[Iterable[Segment]] = None,
        records: Optional[Iterable[TraceRecord]] = None,
    ) -> int:
        """Append one rank's batch (segments or raw records); returns
        segments completed."""
        if (segments is None) == (records is None):
            raise ValueError("append takes exactly one of segments= or records=")
        if segments is not None:
            return await self._submit("append_segments", (rank, list(segments)))
        return await self._submit("append_records", (rank, list(records)))

    async def flush(self) -> ReductionDelta:
        """Emit the delta of everything reduced since the previous flush."""
        return await self._submit("flush", ())

    async def finish(self) -> SessionResult:
        """Seal the session; its result enters the service's digest cache."""
        return await self._submit("finish", ())

    async def _submit(self, kind: str, args: tuple):
        managed = self._managed
        self._service._touch(managed)
        future = asyncio.get_running_loop().create_future()
        await managed.queue.put((kind, args, future))
        managed.peak_queue = max(managed.peak_queue, managed.queue.qsize())
        return await future


class ReductionService:
    """Asyncio manager of many concurrent reduction sessions.

    Parameters
    ----------
    tenant_budget:
        Max live representatives across one tenant's *resident* sessions;
        ``None`` disables eviction.  The session that just executed a
        command is never evicted for its own overflow (evicting the hot
        session would thrash checkpoint/restore on every append), so the
        effective bound is ``budget + largest single session``.
    queue_limit:
        Command-queue depth per session; producers block beyond it.
    cache:
        Result cache; defaults to a fresh 64 MiB :class:`ResultCache`.
    checkpoint_dir:
        Where evicted sessions spill.  ``None`` keeps checkpoint bytes in
        memory (cheap for tests and small deployments); a directory makes
        eviction actually release the heap.
    """

    def __init__(
        self,
        *,
        tenant_budget: Optional[int] = None,
        queue_limit: int = 16,
        cache: Optional[ResultCache] = None,
        checkpoint_dir: Optional[str | Path] = None,
    ) -> None:
        if tenant_budget is not None and tenant_budget < 1:
            raise ValueError(f"tenant_budget must be >= 1 or None, got {tenant_budget}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.tenant_budget = tenant_budget
        self.queue_limit = int(queue_limit)
        self.cache = cache if cache is not None else ResultCache()
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.stats = ServiceStats()
        self._tenants: dict[str, _Tenant] = {}
        self._submit_seq = 0

    # -- session lifecycle -------------------------------------------------

    async def open_session(
        self, tenant: str, name: str, config: SessionConfig | str
    ) -> SessionHandle:
        """Create a session for ``tenant`` and return its handle.

        The key is ``(name, config.key)`` — the same trace name may be open
        under different configs, but not twice under the same one.
        """
        if isinstance(config, str):
            config = SessionConfig(method=config)
        key = (name, config.key)
        tenant_state = self._tenants.setdefault(tenant, _Tenant(tenant))
        if key in tenant_state.sessions:
            raise ValueError(
                f"session {name!r} with config {config.describe()} is already "
                f"open for tenant {tenant!r}"
            )
        session = ReductionSession(name, config)
        managed = _ManagedSession(self, tenant, key, session, self.queue_limit)
        tenant_state.sessions[key] = managed
        stats = self.stats
        stats.sessions_opened += 1
        stats.sessions_active += 1
        stats.sessions_resident += 1
        stats.peak_active = max(stats.peak_active, stats.sessions_active)
        stats.peak_resident = max(stats.peak_resident, stats.sessions_resident)
        return SessionHandle(self, managed)

    def session_handle(self, tenant: str, name: str, config: SessionConfig | str) -> SessionHandle:
        """Handle of an already-open session (resident or checkpointed)."""
        if isinstance(config, str):
            config = SessionConfig(method=config)
        tenant_state = self._tenants.get(tenant)
        managed = tenant_state.sessions.get((name, config.key)) if tenant_state else None
        if managed is None:
            raise KeyError(
                f"tenant {tenant!r} has no open session {name!r} "
                f"with config {config.describe()}"
            )
        return SessionHandle(self, managed)

    async def close(self) -> None:
        """Cancel all workers and drop all sessions (open ones are lost)."""
        workers = []
        for tenant_state in self._tenants.values():
            for managed in tenant_state.sessions.values():
                if managed.worker is not None:
                    managed.worker.cancel()
                    workers.append(managed.worker)
            tenant_state.sessions.clear()
        self._tenants.clear()
        if workers:
            await asyncio.gather(*workers, return_exceptions=True)

    # -- one-shot requests -------------------------------------------------

    async def submit(
        self,
        tenant: str,
        source,
        config: SessionConfig | str,
        *,
        chunk: int = 256,
    ) -> SubmitResult:
        """Reduce a whole source, answering from the digest cache if possible.

        The source is digested first (same chaining a session applies); a
        cache hit under ``(digest, config.key)`` returns the stored bytes
        without touching the reducer.  On a miss, the source streams through
        an internal session in ``chunk``-segment appends and the result is
        cached for the next identical request.
        """
        from repro.pipeline.stream import rank_segment_streams, source_name

        if isinstance(config, str):
            config = SessionConfig(method=config)
        with obs.span("service.submit", tenant=tenant):
            digest = source_digest(source)
            payload = self.cache.get(digest, config.key)
            if payload is not None:
                self.stats.cache_hits += 1
                return SubmitResult(
                    digest=digest, config_key=config.key, payload=payload, cache_hit=True
                )
            self.stats.cache_misses += 1
            self._submit_seq += 1
            name = f"{source_name(source)}#{self._submit_seq}"
            handle = await self.open_session(tenant, name, config)
            for rank, segments in rank_segment_streams(source):
                buffer: list[Segment] = []
                for segment in segments:
                    buffer.append(segment)
                    if len(buffer) >= chunk:
                        await handle.append(rank, segments=buffer)
                        buffer = []
                if buffer:
                    await handle.append(rank, segments=buffer)
            result = await handle.finish()
            return SubmitResult(
                digest=digest,
                config_key=config.key,
                payload=serialize_reduced_trace(result.reduced),
                cache_hit=False,
                reduced=result.reduced,
            )

    # -- introspection -----------------------------------------------------

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def resident_representatives(self, tenant: str) -> int:
        """Live representatives across the tenant's resident sessions now."""
        tenant_state = self._tenants.get(tenant)
        return tenant_state.resident_representatives() if tenant_state else 0

    def tenant_peak_representatives(self, tenant: str) -> int:
        """High-water mark of :meth:`resident_representatives` for a tenant."""
        tenant_state = self._tenants.get(tenant)
        return tenant_state.peak_representatives if tenant_state else 0

    # -- internals ---------------------------------------------------------

    def _touch(self, managed: _ManagedSession) -> None:
        """LRU-touch a session and make sure it is resident before enqueue."""
        if managed.finished:
            raise RuntimeError(f"session {managed.key[0]!r} is already finished")
        tenant_state = self._tenants.get(managed.tenant)
        if tenant_state is None or tenant_state.sessions.get(managed.key) is not managed:
            raise RuntimeError(f"session {managed.key[0]!r} is no longer open")
        tenant_state.sessions.move_to_end(managed.key)
        if not managed.resident:
            self._restore(managed)
            # The restore just grew the tenant's resident footprint; push
            # colder sessions out immediately rather than waiting for the
            # next command to complete.
            self._enforce_budget(tenant_state, exclude=managed)

    def _restore(self, managed: _ManagedSession) -> None:
        kind, ref = managed.checkpoint
        with obs.span(
            "service.restore", tenant=managed.tenant, session=managed.key[0]
        ):
            data = ref.read_bytes() if kind == "file" else ref
            managed.session = restore_state(data)
        managed.checkpoint = None
        if kind == "file":
            ref.unlink(missing_ok=True)
        managed.worker = asyncio.create_task(managed._run())
        stats = self.stats
        stats.restored_from_checkpoint += 1
        stats.sessions_resident += 1
        stats.peak_resident = max(stats.peak_resident, stats.sessions_resident)

    def _evict(self, managed: _ManagedSession) -> None:
        with obs.span("service.evict", tenant=managed.tenant, session=managed.key[0]):
            data = session_state(managed.session)
            if self.checkpoint_dir is not None:
                path = self.checkpoint_dir / f"{managed.tenant}-{abs(hash(managed.key)):x}.ckpt"
                path.write_bytes(data)
                managed.checkpoint = ("file", path)
            else:
                managed.checkpoint = ("mem", data)
        managed.session = None
        if managed.worker is not None:
            managed.worker.cancel()
            managed.worker = None
        self.stats.evicted_to_checkpoint += 1
        self.stats.sessions_resident -= 1

    def _after_command(self, managed: _ManagedSession, kind: str, result) -> None:
        """Bookkeeping after a worker executed one command."""
        stats = self.stats
        if kind in ("append_segments", "append_records"):
            stats.appends += 1
            if result is not None:
                stats.segments += int(result)
        elif kind == "flush":
            stats.flushes += 1
            if result is not None and not result.empty:
                stats.deltas_emitted += 1
        elif kind == "finish" and result is not None:
            managed.finished = True
            self._finish_session(managed, result)
        tenant_state = self._tenants.get(managed.tenant)
        if tenant_state is not None:
            live = tenant_state.resident_representatives()
            tenant_state.peak_representatives = max(
                tenant_state.peak_representatives, live
            )
            stats.peak_resident_representatives = max(
                stats.peak_resident_representatives, live
            )
            self._enforce_budget(tenant_state, exclude=managed)

    def _finish_session(self, managed: _ManagedSession, result: SessionResult) -> None:
        tenant_state = self._tenants.get(managed.tenant)
        if tenant_state is not None:
            tenant_state.sessions.pop(managed.key, None)
        stats = self.stats
        stats.sessions_finished += 1
        stats.sessions_active -= 1
        stats.sessions_resident -= 1
        session = managed.session
        if session is not None:
            self.cache.put(
                result.digest, session.config.key, serialize_reduced_trace(result.reduced)
            )

    def _enforce_budget(
        self, tenant_state: _Tenant, exclude: Optional[_ManagedSession] = None
    ) -> None:
        budget = self.tenant_budget
        if budget is None:
            return
        if tenant_state.resident_representatives() <= budget:
            return
        for managed in list(tenant_state.sessions.values()):  # LRU first
            if managed is exclude or not managed.evictable:
                continue
            self._evict(managed)
            if tenant_state.resident_representatives() <= budget:
                return
