"""Trace data model: records, events, segments, traces, serialization.

The model mirrors Section 3 of the paper:

* a *record* is a single time-stamped line written by the tracer during
  execution (function ENTER/EXIT or SEGMENT_BEGIN/SEGMENT_END marker);
* an *event* is an ENTER/EXIT pair, i.e. one executed function occurrence
  with a start and an end timestamp plus (for MPI calls) the call parameters;
* a *segment* is the ordered list of events between one SEGMENT_BEGIN /
  SEGMENT_END marker pair (init, one loop iteration, final, ...);
* a *rank trace* is everything one MPI rank recorded, an *application trace*
  is the collection of all rank traces.
"""

from repro.trace.events import COLLECTIVE_OPS, P2P_OPS, Event, MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import Segment, SegmentationError, segment_rank_records, structural_key
from repro.trace.trace import RankTrace, SegmentedRankTrace, SegmentedTrace, Trace
from repro.trace.io import (
    read_trace,
    reduced_trace_size_bytes,
    serialize_records,
    serialize_segment,
    trace_size_bytes,
    write_trace,
)
from repro.trace.formats import (
    ConversionReport,
    TraceFormat,
    convert_trace,
    format_for_path,
    format_names,
    resolve_format,
    trace_format,
)
from repro.trace.merge import merge_records

__all__ = [
    "Event",
    "MpiCallInfo",
    "COLLECTIVE_OPS",
    "P2P_OPS",
    "RecordKind",
    "TraceRecord",
    "Segment",
    "SegmentationError",
    "segment_rank_records",
    "structural_key",
    "RankTrace",
    "SegmentedRankTrace",
    "SegmentedTrace",
    "Trace",
    "serialize_records",
    "serialize_segment",
    "trace_size_bytes",
    "reduced_trace_size_bytes",
    "read_trace",
    "write_trace",
    "ConversionReport",
    "TraceFormat",
    "convert_trace",
    "format_for_path",
    "format_names",
    "resolve_format",
    "trace_format",
    "merge_records",
]
