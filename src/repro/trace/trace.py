"""Trace containers: per-rank and application-wide, raw and segmented."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.trace.records import TraceRecord
from repro.trace.segments import Segment, segment_rank_records

__all__ = ["RankTrace", "Trace", "SegmentedRankTrace", "SegmentedTrace"]


@dataclass(slots=True)
class RankTrace:
    """Raw record stream collected by one rank."""

    rank: int
    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def segmented(self) -> "SegmentedRankTrace":
        """Segment this rank's records (see :func:`segment_rank_records`)."""
        return SegmentedRankTrace(rank=self.rank, segments=segment_rank_records(self.records))


@dataclass(slots=True)
class Trace:
    """Raw application trace: one :class:`RankTrace` per rank.

    The per-rank traces are collected separately and only merged for analysis,
    exactly as the paper describes (intra-process reduction happens before any
    merge).
    """

    name: str
    ranks: list[RankTrace] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    @property
    def num_records(self) -> int:
        return sum(len(r) for r in self.ranks)

    def rank(self, rank: int) -> RankTrace:
        if not 0 <= rank < len(self.ranks):
            raise IndexError(f"rank {rank} out of range for trace with {len(self.ranks)} ranks")
        return self.ranks[rank]

    def segmented(self) -> "SegmentedTrace":
        """Segment every rank's record stream."""
        return SegmentedTrace(name=self.name, ranks=[r.segmented() for r in self.ranks])


@dataclass(slots=True)
class SegmentedRankTrace:
    """One rank's trace after segmentation: an ordered list of segments."""

    rank: int
    segments: list[Segment] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.segments)

    def events(self) -> Iterator:
        """Iterate all events of this rank in execution order."""
        for segment in self.segments:
            yield from segment.events

    def timestamps(self) -> np.ndarray:
        """All event/segment timestamps of this rank as a flat array.

        The order is deterministic (segment order, then the per-segment layout
        of :meth:`Segment.timestamps` with the segment start prepended) so two
        structurally identical traces can be compared element-wise — this is
        what the approximation-distance criterion does.
        """
        values: list[float] = []
        for segment in self.segments:
            values.append(segment.start)
            values.extend(segment.timestamps())
        return np.asarray(values, dtype=float)

    @property
    def num_events(self) -> int:
        return sum(len(s.events) for s in self.segments)


@dataclass(slots=True)
class SegmentedTrace:
    """Application trace after segmentation."""

    name: str
    ranks: list[SegmentedRankTrace] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    @property
    def num_segments(self) -> int:
        return sum(len(r.segments) for r in self.ranks)

    @property
    def num_events(self) -> int:
        return sum(r.num_events for r in self.ranks)

    def rank(self, rank: int) -> SegmentedRankTrace:
        if not 0 <= rank < len(self.ranks):
            raise IndexError(f"rank {rank} out of range for trace with {len(self.ranks)} ranks")
        return self.ranks[rank]

    def timestamps(self) -> np.ndarray:
        """Concatenated per-rank timestamp arrays (rank order)."""
        if not self.ranks:
            return np.asarray([], dtype=float)
        return np.concatenate([r.timestamps() for r in self.ranks])

    def duration(self) -> float:
        """Wall-clock span of the trace (max segment end over all ranks)."""
        ends = [s.end for r in self.ranks for s in r.segments]
        return max(ends) if ends else 0.0
