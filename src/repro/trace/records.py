"""Raw trace records.

Records are what the simulated tracer writes during execution, mirroring the
time-stamped function entry/exit records (plus segment markers) described in
Section 3.1 of the paper.  Segmentation (pairing ENTER/EXIT into events and
grouping them under SEGMENT markers) happens after collection in
:mod:`repro.trace.segments`, just as a real post-mortem tool would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from repro.trace.events import MpiCallInfo, validate_name

__all__ = ["RecordKind", "TraceRecord"]


class RecordKind(IntEnum):
    """Kind of a raw trace record."""

    ENTER = 0
    EXIT = 1
    SEGMENT_BEGIN = 2
    SEGMENT_END = 3


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One time-stamped trace record.

    Attributes
    ----------
    kind:
        Record kind (function enter/exit or segment marker).
    rank:
        MPI rank that produced the record.
    timestamp:
        Microseconds since the start of the run (rank-local virtual clock).
    name:
        Function name for ENTER/EXIT, segment context (e.g. ``"main.1"``) for
        segment markers.
    mpi:
        MPI call parameters; present only on the ENTER record of an MPI call.
    """

    kind: RecordKind
    rank: int
    timestamp: float
    name: str
    mpi: Optional[MpiCallInfo] = None

    def __post_init__(self) -> None:
        validate_name(self.name, "record name")
        if self.timestamp < 0:
            raise ValueError(f"record timestamp must be non-negative, got {self.timestamp}")
        if self.mpi is not None and self.kind is not RecordKind.ENTER:
            raise ValueError("MPI call info may only be attached to ENTER records")
