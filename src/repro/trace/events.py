"""Events and MPI call metadata.

An :class:`Event` is one executed function occurrence (compute region or MPI
call) with start/end timestamps in microseconds.  MPI calls additionally carry
an immutable :class:`MpiCallInfo` describing the operation and its parameters;
the paper requires "all message passing calls and parameters [to be] the same"
for two segments to be a *possible* match, so the call info participates in
the structural key used by the reducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["MpiCallInfo", "Event", "COLLECTIVE_OPS", "P2P_OPS", "ALL_OPS", "validate_name"]


#: Names already proven valid — traces reuse a small set of names millions of
#: times, so a membership test replaces the split() on the hot path.  Bounded
#: so a pathological stream of unique names cannot grow it without limit.
_VALIDATED_NAMES: set = set()
_VALIDATED_NAMES_CAP = 1 << 16


def validate_name(name: str, what: str) -> None:
    """Reject names that cannot survive the whitespace-delimited text format.

    The text serialization in :mod:`repro.trace.io` writes one
    whitespace-separated line per record/event, so a name containing
    whitespace (or an empty name) would produce a line that parses back into
    different tokens — silently corrupting the trace.  Validating at
    construction turns that silent corruption into an immediate error.
    """
    if name in _VALIDATED_NAMES:
        return
    if not isinstance(name, str) or not name or name.split() != [name]:
        raise ValueError(
            f"{what} must be non-empty and contain no whitespace, got {name!r}"
        )
    if len(_VALIDATED_NAMES) < _VALIDATED_NAMES_CAP:
        _VALIDATED_NAMES.add(name)


#: Collective operations (matched across ranks by collective-call sequence number).
COLLECTIVE_OPS = frozenset(
    {
        "barrier",
        "bcast",
        "scatter",
        "gather",
        "reduce",
        "allgather",
        "allreduce",
        "alltoall",
    }
)

#: Point-to-point operations (matched by (source, destination, tag) FIFO order).
P2P_OPS = frozenset({"send", "ssend", "recv", "sendrecv"})

ALL_OPS = COLLECTIVE_OPS | P2P_OPS


@dataclass(frozen=True, slots=True)
class MpiCallInfo:
    """Parameters of one MPI call, as recorded in the trace.

    Attributes
    ----------
    op:
        Operation kind, one of :data:`ALL_OPS`.
    root:
        Root rank for rooted collectives (bcast/scatter/gather/reduce), else None.
    peer:
        Destination rank for sends (and for the send half of sendrecv),
        source rank for receives; None for collectives.
    source:
        Source rank of the receive half of a sendrecv (None elsewhere).
    tag:
        Message tag for point-to-point operations, else None.
    nbytes:
        Payload size in bytes (0 for barrier).
    comm:
        Communicator name (always "world" in this library, kept for fidelity
        with real traces where sub-communicators occur).
    """

    op: str
    root: Optional[int] = None
    peer: Optional[int] = None
    source: Optional[int] = None
    tag: Optional[int] = None
    nbytes: int = 0
    comm: str = "world"

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown MPI operation {self.op!r}; expected one of {sorted(ALL_OPS)}")
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {self.nbytes}")
        validate_name(self.comm, "communicator name")

    @property
    def is_collective(self) -> bool:
        return self.op in COLLECTIVE_OPS

    @property
    def is_p2p(self) -> bool:
        return self.op in P2P_OPS

    def key(self) -> tuple:
        """Hashable parameter tuple used in structural segment keys."""
        return (self.op, self.root, self.peer, self.source, self.tag, self.nbytes, self.comm)


@dataclass(slots=True)
class Event:
    """One executed function occurrence.

    ``start`` and ``end`` are absolute microsecond timestamps in a full trace
    and segment-relative timestamps inside a stored (reduced) segment.
    """

    name: str
    start: float
    end: float
    rank: int = 0
    mpi: Optional[MpiCallInfo] = None

    def __post_init__(self) -> None:
        validate_name(self.name, "event name")
        if self.end < self.start:
            raise ValueError(
                f"event {self.name!r} has end ({self.end}) before start ({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_mpi(self) -> bool:
        return self.mpi is not None

    def structure(self) -> tuple:
        """Structural identity: name plus MPI parameters (no timestamps)."""
        return (self.name, self.mpi.key() if self.mpi is not None else None)

    def shifted(self, offset: float) -> "Event":
        """Return a copy with both timestamps shifted by ``offset``."""
        return replace(self, start=self.start + offset, end=self.end + offset)

    def timestamps(self) -> tuple[float, float]:
        return (self.start, self.end)
