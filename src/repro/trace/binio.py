"""Columnar binary trace format (``.rpb``) with a per-rank byte-range index.

The text format in :mod:`repro.trace.io` is the compatibility baseline: one
whitespace-delimited line per record, parsed in Python, strictly forward.  At
scale that parse dominates file-backed reduction runs, so this module stores
the same records as NumPy column arrays:

* one **rank block** per rank, containing the record columns
  (kind ``uint8``, timestamp ``float64``, name id ``uint32``) plus the packed
  MPI columns (positions, op ids, field-presence mask, root/peer/source/tag
  values, byte counts, communicator ids) — only records that carry MPI info
  occupy MPI rows;
* one global **string table** (record names, MPI ops, communicator names),
  so names are stored once and records reference them by id;
* a **footer index** mapping each rank to the byte range of its block, so a
  reader can decode any single rank without touching the rest of the file.

File layout::

    [magic "RPB1"] [rank block 0] ... [rank block N-1] [footer JSON]
    [footer offset: uint64 LE] [tail magic "RPBX"]

Each rank block is a fixed sequence of arrays written with :func:`numpy.save`
(no pickling), so the format is self-describing at the array level and reads
back with :func:`numpy.load`.

Timestamps are ``float64`` end to end: unlike the text format, which
quantizes to two decimals on write, a binary write→read round-trip is exact.

Two decoders are provided per rank: :func:`iter_rank_records` materializes
:class:`~repro.trace.records.TraceRecord` objects (exactness, conversion),
while :func:`iter_rank_segments` runs the segmentation state machine directly
over the columns — the pipeline's fast path, which never builds record
objects at all.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from functools import cached_property, lru_cache
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional

import numpy as np

from repro import obs
from repro.core.frames import RankFrame
from repro.trace.events import Event, MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import Segment, iter_segments
from repro.trace.trace import RankTrace, Trace

__all__ = [
    "RPB_SUFFIX",
    "RpbFormatError",
    "RpbRankEntry",
    "RpbIndex",
    "RpbTraceWriter",
    "read_index",
    "rank_ids",
    "rank_frame",
    "iter_rank_records",
    "iter_rank_segments",
    "iter_rank_record_streams_rpb",
    "read_trace_rpb",
    "write_trace_rpb",
]

RPB_SUFFIX = ".rpb"

_MAGIC = b"RPB1"
_TAIL_MAGIC = b"RPBX"
_TAIL = struct.Struct("<Q4s")  # footer offset + tail magic
_VERSION = 1

#: Bit assignments of the MPI field-presence mask.
_HAS_ROOT, _HAS_PEER, _HAS_SOURCE, _HAS_TAG = 1, 2, 4, 8

#: RecordKind by integer value (values are 0..3 in definition order).
_KIND_BY_VALUE = tuple(RecordKind)

_KIND_SEGMENT_BEGIN = int(RecordKind.SEGMENT_BEGIN)
_KIND_SEGMENT_END = int(RecordKind.SEGMENT_END)
_KIND_ENTER = int(RecordKind.ENTER)
_KIND_EXIT = int(RecordKind.EXIT)


class RpbFormatError(ValueError):
    """Raised when a file is not a valid ``.rpb`` trace."""


@dataclass(frozen=True, slots=True)
class RpbRankEntry:
    """One rank's entry in the footer index."""

    rank: int
    offset: int
    length: int
    n_records: int


@dataclass(frozen=True)  # no slots: entry_for caches its lookup table in __dict__
class RpbIndex:
    """Decoded footer: per-rank byte ranges plus the string table."""

    version: int
    entries: tuple[RpbRankEntry, ...]
    strings: tuple[str, ...]

    @property
    def ranks(self) -> list[int]:
        return [entry.rank for entry in self.entries]

    @property
    def n_records(self) -> int:
        return sum(entry.n_records for entry in self.entries)

    @cached_property
    def _entries_by_rank(self) -> dict[int, RpbRankEntry]:
        return {entry.rank: entry for entry in self.entries}

    def entry_for(self, rank: int) -> RpbRankEntry:
        try:
            return self._entries_by_rank[rank]
        except KeyError:
            raise KeyError(
                f"rank {rank} not present in trace index (ranks: {self.ranks})"
            ) from None


class _StringTable:
    """Intern strings to dense ids while writing."""

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._ids: dict[str, int] = {}

    def id(self, value: str) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self.strings)
            self._ids[value] = ident
            self.strings.append(value)
        return ident


def _save(handle: BinaryIO, values, dtype) -> None:
    np.save(handle, np.asarray(values, dtype=dtype), allow_pickle=False)


def _load(handle: BinaryIO) -> np.ndarray:
    return np.load(handle, allow_pickle=False)


class RpbTraceWriter:
    """Incremental ``.rpb`` writer: one rank block at a time, footer on close.

    Ranks may be written in any order but each rank only once; memory is
    bounded by the largest single rank (the columns are buffered as Python
    lists until the block is flushed).
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._handle: Optional[BinaryIO] = self._path.open("wb")
        self._handle.write(_MAGIC)
        self._entries: list[RpbRankEntry] = []
        self._strings = _StringTable()

    def write_rank(self, rank: int, records: Iterable[TraceRecord]) -> int:
        """Encode one rank's records as a column block; returns the record count."""
        if self._handle is None:
            raise ValueError("writer is closed")
        if any(entry.rank == rank for entry in self._entries):
            raise ValueError(f"rank {rank} was already written to {self._path}")
        string_id = self._strings.id
        kinds: list[int] = []
        times: list[float] = []
        names: list[int] = []
        mpi_pos: list[int] = []
        mpi_op: list[int] = []
        mpi_mask: list[int] = []
        mpi_vals: list[tuple[int, int, int, int]] = []
        mpi_nbytes: list[int] = []
        mpi_comm: list[int] = []
        for position, record in enumerate(records):
            if record.rank != rank:
                raise ValueError(
                    f"record for rank {record.rank} in rank-{rank} block of {self._path}"
                )
            kinds.append(int(record.kind))
            times.append(record.timestamp)
            names.append(string_id(record.name))
            mpi = record.mpi
            if mpi is not None:
                mask = 0
                if mpi.root is not None:
                    mask |= _HAS_ROOT
                if mpi.peer is not None:
                    mask |= _HAS_PEER
                if mpi.source is not None:
                    mask |= _HAS_SOURCE
                if mpi.tag is not None:
                    mask |= _HAS_TAG
                mpi_pos.append(position)
                mpi_op.append(string_id(mpi.op))
                mpi_mask.append(mask)
                mpi_vals.append(
                    (mpi.root or 0, mpi.peer or 0, mpi.source or 0, mpi.tag or 0)
                )
                mpi_nbytes.append(mpi.nbytes)
                mpi_comm.append(string_id(mpi.comm))
        offset = self._handle.tell()
        _save(self._handle, kinds, np.uint8)
        _save(self._handle, times, np.float64)
        _save(self._handle, names, np.uint32)
        _save(self._handle, mpi_pos, np.int64)
        _save(self._handle, mpi_op, np.uint32)
        _save(self._handle, mpi_mask, np.uint8)
        vals = np.asarray(mpi_vals, dtype=np.int64).reshape(len(mpi_vals), 4)
        np.save(self._handle, vals, allow_pickle=False)
        _save(self._handle, mpi_nbytes, np.int64)
        _save(self._handle, mpi_comm, np.uint32)
        length = self._handle.tell() - offset
        self._entries.append(
            RpbRankEntry(rank=rank, offset=offset, length=length, n_records=len(kinds))
        )
        return len(kinds)

    def close(self) -> None:
        """Write the footer index and seal the file."""
        if self._handle is None:
            return
        footer_offset = self._handle.tell()
        footer = {
            "version": _VERSION,
            "ranks": [
                [entry.rank, entry.offset, entry.length, entry.n_records]
                for entry in self._entries
            ],
            "strings": self._strings.strings,
        }
        self._handle.write(json.dumps(footer, separators=(",", ":")).encode("utf-8"))
        self._handle.write(_TAIL.pack(footer_offset, _TAIL_MAGIC))
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "RpbTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self._handle is not None:
            self._handle.close()
            self._handle = None


def write_trace_rpb(trace: Trace, path: str | Path) -> None:
    """Write a raw trace to ``path`` in the columnar binary format."""
    with RpbTraceWriter(path) as writer:
        for rank_trace in trace.ranks:
            writer.write_rank(rank_trace.rank, rank_trace.records)


def read_index(path: str | Path) -> RpbIndex:
    """Read only the footer index of an ``.rpb`` file (magic, ranges, strings).

    Parsed footers are cached per stat identity: random-access decoders hit
    the index once per rank, and re-parsing the footer JSON (which holds the
    whole string table) would otherwise rival the column decode it indexes.
    The cache key is ``(path, mtime_ns, ctime_ns, size, inode)`` — mtime at
    nanosecond resolution alone cannot be trusted (a same-second rewrite on a
    coarse-timestamp filesystem, or a deliberate ``os.utime``, reproduces
    it), so the key also pins the inode (an atomic ``os.replace`` swaps in a
    new one) and the change time (an in-place rewrite bumps it and user code
    cannot forge it back).  Any rewrite therefore misses the cache instead of
    serving a stale index.
    """
    path = Path(path)
    stat = path.stat()
    return _read_index_cached(
        str(path), stat.st_mtime_ns, stat.st_ctime_ns, stat.st_size, stat.st_ino
    )


@lru_cache(maxsize=64)
def _read_index_cached(
    path_str: str, mtime_ns: int, ctime_ns: int, size: int, inode: int
) -> RpbIndex:
    return _read_index(Path(path_str))


def _read_index(path: Path) -> RpbIndex:
    with path.open("rb") as handle:
        if handle.read(len(_MAGIC)) != _MAGIC:
            raise RpbFormatError(f"{path} is not an .rpb trace (bad magic)")
        handle.seek(0, 2)
        size = handle.tell()
        if size < len(_MAGIC) + _TAIL.size:
            raise RpbFormatError(f"{path} is truncated (no footer)")
        handle.seek(size - _TAIL.size)
        footer_offset, tail_magic = _TAIL.unpack(handle.read(_TAIL.size))
        if tail_magic != _TAIL_MAGIC:
            raise RpbFormatError(f"{path} is truncated or corrupt (bad tail magic)")
        if not len(_MAGIC) <= footer_offset <= size - _TAIL.size:
            raise RpbFormatError(f"{path} has an out-of-range footer offset")
        handle.seek(footer_offset)
        try:
            footer = json.loads(handle.read(size - _TAIL.size - footer_offset))
        except ValueError as error:
            raise RpbFormatError(f"{path} has a corrupt footer: {error}") from error
    entries = tuple(
        RpbRankEntry(rank=r, offset=o, length=l, n_records=n)
        for r, o, l, n in footer["ranks"]
    )
    return RpbIndex(
        version=footer["version"], entries=entries, strings=tuple(footer["strings"])
    )


def rank_ids(path: str | Path) -> list[int]:
    """Ranks present in the file, in block (write) order."""
    return read_index(path).ranks


@dataclass(slots=True)
class _RankColumns:
    """One decoded rank block."""

    rank: int
    kind: np.ndarray
    time: np.ndarray
    name: np.ndarray
    mpi_pos: np.ndarray
    mpi_op: np.ndarray
    mpi_mask: np.ndarray
    mpi_vals: np.ndarray
    mpi_nbytes: np.ndarray
    mpi_comm: np.ndarray
    strings: tuple[str, ...]

    def mpi_by_position(self) -> dict[int, MpiCallInfo]:
        """Reconstruct the MPI info objects, keyed by record position.

        Distinct parameter combinations are constructed once and shared
        (``MpiCallInfo`` is frozen, so sharing is safe): real traces repeat a
        handful of call shapes millions of times, and the dataclass
        construction — not the array decode — is the expensive part.
        """
        strings = self.strings
        out: dict[int, MpiCallInfo] = {}
        cache: dict[tuple, MpiCallInfo] = {}
        positions = self.mpi_pos.tolist()
        ops = self.mpi_op.tolist()
        masks = self.mpi_mask.tolist()
        vals = self.mpi_vals.tolist()
        nbytes = self.mpi_nbytes.tolist()
        comms = self.mpi_comm.tolist()
        for row in range(len(positions)):
            root, peer, source, tag = vals[row]
            key = (ops[row], masks[row], root, peer, source, tag, nbytes[row], comms[row])
            info = cache.get(key)
            if info is None:
                mask = masks[row]
                info = MpiCallInfo(
                    op=strings[ops[row]],
                    root=root if mask & _HAS_ROOT else None,
                    peer=peer if mask & _HAS_PEER else None,
                    source=source if mask & _HAS_SOURCE else None,
                    tag=tag if mask & _HAS_TAG else None,
                    nbytes=nbytes[row],
                    comm=strings[comms[row]],
                )
                cache[key] = info
            out[positions[row]] = info
        return out

    def mpi_tables(self) -> tuple[tuple[MpiCallInfo, ...], np.ndarray]:
        """Deduplicated MPI table plus each MPI row's id into it.

        The columnar-frame form of :meth:`mpi_by_position`: the same
        construct-once sharing, but indexed by table id (what
        :class:`~repro.core.frames.RankFrame` stores per event) instead of
        record position.
        """
        strings = self.strings
        cache: dict[tuple, int] = {}
        table: list[MpiCallInfo] = []
        ops = self.mpi_op.tolist()
        masks = self.mpi_mask.tolist()
        vals = self.mpi_vals.tolist()
        nbytes = self.mpi_nbytes.tolist()
        comms = self.mpi_comm.tolist()
        row_ids = np.empty(len(ops), dtype=np.int64)
        for row in range(len(ops)):
            root, peer, source, tag = vals[row]
            key = (ops[row], masks[row], root, peer, source, tag, nbytes[row], comms[row])
            ident = cache.get(key)
            if ident is None:
                mask = masks[row]
                ident = cache[key] = len(table)
                table.append(
                    MpiCallInfo(
                        op=strings[ops[row]],
                        root=root if mask & _HAS_ROOT else None,
                        peer=peer if mask & _HAS_PEER else None,
                        source=source if mask & _HAS_SOURCE else None,
                        tag=tag if mask & _HAS_TAG else None,
                        nbytes=nbytes[row],
                        comm=strings[comms[row]],
                    )
                )
            row_ids[row] = ident
        return tuple(table), row_ids


def _load_columns(handle: BinaryIO, entry: RpbRankEntry, strings: tuple[str, ...]) -> _RankColumns:
    handle.seek(entry.offset)
    columns = _RankColumns(
        rank=entry.rank,
        kind=_load(handle),
        time=_load(handle),
        name=_load(handle),
        mpi_pos=_load(handle),
        mpi_op=_load(handle),
        mpi_mask=_load(handle),
        mpi_vals=_load(handle),
        mpi_nbytes=_load(handle),
        mpi_comm=_load(handle),
        strings=strings,
    )
    if len(columns.kind) != entry.n_records:
        raise RpbFormatError(
            f"rank {entry.rank} block holds {len(columns.kind)} records, "
            f"index says {entry.n_records}"
        )
    return columns


def _read_rank_columns(path: Path, rank: int, index: Optional[RpbIndex] = None) -> _RankColumns:
    with obs.span("rpb.decode_columns", rank=rank):
        index = index or read_index(path)
        entry = index.entry_for(rank)
        with path.open("rb") as handle:
            return _load_columns(handle, entry, index.strings)


def _records_from_columns(columns: _RankColumns) -> Iterator[TraceRecord]:
    strings = columns.strings
    mpi = columns.mpi_by_position()
    rank = columns.rank
    kinds = columns.kind.tolist()
    times = columns.time.tolist()
    names = columns.name.tolist()
    for position in range(len(kinds)):
        kind = kinds[position]
        if kind > _KIND_SEGMENT_END:
            raise RpbFormatError(f"unknown record kind code {kind}")
        yield TraceRecord(
            kind=_KIND_BY_VALUE[kind],
            rank=rank,
            timestamp=times[position],
            name=strings[names[position]],
            mpi=mpi.get(position),
        )


def iter_rank_records(path: str | Path, rank: int) -> Iterator[TraceRecord]:
    """Decode one rank's records via the footer index (random access)."""
    columns = _read_rank_columns(Path(path), rank)
    yield from _records_from_columns(columns)


def _segments_from_columns(columns: _RankColumns) -> Iterator[Segment]:
    """Malformed-rank fallback: segment via the reference state machine.

    Only runs when :func:`_segments_from_columns_fast` declines a rank, so
    per-record speed is irrelevant here; delegating to
    :func:`repro.trace.segments.iter_segments` over reconstructed records
    keeps the rules and error messages defined in exactly one place.
    """
    return iter_segments(_records_from_columns(columns))


def _columns_well_formed(
    kinds: np.ndarray,
    names: np.ndarray,
    begin_pos: np.ndarray,
    end_pos: np.ndarray,
    enter_pos: np.ndarray,
    exit_pos: np.ndarray,
    event_seg: np.ndarray,
) -> bool:
    """Vectorized segmentation-validity check (the rules of ``iter_segments``).

    True iff segment markers pair up without nesting, ENTER/EXIT strictly
    alternate with matching names, and every event lies strictly inside one
    segment.  On False the caller re-runs the record-by-record state machine,
    which raises the precise :class:`SegmentationError`.
    """
    if kinds.size and int(kinds.max()) > _KIND_SEGMENT_END:
        return False
    if len(begin_pos) != len(end_pos) or len(enter_pos) != len(exit_pos):
        return False
    if len(begin_pos):
        if not (
            np.all(begin_pos < end_pos)
            and np.all(end_pos[:-1] < begin_pos[1:])
            and np.array_equal(names[begin_pos], names[end_pos])
        ):
            return False
    if len(enter_pos):
        if not len(begin_pos):
            return False
        if not (
            np.all(enter_pos < exit_pos)
            and np.all(exit_pos[:-1] < enter_pos[1:])
            and np.array_equal(names[enter_pos], names[exit_pos])
        ):
            return False
        if int(event_seg.min()) < 0 or not np.all(exit_pos < end_pos[event_seg]):
            return False
    return True


def _segments_from_columns_fast(columns: _RankColumns) -> Optional[list[Segment]]:
    """Array-at-a-time segment construction; ``None`` if the rank is malformed.

    Splits the record stream into marker/event position arrays with NumPy,
    validates the segmentation rules wholesale, then builds all events and
    segments in two list comprehensions — no per-record interpreter loop.
    """
    kinds = columns.kind
    begin_pos = np.flatnonzero(kinds == _KIND_SEGMENT_BEGIN)
    end_pos = np.flatnonzero(kinds == _KIND_SEGMENT_END)
    enter_pos = np.flatnonzero(kinds == _KIND_ENTER)
    exit_pos = np.flatnonzero(kinds == _KIND_EXIT)
    if len(enter_pos) and len(begin_pos):
        event_seg = np.searchsorted(begin_pos, enter_pos, side="right") - 1
    else:
        event_seg = np.empty(0, dtype=np.int64)
    if not _columns_well_formed(
        kinds, columns.name, begin_pos, end_pos, enter_pos, exit_pos, event_seg
    ):
        return None

    rank = columns.rank
    strings = columns.strings
    times = columns.time
    mpi = columns.mpi_by_position()
    name_ids = columns.name
    events = [
        Event(name=strings[n], start=s, end=e, rank=rank, mpi=mpi.get(p))
        for n, s, e, p in zip(
            name_ids[enter_pos].tolist(),
            times[enter_pos].tolist(),
            times[exit_pos].tolist(),
            enter_pos.tolist(),
        )
    ]
    counts = np.bincount(event_seg, minlength=len(begin_pos))
    offsets = np.concatenate(([0], np.cumsum(counts))).tolist()
    segments = []
    for i, (n, start, end) in enumerate(
        zip(
            name_ids[begin_pos].tolist(),
            times[begin_pos].tolist(),
            times[end_pos].tolist(),
        )
    ):
        segment = Segment(
            context=strings[n],
            rank=rank,
            start=start,
            end=start,
            events=events[offsets[i] : offsets[i + 1]],
            index=i,
        )
        # Assign ``end`` after construction, exactly as ``iter_segments``
        # does: a segment whose END marker carries an earlier timestamp than
        # its BEGIN must decode identically in both paths, not raise here.
        segment.end = end
        segments.append(segment)
    return segments


def iter_rank_segments(path: str | Path, rank: int) -> Iterator[Segment]:
    """Decode one rank straight to segments (the fast random-access path).

    Well-formed ranks (the only kind the writers produce) take the
    vectorized decoder; malformed ranks fall back to the record-by-record
    state machine so the error matches what the text path would raise.
    """
    columns = _read_rank_columns(Path(path), rank)
    segments = _segments_from_columns_fast(columns)
    if segments is None:
        yield from _segments_from_columns(columns)
    else:
        yield from segments


def _frame_from_columns(columns: _RankColumns) -> RankFrame:
    """Turn one decoded rank block into a columnar :class:`RankFrame`.

    Pure array slicing: the same marker/event split and wholesale validation
    as :func:`_segments_from_columns_fast`, but the timestamp and name-id
    arrays are handed to the frame as-is — no ``Event``/``Segment`` objects
    are built.  A malformed rank falls back through the record-by-record
    state machine (raising the precise error) and the segments→frame adapter.
    """
    kinds = columns.kind
    begin_pos = np.flatnonzero(kinds == _KIND_SEGMENT_BEGIN)
    end_pos = np.flatnonzero(kinds == _KIND_SEGMENT_END)
    enter_pos = np.flatnonzero(kinds == _KIND_ENTER)
    exit_pos = np.flatnonzero(kinds == _KIND_EXIT)
    if len(enter_pos) and len(begin_pos):
        event_seg = np.searchsorted(begin_pos, enter_pos, side="right") - 1
    else:
        event_seg = np.empty(0, dtype=np.int64)
    if not _columns_well_formed(
        kinds, columns.name, begin_pos, end_pos, enter_pos, exit_pos, event_seg
    ):
        return RankFrame.from_segments(columns.rank, _segments_from_columns(columns))

    ev_mpi = np.full(len(enter_pos), -1, dtype=np.int64)
    mpi_table: tuple[MpiCallInfo, ...] = ()
    if len(columns.mpi_pos) and len(enter_pos):
        mpi_table, row_ids = columns.mpi_tables()
        # MPI rows are keyed by record position (sorted by construction);
        # events carry the MPI info of their ENTER record, if any.
        loc = np.minimum(
            np.searchsorted(columns.mpi_pos, enter_pos), len(columns.mpi_pos) - 1
        )
        hit = columns.mpi_pos[loc] == enter_pos
        ev_mpi[hit] = row_ids[loc[hit]]
    counts = np.bincount(event_seg, minlength=len(begin_pos))
    ev_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return RankFrame(
        rank=columns.rank,
        contexts=columns.name[begin_pos].astype(np.int64),
        starts=columns.time[begin_pos],
        ends=columns.time[end_pos],
        ev_offsets=ev_offsets,
        ev_names=columns.name[enter_pos].astype(np.int64),
        ev_starts=columns.time[enter_pos],
        ev_ends=columns.time[exit_pos],
        ev_mpi=ev_mpi,
        strings=columns.strings,
        mpi_table=mpi_table,
    )


def rank_frame(path: str | Path, rank: int) -> RankFrame:
    """Decode one rank of an ``.rpb`` file straight into a columnar frame.

    The columnar hot path's entry point: column blocks become a
    :class:`~repro.core.frames.RankFrame` without materializing a single
    ``Segment``; :func:`iter_rank_segments` remains the decode-to-segments
    path (and the byte-identity oracle).
    """
    path = Path(path)
    with obs.span("columnar.decode", rank=rank, source="rpb"):
        return _frame_from_columns(_read_rank_columns(path, rank))


def iter_rank_record_streams_rpb(
    path: str | Path,
) -> Iterator[tuple[int, Iterator[TraceRecord]]]:
    """Yield ``(rank, record iterator)`` pairs via the index.

    Unlike the text reader, the streams are independent random-access
    decoders: they may be consumed in any order, or not at all.
    """
    path = Path(path)
    index = read_index(path)
    for entry in index.entries:
        yield entry.rank, iter_rank_records(path, entry.rank)


def read_trace_rpb(path: str | Path, name: str | None = None) -> Trace:
    """Read a whole ``.rpb`` trace; ranks must form a contiguous range from 0."""
    with obs.span("rpb.read_trace", path=str(path)):
        return _read_trace_rpb(Path(path), name)


def _read_trace_rpb(path: Path, name: str | None) -> Trace:
    index = read_index(path)
    if not index.entries:
        return Trace(name=name or path.stem, ranks=[])
    by_rank: dict[int, RankTrace] = {}
    with path.open("rb") as handle:
        for entry in index.entries:
            columns = _load_columns(handle, entry, index.strings)
            by_rank[entry.rank] = RankTrace(
                rank=entry.rank, records=list(_records_from_columns(columns))
            )
    nprocs = max(by_rank) + 1
    missing = [r for r in range(nprocs) if r not in by_rank]
    if missing:
        raise ValueError(f"trace file {path} is missing ranks {missing}")
    return Trace(name=name or path.stem, ranks=[by_rank[r] for r in range(nprocs)])
