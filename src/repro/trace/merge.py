"""Merging per-rank record streams into a single, time-ordered stream.

The paper collects per-task traces separately and merges them into a single
application trace for analysis.  Intra-process reduction happens *before* the
merge; this module exists so the full pipeline (collect per rank → reduce per
rank → merge → analyze) can be exercised end to end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.trace.records import TraceRecord
from repro.trace.trace import Trace

if TYPE_CHECKING:  # runtime import happens inside merge_reduced_trace (cycle)
    from repro.core.reduced import ReducedTrace, StoredSegment

__all__ = ["merge_records", "merge_trace", "MergedReducedTrace", "merge_reduced_trace"]


def merge_records(streams: Sequence[Sequence[TraceRecord]]) -> list[TraceRecord]:
    """Merge per-rank record streams into one stream ordered by timestamp.

    Each input stream must already be sorted by timestamp (rank-local clocks
    are monotonic, so tracer output always is).  Ties are broken by rank and
    then by original position, which keeps the merge deterministic.
    """
    def keyed(stream_index: int, stream: Sequence[TraceRecord]):
        for position, record in enumerate(stream):
            yield (record.timestamp, record.rank, position), record

    merged = heapq.merge(*(keyed(i, s) for i, s in enumerate(streams)), key=lambda kv: kv[0])
    out: list[TraceRecord] = []
    previous_by_rank: dict[int, float] = {}
    for _, record in merged:
        last = previous_by_rank.get(record.rank)
        if last is not None and record.timestamp < last:
            raise ValueError(
                f"rank {record.rank} record stream is not sorted: "
                f"{record.timestamp} after {last}"
            )
        previous_by_rank[record.rank] = record.timestamp
        out.append(record)
    return out


def merge_trace(trace: Trace) -> list[TraceRecord]:
    """Merge all ranks of ``trace`` into one time-ordered record stream."""
    return merge_records([rank.records for rank in trace.ranks])


# -- inter-process reduction (merge stage) -------------------------------------


@dataclass(slots=True)
class MergedReducedTrace:
    """A reduced trace after cross-rank representative deduplication.

    Per-rank reduction keeps one representative table per rank; in regular
    programs many ranks store *identical* representatives (same structure,
    same normalised measurements).  The merge stage replaces the per-rank
    tables with one global table and remaps every rank's execution entries to
    global segment ids.

    ``stored`` ids are assigned in first-seen order (rank order, then stored
    order within a rank), so the merge is deterministic.
    """

    name: str
    method: str
    threshold: Optional[float]
    stored: list["StoredSegment"] = field(default_factory=list)
    rank_execs: list[tuple[int, list[tuple[int, float]]]] = field(default_factory=list)
    n_rank_stored: int = 0

    @property
    def n_stored(self) -> int:
        return len(self.stored)

    @property
    def n_duplicates(self) -> int:
        """Representatives that were stored by several ranks and merged away."""
        return self.n_rank_stored - len(self.stored)

    def size_bytes(self) -> int:
        """Serialized size: one global stored table + every rank's exec list."""
        from repro.trace.io import reduced_trace_size_bytes

        all_execs = [entry for _, execs in self.rank_execs for entry in execs]
        return reduced_trace_size_bytes(
            ((s.segment_id, s.segment) for s in self.stored), all_execs
        )


def merge_reduced_trace(reduced: "ReducedTrace") -> MergedReducedTrace:
    """Dedupe identical representatives across ranks (inter-process merge).

    Two representatives are identical iff they have the same structure *and*
    the same normalised timestamp vector at serialized precision — i.e. their
    serializations are the same apart from the segment id.  The input is not
    modified; counts of merged representatives are accumulated on the global
    copies.
    """
    from repro import obs
    from repro.core.reduced import StoredSegment
    from repro.trace.io import _TS_FMT

    merged = MergedReducedTrace(
        name=reduced.name, method=reduced.method, threshold=reduced.threshold
    )
    by_identity: dict[tuple, StoredSegment] = {}
    with obs.span("merge.dedupe", ranks=len(reduced.ranks)):
        for rank_trace in reduced.ranks:
            local_to_global: dict[int, int] = {}
            for stored in rank_trace.stored:
                merged.n_rank_stored += 1
                segment = stored.segment
                identity = (
                    segment.structure(),
                    tuple(_TS_FMT.format(value) for value in segment.timestamps()),
                )
                existing = by_identity.get(identity)
                if existing is None:
                    existing = StoredSegment(
                        segment_id=len(merged.stored), segment=segment, count=stored.count
                    )
                    by_identity[identity] = existing
                    merged.stored.append(existing)
                else:
                    existing.count += stored.count
                local_to_global[stored.segment_id] = existing.segment_id
            merged.rank_execs.append(
                (
                    rank_trace.rank,
                    [(local_to_global[sid], start) for sid, start in rank_trace.execs],
                )
            )
    return merged
