"""Merging per-rank record streams into a single, time-ordered stream.

The paper collects per-task traces separately and merges them into a single
application trace for analysis.  Intra-process reduction happens *before* the
merge; this module exists so the full pipeline (collect per rank → reduce per
rank → merge → analyze) can be exercised end to end.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.trace.records import TraceRecord
from repro.trace.trace import Trace

__all__ = ["merge_records", "merge_trace"]


def merge_records(streams: Sequence[Sequence[TraceRecord]]) -> list[TraceRecord]:
    """Merge per-rank record streams into one stream ordered by timestamp.

    Each input stream must already be sorted by timestamp (rank-local clocks
    are monotonic, so tracer output always is).  Ties are broken by rank and
    then by original position, which keeps the merge deterministic.
    """
    def keyed(stream_index: int, stream: Sequence[TraceRecord]):
        for position, record in enumerate(stream):
            yield (record.timestamp, record.rank, position), record

    merged = heapq.merge(*(keyed(i, s) for i, s in enumerate(streams)), key=lambda kv: kv[0])
    out: list[TraceRecord] = []
    previous_by_rank: dict[int, float] = {}
    for _, record in merged:
        last = previous_by_rank.get(record.rank)
        if last is not None and record.timestamp < last:
            raise ValueError(
                f"rank {record.rank} record stream is not sorted: "
                f"{record.timestamp} after {last}"
            )
        previous_by_rank[record.rank] = record.timestamp
        out.append(record)
    return out


def merge_trace(trace: Trace) -> list[TraceRecord]:
    """Merge all ranks of ``trace`` into one time-ordered record stream."""
    return merge_records([rank.records for rank in trace.ranks])
