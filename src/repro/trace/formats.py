"""Trace format registry: extension-dispatched readers and writers.

Every trace file API in this package goes through one registry.  A
:class:`TraceFormat` bundles the operations a storage format must provide
(whole-trace read/write, an incremental per-rank writer, forward rank
streams) plus the optional random-access operations that only indexed
formats have (rank ids from the index, per-rank record/segment decoders).

Two formats are registered:

``text``
    The paper-faithful line format of :mod:`repro.trace.io`.  Forward-only:
    rank streams must be consumed in order.  Default for any extension that
    no other format claims.
``rpb``
    The columnar binary format of :mod:`repro.trace.binio` (``.rpb``).
    Indexed: any rank can be decoded independently, which is what lets the
    pipeline ship ``(path, rank)`` shard tasks to workers instead of pickled
    rank payloads.

:func:`convert_trace` streams one format into the other rank by rank, so
conversion memory is bounded by the largest single rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Protocol, Tuple

from repro.trace import binio

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.frames import RankFrame
from repro.trace import io as textio
from repro.trace.records import TraceRecord
from repro.trace.segments import Segment
from repro.trace.trace import Trace

__all__ = [
    "TraceFormat",
    "TraceWriter",
    "ConversionReport",
    "register_format",
    "trace_format",
    "format_names",
    "format_for_path",
    "resolve_format",
    "convert_trace",
]


class TraceWriter(Protocol):
    """Incremental trace writer: one rank block/run at a time."""

    def write_rank(self, rank: int, records: Iterable[TraceRecord]) -> int: ...

    def close(self) -> None: ...

    def __enter__(self) -> "TraceWriter": ...

    def __exit__(self, exc_type, exc, tb) -> None: ...


@dataclass(frozen=True, slots=True)
class TraceFormat:
    """One registered trace storage format.

    ``rank_ids`` / ``rank_records`` / ``rank_segments`` are ``None`` for
    forward-only formats; their presence is what marks a format as
    random-access (``is_indexed``).
    """

    name: str
    suffixes: Tuple[str, ...]
    description: str
    write: Callable[[Trace, Path], None]
    read: Callable[..., Trace]
    open_writer: Callable[[Path], TraceWriter]
    rank_streams: Callable[[Path], Iterator[Tuple[int, Iterator[TraceRecord]]]]
    rank_ids: Optional[Callable[[Path], list[int]]] = None
    rank_records: Optional[Callable[[Path, int], Iterator[TraceRecord]]] = None
    rank_segments: Optional[Callable[[Path, int], Iterator[Segment]]] = None
    #: Decode one rank straight into a columnar ``RankFrame`` (no Segment
    #: objects); only formats whose on-disk layout is already columnar
    #: provide it — others reach the frame path via the segments adapter.
    rank_frame: Optional[Callable[[Path, int], "RankFrame"]] = None

    @property
    def is_indexed(self) -> bool:
        """True when any rank can be decoded independently (random access)."""
        return self.rank_ids is not None


_FORMATS: dict[str, TraceFormat] = {}
_DEFAULT_FORMAT = "text"


def register_format(fmt: TraceFormat) -> None:
    """Register a format under its name (suffix claims must not collide)."""
    for other in _FORMATS.values():
        overlap = set(other.suffixes) & set(fmt.suffixes)
        if other.name != fmt.name and overlap:
            raise ValueError(
                f"format {fmt.name!r} claims suffixes {sorted(overlap)} already "
                f"registered to {other.name!r}"
            )
    _FORMATS[fmt.name] = fmt


def trace_format(name: str) -> TraceFormat:
    """Look a format up by name."""
    try:
        return _FORMATS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace format {name!r}; registered: {format_names()}"
        ) from None


def format_names() -> list[str]:
    """Names of all registered formats."""
    return sorted(_FORMATS)


def format_for_path(path: str | Path) -> TraceFormat:
    """Format implied by a path's extension (text when no format claims it)."""
    suffix = Path(path).suffix.lower()
    for fmt in _FORMATS.values():
        if suffix in fmt.suffixes:
            return fmt
    return _FORMATS[_DEFAULT_FORMAT]


def resolve_format(path: str | Path, format: Optional[str] = None) -> TraceFormat:
    """Explicit format name if given, else dispatch on the path's extension."""
    if format is not None:
        return trace_format(format)
    return format_for_path(path)


@dataclass(frozen=True, slots=True)
class ConversionReport:
    """What :func:`convert_trace` did."""

    source: str
    dest: str
    source_format: str
    dest_format: str
    n_ranks: int
    n_records: int
    source_bytes: int
    dest_bytes: int


def convert_trace(
    source: str | Path,
    dest: str | Path,
    *,
    from_format: Optional[str] = None,
    to_format: Optional[str] = None,
) -> ConversionReport:
    """Convert a trace file between formats, streaming rank by rank.

    Formats default to extension dispatch and may be forced by name.  Values
    survive exactly as stored: converting text→rpb preserves the text file's
    (two-decimal) timestamps bit-for-bit, and rpb→rpb or rpb→text re-encodes
    the binary ``float64`` timestamps (text output quantizes, as always).
    """
    source, dest = Path(source), Path(dest)
    src_fmt = resolve_format(source, from_format)
    dst_fmt = resolve_format(dest, to_format)
    n_ranks = 0
    n_records = 0
    with dst_fmt.open_writer(dest) as writer:
        for rank, records in src_fmt.rank_streams(source):
            n_records += writer.write_rank(rank, records)
            n_ranks += 1
    return ConversionReport(
        source=str(source),
        dest=str(dest),
        source_format=src_fmt.name,
        dest_format=dst_fmt.name,
        n_ranks=n_ranks,
        n_records=n_records,
        source_bytes=source.stat().st_size,
        dest_bytes=dest.stat().st_size,
    )


register_format(
    TraceFormat(
        name="text",
        suffixes=(".txt", ".trace"),
        description="one whitespace-delimited line per record (forward-only)",
        write=textio.write_trace_text,
        read=textio.read_trace_text,
        open_writer=textio.TextTraceWriter,
        rank_streams=textio.iter_rank_record_streams_text,
    )
)

register_format(
    TraceFormat(
        name="rpb",
        suffixes=(binio.RPB_SUFFIX,),
        description="columnar binary record blocks with a per-rank footer index",
        write=binio.write_trace_rpb,
        read=binio.read_trace_rpb,
        open_writer=binio.RpbTraceWriter,
        rank_streams=binio.iter_rank_record_streams_rpb,
        rank_ids=binio.rank_ids,
        rank_records=binio.iter_rank_records,
        rank_segments=binio.iter_rank_segments,
        rank_frame=binio.rank_frame,
    )
)
