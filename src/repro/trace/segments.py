"""Segments and segmentation of raw record streams.

A segment (Section 3.1 of the paper) is the ordered list of events executed
between one SEGMENT_BEGIN and the matching SEGMENT_END marker: the ``init``
segment, one iteration of a marked loop, code between loops, or the ``final``
segment.  Segment contexts are hierarchical strings such as ``"main.2.1"``.

The reducer never compares raw records; it compares segments, so this module
is the bridge between the tracer output and the reduction algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.trace.events import Event, validate_name
from repro.trace.records import RecordKind, TraceRecord

__all__ = [
    "Segment",
    "SegmentationError",
    "RecordSegmenter",
    "segment_rank_records",
    "iter_segments",
    "structural_key",
]


class SegmentationError(RuntimeError):
    """Raised when a record stream cannot be segmented (unbalanced markers)."""


@dataclass(slots=True)
class Segment:
    """One executed segment: context, boundaries, and the events inside it.

    In a full trace timestamps are absolute; after normalisation by the
    reducer (``relative_to_start``) they are relative to the segment start.
    """

    context: str
    rank: int
    start: float
    end: float
    events: list[Event] = field(default_factory=list)
    index: int = 0

    def __post_init__(self) -> None:
        validate_name(self.context, "segment context")
        if self.end < self.start:
            raise ValueError(
                f"segment {self.context!r} has end ({self.end}) before start ({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def num_events(self) -> int:
        return len(self.events)

    def structure(self) -> tuple:
        """Structural identity of the segment (context + event structures).

        Two segments are a *possible match* (Section 4.3.2) iff their
        structures are equal: same code location, same events in the same
        order, same message-passing calls and parameters.
        """
        return (self.context, tuple(e.structure() for e in self.events))

    def timestamps(self) -> list[float]:
        """All timestamps of the segment in a stable order.

        Layout: each event's (start, end) in event order, then the segment end.
        The segment start is excluded because after normalisation it is always
        zero; distance metrics that want it prepend it explicitly.
        """
        out: list[float] = []
        for event in self.events:
            out.append(event.start)
            out.append(event.end)
        out.append(self.end)
        return out

    def relative_to_start(self) -> "Segment":
        """Return a copy with all timestamps made relative to the segment start.

        This is the normalisation step at the top of the paper's matching
        algorithm (``E[i].start -= s.start`` etc.).
        """
        offset = -self.start
        return Segment(
            context=self.context,
            rank=self.rank,
            start=0.0,
            end=self.end + offset,
            events=[e.shifted(offset) for e in self.events],
            index=self.index,
        )

    def shifted(self, offset: float) -> "Segment":
        """Return a copy with all timestamps shifted by ``offset``."""
        return Segment(
            context=self.context,
            rank=self.rank,
            start=self.start + offset,
            end=self.end + offset,
            events=[e.shifted(offset) for e in self.events],
            index=self.index,
        )

    def with_rank(self, rank: int) -> "Segment":
        return Segment(
            context=self.context,
            rank=rank,
            start=self.start,
            end=self.end,
            events=[replace(e, rank=rank) for e in self.events],
            index=self.index,
        )


def structural_key(segment: Segment) -> tuple:
    """Convenience wrapper around :meth:`Segment.structure`."""
    return segment.structure()


def segment_rank_records(records: Sequence[TraceRecord]) -> list[Segment]:
    """Convert one rank's raw record stream into an ordered list of segments.

    Rules (mirroring the paper's Figure 1 marking scheme):

    * every function ENTER must be followed (eventually) by its EXIT, with no
      interleaving of *unrelated* functions inside the pair — the tracer in
      this library records flat (non-nested) function events, so ENTER/EXIT
      pairs are strictly alternating within a rank;
    * every event must fall inside exactly one SEGMENT_BEGIN/SEGMENT_END pair;
    * segments do not nest (the paper stops the current segment before a loop
      starts and resumes after it ends).

    Raises
    ------
    SegmentationError
        If markers are unbalanced, events appear outside segments, or an
        ENTER/EXIT pair straddles a segment boundary.
    """
    return list(iter_segments(records))


class RecordSegmenter:
    """Push-style incremental segmenter: one rank, one record at a time.

    The state-machine core of :func:`iter_segments`, exposed as an object so
    a record stream can arrive in arbitrary pieces (the online reduction
    service appends records as they are produced) and so the mid-stream
    state — the open segment, the open event, the running emission index —
    can be **pickled** inside a session checkpoint and resumed in another
    process.  Rules and errors are identical to :func:`iter_segments`, which
    delegates here.
    """

    __slots__ = ("rank", "_current", "_open_event", "_n_emitted")

    def __init__(self, rank: int | None = None) -> None:
        self.rank = rank
        self._current: Segment | None = None
        self._open_event: tuple[str, float, TraceRecord] | None = None
        self._n_emitted = 0

    @property
    def n_emitted(self) -> int:
        """Segments completed so far (the next segment's emission index)."""
        return self._n_emitted

    @property
    def mid_segment(self) -> bool:
        """True while a segment (or event) is open — finish() would raise."""
        return self._current is not None or self._open_event is not None

    def push(self, rec: TraceRecord) -> Segment | None:
        """Consume one record; returns the segment it completed, if any."""
        if self.rank is None:
            self.rank = rec.rank
        rank = self.rank
        if rec.rank != rank:
            raise SegmentationError(
                f"record stream mixes ranks {rank} and {rec.rank}; segment per rank first"
            )
        current = self._current
        open_event = self._open_event
        if rec.kind is RecordKind.SEGMENT_BEGIN:
            if current is not None:
                raise SegmentationError(
                    f"segment {rec.name!r} begins at t={rec.timestamp} while segment "
                    f"{current.context!r} is still open (segments must not nest)"
                )
            if open_event is not None:
                raise SegmentationError(
                    f"segment {rec.name!r} begins inside open event {open_event[0]!r}"
                )
            self._current = Segment(
                context=rec.name,
                rank=rank,
                start=rec.timestamp,
                end=rec.timestamp,
                events=[],
                index=self._n_emitted,
            )
        elif rec.kind is RecordKind.SEGMENT_END:
            if current is None:
                raise SegmentationError(
                    f"segment end for {rec.name!r} at t={rec.timestamp} without a begin"
                )
            if rec.name != current.context:
                raise SegmentationError(
                    f"segment end {rec.name!r} does not match open segment {current.context!r}"
                )
            if open_event is not None:
                raise SegmentationError(
                    f"segment {rec.name!r} ends inside open event {open_event[0]!r}"
                )
            current.end = rec.timestamp
            self._n_emitted += 1
            self._current = None
            return current
        elif rec.kind is RecordKind.ENTER:
            if current is None:
                raise SegmentationError(
                    f"function {rec.name!r} entered at t={rec.timestamp} outside any segment"
                )
            if open_event is not None:
                raise SegmentationError(
                    f"function {rec.name!r} entered while {open_event[0]!r} is still open; "
                    "the tracer records flat events only"
                )
            self._open_event = (rec.name, rec.timestamp, rec)
        elif rec.kind is RecordKind.EXIT:
            if open_event is None or current is None:
                raise SegmentationError(
                    f"function exit for {rec.name!r} at t={rec.timestamp} without an enter"
                )
            name, start, enter_rec = open_event
            if rec.name != name:
                raise SegmentationError(
                    f"function exit {rec.name!r} does not match open event {name!r}"
                )
            current.events.append(
                Event(name=name, start=start, end=rec.timestamp, rank=rank, mpi=enter_rec.mpi)
            )
            self._open_event = None
        else:  # pragma: no cover - defensive, RecordKind is exhaustive
            raise SegmentationError(f"unknown record kind {rec.kind!r}")
        return None

    def finish(self) -> None:
        """Assert the stream ended cleanly (no segment or event left open)."""
        if self._current is not None:
            raise SegmentationError(f"segment {self._current.context!r} was never closed")
        if self._open_event is not None:
            raise SegmentationError(f"event {self._open_event[0]!r} was never closed")


def iter_segments(records: Iterable[TraceRecord]):
    """Incrementally segment one rank's record stream.

    The streaming form of :func:`segment_rank_records`: each segment is
    yielded as soon as its SEGMENT_END record is consumed, so memory stays
    bounded by the largest single segment regardless of trace length.  The
    rules and errors are identical (both this and the batch function drive a
    :class:`RecordSegmenter`).
    """
    segmenter = RecordSegmenter()
    for rec in records:
        segment = segmenter.push(rec)
        if segment is not None:
            yield segment
    segmenter.finish()
