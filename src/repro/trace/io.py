"""Trace serialization and file-size accounting.

The paper's first evaluation criterion is the reduced trace file size as a
percentage of the full trace file size.  To make that comparison meaningful we
serialize both representations with the same record format:

* a **full trace** is one line per raw record
  (``ENTER <rank> <t> <name> [mpi params]``);
* a **reduced trace** is one line per stored-segment header, one line per
  stored event (with segment-relative timestamps), and one line per segment
  execution entry (``EXEC <segment id> <start time>``) — exactly the
  ``storedSegments`` + ``segmentExecs`` representation of Section 3.1.

Timestamps are written with microsecond precision (two decimals), so the byte
cost of a timestamp is comparable in both representations.  Note that this
quantization makes a text write→read round trip lossy below 0.01
microseconds; the columnar binary format (:mod:`repro.trace.binio`) round-trips
``float64`` timestamps exactly.

This module owns the **text** format.  The public :func:`write_trace`,
:func:`read_trace`, and :func:`iter_rank_record_streams` dispatch on the file
extension through the format registry (:mod:`repro.trace.formats`), so
``.rpb`` paths transparently use the binary format; the ``*_text`` variants
are the text implementations the registry binds.
"""

from __future__ import annotations

import io as _io
import itertools
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.trace.events import Event, MpiCallInfo
from repro.trace.records import RecordKind, TraceRecord
from repro.trace.segments import Segment

if TYPE_CHECKING:  # avoid a runtime cycle: core.reduced imports this module
    from repro.core.reduced import ReducedRankTrace, ReducedTrace
    from repro.service.session import ReductionDelta

from repro.trace.trace import SegmentedTrace, Trace

__all__ = [
    "format_record",
    "parse_record",
    "serialize_records",
    "serialize_segment",
    "serialize_exec_entry",
    "trace_size_bytes",
    "segmented_trace_size_bytes",
    "reduced_trace_size_bytes",
    "write_trace",
    "write_trace_text",
    "TextTraceWriter",
    "read_trace",
    "read_trace_text",
    "iter_trace_records",
    "iter_rank_record_streams",
    "iter_rank_record_streams_text",
    "iter_reduced_rank_chunks",
    "serialize_reduced_trace",
    "write_reduced_trace",
    "iter_delta_chunks",
    "serialize_delta",
    "DeltaWriter",
]

_TS_FMT = "{:.2f}"


def _format_mpi(mpi: MpiCallInfo | None) -> str:
    if mpi is None:
        return ""
    parts = [mpi.op]
    for label, value in (("root", mpi.root), ("peer", mpi.peer), ("src", mpi.source), ("tag", mpi.tag)):
        if value is not None:
            parts.append(f"{label}={value}")
    if mpi.nbytes:
        parts.append(f"bytes={mpi.nbytes}")
    if mpi.comm != "world":
        parts.append(f"comm={mpi.comm}")
    return " " + " ".join(parts)


def _parse_mpi(tokens: Sequence[str]) -> MpiCallInfo:
    op = tokens[0]
    kwargs: dict = {}
    for token in tokens[1:]:
        key, _, value = token.partition("=")
        if key == "root":
            kwargs["root"] = int(value)
        elif key == "peer":
            kwargs["peer"] = int(value)
        elif key == "src":
            kwargs["source"] = int(value)
        elif key == "tag":
            kwargs["tag"] = int(value)
        elif key == "bytes":
            kwargs["nbytes"] = int(value)
        elif key == "comm":
            kwargs["comm"] = value
        else:
            raise ValueError(f"unknown MPI attribute {token!r}")
    return MpiCallInfo(op=op, **kwargs)


def format_record(record: TraceRecord) -> str:
    """Format one record as a single trace-file line (no newline)."""
    ts = _TS_FMT.format(record.timestamp)
    return f"{record.kind.name} {record.rank} {ts} {record.name}{_format_mpi(record.mpi)}"


def parse_record(line: str) -> TraceRecord:
    """Parse a line produced by :func:`format_record`."""
    tokens = line.split()
    if len(tokens) < 4:
        raise ValueError(f"malformed trace record line: {line!r}")
    kind = RecordKind[tokens[0]]
    rank = int(tokens[1])
    timestamp = float(tokens[2])
    name = tokens[3]
    mpi = _parse_mpi(tokens[4:]) if len(tokens) > 4 else None
    return TraceRecord(kind=kind, rank=rank, timestamp=timestamp, name=name, mpi=mpi)


def serialize_records(records: Iterable[TraceRecord]) -> bytes:
    """Serialize a record stream to bytes (one line per record)."""
    buf = _io.StringIO()
    for record in records:
        buf.write(format_record(record))
        buf.write("\n")
    return buf.getvalue().encode("utf-8")


def serialize_segment(segment: Segment, segment_id: int | None = None) -> bytes:
    """Serialize one stored segment (header + one line per event).

    Timestamps are expected to be segment-relative (the reducer normalises
    them); absolute segments serialize fine too, the size is what matters.
    """
    sid = segment.index if segment_id is None else segment_id
    lines = [
        f"SEG {sid} {segment.context} {_TS_FMT.format(segment.end - segment.start)}"
    ]
    for event in segment.events:
        lines.append(
            f"EV {event.name} {_TS_FMT.format(event.start)} {_TS_FMT.format(event.end)}"
            f"{_format_mpi(event.mpi)}"
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


def serialize_exec_entry(segment_id: int, start: float) -> bytes:
    """Serialize one segment-execution entry of the ``segmentExecs`` list."""
    return f"EXEC {segment_id} {_TS_FMT.format(start)}\n".encode("utf-8")


def trace_size_bytes(trace: Trace) -> int:
    """Size in bytes of the full (raw-record) trace serialization."""
    return sum(len(serialize_records(rank.records)) for rank in trace.ranks)


def segmented_trace_size_bytes(trace: SegmentedTrace) -> int:
    """Size in bytes of a segmented full trace, serialized as records.

    A segmented trace serializes to the same information as the raw trace it
    came from (segment markers + event enter/exit), so this is the "full
    trace" baseline when only the segmented form is available (e.g. for a
    reconstructed trace).
    """
    total = 0
    for rank_trace in trace.ranks:
        for segment in rank_trace.segments:
            total += len(serialize_segment_as_records(segment))
    return total


def serialize_segment_as_records(segment: Segment) -> bytes:
    """Serialize one segment in the full-trace (record per line) format."""
    lines = [
        f"{RecordKind.SEGMENT_BEGIN.name} {segment.rank} "
        f"{_TS_FMT.format(segment.start)} {segment.context}"
    ]
    for event in segment.events:
        lines.append(
            f"{RecordKind.ENTER.name} {segment.rank} {_TS_FMT.format(event.start)} "
            f"{event.name}{_format_mpi(event.mpi)}"
        )
        lines.append(
            f"{RecordKind.EXIT.name} {segment.rank} {_TS_FMT.format(event.end)} {event.name}"
        )
    lines.append(
        f"{RecordKind.SEGMENT_END.name} {segment.rank} "
        f"{_TS_FMT.format(segment.end)} {segment.context}"
    )
    return ("\n".join(lines) + "\n").encode("utf-8")


def reduced_trace_size_bytes(
    stored_segments: Iterable[tuple[int, Segment]],
    execs: Iterable[tuple[int, float]],
) -> int:
    """Size in bytes of a reduced rank trace.

    Parameters
    ----------
    stored_segments:
        ``(segment id, stored segment)`` pairs.
    execs:
        ``(segment id, start time)`` execution entries.
    """
    total = 0
    for sid, segment in stored_segments:
        total += len(serialize_segment(segment, segment_id=sid))
    for sid, start in execs:
        total += len(serialize_exec_entry(sid, start))
    return total


def write_trace(trace: Trace, path: str | Path, format: str | None = None) -> None:
    """Write a raw trace to ``path`` in the format implied by its extension.

    ``format`` forces a registered format by name (``"text"`` or ``"rpb"``)
    regardless of extension; see :mod:`repro.trace.formats`.
    """
    from repro.trace.formats import resolve_format  # deferred: formats imports us

    resolve_format(path, format).write(trace, Path(path))


def write_trace_text(trace: Trace, path: str | Path) -> None:
    """Write a raw trace as text (one file, ranks concatenated in order)."""
    path = Path(path)
    with path.open("wb") as handle:
        for rank_trace in trace.ranks:
            handle.write(serialize_records(rank_trace.records))


class TextTraceWriter:
    """Incremental text-trace writer: one rank's record run at a time.

    The text format has no index, so runs appear in write order and each rank
    may be written only once (matching what the forward-pass reader accepts).
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._handle = self._path.open("wb")
        self._seen: set[int] = set()

    def write_rank(self, rank: int, records: Iterable[TraceRecord]) -> int:
        """Append one rank's records; returns the record count."""
        if self._handle is None:
            raise ValueError("writer is closed")
        if rank in self._seen:
            raise ValueError(f"rank {rank} was already written to {self._path}")
        self._seen.add(rank)
        count = 0
        for record in records:
            if record.rank != rank:
                raise ValueError(
                    f"record for rank {record.rank} in rank-{rank} run of {self._path}"
                )
            self._handle.write((format_record(record) + "\n").encode("utf-8"))
            count += 1
        return count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TextTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def iter_trace_records(path: str | Path) -> Iterator[TraceRecord]:
    """Lazily parse a trace file record by record.

    The streaming counterpart of :func:`read_trace`: the file is read line by
    line, so memory stays bounded no matter how large the trace is.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield parse_record(line)


def iter_rank_record_streams(
    path: str | Path, format: str | None = None
) -> Iterator[tuple[int, Iterator[TraceRecord]]]:
    """Yield ``(rank, record iterator)`` pairs from a trace file, lazily.

    Dispatches on the file extension (or explicit ``format`` name): text
    files are read in a single forward pass (each rank's iterator must be
    consumed before advancing), indexed binary files decode each rank
    independently.
    """
    from repro.trace.formats import resolve_format  # deferred: formats imports us

    return resolve_format(path, format).rank_streams(Path(path))


def iter_rank_record_streams_text(
    path: str | Path,
) -> Iterator[tuple[int, Iterator[TraceRecord]]]:
    """Text-format rank streams (one forward pass over the file).

    :func:`write_trace_text` concatenates ranks, so each rank's records form
    one contiguous run; this reader exposes each run as its own iterator
    without materializing it.  Like :func:`itertools.groupby`, each rank's
    iterator must be consumed before advancing to the next pair.  A rank
    appearing in two separate runs means the file was not produced by
    :func:`write_trace_text` and is rejected.
    """
    seen: set[int] = set()
    for rank, records in itertools.groupby(iter_trace_records(path), key=lambda r: r.rank):
        if rank in seen:
            raise ValueError(
                f"trace file {path} interleaves rank {rank}; per-rank records "
                "must be contiguous for streaming ingestion"
            )
        seen.add(rank)
        yield rank, records


def iter_reduced_rank_chunks(reduced_rank: "ReducedRankTrace") -> Iterator[bytes]:
    """Serialize one reduced rank as a stream of small byte chunks.

    Chunk granularity is one stored segment or one execution entry, so
    writers never hold more than one segment's serialization in memory.  The
    concatenated chunks are exactly the bytes counted by
    :meth:`ReducedRankTrace.size_bytes`.
    """
    for stored in reduced_rank.stored:
        yield serialize_segment(stored.segment, segment_id=stored.segment_id)
    for segment_id, start in reduced_rank.execs:
        yield serialize_exec_entry(segment_id, start)


def serialize_reduced_trace(reduced: "ReducedTrace") -> bytes:
    """Canonical serialization of a whole reduced trace (ranks in order).

    Used by the pipeline's equivalence checks: two reductions are considered
    identical iff these bytes are identical.
    """
    return b"".join(
        chunk for rank in reduced.ranks for chunk in iter_reduced_rank_chunks(rank)
    )


def write_reduced_trace(reduced: "ReducedTrace", path: str | Path) -> int:
    """Write a reduced trace to ``path`` incrementally; returns bytes written.

    The streaming counterpart of building :func:`serialize_reduced_trace` in
    memory: chunks go straight to the file handle, one stored segment or
    execution entry at a time.
    """
    from repro import obs

    path = Path(path)
    written = 0
    with obs.span("reduced.write", path=str(path)):
        with path.open("wb") as handle:
            for rank in reduced.ranks:
                for chunk in iter_reduced_rank_chunks(rank):
                    handle.write(chunk)
                    written += len(chunk)
    return written


def iter_delta_chunks(delta: "ReductionDelta") -> Iterator[bytes]:
    """Serialize one reduced-trace delta as a stream of small byte chunks.

    The delta log is the text reduced-trace format plus framing: a ``DELTA``
    header per flush, a ``RANK`` header per changed rank, then the rank's new
    representatives as ``SEG`` blocks, updated representatives as ``UPD``
    lines (carrying the advanced execution count) each followed by the
    representative's current ``SEG`` block — under ``iter_avg`` the stored
    timestamps move on every match, so consumers must replace the whole
    segment — and finally the window's ``EXEC`` entries.  Concatenating the
    ``SEG``/``EXEC`` payloads of all deltas of a session, dropping
    superseded ``UPD`` segment states, reconstructs the batch reduced trace.
    """
    threshold = "-" if delta.threshold is None else _TS_FMT.format(delta.threshold)
    yield (
        f"DELTA {delta.seq} {delta.name} {delta.method} {threshold} "
        f"{len(delta.ranks)}\n"
    ).encode("utf-8")
    for rank_delta in delta.ranks:
        yield (
            f"RANK {rank_delta.rank} new={len(rank_delta.new)} "
            f"updated={len(rank_delta.updated)} execs={len(rank_delta.execs)}\n"
        ).encode("utf-8")
        for stored in rank_delta.new:
            yield serialize_segment(stored.segment, segment_id=stored.segment_id)
        for stored in rank_delta.updated:
            yield f"UPD {stored.segment_id} count={stored.count}\n".encode("utf-8")
            yield serialize_segment(stored.segment, segment_id=stored.segment_id)
        for segment_id, start in rank_delta.execs:
            yield serialize_exec_entry(segment_id, start)


def serialize_delta(delta: "ReductionDelta") -> bytes:
    """Serialize one delta to bytes (the concatenation of its chunks)."""
    return b"".join(iter_delta_chunks(delta))


class DeltaWriter:
    """Appendable reduced-trace delta log.

    One writer per session output file; each :meth:`write` appends one
    flush's delta.  Empty deltas are skipped (a flush with no changes writes
    nothing), so the log is exactly the session's non-empty flush history.
    Usable as a context manager.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("wb")
        self.deltas_written = 0
        self.bytes_written = 0

    def write(self, delta: "ReductionDelta") -> int:
        """Append one delta; returns bytes written (0 for an empty delta)."""
        if delta.empty:
            return 0
        written = 0
        for chunk in iter_delta_chunks(delta):
            self._handle.write(chunk)
            written += len(chunk)
        self.deltas_written += 1
        self.bytes_written += written
        return written

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "DeltaWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path, name: str | None = None, format: str | None = None) -> Trace:
    """Read a trace file in the format implied by its extension.

    ``format`` forces a registered format by name; see
    :mod:`repro.trace.formats`.
    """
    from repro import obs
    from repro.trace.formats import resolve_format  # deferred: formats imports us

    with obs.span("trace.read", path=str(path)):
        return resolve_format(path, format).read(Path(path), name)


def read_trace_text(path: str | Path, name: str | None = None) -> Trace:
    """Read a text trace written by :func:`write_trace_text`.

    Ranks are reconstructed from the per-record rank field; ranks must be a
    contiguous range starting at zero.
    """
    path = Path(path)
    per_rank: dict[int, list[TraceRecord]] = {}
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = parse_record(line)
            per_rank.setdefault(record.rank, []).append(record)
    if not per_rank:
        return Trace(name=name or path.stem, ranks=[])
    nprocs = max(per_rank) + 1
    missing = [r for r in range(nprocs) if r not in per_rank]
    if missing:
        raise ValueError(f"trace file {path} is missing ranks {missing}")
    from repro.trace.trace import RankTrace  # local import to avoid cycle at module load

    ranks = [RankTrace(rank=r, records=per_rank[r]) for r in range(nprocs)]
    return Trace(name=name or path.stem, ranks=ranks)
