"""Command-line interface.

Installed as the ``repro-trace`` console script.  The CLI exposes the study
pipeline without writing any Python:

* ``repro-trace list``                       — available workloads, methods, scales
* ``repro-trace evaluate <workload>``        — the four criteria for selected methods
* ``repro-trace thresholds <method>``        — the threshold study for one method
* ``repro-trace trends <workload>``          — the retention-of-trends table
* ``repro-trace figure <fig5|fig6|fig7|fig8>`` — regenerate a comparative figure
* ``repro-trace pipeline <workload>``        — streaming parallel reduction with
  per-stage instrumentation (executor/worker/store options); also ingests
  trace files directly (``--trace``) and dumps workload traces (``--save-trace``)
* ``repro-trace convert <in> <out>``         — convert a trace file between the
  text and columnar-binary (``.rpb``) formats
* ``repro-trace sweep <workload>``           — evaluate a whole method ×
  threshold grid in one shared-ingest pass (table or ``--json`` report with
  per-config criteria and vector-sharing stats); ``--trace FILE`` sweeps a
  trace file instead, with ``.rpb`` grids fanned out as (rank × family)
  pool tasks
* ``repro-trace serve <workload>``           — drive the online reduction
  service: concurrent incremental sessions with per-tenant budgets and
  eviction-to-checkpoint, flush-delta logging (``--deltas``), and repeat
  requests answered from the content-digest result cache (``--repeat``)
* ``repro-trace report <telemetry.json>``    — render a telemetry file recorded
  with ``--telemetry`` (per-stage/per-worker tables, hottest spans)

All commands accept ``--scale {smoke,default,paper}`` (default: the
``REPRO_SCALE`` environment variable, falling back to ``default``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import obs
from repro.core.metrics import METRIC_NAMES, THRESHOLD_STUDY, create_metric
from repro.core.reducer import TraceReducer
from repro.experiments.comparative import (
    comparative_study,
    fig5_size_and_matching,
    fig6_approximation_distance,
    fig7_dyn_load_balance_trends,
    fig8_interference_trends,
)
from repro.experiments.config import ALL_WORKLOAD_NAMES, SCALES, build_workload, get_scale
from repro.experiments.formatting import (
    format_comparative_results,
    format_rows,
    format_trend_table,
)
from repro.experiments.thresholds import threshold_study_rows
from repro.experiments.trend_tables import trend_table
from repro.pipeline.engine import EXECUTORS, PipelineConfig, ReductionPipeline
from repro.trace.formats import convert_trace, format_names, resolve_format
from repro.trace.io import read_trace, serialize_reduced_trace, write_reduced_trace, write_trace
from repro.util.tables import format_table

__all__ = ["main", "build_parser"]


class _UsageError(Exception):
    """Bad argument *values* that argparse choices can't express.

    Raised only at argument-construction sites so that genuine internal
    errors keep their tracebacks instead of masquerading as usage errors.
    """


class _VerificationFailed(Exception):
    """``--verify`` found a mismatch against the serial reducer oracle.

    Carries the rendered report so the caller can still print it; the
    process exits non-zero so scripted callers can gate on the flag.
    """

    def __init__(self, report: str, message: str = "pipeline output does not match the serial reducer"):
        super().__init__(message)
        self.report = report


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Similarity-based trace reduction study (Mohror & Karavanic, 2009).",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="workload scale profile (default: $REPRO_SCALE or 'default')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, similarity methods, and scale profiles")

    evaluate = sub.add_parser("evaluate", help="run the comparative criteria on one workload")
    evaluate.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    evaluate.add_argument(
        "--methods",
        nargs="+",
        choices=METRIC_NAMES,
        default=list(METRIC_NAMES),
        help="similarity methods to evaluate (default: all nine)",
    )

    thresholds = sub.add_parser("thresholds", help="threshold study for one method")
    thresholds.add_argument("method", choices=sorted(THRESHOLD_STUDY))
    thresholds.add_argument(
        "--workloads",
        nargs="+",
        choices=ALL_WORKLOAD_NAMES,
        default=None,
        help="workloads to sweep (default: the 16 benchmark programs)",
    )

    trends = sub.add_parser("trends", help="retention-of-trends table for one workload")
    trends.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    trends.add_argument(
        "--methods", nargs="+", choices=METRIC_NAMES, default=None, help="methods to include"
    )

    figure = sub.add_parser("figure", help="regenerate one of the paper's comparative figures")
    figure.add_argument("which", choices=("fig5", "fig6", "fig7", "fig8"))

    describe = sub.add_parser("describe", help="describe one workload without running it")
    describe.add_argument("workload", choices=ALL_WORKLOAD_NAMES)

    pipeline = sub.add_parser(
        "pipeline", help="streaming parallel reduction with per-stage instrumentation"
    )
    pipeline.add_argument(
        "workload",
        nargs="?",
        choices=ALL_WORKLOAD_NAMES,
        help="workload to simulate and reduce (omit when using --trace)",
    )
    pipeline.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="reduce this trace file instead of simulating a workload "
        "(format dispatched on extension: .rpb is columnar binary, else text)",
    )
    pipeline.add_argument(
        "--save-trace",
        default=None,
        metavar="FILE",
        help="also write the workload's full raw trace to FILE "
        "(format dispatched on extension)",
    )
    pipeline.add_argument(
        "--method", choices=METRIC_NAMES, default="relDiff", help="similarity method"
    )
    pipeline.add_argument(
        "--threshold", type=float, default=None, help="method threshold (default: paper's best)"
    )
    pipeline.add_argument(
        "--executor", choices=EXECUTORS, default="process", help="worker pool flavour"
    )
    pipeline.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cpu count)"
    )
    pipeline.add_argument(
        "--store-capacity",
        type=int,
        default=None,
        help="bound the per-rank representative store (LRU eviction; default: unbounded)",
    )
    pipeline.add_argument(
        "--merge",
        action="store_true",
        help="run the inter-process merge (cross-rank representative dedup) final stage",
    )
    pipeline.add_argument(
        "--verify",
        action="store_true",
        help="also run the serial reducer and check the outputs are byte-identical",
    )
    pipeline.add_argument(
        "--output", default=None, help="stream the reduced trace to this file"
    )
    pipeline.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry.json",
        default=None,
        metavar="PATH",
        help="record spans/metrics and export a Chrome trace_event timeline "
        "to PATH (default: telemetry.json); view with Perfetto or "
        "'repro-trace report PATH'",
    )

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a method × threshold grid in one shared-ingest pass",
    )
    sweep.add_argument(
        "workload",
        nargs="?",
        choices=ALL_WORKLOAD_NAMES,
        help="workload to simulate and sweep (omit when using --trace)",
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="sweep this trace file instead of simulating a workload "
        "(indexed .rpb files are swept as (rank x family) pool tasks)",
    )
    sweep.add_argument(
        "--methods",
        nargs="+",
        choices=METRIC_NAMES,
        default=["euclidean", "manhattan"],
        help="methods in the grid (default: euclidean manhattan)",
    )
    sweep.add_argument(
        "--thresholds",
        nargs="+",
        type=float,
        default=None,
        metavar="T",
        help="thresholds applied to every listed method "
        "(default: each method's paper threshold-study values)",
    )
    sweep.add_argument(
        "--backend",
        choices=("sweep", "serial"),
        default="sweep",
        help="shared-ingest sweep engine or the serial per-config oracle loop",
    )
    sweep.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="pool flavour for indexed file sources (ignored otherwise)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cpu count)"
    )
    sweep.add_argument(
        "--store-capacity",
        type=int,
        default=None,
        help="bound every config's per-rank representative store (default: unbounded)",
    )
    sweep.add_argument(
        "--verify",
        action="store_true",
        help="also run every config through the serial reducer and check the "
        "reduced traces are byte-identical",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="emit the grid and sharing stats as JSON instead of tables",
    )
    sweep.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry.json",
        default=None,
        metavar="PATH",
        help="record spans/metrics and export a Chrome trace_event timeline "
        "to PATH (default: telemetry.json)",
    )

    serve = sub.add_parser(
        "serve",
        help="drive the online reduction service (incremental sessions, "
        "checkpoints, digest cache)",
    )
    serve.add_argument(
        "workload",
        nargs="?",
        choices=ALL_WORKLOAD_NAMES,
        help="workload to simulate and stream (omit when using --trace)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream this trace file through the service instead of a workload",
    )
    serve.add_argument(
        "--method", choices=METRIC_NAMES, default="relDiff", help="similarity method"
    )
    serve.add_argument(
        "--threshold", type=float, default=None, help="method threshold (default: paper's best)"
    )
    serve.add_argument(
        "--store-capacity",
        type=int,
        default=None,
        help="bound each session's per-rank representative store (default: unbounded)",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="concurrent sessions fed the same stream under one tenant (default: 1)",
    )
    serve.add_argument(
        "--chunk",
        type=int,
        default=8,
        help="segments per append call (default: 8)",
    )
    serve.add_argument(
        "--flush-every",
        type=int,
        default=4,
        help="appends between delta flushes (default: 4)",
    )
    serve.add_argument(
        "--tenant-budget",
        type=int,
        default=None,
        help="max live representatives across the tenant's resident sessions; "
        "idle sessions beyond it are evicted to checkpoints (default: unbounded)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="per-session command queue depth; appends block beyond it (default: 16)",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="one-shot submit() requests of the full trace after the sessions "
        "finish; identical content answers from the digest cache (default: 1)",
    )
    serve.add_argument(
        "--deltas",
        default=None,
        metavar="FILE",
        help="append the lead session's non-empty flush deltas to this log file",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="check every session's output is byte-identical to the serial reducer",
    )
    serve.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry.json",
        default=None,
        metavar="PATH",
        help="record spans/metrics (incl. service counters) and export a "
        "Chrome trace_event timeline to PATH (default: telemetry.json)",
    )

    report = sub.add_parser(
        "report",
        help="render a recorded telemetry file (per-stage/per-worker tables, hottest spans)",
    )
    report.add_argument("file", help="telemetry JSON written by --telemetry")
    report.add_argument(
        "--top", type=int, default=10, help="number of hottest spans to list (default: 10)"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="deterministic scenario fuzzer: adversarial workloads through the oracle matrix",
    )
    fuzz.add_argument(
        "--cases", type=int, default=27, help="number of cases to plan (default: 27)"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed (default: 0)")
    fuzz.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="restrict to these generator families (default: all, round-robin)",
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop planning new cases after this many seconds (truncates, never alters)",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="case database directory (default: tests/regression_corpus when saving)",
    )
    fuzz.add_argument(
        "--save-failures",
        action="store_true",
        help="persist failing cases to the corpus directory as replayable JSON",
    )
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="greedily minimize failing cases before persisting them",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="CASE",
        help="replay one corpus case (by id or path) instead of running a campaign",
    )

    convert = sub.add_parser(
        "convert",
        help="convert a trace file between the text and binary (.rpb) formats",
    )
    convert.add_argument("input", help="source trace file")
    convert.add_argument("output", help="destination trace file")
    convert.add_argument(
        "--from-format",
        choices=format_names(),
        default=None,
        help="source format (default: dispatch on the input extension)",
    )
    convert.add_argument(
        "--to-format",
        choices=format_names(),
        default=None,
        help="destination format (default: dispatch on the output extension)",
    )

    return parser


def _cmd_list() -> str:
    lines = ["workloads:"]
    lines += [f"  {name}" for name in ALL_WORKLOAD_NAMES]
    lines.append("similarity methods:")
    lines += [f"  {name}" for name in METRIC_NAMES]
    lines.append("scale profiles:")
    lines += [f"  {name}" for name in sorted(SCALES)]
    return "\n".join(lines)


def _cmd_describe(workload_name: str, scale) -> str:
    workload = build_workload(workload_name, scale)
    rows = [
        ["name", workload.name],
        ["processes", workload.nprocs],
        ["operations", workload.program.num_ops],
        ["expected metric", workload.expected_metric or "-"],
        ["expected location", workload.expected_location or "-"],
        ["description", workload.description],
    ]
    return format_table(["property", "value"], rows, title=f"workload {workload_name}")


def _cmd_evaluate(workload_name: str, methods: Sequence[str], scale) -> str:
    results = comparative_study((workload_name,), tuple(methods), scale=scale)
    return format_comparative_results(
        results, title=f"comparative study — {workload_name} (scale={scale.name})"
    )


def _cmd_thresholds(method: str, workloads: Optional[Sequence[str]], scale) -> str:
    rows = threshold_study_rows(method, workloads, scale=scale)
    return format_rows(rows, title=f"threshold study — {method} (scale={scale.name})")


def _cmd_trends(workload_name: str, methods: Optional[Sequence[str]], scale) -> str:
    table = trend_table(workload_name, methods, scale=scale)
    return format_trend_table(
        table, title=f"retention of performance trends — {workload_name} (scale={scale.name})"
    )


def _cmd_pipeline(args, scale) -> str:
    from repro.evaluation.filesize import full_trace_bytes, full_trace_bytes_from_file

    # Validate argument values before the expensive trace generation.
    try:
        metric = create_metric(args.method, args.threshold)
        config = PipelineConfig(
            executor=args.executor,
            workers=args.workers,
            store_capacity=args.store_capacity,
            merge=args.merge,
        )
        if args.trace is not None and args.workload is not None:
            raise ValueError("give either a workload or --trace FILE, not both")
        if args.trace is None and args.workload is None:
            raise ValueError("a workload name or --trace FILE is required")
        if args.trace is not None and args.save_trace is not None:
            raise ValueError("--save-trace only applies when simulating a workload")
    except ValueError as error:
        raise _UsageError(str(error)) from error

    if args.trace is not None:
        from pathlib import Path

        trace_path = Path(args.trace)
        if not trace_path.exists():
            raise _UsageError(f"trace file {trace_path} does not exist")
        source = trace_path
        rows_head = [
            ["trace file", f"{trace_path} ({resolve_format(trace_path).name} format)"],
        ]
        full_bytes = full_trace_bytes_from_file(trace_path)
        segmented = None
    else:
        workload = build_workload(args.workload, scale)
        if args.save_trace is not None:
            trace = workload.run()
            write_trace(trace, args.save_trace)
            segmented = trace.segmented()
        else:
            segmented = workload.run_segmented()
        source = segmented
        rows_head = [["workload", args.workload]]
        full_bytes = full_trace_bytes(segmented)
    pipeline_runner = ReductionPipeline(metric, config)
    telemetry_row = None
    if args.telemetry is not None:
        with obs.recording("pipeline") as recorder:
            result = pipeline_runner.reduce(source)
        payload = obs.write_chrome_trace(
            recorder,
            args.telemetry,
            metadata={
                "command": "pipeline",
                "subject": args.workload if args.trace is None else args.trace,
                "method": metric.describe(),
                "executor": result.stats.executor,
                "dispatch": result.stats.dispatch,
                "workers": result.stats.workers,
            },
        )
        n_events = sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")
        n_tracks = len(
            {(e["pid"], e["tid"]) for e in payload["traceEvents"] if e.get("ph") == "X"}
        )
        telemetry_row = [
            "telemetry written to",
            f"{args.telemetry} ({n_events} spans, {n_tracks} tracks)",
        ]
    else:
        result = pipeline_runner.reduce(source)

    reduced_bytes = result.reduced.size_bytes()
    rows = [
        *rows_head,
        ["method", metric.describe()],
        *result.stats.rows(),
        ["full trace bytes", full_bytes],
        ["reduced trace bytes", reduced_bytes],
        ["% file size", f"{100.0 * reduced_bytes / full_bytes:.2f}" if full_bytes else "-"],
    ]
    if args.save_trace is not None:
        from pathlib import Path

        saved = Path(args.save_trace)
        rows.append(
            ["trace written to", f"{saved} ({saved.stat().st_size} bytes, "
             f"{resolve_format(saved).name} format)"]
        )
    if result.merged is not None:
        rows.append(["merged trace bytes", result.merged.size_bytes()])
    if telemetry_row is not None:
        rows.append(telemetry_row)
    identical = True
    if args.verify:
        if segmented is None:
            segmented = read_trace(source).segmented()
        serial = TraceReducer(create_metric(args.method, args.threshold)).reduce(segmented)
        identical = serialize_reduced_trace(serial) == serialize_reduced_trace(result.reduced)
        rows.append(["matches serial reducer", "yes" if identical else "NO"])
    if args.output:
        if identical:
            written = write_reduced_trace(result.reduced, args.output)
            rows.append(["written to", f"{args.output} ({written} bytes)"])
        else:
            rows.append(["written to", "(skipped: verification failed)"])
    subject = args.workload if args.trace is None else args.trace
    title = f"pipeline reduction — {subject}"
    if args.trace is None:
        title += f" (scale={scale.name})"
    report = format_table(["property", "value"], rows, title=title)
    if not identical:
        raise _VerificationFailed(report)
    return report


def _cmd_sweep(args, scale) -> str:
    import json
    from pathlib import Path

    from repro.evaluation.runner import PreparedWorkload
    from repro.experiments.config import prepared_workload
    from repro.pipeline.engine import sweep_pipeline
    from repro.sweep.plan import SweepPlan

    try:
        plan = SweepPlan.from_grid(args.methods, args.thresholds)
        if args.trace is not None and args.workload is not None:
            raise ValueError("give either a workload or --trace FILE, not both")
        if args.trace is None and args.workload is None:
            raise ValueError("a workload name or --trace FILE is required")
        if args.backend == "serial" and args.verify:
            raise ValueError(
                "--verify compares the sweep engine against the serial oracle; "
                "it does not apply to --backend serial"
            )
        if args.backend == "serial" and args.store_capacity is not None:
            raise ValueError("--store-capacity applies to the sweep backend only")
        config = PipelineConfig(
            executor=args.executor,
            workers=args.workers,
            store_capacity=args.store_capacity,
        )
    except ValueError as error:
        raise _UsageError(str(error)) from error

    if args.trace is not None:
        trace_path = Path(args.trace)
        if not trace_path.exists():
            raise _UsageError(f"trace file {trace_path} does not exist")
        prepared = PreparedWorkload.from_file(trace_path)
        source = trace_path
        subject = f"{trace_path} ({resolve_format(trace_path).name} format)"
    else:
        prepared = prepared_workload(args.workload, scale)
        source = prepared.segmented
        subject = f"{args.workload} (scale={scale.name})"

    from contextlib import nullcontext

    recording = obs.recording("sweep") if args.telemetry is not None else nullcontext()
    with recording as recorder:
        if args.backend == "serial":
            from repro.evaluation.runner import evaluate_grid

            results = evaluate_grid(
                prepared, plan, keep_comparison=False, backend="serial"
            )
            sweep_result = None
        else:
            sweep_result = sweep_pipeline(source, plan, config, name=prepared.name)
            results = sweep_result.evaluation_results(prepared)

    telemetry_note = None
    if args.telemetry is not None:
        telemetry_payload = obs.write_chrome_trace(
            recorder,
            args.telemetry,
            metadata={
                "command": "sweep",
                "subject": subject,
                "backend": args.backend,
                "configs": plan.n_configs,
                "dispatch": sweep_result.stats.dispatch if sweep_result is not None else "serial",
                "workers": config.workers,
            },
        )
        n_events = sum(
            1 for e in telemetry_payload["traceEvents"] if e.get("ph") == "X"
        )
        n_tracks = len(
            {
                (e["pid"], e["tid"])
                for e in telemetry_payload["traceEvents"]
                if e.get("ph") == "X"
            }
        )
        telemetry_note = f"{args.telemetry} ({n_events} spans, {n_tracks} tracks)"

    identical = True
    if args.verify and sweep_result is not None:
        from repro.pipeline.store import create_store

        for outcome in sweep_result:
            # The oracle must run under the same store bound as the sweep,
            # or a binding --store-capacity would "fail" verification.
            serial = TraceReducer(outcome.config.create()).reduce_streams(
                prepared.name,
                ((r.rank, r.segments) for r in prepared.segmented.ranks),
                store_factory=lambda: create_store(args.store_capacity),
            )
            if serialize_reduced_trace(outcome.reduced) != serialize_reduced_trace(serial):
                identical = False
                break

    if args.json:
        payload = {
            "subject": subject,
            "backend": args.backend,
            "configs": [
                {
                    "method": r.method,
                    "threshold": r.threshold,
                    "pct_file_size": r.pct_file_size,
                    "degree_of_matching": r.degree_of_matching,
                    "approx_distance_us": r.approx_distance_us,
                    "trends_retained": r.trends_retained,
                    "n_stored": r.n_stored,
                    "reduced_bytes": r.reduced_bytes,
                }
                for r in results
            ],
        }
        if sweep_result is not None:
            stats = sweep_result.stats
            payload["stats"] = {
                "n_configs": stats.n_configs,
                "n_families": stats.n_families,
                "dispatch": stats.dispatch,
                "n_ranks": stats.n_ranks,
                "n_segments": stats.n_segments,
                "vector_builds": stats.vector_builds,
                "vector_builds_saved": stats.vector_builds_saved,
                "sharing_factor": stats.sharing_factor,
                "total_seconds": stats.total_seconds,
            }
        if args.verify:
            payload["matches_serial_oracle"] = identical
        if telemetry_note is not None:
            payload["telemetry"] = telemetry_note
        report = json.dumps(payload, indent=2)
    else:
        grid_rows = [
            [
                r.method,
                "-" if r.threshold is None else f"{r.threshold:g}",
                f"{r.pct_file_size:.2f}",
                f"{r.degree_of_matching:.4f}",
                f"{r.approx_distance_us:.2f}",
                "yes" if r.trends_retained else "NO",
                r.n_stored,
            ]
            for r in results
        ]
        report = format_table(
            ["method", "threshold", "% file size", "matching", "approx dist (us)", "trends", "stored"],
            grid_rows,
            title=f"sweep grid — {subject}",
        )
        if sweep_result is not None:
            stats_rows = sweep_result.stats.rows()
            if args.verify:
                stats_rows.append(
                    ["matches serial oracle", "yes" if identical else "NO"]
                )
            report += "\n\n" + format_table(
                ["property", "value"], stats_rows, title="shared-ingest stats"
            )
        if telemetry_note is not None:
            report += f"\n\ntelemetry written to {telemetry_note}"
    if not identical:
        raise _VerificationFailed(
            report, "sweep output does not match the serial reducer oracle"
        )
    return report


def _cmd_serve(args, scale) -> str:
    import asyncio
    from pathlib import Path

    from repro.pipeline.stream import rank_segment_streams, source_name
    from repro.service import ReductionService, SessionConfig
    from repro.trace.io import DeltaWriter

    try:
        config = SessionConfig(
            method=args.method,
            threshold=args.threshold,
            store_capacity=args.store_capacity,
        )
        if args.trace is not None and args.workload is not None:
            raise ValueError("give either a workload or --trace FILE, not both")
        if args.trace is None and args.workload is None:
            raise ValueError("a workload name or --trace FILE is required")
        if args.sessions < 1:
            raise ValueError(f"--sessions must be >= 1, got {args.sessions}")
        if args.chunk < 1:
            raise ValueError(f"--chunk must be >= 1, got {args.chunk}")
        if args.flush_every < 1:
            raise ValueError(f"--flush-every must be >= 1, got {args.flush_every}")
        if args.repeat < 0:
            raise ValueError(f"--repeat must be >= 0, got {args.repeat}")
    except ValueError as error:
        raise _UsageError(str(error)) from error

    if args.trace is not None:
        trace_path = Path(args.trace)
        if not trace_path.exists():
            raise _UsageError(f"trace file {trace_path} does not exist")
        source = trace_path
        subject = str(trace_path)
    else:
        source = build_workload(args.workload, scale).run_segmented()
        subject = args.workload
    # Materialize once: every session replays the same per-rank stream, and
    # forward-only text sources cannot be iterated twice.
    stream = [(rank, list(segments)) for rank, segments in rank_segment_streams(source)]
    trace_name = source_name(source)

    async def drive(delta_writer):
        service = ReductionService(
            tenant_budget=args.tenant_budget, queue_limit=args.queue_limit
        )
        handles = [
            await service.open_session(
                "cli", f"{trace_name}/s{i}", config
            )
            for i in range(args.sessions)
        ]

        async def feed(index, handle):
            appends = 0
            for rank, segments in stream:
                for at in range(0, len(segments), args.chunk):
                    await handle.append(rank, segments=segments[at : at + args.chunk])
                    appends += 1
                    if appends % args.flush_every == 0:
                        delta = await handle.flush()
                        if index == 0 and delta_writer is not None:
                            delta_writer.write(delta)
            result = await handle.finish()
            if index == 0 and delta_writer is not None:
                delta_writer.write(result.delta)
            return result

        results = await asyncio.gather(
            *(feed(i, handle) for i, handle in enumerate(handles))
        )
        submits = [
            await service.submit("cli", source, config) for _ in range(args.repeat)
        ]
        await service.close()
        return service, results, submits

    def run(delta_writer):
        return asyncio.run(drive(delta_writer))

    telemetry_row = None
    delta_writer = DeltaWriter(args.deltas) if args.deltas is not None else None
    try:
        if args.telemetry is not None:
            with obs.recording("serve") as recorder:
                service, results, submits = run(delta_writer)
                service.stats.record_to(recorder.registry)
            payload = obs.write_chrome_trace(
                recorder,
                args.telemetry,
                metadata={
                    "command": "serve",
                    "subject": subject,
                    "method": config.describe(),
                    "sessions": args.sessions,
                },
            )
            n_events = sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")
            telemetry_row = ["telemetry written to", f"{args.telemetry} ({n_events} spans)"]
        else:
            service, results, submits = run(delta_writer)
    finally:
        if delta_writer is not None:
            delta_writer.close()

    stats = service.stats
    reduced_bytes = results[0].reduced.size_bytes()
    rows = [
        ["subject", subject],
        ["method", config.describe()],
        ["sessions", args.sessions],
        ["chunk (segments/append)", args.chunk],
        *[[label, value] for label, value in stats.rows()],
        ["reduced trace bytes", reduced_bytes],
        ["trace digest", results[0].digest[:16] + "…"],
    ]
    if submits:
        hits = sum(1 for s in submits if s.cache_hit)
        rows.append(["submit requests", f"{len(submits)} ({hits} cache hits)"])
    if delta_writer is not None:
        rows.append(
            ["delta log", f"{args.deltas} ({delta_writer.deltas_written} deltas, "
             f"{delta_writer.bytes_written} bytes)"]
        )
    if telemetry_row is not None:
        rows.append(telemetry_row)

    identical = True
    if args.verify:
        from repro.trace.trace import SegmentedRankTrace, SegmentedTrace

        segmented = SegmentedTrace(
            name=trace_name,
            ranks=[
                SegmentedRankTrace(rank=rank, segments=segments)
                for rank, segments in stream
            ],
        )
        serial = TraceReducer(create_metric(args.method, args.threshold)).reduce(segmented)
        want = serialize_reduced_trace(serial)
        identical = all(
            serialize_reduced_trace(result.reduced) == want for result in results
        )
        rows.append(["matches serial reducer", "yes" if identical else "NO"])

    title = f"online reduction service — {subject}"
    if args.trace is None:
        title += f" (scale={scale.name})"
    report = format_table(["property", "value"], rows, title=title)
    if not identical:
        raise _VerificationFailed(
            report, "service output does not match the serial reducer"
        )
    return report


def _cmd_report(args) -> str:
    from pathlib import Path

    path = Path(args.file)
    if not path.exists():
        raise _UsageError(f"telemetry file {path} does not exist")
    try:
        return obs.render_report(path, top=args.top)
    except (ValueError, KeyError) as error:
        raise _UsageError(f"{path} is not a telemetry export: {error}") from error


def _cmd_convert(args) -> str:
    from pathlib import Path

    if not Path(args.input).exists():
        raise _UsageError(f"trace file {args.input} does not exist")
    try:
        report = convert_trace(
            args.input,
            args.output,
            from_format=args.from_format,
            to_format=args.to_format,
        )
    except ValueError as error:
        raise _UsageError(str(error)) from error
    ratio = (
        f"{100.0 * report.dest_bytes / report.source_bytes:.2f}"
        if report.source_bytes
        else "-"
    )
    rows = [
        ["input", f"{report.source} ({report.source_format} format)"],
        ["output", f"{report.dest} ({report.dest_format} format)"],
        ["ranks", report.n_ranks],
        ["records", report.n_records],
        ["input bytes", report.source_bytes],
        ["output bytes", report.dest_bytes],
        ["% input size", ratio],
    ]
    return format_table(["property", "value"], rows, title="trace conversion")


def _cmd_fuzz(args) -> str:
    import tempfile
    from pathlib import Path

    from repro.fuzz import FAMILY_NAMES, CaseDB, run_fuzz
    from repro.fuzz.casedb import DEFAULT_CORPUS_DIR
    from repro.fuzz.oracles import run_oracles

    if args.families:
        unknown = [f for f in args.families if f not in FAMILY_NAMES]
        if unknown:
            raise _UsageError(
                f"unknown families {unknown}; available: {', '.join(FAMILY_NAMES)}"
            )

    if args.replay is not None:
        db = CaseDB(args.corpus or DEFAULT_CORPUS_DIR)
        try:
            case = db.load(args.replay)
        except FileNotFoundError as error:
            raise _UsageError(str(error)) from error
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            outcomes = run_oracles(
                case.trace(), case.config, Path(tmp), case.oracles, seed=case.seed
            )
        rows = [[o.name, o.status, o.detail[:80]] for o in outcomes]
        table = format_table(
            ["oracle", "status", "detail"],
            rows,
            title=f"replay {case.id} ({case.family}, {case.config.describe()})",
        )
        if any(o.failed for o in outcomes):
            raise _VerificationFailed(table, f"corpus case {case.id} still fails")
        return table

    corpus_dir = None
    if args.save_failures or args.corpus:
        corpus_dir = Path(args.corpus) if args.corpus else DEFAULT_CORPUS_DIR
    report = run_fuzz(
        args.seed,
        args.cases,
        families=args.families,
        time_budget=args.time_budget,
        corpus_dir=corpus_dir,
        shrink=args.shrink,
    )
    rows = []
    for result in report.results:
        failed = ", ".join(result.failed_oracles) or "-"
        n_pass = sum(o.status == "pass" for o in result.outcomes)
        n_skip = sum(o.status == "skip" for o in result.outcomes)
        rows.append(
            [
                result.case.id,
                result.case.spec.family,
                result.case.config.describe(),
                f"{n_pass}/{len(result.outcomes)}" + (f" ({n_skip} skip)" if n_skip else ""),
                failed,
            ]
        )
    title = (
        f"fuzz seed={report.seed}: {len(report.results)}/{report.planned} cases, "
        f"{report.n_failed} failed, {report.seconds:.1f}s"
        + (" [time budget hit]" if report.truncated else "")
    )
    table = format_table(["case", "family", "config", "oracles", "failed"], rows, title=title)
    coverage = report.oracle_coverage
    coverage_line = "oracle coverage: " + ", ".join(
        f"{name}={coverage.get(name, 0)}" for name in sorted(coverage)
    )
    output = table + "\n" + coverage_line
    if report.saved:
        output += "\nsaved: " + ", ".join(str(p) for p in report.saved)
    if not report.ok:
        raise _VerificationFailed(output, f"{report.n_failed} fuzz case(s) failed")
    return output


def _cmd_figure(which: str, scale) -> str:
    if which == "fig5":
        return format_rows(fig5_size_and_matching(scale=scale), title="Figure 5")
    if which == "fig6":
        return format_rows(fig6_approximation_distance(scale=scale), title="Figure 6")
    if which == "fig7":
        charts = fig7_dyn_load_balance_trends(scale=scale)
    else:
        charts = fig8_interference_trends(scale=scale)
    return "\n\n".join(charts.values())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)

    try:
        output = _dispatch(args, scale, parser)
    except _UsageError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit
    except _VerificationFailed as failure:
        print(failure.report)
        print(f"error: {failure}", file=sys.stderr)
        return 1
    print(output)
    return 0


def _dispatch(args, scale, parser) -> str:
    if args.command == "list":
        output = _cmd_list()
    elif args.command == "describe":
        output = _cmd_describe(args.workload, scale)
    elif args.command == "evaluate":
        output = _cmd_evaluate(args.workload, args.methods, scale)
    elif args.command == "thresholds":
        output = _cmd_thresholds(args.method, args.workloads, scale)
    elif args.command == "trends":
        output = _cmd_trends(args.workload, args.methods, scale)
    elif args.command == "figure":
        output = _cmd_figure(args.which, scale)
    elif args.command == "pipeline":
        output = _cmd_pipeline(args, scale)
    elif args.command == "sweep":
        output = _cmd_sweep(args, scale)
    elif args.command == "serve":
        output = _cmd_serve(args, scale)
    elif args.command == "report":
        output = _cmd_report(args)
    elif args.command == "convert":
        output = _cmd_convert(args)
    elif args.command == "fuzz":
        output = _cmd_fuzz(args)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return output


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
