"""CUBE-style text rendering of diagnosis severities.

Figures 4, 7, and 8 of the paper show, for selected (metric, code location)
pairs, one coloured square per process.  This module renders the same
information as text: a severity level per process, with ``neg`` standing in
for the white (negative severity) squares of the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.patterns import METRIC_ABBREVIATIONS
from repro.analysis.report import DiagnosisReport
from repro.util.tables import format_table

__all__ = ["severity_level", "severity_row", "severity_chart"]

#: Severity buckets, as fractions of the reference severity.
_LEVELS: tuple[tuple[float, str], ...] = (
    (0.75, "high"),
    (0.50, "med"),
    (0.25, "low"),
    (0.05, "vlow"),
)


def severity_level(value: float, reference: float) -> str:
    """Map one severity value to a discrete level relative to ``reference``.

    Negative values map to ``"neg"`` (the paper's white squares); values that
    are a tiny fraction of the reference map to ``"0"``.
    """
    if value < 0:
        return "neg"
    if reference <= 0:
        return "0"
    ratio = value / reference
    for cutoff, label in _LEVELS:
        if ratio >= cutoff:
            return label
    return "0"


def severity_row(values: Sequence[float], reference: float) -> list[str]:
    """Per-process severity levels for one diagnosis."""
    return [severity_level(float(v), reference) for v in values]


def severity_chart(
    report: DiagnosisReport,
    entries: Sequence[tuple[str, str]],
    *,
    reference: float | None = None,
    signed: bool = True,
    title: str | None = None,
) -> str:
    """Render a severity chart for the given (metric, location) entries.

    Parameters
    ----------
    report:
        The diagnosis report to render.
    entries:
        The (metric, code location) pairs to show, in display order.
    reference:
        Severity corresponding to the "high" end of the scale; defaults to the
        largest per-rank severity among the selected entries.
    signed:
        Use the signed severities so negative values (reconstruction skew)
        show up as ``neg``, like the white squares in the paper's figures.
    """
    source = report.per_rank_signed if signed else report.per_rank
    selected = {key: source(*key) for key in entries}
    if reference is None:
        candidates = [float(np.max(np.abs(v))) for v in selected.values() if v.size]
        reference = max(candidates) if candidates else 0.0
    headers = ["metric", "location", "total(us)"] + [f"p{r}" for r in range(report.nprocs)]
    rows = []
    for (metric, location), values in selected.items():
        abbrev = METRIC_ABBREVIATIONS.get(metric, metric)
        rows.append(
            [abbrev, location, float(values.sum())] + severity_row(values, reference)
        )
    return format_table(headers, rows, float_fmt=".4g", title=title)
