"""Inefficiency patterns and their severity definitions.

Each pattern mirrors the corresponding KOJAK/EXPERT wait state.  For every
pattern instance we compute two values per affected rank:

* ``waiting`` — the KOJAK severity: non-negative waiting time in µs;
* ``signed`` — the same quantity without clamping at zero.  On a full trace
  the two agree wherever waiting occurs; on a reconstructed trace with skewed
  timestamps the signed value can go negative, which is how the paper's
  figures end up showing negative severities for some methods.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LATE_SENDER",
    "LATE_RECEIVER",
    "LATE_BROADCAST",
    "EARLY_GATHER",
    "WAIT_AT_BARRIER",
    "WAIT_AT_NXN",
    "EXECUTION_TIME",
    "WAIT_METRICS",
    "METRIC_ABBREVIATIONS",
    "PatternContribution",
]

#: Receiver blocked in a receive because the sender had not reached the send.
LATE_SENDER = "Late Sender"
#: Synchronous sender blocked because the receiver had not reached the receive.
LATE_RECEIVER = "Late Receiver"
#: Non-root ranks blocked in a fan-out collective because the root was late.
LATE_BROADCAST = "Late Broadcast"
#: Root of a fan-in collective blocked waiting for the last sender.
EARLY_GATHER = "Early Gather"
#: Ranks blocked in a barrier waiting for the last arrival.
WAIT_AT_BARRIER = "Wait at Barrier"
#: Ranks blocked in a symmetric N×N collective waiting for the last arrival.
WAIT_AT_NXN = "Wait at NxN"
#: Plain time spent in a function (not a wait state).
EXECUTION_TIME = "Execution Time"

#: The wait-state metrics (everything except plain execution time).
WAIT_METRICS = frozenset(
    {LATE_SENDER, LATE_RECEIVER, LATE_BROADCAST, EARLY_GATHER, WAIT_AT_BARRIER, WAIT_AT_NXN}
)

#: Abbreviations used in the paper's severity charts (Figure 4).
METRIC_ABBREVIATIONS: dict[str, str] = {
    LATE_SENDER: "LS",
    LATE_RECEIVER: "LR",
    LATE_BROADCAST: "LB",
    EARLY_GATHER: "ER",
    WAIT_AT_BARRIER: "WB",
    WAIT_AT_NXN: "NN",
    EXECUTION_TIME: "T",
}


@dataclass(frozen=True, slots=True)
class PatternContribution:
    """One pattern instance's contribution to the severity matrix."""

    metric: str
    location: str
    rank: int
    waiting: float
    signed: float

    @staticmethod
    def from_signed(metric: str, location: str, rank: int, signed: float) -> "PatternContribution":
        return PatternContribution(
            metric=metric,
            location=location,
            rank=rank,
            waiting=max(0.0, signed),
            signed=signed,
        )


def late_sender_contribution(
    location: str, receiver_rank: int, recv_enter: float, send_enter: float
) -> PatternContribution:
    """Late Sender: receiver waited ``send enter − receive enter`` µs."""
    return PatternContribution.from_signed(
        LATE_SENDER, location, receiver_rank, send_enter - recv_enter
    )


def late_receiver_contribution(
    location: str, sender_rank: int, send_enter: float, recv_enter: float
) -> PatternContribution:
    """Late Receiver: synchronous sender waited ``receive enter − send enter`` µs."""
    return PatternContribution.from_signed(
        LATE_RECEIVER, location, sender_rank, recv_enter - send_enter
    )


def late_broadcast_contribution(
    location: str, receiver_rank: int, receiver_enter: float, root_enter: float
) -> PatternContribution:
    """Late Broadcast: fan-out receiver waited ``root enter − own enter`` µs."""
    return PatternContribution.from_signed(
        LATE_BROADCAST, location, receiver_rank, root_enter - receiver_enter
    )


def early_gather_contribution(
    location: str, root_rank: int, root_enter: float, last_sender_enter: float
) -> PatternContribution:
    """Early Gather/Reduce: root waited ``last sender enter − root enter`` µs."""
    return PatternContribution.from_signed(
        EARLY_GATHER, location, root_rank, last_sender_enter - root_enter
    )


def nxn_wait_contribution(
    metric: str, location: str, rank: int, own_enter: float, last_other_enter: float
) -> PatternContribution:
    """Wait at Barrier / Wait at N×N: waited ``last other enter − own enter`` µs."""
    return PatternContribution.from_signed(metric, location, rank, last_other_enter - own_enter)
