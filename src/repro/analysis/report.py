"""Diagnosis report: the severity matrix produced by the analyzer.

A report holds, for every ``(metric, code location)`` pair, the per-rank
severity vector — the same information a CUBE display shows (metric pane ×
call-tree pane × process pane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.analysis.patterns import EXECUTION_TIME, WAIT_METRICS

__all__ = ["DiagnosisReport"]

Key = tuple[str, str]


@dataclass(slots=True)
class DiagnosisReport:
    """Per-(metric, location, rank) severities for one analyzed trace.

    Attributes
    ----------
    name:
        Name of the analyzed trace.
    nprocs:
        Number of ranks.
    severities:
        ``(metric, location) -> per-rank waiting time`` (µs, non-negative).
    signed:
        Same keys, but without clamping negative waits at zero.
    wall_time:
        Wall-clock span of the trace in µs (used to express severities as a
        fraction of run time).
    """

    name: str
    nprocs: int
    severities: dict[Key, np.ndarray] = field(default_factory=dict)
    signed: dict[Key, np.ndarray] = field(default_factory=dict)
    wall_time: float = 0.0

    # -- construction ---------------------------------------------------------

    def add(self, metric: str, location: str, rank: int, waiting: float, signed: float) -> None:
        """Accumulate one pattern contribution."""
        key = (metric, location)
        if key not in self.severities:
            self.severities[key] = np.zeros(self.nprocs, dtype=float)
            self.signed[key] = np.zeros(self.nprocs, dtype=float)
        self.severities[key][rank] += waiting
        self.signed[key][rank] += signed

    # -- queries ---------------------------------------------------------------

    def keys(self) -> Iterator[Key]:
        return iter(self.severities)

    def per_rank(self, metric: str, location: str) -> np.ndarray:
        """Per-rank waiting-time vector (zeros if the diagnosis never occurred)."""
        return self.severities.get((metric, location), np.zeros(self.nprocs, dtype=float))

    def per_rank_signed(self, metric: str, location: str) -> np.ndarray:
        return self.signed.get((metric, location), np.zeros(self.nprocs, dtype=float))

    def total(self, metric: str, location: str) -> float:
        """Total severity (sum over ranks) of one diagnosis."""
        return float(self.per_rank(metric, location).sum())

    def wait_diagnoses(self) -> dict[Key, np.ndarray]:
        """Only the wait-state diagnoses (excludes plain execution time)."""
        return {k: v for k, v in self.severities.items() if k[0] in WAIT_METRICS}

    def execution_times(self) -> dict[Key, np.ndarray]:
        """Per-function execution-time entries."""
        return {k: v for k, v in self.severities.items() if k[0] == EXECUTION_TIME}

    def max_wait_total(self) -> float:
        """Largest total severity among the wait-state diagnoses (0 if none)."""
        totals = [float(v.sum()) for k, v in self.wait_diagnoses().items()]
        return max(totals) if totals else 0.0

    def major_diagnoses(self, *, fraction: float = 0.1, floor: float = 0.0) -> list[Key]:
        """Wait diagnoses whose total severity is at least ``fraction`` of the
        largest wait total and above ``floor`` µs — the diagnoses an analyst
        would actually look at."""
        reference = self.max_wait_total()
        result = []
        for key, values in self.wait_diagnoses().items():
            total = float(values.sum())
            if total >= fraction * reference and total > floor:
                result.append(key)
        return sorted(result)

    def as_table(self) -> list[tuple[str, str, float, float]]:
        """Rows of (metric, location, total severity, max per-rank severity)."""
        rows = []
        for (metric, location), values in sorted(self.severities.items()):
            rows.append((metric, location, float(values.sum()), float(values.max())))
        return rows
