"""KOJAK/EXPERT-style automatic performance analysis.

The paper's most important evaluation criterion is whether the reduced trace
still leads an analyst to the same performance diagnosis as the full trace.
The paper feeds both traces to KOJAK's EXPERT analyzer and compares the CUBE
visualisations by hand; this subpackage provides the equivalent machinery:

* :mod:`repro.analysis.patterns` — the wait-state inefficiency patterns
  (Late Sender, Late Receiver, Late Broadcast, Early Gather, Wait at Barrier,
  Wait at N×N) and how their severities are computed;
* :mod:`repro.analysis.expert` — the analyzer that pairs events across ranks
  and produces per-(metric, code location, process) severities;
* :mod:`repro.analysis.compare` — an automated version of the paper's
  "same conclusions" guidelines, deciding whether a reduced trace retains the
  performance trends of the full trace;
* :mod:`repro.analysis.cube` — a text rendering of the severity charts used
  in Figures 4, 7, and 8.
"""

from repro.analysis.patterns import (
    EARLY_GATHER,
    EXECUTION_TIME,
    LATE_BROADCAST,
    LATE_RECEIVER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
    WAIT_METRICS,
)
from repro.analysis.profile import FlatProfile, flat_profile
from repro.analysis.report import DiagnosisReport
from repro.analysis.expert import analyze
from repro.analysis.compare import ComparisonOptions, TrendComparison, compare_diagnoses
from repro.analysis.cube import severity_chart, severity_level

__all__ = [
    "LATE_SENDER",
    "LATE_RECEIVER",
    "LATE_BROADCAST",
    "EARLY_GATHER",
    "WAIT_AT_BARRIER",
    "WAIT_AT_NXN",
    "EXECUTION_TIME",
    "WAIT_METRICS",
    "DiagnosisReport",
    "FlatProfile",
    "flat_profile",
    "analyze",
    "ComparisonOptions",
    "TrendComparison",
    "compare_diagnoses",
    "severity_chart",
    "severity_level",
]
