"""Flat profiling — the baseline the paper argues is *not* enough.

Section 1 of the paper motivates event tracing with the observation that a
profile (per-function summary times) cannot distinguish a Late Sender from,
say, a Late Receiver or network contention: both simply show "a lot of time in
MPI".  This module computes exactly that flat profile from a segmented trace
so the argument can be demonstrated quantitatively (see
``examples/profile_vs_trace.py`` and the corresponding tests): workloads with
*different* root causes produce near-identical profiles but clearly different
wait-state diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.trace.trace import SegmentedTrace
from repro.util.tables import format_table

__all__ = ["ProfileEntry", "FlatProfile", "flat_profile"]


@dataclass(frozen=True, slots=True)
class ProfileEntry:
    """Aggregate statistics for one traced function."""

    name: str
    calls: int
    total_time: float
    mean_time: float
    max_time: float
    fraction: float

    def as_row(self) -> list:
        return [
            self.name,
            self.calls,
            self.total_time,
            self.mean_time,
            self.max_time,
            100.0 * self.fraction,
        ]


@dataclass(slots=True)
class FlatProfile:
    """A per-function flat profile of one application trace."""

    name: str
    entries: list[ProfileEntry]
    total_time: float

    def entry(self, function: str) -> ProfileEntry:
        for entry in self.entries:
            if entry.name == function:
                return entry
        return ProfileEntry(name=function, calls=0, total_time=0.0, mean_time=0.0, max_time=0.0, fraction=0.0)

    def mpi_fraction(self, prefixes: Iterable[str] = ("MPI_", "pmpi_")) -> float:
        """Fraction of total time spent in functions with an MPI-like prefix."""
        if self.total_time <= 0:
            return 0.0
        mpi_time = sum(
            e.total_time for e in self.entries if any(e.name.startswith(p) for p in prefixes)
        )
        return mpi_time / self.total_time

    def as_table(self) -> str:
        return format_table(
            ["function", "calls", "total (us)", "mean (us)", "max (us)", "% of total"],
            [e.as_row() for e in self.entries],
            float_fmt=".4g",
            title=f"flat profile — {self.name}",
        )


def flat_profile(trace: SegmentedTrace) -> FlatProfile:
    """Compute the per-function flat profile of ``trace`` (all ranks combined)."""
    durations: dict[str, list[float]] = {}
    for rank_trace in trace.ranks:
        for event in rank_trace.events():
            durations.setdefault(event.name, []).append(event.duration)
    total_time = float(sum(sum(values) for values in durations.values()))
    entries = []
    for name, values in durations.items():
        arr = np.asarray(values, dtype=float)
        total = float(arr.sum())
        entries.append(
            ProfileEntry(
                name=name,
                calls=int(arr.size),
                total_time=total,
                mean_time=float(arr.mean()),
                max_time=float(arr.max()),
                fraction=total / total_time if total_time > 0 else 0.0,
            )
        )
    entries.sort(key=lambda e: e.total_time, reverse=True)
    return FlatProfile(name=trace.name, entries=entries, total_time=total_time)
