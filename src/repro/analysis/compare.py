"""Automated comparison of diagnosis reports (retention of performance trends).

The paper compares CUBE displays by hand, "following a set of guidelines" so
every method faces the same criteria.  This module encodes those guidelines
explicitly.  A reduced trace *retains the performance trends* of the full
trace when:

1. every **major** diagnosis of the full trace (a wait-state whose total
   severity is a noticeable fraction of the largest wait-state and above an
   absolute floor) is still reported with a comparable total severity — within
   a configurable factor — and, where the full trace shows a disparity between
   processes, with a similar per-process profile;
2. the reduced trace does not invent a **spurious** major diagnosis that the
   full trace does not contain (or inflate a minor one into dominance);
3. per-function execution-time disparities across processes (e.g. the
   ``do_work`` imbalance of ``dyn_load_balance``) are not inverted or erased.

Every threshold is a field of :class:`ComparisonOptions` so the sensitivity of
the retention decision can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.patterns import WAIT_METRICS
from repro.analysis.report import DiagnosisReport
from repro.util.stats import coefficient_of_variation, pearson

__all__ = ["ComparisonOptions", "DiagnosisDelta", "TrendComparison", "compare_diagnoses"]


@dataclass(frozen=True, slots=True)
class ComparisonOptions:
    """Thresholds of the trend-retention guidelines.

    Attributes
    ----------
    major_fraction:
        A wait diagnosis is *major* when its total severity is at least this
        fraction of the largest wait diagnosis in the full trace.
    floor_fraction:
        Absolute floor for "major", as a fraction of the total CPU time
        (wall time × number of ranks); diagnoses below it are ignored.
    severity_factor:
        A major diagnosis is considered preserved when the reduced total is
        within ``[full / factor, full * factor]`` (or the absolute difference
        is below the floor).
    disparity_cov:
        A per-rank severity profile counts as "disparate" (some ranks clearly
        more affected than others) when its coefficient of variation exceeds
        this value; only then is the profile-correlation check applied.
    profile_correlation:
        Minimum Pearson correlation between the full and reduced per-rank
        profiles of a disparate major diagnosis.
    spurious_fraction:
        A diagnosis in the reduced trace is *spurious* when its total exceeds
        this fraction of the full trace's largest wait total while being at
        least four times larger than its own full-trace total.
    exec_time_correlation:
        Minimum correlation for disparate per-function execution-time
        profiles; below this the disparity counts as lost.
    """

    major_fraction: float = 0.10
    floor_fraction: float = 0.005
    severity_factor: float = 3.0
    disparity_cov: float = 0.25
    profile_correlation: float = 0.6
    spurious_fraction: float = 0.5
    exec_time_correlation: float = 0.3


@dataclass(slots=True)
class DiagnosisDelta:
    """Full-vs-reduced numbers for one diagnosis."""

    metric: str
    location: str
    full_total: float
    reduced_total: float
    profile_correlation: float
    full_cov: float
    preserved: bool
    note: str = ""


@dataclass(slots=True)
class TrendComparison:
    """Result of comparing a reduced trace's diagnoses against the full trace's."""

    retained: bool
    violations: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    deltas: list[DiagnosisDelta] = field(default_factory=list)
    major_diagnoses: list[tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        status = "retained" if self.retained else "NOT retained"
        lines = [f"performance trends {status}"]
        lines.extend(f"  violation: {v}" for v in self.violations)
        lines.extend(f"  warning:   {w}" for w in self.warnings)
        return "\n".join(lines)


def compare_diagnoses(
    full: DiagnosisReport,
    reduced: DiagnosisReport,
    options: Optional[ComparisonOptions] = None,
) -> TrendComparison:
    """Decide whether ``reduced`` retains the performance trends of ``full``."""
    opts = options or ComparisonOptions()
    if full.nprocs != reduced.nprocs:
        raise ValueError(
            f"cannot compare reports with different rank counts "
            f"({full.nprocs} vs {reduced.nprocs})"
        )
    result = TrendComparison(retained=True)
    floor = opts.floor_fraction * full.wall_time * max(1, full.nprocs)
    majors = full.major_diagnoses(fraction=opts.major_fraction, floor=floor)
    result.major_diagnoses = majors

    # 1. every major diagnosis must be preserved
    for metric, location in majors:
        full_ranks = full.per_rank(metric, location)
        reduced_ranks = reduced.per_rank(metric, location)
        full_total = float(full_ranks.sum())
        reduced_total = float(reduced_ranks.sum())
        correlation = pearson(full_ranks, reduced_ranks)
        full_cov = coefficient_of_variation(full_ranks)
        preserved = True
        note = ""

        within_factor = (
            full_total / opts.severity_factor <= reduced_total <= full_total * opts.severity_factor
        )
        if not within_factor and abs(reduced_total - full_total) > floor:
            preserved = False
            note = (
                f"total severity changed from {full_total:.0f} µs to {reduced_total:.0f} µs "
                f"(allowed factor {opts.severity_factor:g})"
            )
        elif full_cov > opts.disparity_cov and correlation < opts.profile_correlation:
            preserved = False
            note = (
                f"per-rank profile no longer matches (correlation {correlation:.2f} < "
                f"{opts.profile_correlation:g})"
            )

        result.deltas.append(
            DiagnosisDelta(
                metric=metric,
                location=location,
                full_total=full_total,
                reduced_total=reduced_total,
                profile_correlation=correlation,
                full_cov=full_cov,
                preserved=preserved,
                note=note,
            )
        )
        if not preserved:
            result.retained = False
            result.violations.append(f"{metric} @ {location}: {note}")

    # 2. no spurious or wildly inflated diagnosis
    reference = full.max_wait_total()
    for (metric, location), reduced_ranks in reduced.wait_diagnoses().items():
        reduced_total = float(reduced_ranks.sum())
        full_total = full.total(metric, location)
        if reduced_total <= max(opts.spurious_fraction * reference, floor):
            continue
        if reduced_total > 4.0 * max(full_total, floor / 4.0) and (metric, location) not in majors:
            result.retained = False
            result.violations.append(
                f"{metric} @ {location}: spurious diagnosis "
                f"({reduced_total:.0f} µs in reduced trace vs {full_total:.0f} µs in full trace)"
            )

    # 3. per-function execution-time disparities must not be erased or inverted
    for (metric, location), full_ranks in full.execution_times().items():
        full_cov = coefficient_of_variation(full_ranks)
        if full_cov <= opts.disparity_cov:
            continue
        reduced_ranks = reduced.per_rank(metric, location)
        correlation = pearson(full_ranks, reduced_ranks)
        if correlation < opts.exec_time_correlation:
            result.retained = False
            result.violations.append(
                f"execution-time disparity in {location} lost "
                f"(correlation {correlation:.2f} < {opts.exec_time_correlation:g})"
            )
        elif correlation < opts.profile_correlation:
            result.warnings.append(
                f"execution-time disparity in {location} weakened "
                f"(correlation {correlation:.2f})"
            )

    return result
