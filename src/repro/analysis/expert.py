"""EXPERT-style trace analyzer.

The analyzer walks a segmented application trace (full or reconstructed),
pairs matching MPI events across ranks, and accumulates wait-state severities
into a :class:`~repro.analysis.report.DiagnosisReport`.

Event pairing uses MPI ordering semantics only — no hidden metadata — so it
works identically on reconstructed traces:

* collectives are paired by their per-rank collective-call sequence number
  (MPI requires every rank to issue collectives on a communicator in the same
  order);
* point-to-point messages are paired FIFO per ``(source, destination, tag)``
  (MPI's non-overtaking rule).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.patterns import (
    EARLY_GATHER,
    EXECUTION_TIME,
    LATE_BROADCAST,
    LATE_RECEIVER,
    LATE_SENDER,
    WAIT_AT_BARRIER,
    WAIT_AT_NXN,
    PatternContribution,
    early_gather_contribution,
    late_broadcast_contribution,
    late_receiver_contribution,
    late_sender_contribution,
    nxn_wait_contribution,
)
from repro.analysis.report import DiagnosisReport
from repro.trace.events import Event
from repro.trace.trace import SegmentedTrace

__all__ = ["analyze", "AnalysisError"]


class AnalysisError(RuntimeError):
    """Raised when the trace cannot be analyzed (inconsistent communication)."""


@dataclass(slots=True)
class _MpiEventRef:
    rank: int
    event: Event


def analyze(trace: SegmentedTrace) -> DiagnosisReport:
    """Analyze a segmented trace and return its diagnosis report."""
    nprocs = trace.nprocs
    report = DiagnosisReport(name=trace.name, nprocs=nprocs, wall_time=trace.duration())

    collective_groups: dict[int, list[_MpiEventRef]] = defaultdict(list)
    pending_sends: dict[tuple[int, int, int], list[_MpiEventRef]] = defaultdict(list)
    pending_recvs: dict[tuple[int, int, int], list[_MpiEventRef]] = defaultdict(list)

    for rank_trace in trace.ranks:
        rank = rank_trace.rank
        collective_seq = 0
        for event in rank_trace.events():
            report.add(EXECUTION_TIME, event.name, rank, event.duration, event.duration)
            if event.mpi is None:
                continue
            info = event.mpi
            ref = _MpiEventRef(rank=rank, event=event)
            if info.is_collective:
                collective_groups[collective_seq].append(ref)
                collective_seq += 1
            elif info.op in ("send", "ssend"):
                pending_sends[(rank, info.peer, info.tag or 0)].append(ref)
            elif info.op == "recv":
                pending_recvs[(info.peer, rank, info.tag or 0)].append(ref)
            elif info.op == "sendrecv":
                # The send half can make a remote receiver wait (Late Sender
                # at the remote side); the receive half can itself be a Late
                # Sender victim.  Both halves are registered like their plain
                # point-to-point counterparts.
                pending_sends[(rank, info.peer, info.tag or 0)].append(ref)
                source = info.source if info.source is not None else info.peer
                pending_recvs[(source, rank, info.tag or 0)].append(ref)

    for contribution in _collective_contributions(collective_groups, nprocs):
        report.add(
            contribution.metric,
            contribution.location,
            contribution.rank,
            contribution.waiting,
            contribution.signed,
        )
    for contribution in _p2p_contributions(pending_sends, pending_recvs):
        report.add(
            contribution.metric,
            contribution.location,
            contribution.rank,
            contribution.waiting,
            contribution.signed,
        )
    return report


# -- collectives ---------------------------------------------------------------


def _collective_contributions(
    groups: dict[int, list[_MpiEventRef]], nprocs: int
) -> Iterable[PatternContribution]:
    for seq, members in sorted(groups.items()):
        if len(members) != nprocs:
            raise AnalysisError(
                f"collective #{seq} has {len(members)} participants, expected {nprocs}; "
                "the trace's collective sequence is inconsistent across ranks"
            )
        ops = {m.event.mpi.op for m in members}
        if len(ops) != 1:
            raise AnalysisError(
                f"collective #{seq} mixes operations {sorted(ops)}; "
                "ranks disagree on the collective call sequence"
            )
        op = ops.pop()
        location = members[0].event.name
        enters = {m.rank: m.event.start for m in members}
        if op in ("barrier", "allreduce", "allgather", "alltoall"):
            metric = WAIT_AT_BARRIER if op == "barrier" else WAIT_AT_NXN
            for member in members:
                others = [t for r, t in enters.items() if r != member.rank]
                if not others:
                    continue
                yield nxn_wait_contribution(
                    metric, location, member.rank, enters[member.rank], max(others)
                )
        elif op in ("bcast", "scatter"):
            root = members[0].event.mpi.root
            if root is None or root not in enters:
                raise AnalysisError(f"fan-out collective #{seq} has no valid root")
            root_enter = enters[root]
            for member in members:
                if member.rank == root:
                    continue
                yield late_broadcast_contribution(
                    location, member.rank, enters[member.rank], root_enter
                )
        elif op in ("gather", "reduce"):
            root = members[0].event.mpi.root
            if root is None or root not in enters:
                raise AnalysisError(f"fan-in collective #{seq} has no valid root")
            senders = [t for r, t in enters.items() if r != root]
            if senders:
                yield early_gather_contribution(location, root, enters[root], max(senders))
        else:  # pragma: no cover - collective op set is closed
            raise AnalysisError(f"unknown collective operation {op!r}")


# -- point-to-point --------------------------------------------------------------


def _p2p_contributions(
    sends: dict[tuple[int, int, int], list[_MpiEventRef]],
    recvs: dict[tuple[int, int, int], list[_MpiEventRef]],
) -> Iterable[PatternContribution]:
    for key, recv_list in recvs.items():
        send_list = sends.get(key, [])
        for send_ref, recv_ref in zip(send_list, recv_list):
            send_event = send_ref.event
            recv_event = recv_ref.event
            yield late_sender_contribution(
                recv_event.name, recv_ref.rank, recv_event.start, send_event.start
            )
            if send_event.mpi is not None and send_event.mpi.op == "ssend":
                yield late_receiver_contribution(
                    send_event.name, send_ref.rank, send_event.start, recv_event.start
                )
