"""Study runner: the full evaluation pipeline for one workload.

``evaluate_workload`` simulates a workload once, then applies any number of
(method, threshold) combinations to the same segmented trace, producing one
:class:`EvaluationResult` per combination with all four criteria filled in.
The expensive artefacts (the segmented full trace, its serialized size, and
its diagnosis report) are computed once and shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro import obs
from repro.analysis.compare import ComparisonOptions, TrendComparison
from repro.analysis.expert import analyze
from repro.analysis.report import DiagnosisReport
from repro.benchmarks_ats.base import Workload
from repro.core.frametrace import FrameTrace
from repro.core.metrics import create_metric
from repro.core.metrics.base import SimilarityMetric
from repro.core.reconstruct import reconstruct
from repro.core.reduced import ReducedTrace
from repro.core.reducer import TraceReducer
from repro.pipeline.engine import PipelineConfig, ReductionPipeline
from repro.evaluation.approximation import approximation_distance
from repro.evaluation.filesize import full_trace_bytes, full_trace_bytes_from_file
from repro.evaluation.trends import retains_trends
from repro.trace.trace import SegmentedTrace

__all__ = [
    "EvaluationResult",
    "evaluate_method",
    "evaluate_grid",
    "evaluate_workload",
    "result_from_reduced",
    "PreparedWorkload",
]


@dataclass(slots=True)
class EvaluationResult:
    """All four criteria for one (workload, method, threshold) combination."""

    workload: str
    method: str
    threshold: Optional[float]
    pct_file_size: float
    degree_of_matching: float
    approx_distance_us: float
    trends_retained: bool
    full_bytes: int
    reduced_bytes: int
    n_segments: int
    n_stored: int
    trend_comparison: Optional[TrendComparison] = None

    def as_row(self) -> list:
        """Row used by the benchmark harness tables."""
        return [
            self.workload,
            self.method,
            "-" if self.threshold is None else f"{self.threshold:g}",
            self.pct_file_size,
            self.degree_of_matching,
            self.approx_distance_us,
            self.trends_retained,
        ]


@dataclass(slots=True)
class PreparedWorkload:
    """A workload's shared evaluation artefacts (simulate + segment + analyze once)."""

    name: str
    segmented: SegmentedTrace | FrameTrace
    full_bytes: int
    full_report: DiagnosisReport
    workload: Optional[Workload] = None

    @classmethod
    def from_workload(cls, workload: Workload) -> "PreparedWorkload":
        segmented = workload.run_segmented()
        return cls.from_segmented(workload.name, segmented, workload=workload)

    @classmethod
    def from_segmented(
        cls, name: str, segmented: SegmentedTrace, workload: Optional[Workload] = None
    ) -> "PreparedWorkload":
        return cls(
            name=name,
            segmented=segmented,
            full_bytes=full_trace_bytes(segmented),
            full_report=analyze(segmented),
            workload=workload,
        )

    @classmethod
    def from_file(cls, path, name: Optional[str] = None) -> "PreparedWorkload":
        """Prepare a trace file (text or ``.rpb``; dispatched on extension).

        The four criteria are format-independent: ``full_bytes`` is the
        text-equivalent serialization either way, so evaluating a trace and
        evaluating its converted twin produce identical results.

        The file decodes straight into columnar frames
        (:class:`~repro.core.frametrace.FrameTrace`): the full-trace analysis
        and the criteria read the columns directly, the reducers take their
        frame paths, and ``full_bytes`` streams off the file — segment
        objects are only materialized for stored representatives.
        """
        from pathlib import Path

        path = Path(path)
        trace = FrameTrace.from_file(path, name=name)
        return cls(
            name=trace.name,
            segmented=trace,
            full_bytes=full_trace_bytes_from_file(path),
            full_report=analyze(trace),
        )


def evaluate_method(
    prepared: PreparedWorkload,
    metric: SimilarityMetric,
    *,
    comparison_options: Optional[ComparisonOptions] = None,
    keep_comparison: bool = True,
    backend: str = "serial",
    pipeline_config: Optional[PipelineConfig] = None,
    pipeline_source=None,
) -> EvaluationResult:
    """Run one similarity metric over a prepared workload.

    ``backend="serial"`` reduces with the plain :class:`TraceReducer`;
    ``backend="pipeline"`` routes the reduction through the streaming
    parallel pipeline (``pipeline_config`` selects executor/workers/store).
    Both backends produce identical criteria — the pipeline's ordering is
    deterministic and its default store is unbounded.

    ``pipeline_source`` (pipeline backend only) makes the pipeline ingest a
    trace file directly — text or indexed binary, with binary sources
    dispatched as ``(path, rank)`` shards to pool workers — instead of the
    in-memory segmented trace.  The file must hold the same trace the
    prepared workload was built from (e.g. via ``PreparedWorkload.from_file``
    on the same path); the criteria are still computed against
    ``prepared.segmented``.
    """
    if backend == "serial":
        if pipeline_source is not None:
            raise ValueError("pipeline_source requires backend='pipeline'")
        with obs.span("evaluate.reduce", method=metric.name, backend=backend):
            reduced: ReducedTrace = TraceReducer(metric).reduce(prepared.segmented)
    elif backend == "pipeline":
        source = prepared.segmented if pipeline_source is None else pipeline_source
        with obs.span("evaluate.reduce", method=metric.name, backend=backend):
            reduced = ReductionPipeline(metric, pipeline_config).reduce(source).reduced
    else:
        raise ValueError(f"backend must be 'serial' or 'pipeline', got {backend!r}")
    return result_from_reduced(
        prepared,
        reduced,
        comparison_options=comparison_options,
        keep_comparison=keep_comparison,
    )


def result_from_reduced(
    prepared: PreparedWorkload,
    reduced: ReducedTrace,
    *,
    comparison_options: Optional[ComparisonOptions] = None,
    keep_comparison: bool = True,
) -> EvaluationResult:
    """All four criteria for one already-computed reduced trace.

    This is the (backend-independent) second half of :func:`evaluate_method`;
    the sweep engine calls it per grid config, so a sweep row and a serial
    row are produced by the same code.
    """
    with obs.span("evaluate.criteria", method=reduced.method):
        reconstructed = reconstruct(reduced)
        reduced_bytes = reduced.size_bytes()
        pct = 100.0 * reduced_bytes / prepared.full_bytes if prepared.full_bytes else 100.0
        distance = approximation_distance(prepared.segmented, reconstructed)
        comparison = retains_trends(
            prepared.segmented,
            reconstructed,
            full_report=prepared.full_report,
            options=comparison_options,
        )
    return EvaluationResult(
        workload=prepared.name,
        method=reduced.method,
        threshold=reduced.threshold,
        pct_file_size=pct,
        degree_of_matching=reduced.degree_of_matching(),
        approx_distance_us=distance,
        trends_retained=comparison.retained,
        full_bytes=prepared.full_bytes,
        reduced_bytes=reduced_bytes,
        n_segments=reduced.n_segments,
        n_stored=reduced.n_stored,
        trend_comparison=comparison if keep_comparison else None,
    )


def evaluate_grid(
    prepared: PreparedWorkload,
    plan,
    *,
    comparison_options: Optional[ComparisonOptions] = None,
    keep_comparison: bool = False,
    backend: str = "sweep",
    pipeline_config: Optional[PipelineConfig] = None,
    pipeline_source=None,
) -> list[EvaluationResult]:
    """Evaluate a whole config grid on one prepared workload.

    ``plan`` is a :class:`~repro.sweep.plan.SweepPlan` (or anything its
    constructor accepts, e.g. a list of ``(method, threshold)`` pairs).

    ``backend="sweep"`` (the default) runs the shared-ingest sweep engine:
    one pass over the segments for the entire grid, feature vectors computed
    once per family.  With ``pipeline_source`` naming an indexed (``.rpb``)
    trace file and a pooled ``pipeline_config``, the sweep is parallelised
    over (rank-shard × feature-family) tasks.  ``backend="serial"`` is the
    oracle: one independent :func:`evaluate_method` pass per config.  Both
    produce identical rows, in plan order.
    """
    from repro.sweep.plan import SweepPlan

    if not isinstance(plan, SweepPlan):
        plan = SweepPlan(plan)
    if backend == "serial":
        if pipeline_source is not None:
            raise ValueError("pipeline_source requires backend='sweep'")
        return [
            evaluate_method(
                prepared,
                config.create(),
                comparison_options=comparison_options,
                keep_comparison=keep_comparison,
            )
            for config in plan.configs
        ]
    if backend != "sweep":
        raise ValueError(f"backend must be 'serial' or 'sweep', got {backend!r}")
    from repro.pipeline.engine import sweep_pipeline

    source = prepared.segmented if pipeline_source is None else pipeline_source
    result = sweep_pipeline(source, plan, pipeline_config, name=prepared.name)
    return result.evaluation_results(
        prepared,
        comparison_options=comparison_options,
        keep_comparison=keep_comparison,
    )


def evaluate_workload(
    workload: Workload,
    methods: Iterable[str | SimilarityMetric | tuple[str, float]],
    *,
    comparison_options: Optional[ComparisonOptions] = None,
    backend: str = "serial",
    pipeline_config: Optional[PipelineConfig] = None,
) -> list[EvaluationResult]:
    """Evaluate several methods on one workload.

    ``methods`` may contain metric names (paper default thresholds), metric
    instances, or ``(name, threshold)`` pairs.  ``backend``/``pipeline_config``
    are forwarded to :func:`evaluate_method`.
    """
    prepared = PreparedWorkload.from_workload(workload)
    results = []
    for spec in methods:
        metric = _resolve_metric(spec)
        results.append(
            evaluate_method(
                prepared,
                metric,
                comparison_options=comparison_options,
                backend=backend,
                pipeline_config=pipeline_config,
            )
        )
    return results


def _resolve_metric(spec: str | SimilarityMetric | tuple[str, float]) -> SimilarityMetric:
    if isinstance(spec, SimilarityMetric):
        return spec
    if isinstance(spec, str):
        return create_metric(spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        name, threshold = spec
        return create_metric(name, threshold)
    raise TypeError(
        "method specification must be a metric name, a SimilarityMetric, or a "
        f"(name, threshold) pair; got {spec!r}"
    )
