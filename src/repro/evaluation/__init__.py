"""Evaluation criteria and study runner (Section 4.3 of the paper).

Four criteria are applied to every (workload, method, threshold) combination:

1. percentage of full trace file size (:mod:`repro.evaluation.filesize`);
2. degree of matching (:mod:`repro.evaluation.matching`);
3. approximation distance — the 90th-percentile absolute timestamp error of
   the reconstructed trace (:mod:`repro.evaluation.approximation`);
4. retention of correct performance trends (:mod:`repro.evaluation.trends`).

:mod:`repro.evaluation.runner` wires the full pipeline together:
simulate → segment → reduce → reconstruct → analyze → compare.
"""

from repro.evaluation.approximation import approximation_distance, timestamp_errors
from repro.evaluation.filesize import percent_file_size
from repro.evaluation.matching import degree_of_matching
from repro.evaluation.trends import retains_trends
from repro.evaluation.runner import (
    EvaluationResult,
    evaluate_grid,
    evaluate_method,
    evaluate_workload,
)

__all__ = [
    "percent_file_size",
    "degree_of_matching",
    "approximation_distance",
    "timestamp_errors",
    "retains_trends",
    "EvaluationResult",
    "evaluate_grid",
    "evaluate_method",
    "evaluate_workload",
]
