"""Percentage of full trace file size (Section 4.3.1)."""

from __future__ import annotations

from repro.core.reduced import ReducedTrace
from repro.trace.io import segmented_trace_size_bytes
from repro.trace.trace import SegmentedTrace

__all__ = ["percent_file_size", "full_trace_bytes"]


def full_trace_bytes(full: SegmentedTrace) -> int:
    """Serialized size of the full trace in bytes."""
    return segmented_trace_size_bytes(full)


def percent_file_size(full: SegmentedTrace, reduced: ReducedTrace) -> float:
    """Reduced trace size as a percentage of the full trace size.

    Both representations are serialized with the same record format
    (see :mod:`repro.trace.io`), so the ratio measures what the reduction
    actually saves, not a formatting artefact.
    """
    full_bytes = full_trace_bytes(full)
    if full_bytes == 0:
        return 100.0
    return 100.0 * reduced.size_bytes() / full_bytes
