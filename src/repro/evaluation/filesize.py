"""Percentage of full trace file size (Section 4.3.1).

The criterion compares the *same serialization* of both representations, so
the ratio measures what the reduction saves, not a formatting artefact.  For
trace files on disk two size notions exist:

* the **on-disk size** (:func:`trace_file_size_bytes`) — whatever the storage
  format costs, text or columnar binary;
* the **text-equivalent size** (:func:`full_trace_bytes_from_file`) — what the
  trace *would* occupy in the paper's record-per-line format, which is the
  baseline every reduced trace is measured against.  For text files the two
  coincide; for ``.rpb`` files the text-equivalent size keeps the criterion
  comparable across storage formats.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.reduced import ReducedTrace
from repro.trace.io import format_record, segmented_trace_size_bytes
from repro.trace.trace import SegmentedTrace

__all__ = [
    "percent_file_size",
    "full_trace_bytes",
    "trace_file_size_bytes",
    "full_trace_bytes_from_file",
]


def full_trace_bytes(full: SegmentedTrace) -> int:
    """Serialized size of the full trace in bytes."""
    return segmented_trace_size_bytes(full)


def trace_file_size_bytes(path: str | Path) -> int:
    """On-disk size of a trace file, whatever its storage format."""
    return Path(path).stat().st_size


def full_trace_bytes_from_file(path: str | Path) -> int:
    """Text-equivalent size of a trace file in either storage format.

    For text files (canonical ``write_trace`` output: one record per line,
    no extra whitespace) the file *is* the text serialization, so the answer
    is the file size — no parse needed.  Other formats are streamed rank by
    rank (never materializing the trace), summing the record-per-line UTF-8
    byte cost, so a ``.rpb`` file reports the same full-trace baseline its
    text twin would.
    """
    from repro.trace.formats import resolve_format

    path = Path(path)
    fmt = resolve_format(path)
    if fmt.name == "text":
        return path.stat().st_size
    total = 0
    for _, records in fmt.rank_streams(path):
        for record in records:
            total += len(format_record(record).encode("utf-8")) + 1  # newline
    return total


def percent_file_size(full: SegmentedTrace, reduced: ReducedTrace) -> float:
    """Reduced trace size as a percentage of the full trace size.

    Both representations are serialized with the same record format
    (see :mod:`repro.trace.io`), so the ratio measures what the reduction
    actually saves, not a formatting artefact.
    """
    full_bytes = full_trace_bytes(full)
    if full_bytes == 0:
        return 100.0
    return 100.0 * reduced.size_bytes() / full_bytes
