"""Retention of correct performance trends (Section 4.3.4)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.compare import ComparisonOptions, TrendComparison, compare_diagnoses
from repro.analysis.expert import analyze
from repro.analysis.report import DiagnosisReport
from repro.trace.trace import SegmentedTrace

__all__ = ["retains_trends"]


def retains_trends(
    original: SegmentedTrace,
    reconstructed: SegmentedTrace,
    *,
    full_report: Optional[DiagnosisReport] = None,
    options: Optional[ComparisonOptions] = None,
) -> TrendComparison:
    """Analyze both traces and decide whether the diagnosis is preserved.

    ``full_report`` may be passed in when the full trace's analysis has
    already been computed (the study runner re-uses it across methods).
    """
    full = full_report if full_report is not None else analyze(original)
    reduced = analyze(reconstructed)
    return compare_diagnoses(full, reduced, options)
