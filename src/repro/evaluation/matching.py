"""Degree of matching (Section 4.3.2).

The ratio of the number of matches to the number of *possible* matches.  A
possible match exists when a segment shares code location, event sequence, and
message-passing parameters with an already-seen segment; program structure
(initialisation code, differing message parameters) limits how many possible
matches exist at all.
"""

from __future__ import annotations

from repro.core.reduced import ReducedTrace

__all__ = ["degree_of_matching"]


def degree_of_matching(reduced: ReducedTrace) -> float:
    """Matches / possible matches; 1.0 when the program structure allows none."""
    return reduced.degree_of_matching()
