"""Approximation distance (Section 4.3.3).

The error in a reduced trace is estimated by re-creating a full trace from the
reduced representation and comparing every timestamp with its counterpart in
the original: the approximation distance is the absolute difference that 90 %
of timestamps stay below (the 90th percentile of the absolute errors).
"""

from __future__ import annotations

import numpy as np

from repro.trace.trace import SegmentedTrace
from repro.util.stats import percentile

__all__ = ["timestamp_errors", "approximation_distance"]


def timestamp_errors(original: SegmentedTrace, reconstructed: SegmentedTrace) -> np.ndarray:
    """Absolute per-timestamp errors between the original and reconstructed trace.

    Both traces must have identical structure (same ranks, segments, events in
    the same order) — which reconstruction guarantees — so timestamps can be
    compared element-wise.
    """
    if original.nprocs != reconstructed.nprocs:
        raise ValueError(
            f"traces have different rank counts ({original.nprocs} vs {reconstructed.nprocs})"
        )
    errors: list[np.ndarray] = []
    for orig_rank, recon_rank in zip(original.ranks, reconstructed.ranks):
        a = orig_rank.timestamps()
        b = recon_rank.timestamps()
        if a.shape != b.shape:
            raise ValueError(
                f"rank {orig_rank.rank}: reconstructed trace has {b.size} timestamps, "
                f"original has {a.size}; traces are not structurally identical"
            )
        errors.append(np.abs(a - b))
    if not errors:
        return np.asarray([], dtype=float)
    return np.concatenate(errors)


def approximation_distance(
    original: SegmentedTrace, reconstructed: SegmentedTrace, *, quantile: float = 90.0
) -> float:
    """The absolute difference that ``quantile`` % of timestamps stay below (µs)."""
    return percentile(timestamp_errors(original, reconstructed), quantile)
